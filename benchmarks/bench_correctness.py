"""E1 — correctness under fault injection (paper §3.4 guarantees, §5).

The DSL ARQ and the hand-coded baseline (clean + four bug-seeded
variants) each transfer the same messages over channels with increasing
fault levels.  Reported per variant: transfers completed, protocol-
invariant violations (corrupted/duplicated/reordered deliveries), and
incomplete transfers.  Expected shape: the DSL column is all zeros at
every fault level — the bugs it cannot express are exactly the ones the
seeded baselines exhibit.
"""

from conftest import record_table

from repro.baseline.sockets_arq import KNOWN_BUGS, run_baseline_transfer
from repro.netsim.channel import ChannelConfig
from repro.protocols.arq import run_transfer

MESSAGES = [f"msg-{i:03d}".encode() for i in range(30)]
FAULT_LEVELS = [
    ("clean", ChannelConfig()),
    ("mild", ChannelConfig(loss_rate=0.1, corruption_rate=0.05)),
    ("moderate", ChannelConfig(loss_rate=0.2, corruption_rate=0.1, duplication_rate=0.05)),
    ("harsh", ChannelConfig(loss_rate=0.35, corruption_rate=0.15, duplication_rate=0.1)),
]
SEEDS = (0, 1, 2)


def run_variant(variant, config, seed):
    if variant == "dsl":
        return run_transfer(MESSAGES, config, seed=seed, max_retries=60)
    if variant == "baseline":
        return run_baseline_transfer(MESSAGES, config, seed=seed, max_retries=60)
    kwargs = (
        {"sender_bug": variant}
        if variant in ("accept_any_ack", "forget_timer")
        else {"receiver_bug": variant}
    )
    return run_baseline_transfer(
        MESSAGES, config, seed=seed, max_retries=60,
        max_events=300_000, **kwargs,
    )


def test_fault_injection_matrix(benchmark):
    variants = ["dsl", "baseline"] + list(KNOWN_BUGS)
    rows = []
    dsl_total_violations = 0
    bug_total_violations = 0
    for variant in variants:
        for level_name, config in FAULT_LEVELS:
            violations = 0
            incomplete = 0
            for seed in SEEDS:
                report = run_variant(variant, config, seed)
                violations += len(report.violations)
                incomplete += int(not report.success)
            rows.append((variant, level_name, violations, incomplete))
            if variant == "dsl":
                dsl_total_violations += violations
            elif variant in KNOWN_BUGS:
                bug_total_violations += violations + incomplete
    record_table(
        "E1",
        "protocol violations under fault injection "
        f"({len(MESSAGES)} msgs x {len(SEEDS)} seeds per cell)",
        ["variant", "faults", "violations", "incomplete"],
        rows,
        notes=(
            "expected shape: dsl row all-zero (correct by construction); "
            "bug-seeded baselines fail increasingly with fault level"
        ),
    )
    # The timing payload: one representative moderate-fault DSL transfer.
    benchmark.pedantic(
        lambda: run_transfer(MESSAGES, FAULT_LEVELS[2][1], seed=0),
        rounds=3,
        iterations=1,
    )
    assert dsl_total_violations == 0
    assert bug_total_violations > 0
