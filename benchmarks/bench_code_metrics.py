"""E5 — "typically, 50% or more of the code will deal with error checking
or other software control functions" (paper §1).

One impartial AST classifier measures the error-handling line fraction of
(a) the hand-coded sockets-style ARQ, (b) the DSL protocol *definitions*
(packet spec + machine builders — where the paper says protocol logic
should live), and (c) the DSL driver code.  Expected shape: baseline
highest; pure definitions near zero; drivers in between.
"""

import inspect

from conftest import record_table

import repro.baseline.sockets_arq as baseline_module
from repro.analysis import measure_module, measure_source
from repro.protocols import arq


def definition_source():
    import repro.protocols.arq as arq_module

    pieces = [
        inspect.getsource(arq_module.build_sender_spec),
        inspect.getsource(arq_module.build_receiver_spec),
    ]
    return "\n".join(pieces)


def driver_source():
    return inspect.getsource(arq.ArqSender) + inspect.getsource(arq.ArqReceiver)


def test_error_handling_density(benchmark):
    baseline_metrics = measure_module(baseline_module)
    definitions = measure_source(definition_source(), name="dsl definitions")
    drivers = measure_source(driver_source(), name="dsl drivers")
    rows = [
        (
            "sockets-style baseline",
            baseline_metrics.code_lines,
            baseline_metrics.error_handling_lines,
            f"{baseline_metrics.error_fraction:.1%}",
        ),
        (
            "DSL protocol definitions",
            definitions.code_lines,
            definitions.error_handling_lines,
            f"{definitions.error_fraction:.1%}",
        ),
        (
            "DSL drivers (IO glue)",
            drivers.code_lines,
            drivers.error_handling_lines,
            f"{drivers.error_fraction:.1%}",
        ),
    ]
    record_table(
        "E5",
        "error-handling line fraction (one AST classifier for all)",
        ["body", "code lines", "error lines", "fraction"],
        rows,
        notes=(
            "paper claims >=50% for C sockets code; Python's exceptions "
            "compress that, but the ordering (baseline >> drivers >> "
            "definitions ~ 0%) is the claim's shape"
        ),
    )
    assert definitions.error_fraction == 0.0
    assert baseline_metrics.error_fraction > definitions.error_fraction
    assert baseline_metrics.error_fraction > drivers.error_fraction
    benchmark(measure_module, baseline_module)
