"""E13 — "if an implementation is created from the DSL, then it must
operate correctly" (paper §5): the staged codec.

(a) Differential correctness: generated parse/build/finalize/validate
agree with the interpreted codec over a packet corpus.
(b) Performance: the generated code removes the per-field interpretive
dispatch.  Expected shape: generated wins by a constant factor, larger
for parse than for build.
"""

import time

from conftest import record_table

from repro import fastpath
from repro.core.compile import compile_spec
from repro.protocols.arq import ARQ_PACKET
from repro.protocols.headers import IPV4_HEADER, UDP_HEADER

REPEATS = 300


def corpus():
    packets = []
    for seq in (0, 1, 127, 255):
        for size in (0, 1, 32, 255):
            payload = bytes(range(size % 256))[:size]
            packets.append(
                ("arq", ARQ_PACKET, ARQ_PACKET.make(seq=seq, length=size, payload=payload))
            )
    packets.append(
        (
            "udp",
            UDP_HEADER,
            UDP_HEADER.make(
                source_port=53, destination_port=5353, length=8 + 16,
                payload=b"differential-ok!",
            ),
        )
    )
    packets.append(
        (
            "ipv4",
            IPV4_HEADER,
            IPV4_HEADER.make(
                ihl=6, tos=0, total_length=24, identification=9, flags=0,
                fragment_offset=0, ttl=64, protocol=6,
                source=0x0A000001, destination=0x0A000002,
                options=b"\x07\x04\x00\x00",
            ),
        )
    )
    return packets


def test_differential_equivalence(benchmark):
    compiled = {}
    agreements = 0
    for name, spec, packet in corpus():
        if name not in compiled:
            compiled[name] = compile_spec(spec)
        codec = compiled[name]
        wire = spec.encode(packet)
        assert codec.build(packet.values) == wire
        assert codec.parse(wire) == packet.values
        assert codec.validate(packet.values) == []
        agreements += 3
    record_table(
        "E13",
        "generated vs interpreted codec: differential agreement",
        ["check", "count"],
        [("packet corpus size", len(corpus())), ("agreements", agreements), ("disagreements", 0)],
    )
    codec = compiled["arq"]
    packet = corpus()[5][2]
    benchmark(codec.parse, ARQ_PACKET.encode(packet))


def _time(func, *args):
    start = time.perf_counter()
    for _ in range(REPEATS):
        func(*args)
    return time.perf_counter() - start


def test_staging_speedup(benchmark):
    rows = []
    for name, spec in (("arq", ARQ_PACKET), ("udp", UDP_HEADER), ("ipv4", IPV4_HEADER)):
        packet = next(p for n, s, p in corpus() if n == name)
        codec = compile_spec(spec)
        wire = spec.encode(packet)
        # Pin the fast path off for the interpreted lane: under the
        # default "auto" policy these loops would cross the compile
        # threshold and silently time generated code against itself.
        with fastpath.use(mode="off"):
            interp_parse = _time(spec.decode, wire)
            interp_build = _time(spec.encode, packet)
        gen_parse = _time(codec.parse, wire)
        gen_build = _time(codec.build, packet.values)
        rows.append(
            (
                name,
                f"{interp_parse / gen_parse:.2f}x",
                f"{interp_build / gen_build:.2f}x",
                f"{gen_parse / REPEATS * 1e6:.1f}",
                f"{gen_build / REPEATS * 1e6:.1f}",
            )
        )
        assert gen_parse < interp_parse  # staging must actually pay off
    record_table(
        "E13b",
        f"staging speedup ({REPEATS} ops per cell)",
        ["spec", "parse speedup", "build speedup", "gen parse us", "gen build us"],
        rows,
        notes="expected shape: constant-factor win, larger for parse",
    )
    codec = compile_spec(ARQ_PACKET)
    packet = next(p for n, s, p in corpus() if n == "arq")
    benchmark(codec.build, packet.values)
