"""E10 — ABNF as the machine-parseable syntactic comparator (paper §2.1).

Parse a realistic grammar corpus and measure match throughput — and show
the semantic gap: the DSL-exported ABNF accepts checksum-corrupted
packets that the DSL rejects.
"""

import time

from conftest import record_table

from repro.abnf import Matcher, parse_grammar
from repro.core.abnf_export import export_abnf
from repro.protocols.arq import ARQ_PACKET

REQUEST_GRAMMAR = """
request = method SP path SP version CRLF *header CRLF
method = "GET" / "HEAD" / "POST" / "PUT" / "DELETE"
path = "/" *(ALPHA / DIGIT / "/" / "." / "-" / "_")
version = "HTTP/" DIGIT "." DIGIT
header = field-name ":" SP field-value CRLF
field-name = 1*(ALPHA / "-")
field-value = *(VCHAR / SP)
"""

SAMPLES = [
    ("GET / HTTP/1.1\r\n\r\n", True),
    ("POST /api/v1/items HTTP/1.1\r\nHost: example.org\r\n\r\n", True),
    ("HEAD /a/b/c.html HTTP/1.0\r\nAccept: text/html\r\nX-Y: z\r\n\r\n", True),
    ("YEET / HTTP/1.1\r\n\r\n", False),
    ("GET / HTTP/1.1", False),
    ("GET  / HTTP/1.1\r\n\r\n", False),
]


def test_grammar_corpus_and_throughput(benchmark):
    grammar = parse_grammar(REQUEST_GRAMMAR)
    matcher = Matcher(grammar)
    rows = []
    for sample, expected in SAMPLES:
        start = time.perf_counter()
        outcome = matcher.fullmatch("request", sample)
        elapsed = time.perf_counter() - start
        assert outcome == expected
        rows.append(
            (sample[:32].replace("\r\n", "\\r\\n"), expected, f"{elapsed * 1e6:.0f}")
        )
    record_table(
        "E10",
        "ABNF engine on an HTTP-style request grammar",
        ["input (truncated)", "matches", "time us"],
        rows,
    )
    benchmark(
        matcher.fullmatch,
        "request",
        "POST /api/v1/items HTTP/1.1\r\nHost: example.org\r\n\r\n",
    )


def test_semantic_gap_vs_dsl(benchmark):
    """ABNF accepts what the DSL rejects: quantified over a corruption sweep."""
    grammar = parse_grammar(export_abnf(ARQ_PACKET))
    matcher = Matcher(grammar)
    wire = ARQ_PACKET.encode(ARQ_PACKET.make(seq=3, length=8, payload=b"payload!"))
    abnf_accepts = 0
    dsl_accepts = 0
    trials = 0
    for byte_index in range(len(wire)):
        corrupted = bytearray(wire)
        corrupted[byte_index] ^= 0x01
        corrupted = bytes(corrupted)
        trials += 1
        if matcher.fullmatch("arqdata", corrupted):
            abnf_accepts += 1
        if ARQ_PACKET.try_parse(corrupted) is not None:
            dsl_accepts += 1
    record_table(
        "E10b",
        "single-bit corruption sweep over one ARQ packet",
        ["acceptor", "accepted", "of trials"],
        [
            ("ABNF (syntax only)", abnf_accepts, trials),
            ("DSL (syntax + semantics)", dsl_accepts, trials),
        ],
        notes=(
            "expected shape: ABNF accepts nearly every syntactically "
            "well-formed corruption; the DSL's checksum constraint "
            "rejects all of them (xor8 catches every single-bit flip)"
        ),
    )
    assert dsl_accepts == 0
    assert abnf_accepts > trials // 2
    benchmark(matcher.fullmatch, "arqdata", wire)
