"""E4 — model-checking state explosion vs definition-time checking
(paper §3.3 limitations 1-2, §4.2).

The same ARQ sender spec is (a) explicitly model-checked over growing
sequence-number domains and (b) checked by the DSL's definition-time
checker.  Expected shape: explorer states and time grow exponentially in
the parameter width; checker time is flat (it is structural — linear in
the number of declared states and transitions, not configurations).
"""

import time

from conftest import record_table

from repro.core.checker import check_machine
from repro.modelcheck import explore
from repro.protocols.arq import build_sender_spec


def test_state_explosion_vs_structural_check(benchmark):
    rows = []
    for bits in (2, 4, 6, 8, 10):
        spec = build_sender_spec(max_seq_bits=bits)
        start = time.perf_counter()
        result = explore(spec)
        explore_time = time.perf_counter() - start
        start = time.perf_counter()
        report = check_machine(spec)
        checker_time = time.perf_counter() - start
        assert report.ok
        assert result.deadlock_free
        rows.append(
            (
                bits,
                1 << bits,
                result.states_visited,
                result.edges_traversed,
                f"{explore_time * 1e3:.2f}",
                f"{checker_time * 1e3:.3f}",
            )
        )
    record_table(
        "E4",
        "ARQ sender: explicit exploration vs definition-time checking",
        ["seq bits", "domain", "states", "edges", "explore ms", "checker ms"],
        rows,
        notes=(
            "expected shape: states/time grow exponentially with bits; "
            "the checker is flat — it never enumerates configurations"
        ),
    )
    benchmark.pedantic(
        lambda: explore(build_sender_spec(max_seq_bits=6)),
        rounds=3,
        iterations=1,
    )


def test_abstraction_tradeoff(benchmark):
    """The paper's 'simplified (and so unrealistic) representation':
    abstraction shrinks the space but silently merges behaviours."""
    rows = []
    spec = build_sender_spec(max_seq_bits=8)
    for abstraction in (None, 64, 16, 4):
        result = explore(spec, abstraction=abstraction)
        rows.append(
            (
                "full" if abstraction is None else abstraction,
                result.states_visited,
                len(result.approximated_transitions),
            )
        )
    record_table(
        "E4b",
        "abstraction knob: states checked vs behaviours merged",
        ["domain cap", "states", "approximated transitions"],
        rows,
    )
    benchmark.pedantic(
        lambda: explore(spec, abstraction=16), rounds=3, iterations=1
    )
