"""E9 — "the use of different encoding rules can give different
on-the-wire packets for the same ASN.1" (paper §2.1).

The same abstract values are encoded under DER-style and PER-style rules:
sizes compared, byte-level difference shown, round-trip verified under
both.  Expected shape: encodings always differ; the packed rules are
consistently smaller (dramatically so for constrained types).
"""

from conftest import record_table

from repro.asn1 import (
    Boolean,
    Choice,
    Enumerated,
    IA5String,
    Integer,
    OctetString,
    Sequence,
    SequenceOf,
    der_decode,
    der_encode,
    per_decode,
    per_encode,
)

CORPUS = [
    (
        "tiny status",
        Sequence([("ok", Boolean()), ("code", Integer(0, 15))]),
        {"ok": True, "code": 7},
    ),
    (
        "ack message",
        Sequence(
            [
                ("kind", Enumerated({"data": 0, "ack": 1, "nak": 2})),
                ("seq", Integer(0, 255)),
                ("window", Integer(0, 63)),
            ]
        ),
        {"kind": "ack", "seq": 200, "window": 32},
    ),
    (
        "data packet",
        Sequence(
            [
                ("seq", Integer(0, 65535)),
                ("payload", OctetString()),
                ("urgent", Boolean()),
            ]
        ),
        {"seq": 4242, "payload": b"x" * 64, "urgent": False},
    ),
    (
        "routed request",
        Sequence(
            [
                ("route", Choice([("name", IA5String()), ("id", Integer())])),
                ("hops", SequenceOf(Integer(0, 255))),
            ]
        ),
        {"route": ("name", "relay-7"), "hops": [1, 2, 3, 4]},
    ),
]


def test_encoding_rules_differ(benchmark):
    rows = []
    for label, schema, value in CORPUS:
        der = der_encode(schema, value)
        per = per_encode(schema, value)
        assert der_decode(schema, der) == value
        assert per_decode(schema, per) == value
        assert der != per
        rows.append(
            (
                label,
                len(der),
                len(per),
                f"{len(der) / len(per):.2f}x",
                der[:8].hex(),
                per[:8].hex(),
            )
        )
    record_table(
        "E9",
        "same abstract value, two encoding rule sets",
        ["message", "DER bytes", "PER bytes", "DER/PER", "DER prefix", "PER prefix"],
        rows,
        notes=(
            "expected shape: encodings always differ; packed rules smaller "
            "— and neither can state the DSL's semantic constraints"
        ),
    )
    schema, value = CORPUS[2][1], CORPUS[2][2]
    benchmark(lambda: per_decode(schema, per_encode(schema, value)))
