"""E11 — ARQ operation: goodput vs loss, window-size effects, and the
runtime cost of the DSL machinery (paper §3.4 plus the efficiency claims
of §3.3).

Expected shapes:

* stop-and-wait goodput falls roughly as (1 - p) with loss rate p and is
  RTT-bound (the textbook curve);
* sliding windows beat stop-and-wait, selective repeat beats go-back-N
  under loss;
* the DSL sender costs a modest constant factor over the hand-coded
  baseline (types are checked at runtime here, not compile time), and the
  gap is not the protocol's bottleneck — the network dominates.
"""

import time

from conftest import record_table

from repro.baseline.sockets_arq import run_baseline_transfer
from repro.netsim.channel import ChannelConfig
from repro.protocols.arq import run_transfer
from repro.protocols.sliding import run_gbn_transfer, run_sr_transfer

MESSAGES = [bytes([i % 256]) * 32 for i in range(40)]


def test_goodput_vs_loss(benchmark):
    rows = []
    for loss in (0.0, 0.1, 0.2, 0.3, 0.4, 0.5):
        config = ChannelConfig(loss_rate=loss)
        report = run_transfer(MESSAGES, config, seed=1, max_retries=200)
        assert report.success
        rows.append(
            (
                f"{loss:.1f}",
                f"{report.goodput:.0f}",
                report.retransmissions,
                f"{report.duration:.1f}",
            )
        )
    record_table(
        "E11",
        "stop-and-wait goodput vs loss (40 x 32B msgs, RTT 0.1s)",
        ["loss", "goodput B/s", "retransmissions", "virt duration s"],
        rows,
        notes="expected shape: goodput ~ (1-p) * payload/RTT, textbook curve",
    )
    benchmark.pedantic(
        lambda: run_transfer(MESSAGES, ChannelConfig(loss_rate=0.2), seed=1),
        rounds=3,
        iterations=1,
    )


def test_protocol_comparison_under_loss(benchmark):
    config = ChannelConfig(loss_rate=0.15)
    rows = []
    for label, runner, kwargs in (
        ("stop-and-wait", run_transfer, {}),
        ("go-back-n w=8", run_gbn_transfer, {"window": 8}),
        ("selective w=8", run_sr_transfer, {"window": 8}),
    ):
        report = runner(MESSAGES, config, seed=2, **kwargs)
        assert report.success
        rows.append(
            (
                label,
                f"{report.goodput:.0f}",
                report.data_frames_sent,
                f"{report.duration:.1f}",
            )
        )
    record_table(
        "E11b",
        "protocol family at 15% loss (same link, same messages)",
        ["protocol", "goodput B/s", "data frames", "virt duration s"],
        rows,
        notes="expected shape: windows beat stop-and-wait; SR sends fewest frames",
    )
    goodputs = {row[0]: float(row[1]) for row in rows}
    assert goodputs["go-back-n w=8"] > goodputs["stop-and-wait"]
    benchmark.pedantic(
        lambda: run_sr_transfer(MESSAGES, config, window=8, seed=2),
        rounds=3,
        iterations=1,
    )


def test_dsl_runtime_overhead_vs_baseline(benchmark):
    """Wall-clock cost of the DSL machinery per delivered message."""
    config = ChannelConfig(loss_rate=0.1)
    rows = []
    timings = {}
    for label, runner in (("dsl", run_transfer), ("baseline", run_baseline_transfer)):
        start = time.perf_counter()
        for seed in range(5):
            report = runner(MESSAGES, config, seed=seed)
            assert report.success
        elapsed = time.perf_counter() - start
        timings[label] = elapsed
        rows.append((label, f"{elapsed * 1e3:.0f}", f"{elapsed / 5 / len(MESSAGES) * 1e6:.0f}"))
    rows.append(
        ("overhead", f"{timings['dsl'] / timings['baseline']:.2f}x", "-")
    )
    record_table(
        "E11c",
        "host-CPU cost: DSL machinery vs hand-coded (5 transfers each)",
        ["implementation", "total ms", "us per message"],
        rows,
        notes=(
            "expected shape: a small constant factor for proofs-at-runtime; "
            "both are sub-millisecond per message and network-bound in practice"
        ),
    )
    benchmark.pedantic(
        lambda: run_transfer(MESSAGES, config, seed=0), rounds=3, iterations=1
    )
