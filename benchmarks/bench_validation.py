"""E2 — "when a packet has been validated once, it never needs to be
validated again" (paper §3.4).

A processing pipeline of N stages receives packets.  The *verified*
pipeline parses (validate once) and passes the ``Verified`` value through
all stages; the *revalidating* pipeline re-checks the packet at every
stage, as defensive code without proof-carrying values must.  Expected
shape: the gap grows linearly with pipeline depth.
"""

import time

from conftest import record_table

from repro.protocols.arq import ARQ_PACKET

PAYLOAD = bytes(range(200))
WIRE = ARQ_PACKET.encode(
    ARQ_PACKET.make(seq=1, length=len(PAYLOAD), payload=PAYLOAD)
)
BATCH = 300


def verified_pipeline(depth):
    total = 0
    for _ in range(BATCH):
        verified = ARQ_PACKET.parse(WIRE)  # validate exactly once
        for _ in range(depth):
            total += verified.value.seq  # stages trust the certificate
    return total


def revalidating_pipeline(depth):
    total = 0
    for _ in range(BATCH):
        packet = ARQ_PACKET.decode(WIRE)
        for _ in range(depth):
            ARQ_PACKET.verify(packet)  # every stage re-checks
            total += packet.seq
    return total


def _measure(func, depth):
    start = time.perf_counter()
    func(depth)
    return time.perf_counter() - start


def test_validate_once_vs_revalidate(benchmark):
    rows = []
    for depth in (1, 2, 4, 8):
        once = _measure(verified_pipeline, depth)
        every = _measure(revalidating_pipeline, depth)
        rows.append(
            (depth, f"{once * 1e3:.1f}", f"{every * 1e3:.1f}", f"{every / once:.2f}x")
        )
    record_table(
        "E2",
        f"pipeline cost, {BATCH} packets of {len(PAYLOAD)}B payload",
        ["stages", "validate-once ms", "revalidate ms", "ratio"],
        rows,
        notes="expected shape: ratio grows ~linearly with pipeline depth",
    )
    deep_once = _measure(verified_pipeline, 8)
    deep_every = _measure(revalidating_pipeline, 8)
    assert deep_every > deep_once
    benchmark.pedantic(lambda: verified_pipeline(4), rounds=3, iterations=1)
