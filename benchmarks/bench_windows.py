"""E11e — window-size tuning across loss rates (paper §1.1 "tuning").

A full sweep of Go-Back-N and Selective Repeat windows against loss
levels.  Expected shapes:

* on a clean link, throughput grows with the window until the
  bandwidth-delay product is covered, then saturates;
* under loss, Go-Back-N's gain flattens (each loss throws away the whole
  window) while Selective Repeat keeps most of its window benefit;
* the optimum window is condition-dependent — the argument for tuning
  hooks rather than constants.
"""

from conftest import record_table

from repro.netsim.channel import ChannelConfig
from repro.protocols.sliding import run_gbn_transfer, run_sr_transfer

MESSAGES = [bytes([i % 256]) * 32 for i in range(60)]
WINDOWS = (1, 2, 4, 8, 16)
LOSSES = (0.0, 0.1, 0.25)


def test_window_sweep(benchmark):
    rows = []
    goodput = {}
    for loss in LOSSES:
        config = ChannelConfig(loss_rate=loss)
        for window in WINDOWS:
            gbn = run_gbn_transfer(
                MESSAGES, config, window=window, seed=3, max_retries=500
            )
            sr = run_sr_transfer(
                MESSAGES, config, window=window, seed=3, max_retries=500
            )
            assert gbn.success and sr.success
            goodput[("gbn", loss, window)] = gbn.goodput
            goodput[("sr", loss, window)] = sr.goodput
            rows.append(
                (
                    f"{loss:.2f}",
                    window,
                    f"{gbn.goodput:.0f}",
                    gbn.retransmissions,
                    f"{sr.goodput:.0f}",
                    sr.retransmissions,
                )
            )
    record_table(
        "E11e",
        "window tuning sweep (60 x 32B msgs, RTT 0.1s)",
        ["loss", "window", "GBN B/s", "GBN retx", "SR B/s", "SR retx"],
        rows,
        notes=(
            "expected shape: clean link — both scale with window; lossy — "
            "SR holds its window gain, GBN flattens (whole-window resend)"
        ),
    )
    # Clean link: window 8 beats window 1 for both protocols.
    assert goodput[("gbn", 0.0, 8)] > 3 * goodput[("gbn", 0.0, 1)]
    assert goodput[("sr", 0.0, 8)] > 3 * goodput[("sr", 0.0, 1)]
    # Under 25% loss: SR at window 16 beats GBN at window 16.
    assert goodput[("sr", 0.25, 16)] > goodput[("gbn", 0.25, 16)]
    benchmark.pedantic(
        lambda: run_sr_transfer(
            MESSAGES, ChannelConfig(loss_rate=0.1), window=8, seed=3
        ),
        rounds=3,
        iterations=1,
    )
