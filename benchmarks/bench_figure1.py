"""F1 — Figure 1 of the paper: the RFC 791 IPv4 header ASCII picture.

The paper reproduces the RFC's hand-drawn diagram; we *generate* it from
the machine-checked spec and show the two are structurally identical
(same fields, same rows, same bit offsets).
"""

from conftest import record_table, record_text

from repro.core.ascii_art import diagram_rows, render_header_diagram
from repro.protocols.headers import IPV4_HEADER


def test_figure1_render(benchmark):
    diagram = benchmark(render_header_diagram, IPV4_HEADER)
    record_text(
        "F1",
        "IPv4 header (generated from the DSL spec; cf. paper Figure 1)",
        diagram,
    )
    rows = diagram_rows(IPV4_HEADER)
    record_table(
        "F1",
        "IPv4 header field layout (bit offsets per RFC 791)",
        ["field", "start bit", "width bits"],
        [(name, start, "variable" if width < 0 else width) for name, start, width in rows],
    )
    assert "Version" in diagram and "Destination Address" in diagram
