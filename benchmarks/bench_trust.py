"""E8 — trust-aware forwarding in untrusted networks (paper §1.1 bullet 2,
reference [12]).

Delivery ratio across relay-compromise levels for three path-selection
strategies.  Expected shape: random degrades linearly with the
compromised fraction; trust-aware learning stays near the honest-path
ceiling until honest paths run out; the lucky/unlucky variance of a fixed
path shows why static configuration is not an answer.
"""

from conftest import record_table

from repro.trust import run_mesh_experiment

FRACTIONS = (0.0, 0.2, 0.4, 0.6, 0.8)
SEEDS = tuple(range(5))
ROUNDS = 300


def average_ratio(strategy, fraction, late=False):
    total = 0.0
    for seed in SEEDS:
        report = run_mesh_experiment(
            strategy,
            rounds=ROUNDS,
            compromised_fraction=fraction,
            seed=seed,
        )
        total += report.late_delivery_ratio() if late else report.delivery_ratio
    return total / len(SEEDS)


def test_delivery_vs_compromise(benchmark):
    rows = []
    curves = {}
    for fraction in FRACTIONS:
        row = [f"{fraction:.1f}"]
        for strategy in ("random", "fixed", "trust"):
            ratio = average_ratio(strategy, fraction)
            row.append(f"{ratio:.2f}")
            curves[(strategy, fraction)] = ratio
        row.append(f"{average_ratio('trust', fraction, late=True):.2f}")
        rows.append(tuple(row))
    record_table(
        "E8",
        f"delivery ratio vs compromised relay fraction "
        f"(4x2 mesh, {ROUNDS} rounds, {len(SEEDS)} seeds)",
        ["compromised", "random", "fixed", "trust", "trust (post-learning)"],
        rows,
        notes=(
            "expected shape: trust holds near the honest ceiling while "
            "random degrades with the compromised fraction"
        ),
    )
    assert curves[("trust", 0.4)] > curves[("random", 0.4)] * 1.5
    assert curves[("trust", 0.0)] > 0.9
    benchmark.pedantic(
        lambda: run_mesh_experiment(
            "trust", rounds=ROUNDS, compromised_fraction=0.4, seed=0
        ),
        rounds=3,
        iterations=1,
    )
