"""E7 — adaptive protocol timers (paper §1.1 bullet 3, reference [5]).

HELLO beaconing against scheduled topology churn: a fixed interval versus
the adaptive controller.  Expected shape (the OLSR-tuning trade):

* calm network  -> adaptive sends far fewer HELLOs (less overhead);
* churning      -> adaptive detects changes much faster (lower latency);
* the fixed interval can only buy one of the two.
"""

from conftest import record_table

from repro.adapt.timers import run_hello_protocol

SCHEDULES = {
    "calm": [0.01, 0.01, 0.01, 0.01],
    "churning": [3.0, 3.0, 3.0, 3.0],
    "mixed": [0.02, 2.0, 0.02, 2.0],
}


def test_adaptive_vs_fixed_timers(benchmark):
    rows = []
    summary = {}
    for label, schedule in SCHEDULES.items():
        for policy in ("fixed", "adaptive"):
            report = run_hello_protocol(schedule, policy=policy, seed=7)
            rows.append(
                (
                    label,
                    policy,
                    report.hellos_sent,
                    f"{report.overhead_rate:.2f}",
                    f"{report.mean_detection_latency:.3f}",
                )
            )
            summary[(label, policy)] = report
    record_table(
        "E7",
        "HELLO beaconing: overhead vs detection latency (120 virt-s)",
        ["churn", "policy", "hellos", "hellos/s", "mean latency s"],
        rows,
        notes=(
            "expected shape: adaptive ~matches fixed where fixed is "
            "well-tuned, sends far fewer HELLOs when calm, and detects "
            "much faster under churn"
        ),
    )
    assert (
        summary[("calm", "adaptive")].hellos_sent
        < summary[("calm", "fixed")].hellos_sent * 0.6
    )
    assert (
        summary[("churning", "adaptive")].mean_detection_latency
        < summary[("churning", "fixed")].mean_detection_latency
    )
    benchmark.pedantic(
        lambda: run_hello_protocol(SCHEDULES["mixed"], policy="adaptive", seed=7),
        rounds=3,
        iterations=1,
    )


def test_rtt_estimator_tracks_path_change(benchmark):
    """Jacobson/Karn RTO adaptation: the companion mechanism ARQ uses."""
    from repro.adapt.timers import RttEstimator

    rows = []
    estimator = RttEstimator(initial_rto=1.0)
    for phase, rtt in (("short path", 0.1), ("long path", 0.6), ("short again", 0.1)):
        for _ in range(30):
            estimator.sample(rtt)
        rows.append((phase, rtt, f"{estimator.srtt:.3f}", f"{estimator.rto:.3f}"))
    record_table(
        "E7b",
        "RTT estimator convergence across path changes",
        ["phase", "true rtt", "srtt", "rto"],
        rows,
    )
    assert abs(estimator.srtt - 0.1) < 0.05
    benchmark(lambda: RttEstimator().sample(0.2))
