"""E12 — definition-time checking: cost and catch rate (paper §3.3).

(a) Checker cost as machine specs grow (states/transitions): expected
~linear, never exponential — the structural contrast to E4.
(b) Catch rate over a corpus of mutated (deliberately broken) specs:
every mutation class the checker claims to catch must be caught.
"""

import time

from conftest import record_table

from repro.core.checker import check_machine
from repro.core.statemachine import MachineSpec, Param
from repro.core.symbolic import Var


def chain_machine(states):
    """A linear machine with `states` states and 2 transitions each."""
    spec = MachineSpec("chain")
    seq = Param("seq", bits=16)
    declared = [
        spec.state(f"S{i}", params=[seq], initial=(i == 0)) for i in range(states)
    ]
    final = spec.state("F", params=[seq], final=True)
    n = Var("seq")
    for i in range(states):
        target = declared[i + 1] if i + 1 < states else final
        spec.transition(f"GO{i}", declared[i](n), target(n + 1))
        spec.transition(f"LOOP{i}", declared[i](n), declared[i](n))
    return spec


MUTATIONS = [
    ("no initial state", "no initial state"),
    ("unbound target var", "inputs bind"),
    ("final with outgoing", "must be terminal"),
    ("unreachable state", "unreachable"),
    ("dead-end state", "deadlock"),
    ("missing event handler", "does not handle"),
    ("bad requires object", "requires must be"),
    ("guard unknown variable", "guard references"),
]


def mutated_spec(kind):
    spec = MachineSpec("mutant")
    seq = Param("seq", bits=8)
    n = Var("seq")
    if kind == "no initial state":
        a = spec.state("A", params=[seq], final=True)
        return spec
    a = spec.state("A", params=[seq], initial=True)
    f = spec.state("F", params=[seq], final=True)
    if kind == "unbound target var":
        spec.transition("T", a(n), f(Var("ghost")))
    elif kind == "final with outgoing":
        spec.transition("T", a(n), f(n))
        spec.transition("BACK", f(n), a(n))
    elif kind == "unreachable state":
        spec.state("Island", params=[seq], final=True)
        spec.transition("T", a(n), f(n))
    elif kind == "dead-end state":
        trap = spec.state("Trap", params=[seq])
        spec.transition("T", a(n), trap(n))
        spec.transition("T2", a(n), f(n))
    elif kind == "missing event handler":
        spec.transition("T", a(n), f(n), event="go")
        spec.expect_events(a, ["go", "timer"])
    elif kind == "bad requires object":
        spec.transition("T", a(n), f(n), requires=object())
    elif kind == "guard unknown variable":
        spec.transition("T", a(n), f(n), guard=Var("ghost") > 0)
    return spec


def test_checker_cost_scales_linearly(benchmark):
    rows = []
    timings = []
    for states in (5, 20, 80, 320):
        spec = chain_machine(states)
        start = time.perf_counter()
        report = check_machine(spec)
        elapsed = time.perf_counter() - start
        assert report.ok
        timings.append((states, elapsed))
        rows.append(
            (
                states,
                len(spec.transitions),
                f"{elapsed * 1e3:.2f}",
            )
        )
    record_table(
        "E12",
        "definition-time checker cost vs spec size",
        ["states", "transitions", "checker ms"],
        rows,
        notes="expected shape: ~linear in declared structure (compare E4)",
    )
    # Quadratic-at-worst sanity: 64x states must not cost 4096x time.
    small, large = timings[0][1], timings[-1][1]
    assert large < small * 4096
    benchmark.pedantic(
        lambda: check_machine(chain_machine(80)), rounds=3, iterations=1
    )


def test_mutation_catch_rate(benchmark):
    rows = []
    caught = 0
    for kind, expected_fragment in MUTATIONS:
        report = check_machine(mutated_spec(kind))
        hit = any(expected_fragment in error for error in report.errors)
        caught += int(hit)
        rows.append((kind, "caught" if hit else "MISSED"))
    record_table(
        "E12b",
        "mutation corpus: broken specs vs the checker",
        ["mutation", "outcome"],
        rows,
        notes="expected shape: 8/8 caught — these bugs cannot reach runtime",
    )
    assert caught == len(MUTATIONS)
    benchmark.pedantic(
        lambda: [check_machine(mutated_spec(k)) for k, _ in MUTATIONS],
        rounds=3,
        iterations=1,
    )
