"""E7c — adaptive vs fixed retransmission timeouts inside the protocol.

The §1.1 "tuning protocol operation" hook, wired into the real ARQ
sender: Jacobson/Karn RTT estimation with exponential backoff replaces
the fixed RTO.  Three channel regimes show the full trade surface:

* **mistuned-slow** (RTT 2s, fixed RTO 0.5s): the fixed timer fires four
  times per exchange — adaptive learns the real RTT and all but
  eliminates spurious retransmissions;
* **mistuned-fast** (RTT 0.02s, fixed RTO 0.5s): the fixed timer wastes
  ~25 RTTs of idle time per loss — adaptive recovers in a few;
* **random-loss** (well-tuned fixed RTO): Karn backoff, designed for
  congestion, is punished by *random* loss because invalidated samples
  cannot pull the RTO back down; capping ``max_rto`` recovers most of it.
"""

from conftest import record_table

from repro.netsim.channel import ChannelConfig
from repro.protocols.arq import run_transfer

MESSAGES = [bytes([i]) * 16 for i in range(40)]

REGIMES = [
    ("mistuned-slow", ChannelConfig(delay=1.0, jitter=0.2), {}),
    ("mistuned-fast", ChannelConfig(delay=0.01, loss_rate=0.3), {}),
    ("random-loss", ChannelConfig(delay=0.05, loss_rate=0.3), {}),
]


def run_policy(config, adaptive, max_rto=60.0, seed=1):
    return run_transfer(
        MESSAGES, config, seed=seed, rto=0.5, max_retries=500,
        adaptive_rto=adaptive, max_rto=max_rto,
    )


def test_adaptive_rto_regimes(benchmark):
    rows = []
    results = {}
    for label, config, _ in REGIMES:
        fixed = run_policy(config, adaptive=False)
        adaptive = run_policy(config, adaptive=True)
        capped = run_policy(config, adaptive=True, max_rto=1.0)
        assert fixed.success and adaptive.success and capped.success
        results[label] = (fixed, adaptive, capped)
        for name, report in (
            ("fixed 0.5s", fixed),
            ("adaptive", adaptive),
            ("adaptive capped 1s", capped),
        ):
            rows.append(
                (
                    label,
                    name,
                    report.retransmissions,
                    f"{report.duration:.1f}",
                )
            )
    record_table(
        "E7c",
        "RTO policy inside the ARQ sender (40 msgs, seed 1)",
        ["channel regime", "policy", "retransmissions", "virt time s"],
        rows,
        notes=(
            "expected shape: adaptive wins by an order of magnitude when "
            "the fixed RTO is mistuned; under pure random loss, unbounded "
            "Karn backoff overshoots and the cap recovers it — timers are "
            "policy, which is why the DSL exposes them as hooks"
        ),
    )
    slow_fixed, slow_adaptive, _ = results["mistuned-slow"]
    assert slow_adaptive.retransmissions < slow_fixed.retransmissions / 4
    fast_fixed, fast_adaptive, fast_capped = results["mistuned-fast"]
    # Uncapped backoff overshoots badly under random loss; capping
    # restores parity with the (accidentally well-tuned) fixed timer.
    assert fast_adaptive.duration > 2 * fast_fixed.duration
    assert fast_capped.duration < 1.2 * fast_fixed.duration
    benchmark.pedantic(
        lambda: run_policy(REGIMES[0][1], adaptive=True), rounds=3, iterations=1
    )
