"""E14 — verifying the protocol *system*: composition, DTMC, Petri net.

Three verification lenses over the same stop-and-wait protocol, covering
the formalisms the paper's related-work sections discuss (§2.2 process
models, §3.3 Petri nets, §4.3 probabilistic/PRISM):

* compositional LTS product — sender + lossy channel + receiver verified
  exhaustively (deadlocks, safety, reachability of success), with the
  no-dup-ack bug as the negative control;
* DTMC analysis — analytic expected transmissions cross-checked against
  the simulator within sampling error;
* Petri net — token-flow discipline: deadlock-free and 2-bounded, and
  *not* 1-safe, which is exactly why sequence numbers exist.
"""

from conftest import record_table

from repro.modelcheck.arq_model import verify_arq_system
from repro.modelcheck.markov import expected_transmissions_per_message
from repro.modelcheck.petri import arq_petri_net, explore_net
from repro.netsim.channel import ChannelConfig
from repro.protocols.arq import run_transfer


def test_compositional_verification(benchmark):
    rows = []
    for modulus, messages in ((4, 1), (4, 3), (8, 5), (8, 7)):
        report = verify_arq_system(modulus=modulus, messages=messages)
        rows.append(
            (
                f"m={modulus} K={messages}",
                report.states,
                report.edges,
                len(report.bad_deadlocks),
                len(report.safety_violations),
                len(report.stuck_states),
                "OK" if report.ok else "FAIL",
            )
        )
        assert report.ok
    broken = verify_arq_system(modulus=4, messages=3, broken_receiver=True)
    rows.append(
        (
            "m=4 K=3 (no dup-ack BUG)",
            broken.states,
            broken.edges,
            len(broken.bad_deadlocks),
            len(broken.safety_violations),
            len(broken.stuck_states),
            "caught" if not broken.ok else "MISSED",
        )
    )
    assert not broken.ok
    record_table(
        "E14",
        "compositional verification: sender x lossy channel x receiver",
        ["system", "states", "edges", "bad deadlocks", "safety", "stuck", "verdict"],
        rows,
        notes=(
            "expected shape: correct system verifies at every size; the "
            "classic lost-ack bug is caught as stuck (success-unreachable) "
            "states"
        ),
    )
    benchmark.pedantic(
        lambda: verify_arq_system(modulus=4, messages=3), rounds=3, iterations=1
    )


def test_analytic_vs_simulated(benchmark):
    """E11d — the DTMC prediction against netsim measurement."""
    rows = []
    messages = [bytes([i]) for i in range(60)]
    for loss in (0.1, 0.2, 0.3, 0.4):
        analytic = expected_transmissions_per_message(loss, loss)
        measured = 0.0
        seeds = range(5)
        for seed in seeds:
            report = run_transfer(
                messages, ChannelConfig(loss_rate=loss), seed=seed,
                max_retries=500,
            )
            assert report.success
            measured += report.data_frames_sent / len(messages)
        measured /= len(seeds)
        rows.append(
            (
                f"{loss:.1f}",
                f"{analytic:.3f}",
                f"{measured:.3f}",
                f"{abs(measured - analytic) / analytic:.1%}",
            )
        )
    record_table(
        "E11d",
        "transmissions per message: DTMC analytic vs simulator (duplex loss)",
        ["loss", "analytic 1/((1-p)^2)", "simulated", "relative gap"],
        rows,
        notes=(
            "expected shape: agreement within sampling error — the "
            "simulator and the Markov model validate each other"
        ),
    )
    benchmark.pedantic(
        lambda: run_transfer(
            messages, ChannelConfig(loss_rate=0.2), seed=0, max_retries=500
        ),
        rounds=3,
        iterations=1,
    )


def test_petri_net_properties(benchmark):
    net, initial = arq_petri_net()
    result = explore_net(net, initial)
    rows = [
        ("reachable markings", result.markings),
        ("deadlocks", len(result.deadlocks)),
        ("1-safe", result.is_safe),
        ("2-bounded", result.is_k_bounded(2)),
        ("max data_in_flight", result.max_tokens_per_place["data_in_flight"]),
    ]
    record_table(
        "E14b",
        "ARQ Petri net (token-flow view, sequence numbers abstracted)",
        ["property", "value"],
        rows,
        notes=(
            "not 1-safe: premature timeouts put two copies in flight — the "
            "token-flow reason sequence numbers are necessary; the LTS "
            "model (which has them) shows duplicates are handled"
        ),
    )
    assert result.deadlocks == []
    assert result.is_k_bounded(2) and not result.is_safe
    benchmark.pedantic(lambda: explore_net(net, initial), rounds=3, iterations=1)
