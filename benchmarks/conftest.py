"""Shared infrastructure for the experiment benches.

Every bench regenerates one experiment from DESIGN.md (F1, E1–E13) and
registers its result table here; the tables are printed in the terminal
summary so that::

    pytest benchmarks/ --benchmark-only | tee bench_output.txt

captures both the timing numbers (pytest-benchmark's table) and the
experiment tables the paper-reproduction calls for.

Every bench also runs under the ``repro.obs`` instrumentation: an autouse
fixture enables the process default, snapshots the metrics registry after
each bench, and the session writes the per-bench snapshots to
``BENCH_obs.json`` at the repo root — the measurement substrate future
perf PRs diff against.

The committed file holds *compact* snapshots (histograms reduced to
count/mean/p50/p95/max via :func:`repro.obs.compact_snapshot`) so the
artifact diffs by the numbers that matter instead of hundreds of raw
bucket arrays.  Run with ``--obs-full`` to write raw bucket-level
snapshots locally when a perf investigation needs the distributions.
"""

from __future__ import annotations

import json
import os
from typing import Dict, List, Sequence

import pytest

_TABLES: List[str] = []
_OBS_SNAPSHOTS: Dict[str, dict] = {}

_REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
OBS_OUTPUT_PATH = os.path.join(_REPO_ROOT, "BENCH_obs.json")


def pytest_addoption(parser):
    parser.addoption(
        "--obs-full",
        action="store_true",
        default=False,
        help=(
            "write raw bucket-level obs snapshots to BENCH_obs.json "
            "(default: compact summary stats, the committed form)"
        ),
    )


@pytest.fixture(autouse=True)
def _obs_per_benchmark(request):
    """Observe every bench; snapshot and reset the registry around it."""
    from repro import obs

    instr = obs.enable()
    instr.reset()
    yield
    snapshot = instr.registry.snapshot()
    if snapshot:
        if not request.config.getoption("--obs-full"):
            snapshot = obs.compact_snapshot(snapshot)
        _OBS_SNAPSHOTS[request.node.nodeid] = {
            "metrics": snapshot,
            "trace_records": len(instr.tracer.records()),
        }
    instr.reset()
    obs.disable()


def pytest_sessionfinish(session, exitstatus):
    if not _OBS_SNAPSHOTS:
        return
    full = session.config.getoption("--obs-full")
    payload = {
        "schema": "repro.obs/bench-snapshots/v2",
        "compact": not full,
        "benchmarks": _OBS_SNAPSHOTS,
    }
    with open(OBS_OUTPUT_PATH, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, sort_keys=True, separators=(",", ":"))
        handle.write("\n")


def record_table(
    experiment: str,
    title: str,
    header: Sequence[str],
    rows: Sequence[Sequence[object]],
    notes: str = "",
) -> str:
    """Format and register an experiment table; returns the rendered text."""
    widths = [len(str(h)) for h in header]
    rendered_rows = [[str(cell) for cell in row] for row in rows]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [f"== {experiment}: {title} =="]
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    if notes:
        lines.append(notes)
    text = "\n".join(lines)
    _TABLES.append(text)
    return text


def record_text(experiment: str, title: str, body: str) -> None:
    """Register a free-form experiment artifact (e.g. the Figure 1 diagram)."""
    _TABLES.append(f"== {experiment}: {title} ==\n{body}")


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _TABLES:
        return
    terminalreporter.write_sep("=", "experiment tables (paper reproduction)")
    for table in _TABLES:
        terminalreporter.write_line("")
        for line in table.splitlines():
            terminalreporter.write_line(line)
