"""Shared infrastructure for the experiment benches.

Every bench regenerates one experiment from DESIGN.md (F1, E1–E13) and
registers its result table here; the tables are printed in the terminal
summary so that::

    pytest benchmarks/ --benchmark-only | tee bench_output.txt

captures both the timing numbers (pytest-benchmark's table) and the
experiment tables the paper-reproduction calls for.
"""

from __future__ import annotations

from typing import List, Sequence

_TABLES: List[str] = []


def record_table(
    experiment: str,
    title: str,
    header: Sequence[str],
    rows: Sequence[Sequence[object]],
    notes: str = "",
) -> str:
    """Format and register an experiment table; returns the rendered text."""
    widths = [len(str(h)) for h in header]
    rendered_rows = [[str(cell) for cell in row] for row in rows]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [f"== {experiment}: {title} =="]
    lines.append("  ".join(str(h).ljust(w) for h, w in zip(header, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in rendered_rows:
        lines.append("  ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    if notes:
        lines.append(notes)
    text = "\n".join(lines)
    _TABLES.append(text)
    return text


def record_text(experiment: str, title: str, body: str) -> None:
    """Register a free-form experiment artifact (e.g. the Figure 1 diagram)."""
    _TABLES.append(f"== {experiment}: {title} ==\n{body}")


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    if not _TABLES:
        return
    terminalreporter.write_sep("=", "experiment tables (paper reproduction)")
    for table in _TABLES:
        terminalreporter.write_line("")
        for line in table.splitlines():
            terminalreporter.write_line(line)
