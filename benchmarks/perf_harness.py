"""Packets-per-second harness: interpreted, compiled, batch, parallel.

The ROADMAP's north star says generated implementations should run "as
fast as the hardware allows"; this harness turns that into a number and
a regression gate.  For every spec in the conformance registry (plus a
payload-heavy synthetic one) it measures round-trip throughput (one
encode + one decode per packet) across the tier ladder:

``interpreted``
    ``repro.fastpath`` pinned off — the field-by-field codec walk.
``compiled``
    ``mode="always"`` — the generated closures via the transparent
    fast path, per-call entry points.
``batch``
    ``encode_many``/``decode_many`` — compiled closures plus amortized
    per-call overhead.
``parallel``
    the same batch APIs routed through the ``repro.parallel`` sharded
    pool — compiled codecs fanned out across worker processes.  The
    parallel tier runs on a *big* corpus (the per-spec corpus repeated
    to a few thousand packets) so sharding overhead amortizes, and is
    compared against ``batch_big``: the single-process batch tier on
    that same big corpus, which makes ``parallel_scale_vs_batch`` an
    apples-to-apples multi-core scaling factor.

Results go to ``BENCH_perf.json`` (schema ``repro.fastpath/perf/v2``),
the baseline every future perf PR is compared against.

Usage::

    PYTHONPATH=src python benchmarks/perf_harness.py --budget 0.05
    PYTHONPATH=src python benchmarks/perf_harness.py --check  # CI gate

``--check`` fails (exit 1) when any spec's compiled tier is slower than
its interpreted tier, when any tier drops below its tolerance band
versus the committed baseline, or — on machines with enough cores —
when the parallel tier fails to scale over single-process batch.
"""

from __future__ import annotations

import argparse
import json
import os
import random
import sys
import time
from pathlib import Path
from typing import Any, Callable, Dict, List, Optional, Tuple

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import fastpath, parallel
from repro.conformance.registry import all_spec_entries
from repro.core import codec
from repro.core.fields import Bytes, UInt
from repro.core.packet import PacketSpec
from repro.core.symbolic import this
from repro.fastpath import batch

SCHEMA = "repro.fastpath/perf/v2"
CORPUS_SIZE = 64  # distinct packets per spec, round-robined each rep
BIG_CORPUS_PACKETS = 4096  # parallel-tier corpus, capped by bytes below
BIG_CORPUS_BYTES = 16 * 2**20

#: Payload-heavy synthetic spec: a 8-byte header in front of kilobytes
#: of opaque payload, so throughput is memcpy-bound rather than
#: field-walk-bound — the case the memoryview/join codegen work targets.
BULK_STREAM = PacketSpec(
    "BulkStream",
    fields=[
        UInt("stream_id", bits=16, doc="flow identifier"),
        UInt("sequence", bits=32, doc="byte offset of this chunk"),
        UInt("length", bits=16, doc="payload length in bytes"),
        Bytes("payload", length=this.length, doc="opaque bulk data"),
    ],
    doc="synthetic bulk-transfer chunk (payload-dominated wire image)",
)


def _bulk_values(rng: random.Random) -> Dict[str, Any]:
    length = 2048 + rng.randrange(2048)
    return {
        "stream_id": rng.randrange(1 << 16),
        "sequence": rng.randrange(1 << 32),
        "length": length,
        "payload": rng.randbytes(length),
    }


def build_corpus(seed: int) -> Dict[str, Dict[str, Any]]:
    """Deterministic per-spec packet corpora from the registry generators."""
    corpus: Dict[str, Dict[str, Any]] = {}
    for entry in all_spec_entries():
        rng = random.Random(seed)
        packets = [entry.generate(rng) for _ in range(CORPUS_SIZE)]
        values = [p._values for p in packets]
        wires = [entry.spec.encode(p) for p in packets]
        corpus[entry.name] = {
            "spec": entry.spec,
            "values": values,
            "wires": wires,
            "bytes": sum(len(w) for w in wires),
        }
    rng = random.Random(seed)
    values = [_bulk_values(rng) for _ in range(CORPUS_SIZE)]
    with fastpath.use(mode="off"):
        wires = [codec.encode_verbatim(BULK_STREAM, v) for v in values]
    corpus[BULK_STREAM.name] = {
        "spec": BULK_STREAM,
        "values": values,
        "wires": wires,
        "bytes": sum(len(w) for w in wires),
    }
    return corpus


def big_corpus(bundle: Dict[str, Any]) -> Tuple[List[dict], List[bytes]]:
    """The bundle's corpus repeated until it is worth sharding.

    Target ``BIG_CORPUS_PACKETS`` packets, capped so the wire image stays
    under ``BIG_CORPUS_BYTES`` — fork-and-pickle a corpus, not a dataset.
    """
    values, wires = bundle["values"], bundle["wires"]
    factor = max(
        1,
        min(
            BIG_CORPUS_PACKETS // len(values),
            BIG_CORPUS_BYTES // max(1, bundle["bytes"]),
        ),
    )
    return values * factor, wires * factor


def _roundtrip_single(spec: Any, values: List[dict], wires: List[bytes]) -> None:
    # Retain results just like the batch APIs do — discarding each 33KB
    # UdpDatagram blob immediately would recycle one cache-hot allocator
    # block and flatter this tier by ~3x on large-payload corpora.
    encode = codec.encode_verbatim
    decode = codec.decode_packet
    encoded = [encode(spec, value_env) for value_env in values]
    decoded = [decode(spec, wire) for wire in wires]
    del encoded, decoded


def _roundtrip_batch(spec: Any, values: List[dict], wires: List[bytes]) -> None:
    batch.encode_many(spec, values)
    batch.decode_many(spec, wires)


def measure(
    runner: Callable[[Any, List[dict], List[bytes]], None],
    spec: Any,
    values: List[dict],
    wires: List[bytes],
    budget_seconds: float,
) -> Dict[str, Any]:
    """Best-of-reps round-trip rate, spending ~``budget_seconds``."""
    runner(spec, values, wires)  # warm-up: compiles, caches, allocator, pool
    reps = 0
    best = float("inf")
    spent = 0.0
    while reps < 3 or spent < budget_seconds:
        start = time.perf_counter()
        runner(spec, values, wires)
        elapsed = time.perf_counter() - start
        spent += elapsed
        best = min(best, elapsed)
        reps += 1
        if reps >= 1000:  # tiny specs on tiny budgets: enough is enough
            break
    packets = len(values)
    return {
        "reps": reps,
        "best_seconds": best,
        "packets_per_second": packets / best,
        "roundtrips": packets,
    }


TIERS = ("interpreted", "compiled", "batch", "batch_big", "parallel")


def run(seed: int, budget_seconds: float, workers: int = 0) -> Dict[str, Any]:
    corpus = build_corpus(seed)
    results: Dict[str, Any] = {}
    for name, bundle in sorted(corpus.items()):
        spec, values, wires = bundle["spec"], bundle["values"], bundle["wires"]
        per_spec: Dict[str, Any] = {
            "wire_bytes": bundle["bytes"],
            "corpus_packets": len(values),
        }
        with fastpath.use(mode="off"):
            per_spec["interpreted"] = measure(
                _roundtrip_single, spec, values, wires, budget_seconds
            )
        with fastpath.use(mode="always"):
            per_spec["compiled"] = measure(
                _roundtrip_single, spec, values, wires, budget_seconds
            )
            state = fastpath.state_of(spec)
            per_spec["tier_used"] = state.status if state else "interpreted"
            per_spec["batch"] = measure(
                _roundtrip_batch, spec, values, wires, budget_seconds
            )
            big_values, big_wires = big_corpus(bundle)
            per_spec["big_corpus_packets"] = len(big_values)
            with parallel.use(workers=0):
                per_spec["batch_big"] = measure(
                    _roundtrip_batch, spec, big_values, big_wires, budget_seconds
                )
            if workers >= 2:
                with parallel.use(workers=workers, min_batch=256):
                    per_spec["parallel"] = measure(
                        _roundtrip_batch, spec, big_values, big_wires, budget_seconds
                    )
                per_spec["parallel_scale_vs_batch"] = (
                    per_spec["parallel"]["packets_per_second"]
                    / per_spec["batch_big"]["packets_per_second"]
                )
            else:
                # Not enough cores (or --workers off): record the gap
                # honestly instead of benchmarking a serial fallback and
                # calling it parallel.
                per_spec["parallel"] = None
                per_spec["parallel_scale_vs_batch"] = None
        interp = per_spec["interpreted"]["packets_per_second"]
        per_spec["compiled_speedup"] = (
            per_spec["compiled"]["packets_per_second"] / interp
        )
        per_spec["batch_speedup"] = per_spec["batch"]["packets_per_second"] / interp
        results[name] = per_spec
    return {
        "schema": SCHEMA,
        "seed": seed,
        "budget_seconds": budget_seconds,
        "metric": "round-trip packets/sec (1 encode + 1 decode per packet)",
        "cpu_count": os.cpu_count() or 1,
        "workers": workers,
        "specs": results,
        "fastpath_stats": fastpath.stats(),
        "parallel_stats": parallel.stats(),
    }


def render(report: Dict[str, Any]) -> str:
    lines = [
        f"cores={report['cpu_count']} parallel workers={report['workers']}",
        f"{'spec':<18} {'interp pps':>12} {'compiled pps':>13} "
        f"{'batch pps':>12} {'par pps':>12} {'comp x':>7} {'par/bat':>8}  tier",
    ]
    for name, row in report["specs"].items():
        par = row.get("parallel")
        scale = row.get("parallel_scale_vs_batch")
        lines.append(
            f"{name:<18} "
            f"{row['interpreted']['packets_per_second']:>12.0f} "
            f"{row['compiled']['packets_per_second']:>13.0f} "
            f"{row['batch']['packets_per_second']:>12.0f} "
            f"{par['packets_per_second'] if par else 0:>12.0f} "
            f"{row['compiled_speedup']:>6.2f}x "
            f"{f'{scale:.2f}x' if scale else '--':>8}  {row['tier_used']}"
        )
    return "\n".join(lines)


# -- the regression gate -------------------------------------------------

#: Per-tier floor as a fraction of the committed baseline's
#: packets/sec.  Wide bands: CI machines differ from the machine that
#: wrote the baseline, and best-of-reps still jitters.  The gate exists
#: to catch tier collapses (a codegen path silently demoting to the
#: interpreter, sharding overhead swamping the pool), not 10% noise.
TOLERANCE = {
    "interpreted": 0.35,
    "compiled": 0.40,
    "batch": 0.40,
    "batch_big": 0.35,
    "parallel": 0.30,
}


def _tier_pps(row: Optional[Dict[str, Any]], tier: str) -> Optional[float]:
    if not row:
        return None
    cell = row.get(tier)
    if not cell:
        return None
    return cell.get("packets_per_second")


def check_report(
    report: Dict[str, Any], baseline: Optional[Dict[str, Any]]
) -> List[str]:
    """Every reason this run fails the perf gate (empty = pass)."""
    problems: List[str] = []
    for name, row in sorted(report["specs"].items()):
        if row["compiled_speedup"] < 1.0:
            problems.append(
                f"{name}: compiled tier slower than interpreted "
                f"({row['compiled_speedup']:.2f}x)"
            )
    if baseline and baseline.get("schema") == report.get("schema"):
        for name, base_row in sorted(baseline.get("specs", {}).items()):
            row = report["specs"].get(name)
            if row is None:
                problems.append(f"{name}: in baseline but missing from this run")
                continue
            for tier, band in TOLERANCE.items():
                base_pps = _tier_pps(base_row, tier)
                new_pps = _tier_pps(row, tier)
                if base_pps is None or new_pps is None:
                    continue  # tier absent on either side (e.g. 1-core box)
                if new_pps < base_pps * band:
                    problems.append(
                        f"{name}/{tier}: {new_pps:,.0f} pps < "
                        f"{band:.0%} of baseline {base_pps:,.0f} pps"
                    )
    elif baseline:
        problems.append(
            f"baseline schema {baseline.get('schema')!r} != {report['schema']!r}; "
            "regenerate BENCH_perf.json"
        )
    problems.extend(_check_scaling(report))
    return problems


def _check_scaling(report: Dict[str, Any]) -> List[str]:
    """Parallel-vs-batch scaling gate; skipped without real cores."""
    workers = report["workers"]
    if workers < 2 or report["cpu_count"] < 2:
        return []  # nothing to assert: the pool never actually fans out
    scales = {
        name: row["parallel_scale_vs_batch"]
        for name, row in report["specs"].items()
        if row.get("parallel_scale_vs_batch") is not None
    }
    if not scales:
        return ["parallel tier produced no scaling numbers despite workers >= 2"]
    # At 4+ real cores the tentpole target applies (>= 2.5x on most
    # specs); at 2 workers IPC eats a chunk of the win on header-sized
    # packets, so only require that sharding is not pathological on at
    # least half of them.
    if workers >= 4 and report["cpu_count"] >= 4:
        target, need = 2.5, (2 * len(scales)) // 3
    else:
        target, need = 0.8, len(scales) // 2
    good = [name for name, scale in scales.items() if scale >= target]
    if len(good) < need:
        lagging = {n: round(s, 2) for n, s in sorted(scales.items()) if s < target}
        return [
            f"parallel tier >= {target}x batch on only {len(good)}/{len(scales)} "
            f"specs (needed {need}); lagging: {lagging}"
        ]
    return []


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--budget",
        type=float,
        default=0.2,
        metavar="SECONDS",
        help="measurement budget per spec per tier (default: 0.2)",
    )
    parser.add_argument(
        "--workers",
        default="auto",
        help=(
            "worker processes for the parallel tier: an integer, 'auto' "
            "(one per core), or 'off' (default: auto)"
        ),
    )
    parser.add_argument(
        "--output",
        default="BENCH_perf.json",
        metavar="FILE",
        help="where to write the JSON report (default: BENCH_perf.json)",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help=(
            "baseline report for --check (default: the --output path, "
            "read before it is overwritten)"
        ),
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help=(
            "exit 1 on a tier regression versus the baseline, a compiled "
            "tier slower than interpreted, or missing parallel scaling"
        ),
    )
    args = parser.parse_args(argv)
    workers = parallel.resolve_workers(args.workers)
    baseline = None
    if args.check:
        baseline_path = Path(args.baseline or args.output)
        if baseline_path.exists():
            baseline = json.loads(baseline_path.read_text())
        else:
            print(f"no baseline at {baseline_path}; absolute checks only")
    report = run(args.seed, args.budget, workers)
    output_path = Path(args.output)
    if output_path.exists():
        # Sibling harnesses (benchmarks/bench_megasim.py) keep their own
        # top-level keys in the same report file; preserve them.
        try:
            previous = json.loads(output_path.read_text())
        except (OSError, ValueError):
            previous = {}
        for key in ("megasim",):
            if key in previous and key not in report:
                report[key] = previous[key]
    output_path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(render(report))
    print(f"\nwrote {args.output}")
    if args.check:
        problems = check_report(report, baseline)
        if problems:
            print("PERF REGRESSION:", file=sys.stderr)
            for problem in problems:
                print(f"  {problem}", file=sys.stderr)
            return 1
        print("perf check OK: all tiers within tolerance of the baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
