"""Packets-per-second harness: interpreted vs compiled vs batch tiers.

The ROADMAP's north star says generated implementations should run "as
fast as the hardware allows"; this harness turns that into a number and
a regression gate.  For every spec in the conformance registry it
measures round-trip throughput (one encode + one decode per packet) in
three tiers:

``interpreted``
    ``repro.fastpath`` pinned off — the field-by-field codec walk.
``compiled``
    ``mode="always"`` — the generated closures via the transparent
    fast path, per-call entry points.
``batch``
    ``encode_many``/``decode_many`` — compiled closures plus amortized
    per-call overhead.

Results go to ``BENCH_perf.json`` (schema ``repro.fastpath/perf/v1``),
the baseline every future perf PR is compared against.

Usage::

    PYTHONPATH=src python benchmarks/perf_harness.py --budget 0.05
    PYTHONPATH=src python benchmarks/perf_harness.py --check  # CI gate

``--check`` exits nonzero if any spec's compiled tier is slower than its
interpreted tier.
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path
from typing import Any, Callable, Dict, List

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro import fastpath
from repro.conformance.registry import all_spec_entries
from repro.core import codec
from repro.fastpath import batch

SCHEMA = "repro.fastpath/perf/v1"
CORPUS_SIZE = 64  # distinct packets per spec, round-robined each rep


def build_corpus(seed: int) -> Dict[str, Dict[str, Any]]:
    """Deterministic per-spec packet corpora from the registry generators."""
    corpus: Dict[str, Dict[str, Any]] = {}
    for entry in all_spec_entries():
        rng = random.Random(seed)
        packets = [entry.generate(rng) for _ in range(CORPUS_SIZE)]
        values = [p._values for p in packets]
        wires = [entry.spec.encode(p) for p in packets]
        corpus[entry.name] = {
            "spec": entry.spec,
            "values": values,
            "wires": wires,
            "bytes": sum(len(w) for w in wires),
        }
    return corpus


def _roundtrip_single(spec: Any, values: List[dict], wires: List[bytes]) -> None:
    # Retain results just like the batch APIs do — discarding each 33KB
    # UdpDatagram blob immediately would recycle one cache-hot allocator
    # block and flatter this tier by ~3x on large-payload corpora.
    encode = codec.encode_verbatim
    decode = codec.decode_packet
    encoded = [encode(spec, value_env) for value_env in values]
    decoded = [decode(spec, wire) for wire in wires]
    del encoded, decoded


def _roundtrip_batch(spec: Any, values: List[dict], wires: List[bytes]) -> None:
    batch.encode_many(spec, values)
    batch.decode_many(spec, wires)


def measure(
    runner: Callable[[Any, List[dict], List[bytes]], None],
    spec: Any,
    values: List[dict],
    wires: List[bytes],
    budget_seconds: float,
) -> Dict[str, Any]:
    """Best-of-reps round-trip rate, spending ~``budget_seconds``."""
    runner(spec, values, wires)  # warm-up: compiles, caches, allocator
    reps = 0
    best = float("inf")
    spent = 0.0
    while reps < 3 or spent < budget_seconds:
        start = time.perf_counter()
        runner(spec, values, wires)
        elapsed = time.perf_counter() - start
        spent += elapsed
        best = min(best, elapsed)
        reps += 1
        if reps >= 1000:  # tiny specs on tiny budgets: enough is enough
            break
    packets = len(values)
    return {
        "reps": reps,
        "best_seconds": best,
        "packets_per_second": packets / best,
        "roundtrips": packets,
    }


TIERS = ("interpreted", "compiled", "batch")


def run(seed: int, budget_seconds: float) -> Dict[str, Any]:
    corpus = build_corpus(seed)
    results: Dict[str, Any] = {}
    for name, bundle in sorted(corpus.items()):
        spec, values, wires = bundle["spec"], bundle["values"], bundle["wires"]
        per_spec: Dict[str, Any] = {
            "wire_bytes": bundle["bytes"],
            "corpus_packets": len(values),
        }
        with fastpath.use(mode="off"):
            per_spec["interpreted"] = measure(
                _roundtrip_single, spec, values, wires, budget_seconds
            )
        with fastpath.use(mode="always"):
            per_spec["compiled"] = measure(
                _roundtrip_single, spec, values, wires, budget_seconds
            )
            state = fastpath.state_of(spec)
            per_spec["tier_used"] = state.status if state else "interpreted"
            per_spec["batch"] = measure(
                _roundtrip_batch, spec, values, wires, budget_seconds
            )
        interp = per_spec["interpreted"]["packets_per_second"]
        per_spec["compiled_speedup"] = (
            per_spec["compiled"]["packets_per_second"] / interp
        )
        per_spec["batch_speedup"] = per_spec["batch"]["packets_per_second"] / interp
        results[name] = per_spec
    return {
        "schema": SCHEMA,
        "seed": seed,
        "budget_seconds": budget_seconds,
        "metric": "round-trip packets/sec (1 encode + 1 decode per packet)",
        "specs": results,
        "fastpath_stats": fastpath.stats(),
    }


def render(report: Dict[str, Any]) -> str:
    lines = [
        f"{'spec':<18} {'interp pps':>12} {'compiled pps':>13} "
        f"{'batch pps':>12} {'comp x':>7} {'batch x':>8}  tier"
    ]
    for name, row in report["specs"].items():
        lines.append(
            f"{name:<18} "
            f"{row['interpreted']['packets_per_second']:>12.0f} "
            f"{row['compiled']['packets_per_second']:>13.0f} "
            f"{row['batch']['packets_per_second']:>12.0f} "
            f"{row['compiled_speedup']:>6.2f}x "
            f"{row['batch_speedup']:>7.2f}x  {row['tier_used']}"
        )
    return "\n".join(lines)


def main(argv: List[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--budget",
        type=float,
        default=0.2,
        metavar="SECONDS",
        help="measurement budget per spec per tier (default: 0.2)",
    )
    parser.add_argument(
        "--output",
        default="BENCH_perf.json",
        metavar="FILE",
        help="where to write the JSON report (default: BENCH_perf.json)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 if any spec's compiled tier is slower than interpreted",
    )
    args = parser.parse_args(argv)
    report = run(args.seed, args.budget)
    Path(args.output).write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(render(report))
    print(f"\nwrote {args.output}")
    if args.check:
        slower = [
            name
            for name, row in report["specs"].items()
            if row["compiled_speedup"] < 1.0
        ]
        if slower:
            print(
                "PERF REGRESSION: compiled tier slower than the interpreter "
                f"for: {', '.join(sorted(slower))}",
                file=sys.stderr,
            )
            return 1
        print("perf check OK: compiled tier >= interpreter on every spec")
    return 0


if __name__ == "__main__":
    sys.exit(main())
