"""Ablation — what does unification-based transition dispatch cost?

DESIGN.md lists this ablation: the DSL machine dispatches `exec_trans` by
*unifying* the transition's source pattern against the current state
(which is what makes dependent parameters and soundness checks possible).
The ablated alternative is a bare dict-based FSM: string states, a
transition table, no parameters, no evidence checking, no trace.

Expected shape: the bare FSM is several times faster per transition —
that factor is the runtime price of the paper's guarantees in an
interpreted embedding (the staged-codec result E13 shows how the same
price is bought back where it matters).
"""

import time

from conftest import record_table

from repro.core.machine import Machine
from repro.protocols.arq import ACK_PACKET, build_sender_spec

STEPS = 2_000


class BareFsm:
    """The ablation: a minimal, guarantee-free state machine."""

    TABLE = {
        ("Ready", "SEND"): "Wait",
        ("Wait", "OK"): "Ready",
        ("Wait", "FAIL"): "Ready",
        ("Wait", "TIMEOUT"): "Timeout",
        ("Timeout", "RETRY"): "Ready",
        ("Ready", "FINISH"): "Sent",
    }

    def __init__(self):
        self.state = "Ready"
        self.seq = 0

    def exec_trans(self, name, payload=None):
        self.state = self.TABLE[(self.state, name)]
        if name == "OK":
            self.seq = (self.seq + 1) % 256


def drive_dsl(steps):
    spec = build_sender_spec()
    machine = Machine(spec)
    ack_cache = {
        seq: ACK_PACKET.verify(ACK_PACKET.make(seq=seq)) for seq in range(256)
    }
    for _ in range(steps):
        machine.exec_trans("SEND", b"x")
        machine.exec_trans("OK", ack_cache[machine.current.values[0]])
    return machine


def drive_bare(steps):
    machine = BareFsm()
    for _ in range(steps):
        machine.exec_trans("SEND", b"x")
        machine.exec_trans("OK")
    return machine


def test_dispatch_ablation(benchmark):
    start = time.perf_counter()
    dsl_machine = drive_dsl(STEPS)
    dsl_time = time.perf_counter() - start
    start = time.perf_counter()
    bare_machine = drive_bare(STEPS)
    bare_time = time.perf_counter() - start
    assert dsl_machine.current.values[0] == bare_machine.seq  # same protocol
    per_transition_dsl = dsl_time / (2 * STEPS) * 1e6
    per_transition_bare = bare_time / (2 * STEPS) * 1e6
    rows = [
        (
            "DSL machine (unification + evidence + trace)",
            f"{per_transition_dsl:.2f}",
            "soundness, completeness, evidence, audit trace",
        ),
        (
            "bare dict FSM (ablated)",
            f"{per_transition_bare:.2f}",
            "none",
        ),
        ("cost factor", f"{per_transition_dsl / per_transition_bare:.1f}x", "-"),
    ]
    record_table(
        "ABL-1",
        f"transition dispatch cost ({2 * STEPS} transitions each)",
        ["implementation", "us / transition", "guarantees carried"],
        rows,
        notes=(
            "expected shape: a constant factor; the guarantees column is "
            "what the factor buys"
        ),
    )
    benchmark.pedantic(lambda: drive_dsl(200), rounds=3, iterations=1)


def test_trace_cost_component(benchmark):
    """How much of the dispatch cost is the audit trace alone?"""
    spec = build_sender_spec()
    machine = Machine(spec)
    for _ in range(STEPS):
        machine.exec_trans("SEND", b"x")
        machine.exec_trans("FAIL")
    assert len(machine.trace) == 2 * STEPS
    start = time.perf_counter()
    tuple(machine.trace)
    snapshot_time = time.perf_counter() - start
    record_table(
        "ABL-1b",
        "audit-trace snapshot cost",
        ["trace length", "snapshot ms"],
        [(len(machine.trace), f"{snapshot_time * 1e3:.2f}")],
    )
    benchmark.pedantic(lambda: tuple(machine.trace), rounds=3, iterations=1)
