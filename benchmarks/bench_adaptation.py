"""E6 — fuzzy media-rate adaptation (paper §1.1 bullet 1, reference [1]).

A stream crosses a path whose capacity steps through a schedule; the
static sender keeps its configured rate, the fuzzy sender feeds observed
loss and delay to the controller.  Expected shape: under changing
conditions the fuzzy sender trades a little delivered volume for far less
loss and delay (higher utility); under stable conditions the two tie.
"""

from conftest import record_table

from repro.adapt.streaming import run_streaming_session, stepped_capacity

CHANGING = stepped_capacity([4.0, 1.0, 3.0, 0.5, 5.0], slot_duration=12.0)
STABLE = stepped_capacity([3.0], slot_duration=60.0)


def run_pair(capacity, initial_rate, duration=60.0):
    static = run_streaming_session(
        capacity, duration=duration, initial_rate=initial_rate, policy="static"
    )
    fuzzy = run_streaming_session(
        capacity, duration=duration, initial_rate=initial_rate, policy="fuzzy"
    )
    return static, fuzzy


def test_adaptation_under_changing_conditions(benchmark):
    rows = []
    for label, capacity, rate in (
        ("changing", CHANGING, 3.0),
        ("stable", STABLE, 2.5),
    ):
        static, fuzzy = run_pair(capacity, rate)
        for report in (static, fuzzy):
            rows.append(
                (
                    label,
                    report.policy,
                    f"{report.delivered:.1f}",
                    f"{report.loss_fraction:.1%}",
                    f"{report.mean_delay:.2f}",
                    f"{report.utility:.1f}",
                )
            )
    record_table(
        "E6",
        "media streaming: static vs fuzzy-adaptive sender (60 virt-s)",
        ["conditions", "policy", "delivered", "loss", "mean delay s", "utility"],
        rows,
        notes=(
            "expected shape: fuzzy wins decisively under change "
            "(lower loss & delay), ties under stability"
        ),
    )
    static, fuzzy = run_pair(CHANGING, 3.0)
    assert fuzzy.loss_fraction < static.loss_fraction
    assert fuzzy.utility > static.utility
    stable_static, stable_fuzzy = run_pair(STABLE, 2.5)
    assert abs(stable_fuzzy.utility - stable_static.utility) < 0.5 * stable_static.utility
    benchmark.pedantic(
        lambda: run_streaming_session(
            CHANGING, duration=60, initial_rate=3.0, policy="fuzzy"
        ),
        rounds=3,
        iterations=1,
    )
