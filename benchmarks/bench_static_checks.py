"""E3 — "we can know statically that no bounds check is needed when
looking up a bounded index from the list of lines" (paper §3.3).

The paper's example message: lines of text plus a line count, where a
certificate that the count matches the data licenses unchecked indexed
access.  We compare summing over the lines with per-access dynamic
bounds/validity checks versus certificate-licensed direct access.
Expected shape: the checked variant pays a constant factor per access,
at every size.
"""

import time

from conftest import record_table

from repro.core.constraints import Constraint
from repro.core.fields import UInt, UIntList
from repro.core.packet import PacketSpec
from repro.core.symbolic import this

LINES_MESSAGE = PacketSpec(
    "LinesMsg",
    fields=[
        UInt("line_count", bits=16),
        UIntList("lines", element_bits=16, count=this.line_count),
    ],
    constraints=[
        Constraint(
            "count_matches",
            lambda p: len(p.lines) == p.line_count,
            doc="the line count is correct with respect to the data",
        )
    ],
)

REPEATS = 40


def checked_sum(packet):
    """Defensive access: every index re-checks count and bounds."""
    total = 0
    for index in range(packet.line_count):
        if packet.line_count != len(packet.lines):  # revalidate
            raise ValueError("count drifted")
        if not 0 <= index < len(packet.lines):  # bounds check
            raise IndexError(index)
        total += packet.lines[index]
    return total


def certified_sum(verified):
    """The certificate licenses direct access; no per-element checks."""
    lines = verified.value.lines
    total = 0
    for index in range(verified.value.line_count):
        total += lines[index]
    return total


def _measure(func, argument):
    start = time.perf_counter()
    for _ in range(REPEATS):
        func(argument)
    return time.perf_counter() - start


def test_certified_vs_checked_access(benchmark):
    rows = []
    for count in (10, 100, 1000, 10_000):
        packet = LINES_MESSAGE.make(
            line_count=count, lines=list(range(count))
        )
        verified = LINES_MESSAGE.verify(packet)
        checked = _measure(checked_sum, packet)
        certified = _measure(certified_sum, verified)
        rows.append(
            (
                count,
                f"{checked * 1e3:.2f}",
                f"{certified * 1e3:.2f}",
                f"{checked / certified:.2f}x",
            )
        )
        assert checked_sum(packet) == certified_sum(verified)
    record_table(
        "E3",
        f"indexed access over the certified line list ({REPEATS} passes)",
        ["lines", "dyn-checked ms", "certified ms", "speedup"],
        rows,
        notes="expected shape: constant-factor win at every size",
    )
    packet = LINES_MESSAGE.make(line_count=1000, lines=list(range(1000)))
    verified = LINES_MESSAGE.verify(packet)
    benchmark(certified_sum, verified)
