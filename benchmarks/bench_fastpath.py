"""E15 — the transparent compiled tier under the perf harness (§5).

The paper's §5 claim is that implementations generated from the DSL can
"operate as fast as the hardware allows"; ``repro.fastpath`` makes the
runtime use those generated codecs transparently.  This bench runs the
packets-per-second harness (``benchmarks/perf_harness.py``) across every
registry spec at a small budget and asserts the structural guarantees
the full harness run (``BENCH_perf.json``) is trusted for:

* every spec report carries all three tiers plus speedup ratios,
* every spec actually reaches the compiled tier (no silent refusals),
* the compiled tier is never slower than the interpreter.
"""

import perf_harness
from conftest import record_table

from repro import fastpath
from repro.conformance.registry import all_spec_entries

BUDGET_SECONDS = 0.02  # per spec per tier; the committed artifact uses 0.2


def test_fastpath_tiers(benchmark):
    fastpath.reset()
    report = perf_harness.run(seed=0, budget_seconds=BUDGET_SECONDS)

    assert report["schema"] == perf_harness.SCHEMA
    specs = report["specs"]
    # The harness corpus may carry extra synthetic specs (e.g. the
    # BulkStream parallel workload) beyond the registry set.
    assert set(specs) >= {entry.name for entry in all_spec_entries()}

    rows = []
    for name, row in specs.items():
        for tier in perf_harness.TIERS:
            if row.get(tier) is None:
                # The parallel tier records None when the host has no
                # cores to shard over (workers=0) — an honest gap.
                assert tier == "parallel"
                continue
            assert row[tier]["packets_per_second"] > 0
        assert row["tier_used"] == "compiled", f"{name} never compiled"
        assert row["compiled_speedup"] >= 1.0, (
            f"{name}: compiled tier slower than the interpreter "
            f"({row['compiled_speedup']:.2f}x)"
        )
        rows.append(
            (
                name,
                f"{row['interpreted']['packets_per_second']:,.0f}",
                f"{row['compiled']['packets_per_second']:,.0f}",
                f"{row['batch']['packets_per_second']:,.0f}",
                f"{row['compiled_speedup']:.2f}x",
                f"{row['batch_speedup']:.2f}x",
            )
        )
    stats = report["fastpath_stats"]
    assert stats["demotions"] == 0  # generated codecs never diverged
    record_table(
        "E15",
        f"fast-path tiers, round-trip packets/sec ({BUDGET_SECONDS}s budget/cell)",
        ["spec", "interp pps", "compiled pps", "batch pps", "comp x", "batch x"],
        rows,
        notes=(
            "full-budget artifact: BENCH_perf.json "
            "(PYTHONPATH=src python benchmarks/perf_harness.py)"
        ),
    )

    corpus = perf_harness.build_corpus(0)
    bundle = corpus["ArqData"]
    with fastpath.use(mode="always"):
        fastpath.active_state(bundle["spec"], force=True)
        benchmark(fastpath.encode_many, bundle["spec"], bundle["values"])


def test_verify_mode_agrees(benchmark):
    """``verify=True`` cross-checks every call; zero divergences expected."""
    from repro.core import codec

    fastpath.reset()
    corpus = perf_harness.build_corpus(1)
    with fastpath.use(mode="always", verify=True):
        for name, bundle in sorted(corpus.items()):
            spec = bundle["spec"]
            for values, wire in zip(bundle["values"], bundle["wires"]):
                assert codec.encode_verbatim(spec, values) == wire
                assert codec.decode_packet(spec, wire) == values
            state = fastpath.state_of(spec)
            assert state is not None and state.status == "compiled", name
    assert fastpath.stats()["demotions"] == 0
    bundle = corpus["TcpHeader"]
    with fastpath.use(mode="always", verify=True):
        fastpath.active_state(bundle["spec"], force=True)
        benchmark(bundle["spec"].decode, bundle["wires"][0])
