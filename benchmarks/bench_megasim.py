"""Megasim benchmark: population events/sec versus the per-object loop.

Two measurements at the same machine count, written into the
``"megasim"`` key of ``BENCH_perf.json`` (the fast-path harness
preserves it when regenerating its own tiers):

* ``baseline`` — the per-object plane: one
  :class:`~repro.core.machine.Machine` per node, each driven by a
  rescheduling :class:`~repro.netsim.simulator.Simulator` timer, the
  way ``repro.adapt``/``repro.trust`` host their nodes today;
* ``megasim`` — the population plane: the same sealed spec in
  :mod:`repro.megasim`'s dense arrays with cohort-batched staged
  dispatch, measured over a full serial scenario (planning, barrier
  routing and transcript digests included).

Each side runs in its own subprocess so the recorded ``peak_rss_kb`` is
that plane's high-water mark alone — the memory tier is the difference
between hosting 100k Machine objects and hosting two arrays.

``--check`` enforces a per-scale speedup floor — the ``>= 10x``
acceptance floor at the default 100k scale, where the per-object
baseline is a stable reading, and a ``>= 5x`` collapse floor at the
small CI scale, whose sub-second baseline run jitters 2-3x on shared
runners — plus a generous tolerance band against the committed entry
for the same scale; absolute collapse fails CI, scheduler jitter does
not.

Usage::

    PYTHONPATH=src python benchmarks/bench_megasim.py               # 100k
    PYTHONPATH=src python benchmarks/bench_megasim.py --scale small # CI
    PYTHONPATH=src python benchmarks/bench_megasim.py --check       # gate
"""

from __future__ import annotations

import argparse
import json
import os
import resource
import subprocess
import sys
import time
from pathlib import Path
from typing import Any, Dict, List, Optional

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
sys.path.insert(0, _SRC)

SCHEMA = "repro.megasim/bench/v1"
#: The acceptance floor, enforced at the scale where the baseline is a
#: stable reading (100k machines: the per-object loop's heap depth and
#: object churn dominate).  The small CI smoke keeps a lower collapse
#: floor: its 15k-event baseline run is sub-second and its events/sec
#: swings 2-3x run to run on shared runners, so a 10x gate there would
#: flake on jitter rather than catch regressions.
SPEEDUP_FLOOR = 10.0
#: Relative events/sec floor versus the committed entry before --check
#: fails; single-core CI runners jitter, collapse is what we gate.
TOLERANCE = 0.4

SCALES = {
    "small": {
        "machines": 5_000,
        "epochs": 3,
        "baseline_events": 15_000,
        "speedup_floor": 5.0,
    },
    "default": {
        "machines": 100_000,
        "epochs": 3,
        "baseline_events": 100_000,
        "speedup_floor": SPEEDUP_FLOOR,
    },
}


def _peak_rss_kb() -> int:
    """This process's high-water RSS in KiB (Linux ru_maxrss unit)."""
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss


def _phase_baseline(machines: int, events: int, seed: int) -> Dict[str, Any]:
    """The per-object plane: Machines on rescheduling simulator timers."""
    from repro.core.machine import Machine
    from repro.megasim.workloads import get_workload
    from repro.netsim.simulator import Simulator

    workload = get_workload("olsr")
    initial = workload.spec.initial_states[0]
    sim = Simulator()
    hosted = [
        Machine(workload.spec, initial.instance(workload.initial_value(i)))
        for i in range(machines)
    ]

    def beacon(machine: Machine, period: float) -> None:
        machine.exec_trans("HELLO")
        sim.schedule(period, lambda: beacon(machine, period))

    for index, machine in enumerate(hosted):
        period = 1.0 + (index % 97) * 0.01
        sim.schedule(
            period, lambda m=machine, p=period: beacon(m, p)
        )
    started = time.perf_counter()
    sim.run(max_events=events)
    elapsed = time.perf_counter() - started
    assert sim.events_processed == events
    return {
        "machines": machines,
        "events": events,
        "elapsed_seconds": elapsed,
        "events_per_second": events / elapsed,
        "peak_rss_kb": _peak_rss_kb(),
    }


def _phase_megasim(machines: int, epochs: int, seed: int) -> Dict[str, Any]:
    """The population plane: one full serial scenario, all-in timing."""
    from repro.megasim import RunConfig, run_serial

    result = run_serial(
        RunConfig(workload="olsr", machines=machines, epochs=epochs, seed=seed)
    )
    return {
        "machines": machines,
        "epochs": epochs,
        "events": result.fired,
        "messages": result.emitted,
        "elapsed_seconds": result.elapsed,
        "events_per_second": result.events_per_second,
        "final_digest": result.lines[-1].rsplit("digest=", 1)[1],
        "peak_rss_kb": _peak_rss_kb(),
    }


def _run_phase_subprocess(phase: str, **kwargs: Any) -> Dict[str, Any]:
    """Run one phase in a fresh interpreter for an isolated RSS reading."""
    env = dict(os.environ)
    env["PYTHONPATH"] = _SRC + os.pathsep + env.get("PYTHONPATH", "")
    argv = [sys.executable, os.path.abspath(__file__), "--phase", phase]
    for key, value in kwargs.items():
        argv.extend([f"--{key.replace('_', '-')}", str(value)])
    completed = subprocess.run(
        argv, env=env, capture_output=True, text=True, check=False
    )
    if completed.returncode != 0:
        raise RuntimeError(
            f"bench phase {phase!r} failed:\n{completed.stderr}"
        )
    return json.loads(completed.stdout)


def run_scale(name: str, seed: int) -> Dict[str, Any]:
    params = SCALES[name]
    baseline = _run_phase_subprocess(
        "baseline",
        machines=params["machines"],
        events=params["baseline_events"],
        seed=seed,
    )
    megasim = _run_phase_subprocess(
        "megasim",
        machines=params["machines"],
        epochs=params["epochs"],
        seed=seed,
    )
    return {
        "baseline": baseline,
        "megasim": megasim,
        "speedup": megasim["events_per_second"] / baseline["events_per_second"],
    }


def check(
    entry: Dict[str, Any], committed: Optional[Dict[str, Any]], scale: str
) -> List[str]:
    problems = []
    speedup = entry["speedup"]
    floor = SCALES[scale]["speedup_floor"]
    if speedup < floor:
        problems.append(
            f"{scale}: megasim is only {speedup:.1f}x the per-object loop "
            f"(floor {floor}x)"
        )
    if committed is not None:
        for side in ("baseline", "megasim"):
            measured = entry[side]["events_per_second"]
            recorded = committed.get(side, {}).get("events_per_second")
            if recorded and measured < recorded * TOLERANCE:
                problems.append(
                    f"{scale}/{side}: {measured:,.0f} events/sec is below "
                    f"{TOLERANCE:.0%} of the committed {recorded:,.0f}"
                )
    return problems


def _render(scale: str, entry: Dict[str, Any]) -> str:
    baseline, megasim = entry["baseline"], entry["megasim"]
    return (
        f"{scale:>8}: per-object {baseline['events_per_second']:>10,.0f} ev/s "
        f"({baseline['peak_rss_kb'] / 1024:.0f} MiB) | "
        f"megasim {megasim['events_per_second']:>10,.0f} ev/s "
        f"({megasim['peak_rss_kb'] / 1024:.0f} MiB) | "
        f"speedup {entry['speedup']:.1f}x"
    )


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", choices=sorted(SCALES), default="default")
    parser.add_argument("--seed", type=int, default=7)
    parser.add_argument("--output", default="BENCH_perf.json", metavar="FILE")
    parser.add_argument("--baseline", default=None, metavar="FILE")
    parser.add_argument(
        "--check",
        action="store_true",
        help="fail on speedup below the floor or collapse versus baseline",
    )
    # Internal: run one measured side in this process and print JSON.
    parser.add_argument("--phase", choices=("baseline", "megasim"))
    parser.add_argument("--machines", type=int)
    parser.add_argument("--events", type=int)
    parser.add_argument("--epochs", type=int)
    args = parser.parse_args(argv)

    if args.phase == "baseline":
        json.dump(_phase_baseline(args.machines, args.events, args.seed), sys.stdout)
        return 0
    if args.phase == "megasim":
        json.dump(_phase_megasim(args.machines, args.epochs, args.seed), sys.stdout)
        return 0

    committed: Optional[Dict[str, Any]] = None
    baseline_path = Path(args.baseline or args.output)
    if baseline_path.exists():
        committed = (
            json.loads(baseline_path.read_text())
            .get("megasim", {})
            .get("scales", {})
            .get(args.scale)
        )

    entry = run_scale(args.scale, args.seed)
    print(_render(args.scale, entry))

    output_path = Path(args.output)
    report = (
        json.loads(output_path.read_text()) if output_path.exists() else {}
    )
    section = report.setdefault("megasim", {})
    section["schema"] = SCHEMA
    section["metric"] = (
        "events/sec: serial megasim epoch engine vs per-object "
        "Simulator+Machine timer loop (olsr workload)"
    )
    section["speedup_floor"] = SPEEDUP_FLOOR
    entry["speedup_floor"] = SCALES[args.scale]["speedup_floor"]
    section.setdefault("scales", {})[args.scale] = entry
    output_path.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")
    print(f"wrote {args.output} (megasim/{args.scale})")

    if args.check:
        problems = check(entry, committed, args.scale)
        if problems:
            print("MEGASIM PERF REGRESSION:", file=sys.stderr)
            for problem in problems:
                print(f"  {problem}", file=sys.stderr)
            return 1
        print(
            f"megasim check OK: speedup {entry['speedup']:.1f}x "
            f">= {SCALES[args.scale]['speedup_floor']}x floor"
        )
    return 0


if __name__ == "__main__":
    sys.exit(main())
