"""Serving-plane benchmark: sessions/sec and goodput over real sockets.

Four measurements, written to ``BENCH_serve.json``:

* ``manager_sessions_per_second`` — the session manager's accept path
  (demux, app build, fastpath warm-up, wheel arm) driven synchronously,
  no sockets: the ceiling the transport can never beat.
* ``high_session`` — the density tier: ramp to 10k+ *concurrent*
  sessions in one manager, churn accepts through the oldest-idle shed
  path at full density, then measure the steady-state frame rate across
  the whole table, with peak RSS recorded as the memory envelope.  This
  is the slab layout's tier: per-session objects would blow both the
  accept budget and the envelope.
* ``handshake_sessions_per_second`` — concurrent three-way handshakes
  over real loopback UDP, client machines included: the end-to-end
  session-establishment rate.
* ``goodput`` — bytes of *delivered application payload* per second for
  a sliding-window transfer (and stop-and-wait ARQ as the contrast)
  over loopback UDP; protocol overhead, acks and retransmissions are
  excluded by construction because only receiver-delivered payload
  counts.

``--check`` compares against a committed baseline with generous bands
(loopback numbers ride the host's scheduler; only collapse, not jitter,
should fail CI).

Usage::

    PYTHONPATH=src python benchmarks/bench_serve.py              # write
    PYTHONPATH=src python benchmarks/bench_serve.py --check      # gate
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import sys
import time
from typing import Any, Dict, List, Optional

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.protocols.arq import ARQ_PACKET
from repro.serve.client import WheelRunner, build_client
from repro.serve.loopback import LoopbackConfig, client_messages
from repro.serve.manager import SessionManager
from repro.serve.transport import ServeConfig, Server
from repro.serve.wheel import TimerWheel

SCHEMA = "repro.serve/bench/v2"

#: Relative floor versus the baseline before --check fails.  Loopback
#: throughput on shared CI runners swings hard; the gate is for
#: collapse (an accidental O(n^2), a lost fastpath), not for noise.
TOLERANCE = 0.25


def bench_manager_accept(sessions: int = 2000) -> Dict[str, Any]:
    """Synchronous accept-path throughput: frame_from with fresh peers."""
    wheel = TimerWheel(tick=0.005, now=0.0)
    manager = SessionManager(
        "arq",
        wheel=wheel,
        clock=time.perf_counter,
        max_sessions=sessions + 1,
        idle_timeout=3600.0,
    )
    packet = ARQ_PACKET.make(seq=0, length=4, payload=b"ping")
    frame = ARQ_PACKET.encode(packet)
    sink: List[bytes] = []
    start = time.perf_counter()
    for index in range(sessions):
        manager.frame_from(("127.0.0.1", 20000 + index), frame, sink.append)
    elapsed = time.perf_counter() - start
    assert manager.stats()["active"] == sessions
    assert len(sink) == sessions  # every session acked
    return {
        "sessions": sessions,
        "seconds": round(elapsed, 6),
        "sessions_per_second": round(sessions / elapsed, 1),
    }


def bench_high_session(
    sessions: int = 10000, churn: int = 2000, frames: int = 30000
) -> Dict[str, Any]:
    """The density tier: ramp, churn and serve at 10k+ concurrent.

    Three phases against one manager (synchronous, like the accept
    bench — this measures the datapath, not the socket):

    1. **ramp** — open ``sessions`` fresh peers; every one stays live
       (``max_sessions`` admits them all), so the table really holds
       that many concurrent sessions when phase 2 starts.
    2. **churn** — offer ``churn`` more fresh peers at full capacity;
       each admission sheds the oldest-idle session first, so this is
       the accept path *plus* the shed heap at density.
    3. **steady state** — one more frame to every live session (a
       duplicate, so the ARQ app re-acks it: parse, machine probe and
       send all run), measuring per-frame cost across the full table.

    Peak RSS is recorded as the memory envelope; ``concurrent_sessions``
    is asserted, not sampled.
    """
    import resource

    wheel = TimerWheel(tick=0.01, now=0.0)
    manager = SessionManager(
        "arq",
        wheel=wheel,
        clock=time.perf_counter,
        max_sessions=sessions,
        max_queue=64,
        idle_timeout=3600.0,
    )
    packet = ARQ_PACKET.make(seq=0, length=4, payload=b"ping")
    frame = ARQ_PACKET.encode(packet)
    sink: List[bytes] = []
    send = sink.append

    start = time.perf_counter()
    for index in range(sessions):
        manager.frame_from(("10.0.0.1", index), frame, send)
    ramp_elapsed = time.perf_counter() - start
    assert manager.stats()["active"] == sessions
    assert manager.shed_total == 0

    start = time.perf_counter()
    for index in range(churn):
        manager.frame_from(("10.0.0.2", index), frame, send)
    churn_elapsed = time.perf_counter() - start
    assert manager.stats()["active"] == sessions
    assert manager.shed_total == churn  # every churn accept shed one

    peers = list(manager.sessions)
    count = len(peers)
    start = time.perf_counter()
    for index in range(frames):
        manager.frame_from(peers[index % count], frame, send)
    steady_elapsed = time.perf_counter() - start
    assert len(sink) == sessions + churn + frames  # every frame acked

    peak_rss_kb = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
    return {
        "concurrent_sessions": manager.stats()["active"],
        "ramp_seconds": round(ramp_elapsed, 6),
        "accepts_per_second": round(sessions / ramp_elapsed, 1),
        "churn_accepts": churn,
        "churn_seconds": round(churn_elapsed, 6),
        "churn_accepts_per_second": (
            round(churn / churn_elapsed, 1) if churn_elapsed else 0.0
        ),
        "steady_frames": frames,
        "steady_seconds": round(steady_elapsed, 6),
        "frames_per_second": (
            round(frames / steady_elapsed, 1) if steady_elapsed else 0.0
        ),
        "slab_capacity": manager.slab.capacity,
        "peak_rss_kb": peak_rss_kb,
    }


async def _bench_handshakes(clients: int, seed: int) -> Dict[str, Any]:
    server = await Server.start(
        ServeConfig(protocol="handshake", kind="udp", max_sessions=clients * 2)
    )
    runner = WheelRunner(asyncio.get_running_loop()).start()
    port = server.udp_port
    assert port is not None
    try:
        batch = [
            build_client("handshake", runner, seed=seed + index, rto=0.25)
            for index in range(clients)
        ]
        for client in batch:
            await client.connect("127.0.0.1", port)
        start = time.perf_counter()
        for client in batch:
            client.start()
        results = await asyncio.gather(*(c.wait(20.0) for c in batch))
        elapsed = time.perf_counter() - start
        ok = sum(1 for r in results if r)
        for client in batch:
            client.close()
    finally:
        await runner.close()
        await server.close()
    return {
        "clients": clients,
        "established": ok,
        "seconds": round(elapsed, 6),
        "sessions_per_second": round(ok / elapsed, 1) if elapsed else 0.0,
    }


async def _bench_goodput(
    protocol: str, messages: int, payload_size: int, window: int, seed: int
) -> Dict[str, Any]:
    app_params = {"window": window} if protocol == "sliding" else {}
    server = await Server.start(
        ServeConfig(protocol=protocol, kind="udp", app_params=app_params)
    )
    runner = WheelRunner(asyncio.get_running_loop()).start()
    port = server.udp_port
    assert port is not None
    payloads = client_messages(
        LoopbackConfig(
            messages=messages, payload_size=payload_size, seed=seed
        ),
        0,
    )
    try:
        client = build_client(
            protocol, runner, messages=payloads, rto=0.25, window=window
        )
        await client.connect("127.0.0.1", port)
        start = time.perf_counter()
        client.start()
        ok = await client.wait(60.0)
        elapsed = time.perf_counter() - start
        sessions = list(server.manager.sessions.values())
        delivered = sum(
            len(p) for s in sessions for p in getattr(s.app, "delivered", [])
        )
        client.close()
    finally:
        await runner.close()
        await server.close()
    payload_bytes = sum(len(p) for p in payloads)
    return {
        "protocol": protocol,
        "messages": messages,
        "payload_bytes": payload_bytes,
        "delivered_bytes": delivered,
        "ok": bool(ok and delivered == payload_bytes),
        "seconds": round(elapsed, 6),
        "goodput_bytes_per_second": (
            round(delivered / elapsed, 1) if elapsed else 0.0
        ),
        "frames_sent": client.frames_sent,
        "retransmissions": client.retransmissions,
    }


def run(seed: int = 0, scale: float = 1.0) -> Dict[str, Any]:
    """Run every measurement; ``scale`` shrinks budgets for smoke runs."""
    report: Dict[str, Any] = {
        "schema": SCHEMA,
        "seed": seed,
        "scale": scale,
    }
    report["manager_accept"] = bench_manager_accept(
        sessions=max(200, int(2000 * scale))
    )
    report["high_session"] = bench_high_session(
        sessions=max(1000, int(10000 * scale)),
        churn=max(200, int(2000 * scale)),
        frames=max(3000, int(30000 * scale)),
    )
    report["handshakes"] = asyncio.run(
        _bench_handshakes(clients=max(10, int(60 * scale)), seed=seed)
    )
    report["goodput_sliding"] = asyncio.run(
        _bench_goodput(
            "sliding",
            messages=max(50, int(400 * scale)),
            payload_size=200,
            window=16,
            seed=seed,
        )
    )
    report["goodput_arq"] = asyncio.run(
        _bench_goodput(
            "arq",
            messages=max(25, int(150 * scale)),
            payload_size=200,
            window=1,
            seed=seed,
        )
    )
    return report


_GATES = [
    ("manager_accept", "sessions_per_second"),
    ("high_session", "accepts_per_second"),
    ("high_session", "churn_accepts_per_second"),
    ("high_session", "frames_per_second"),
    ("handshakes", "sessions_per_second"),
    ("goodput_sliding", "goodput_bytes_per_second"),
    ("goodput_arq", "goodput_bytes_per_second"),
]


def check(report: Dict[str, Any], baseline: Optional[Dict[str, Any]]) -> List[str]:
    """Structural and (against a baseline) regression problems."""
    problems: List[str] = []
    hs = report["handshakes"]
    if hs["established"] != hs["clients"]:
        problems.append(
            f"handshakes: only {hs['established']}/{hs['clients']} established"
        )
    for key in ("goodput_sliding", "goodput_arq"):
        if not report[key]["ok"]:
            problems.append(f"{key}: transfer incomplete ({report[key]})")
    # No sliding-vs-arq ordering gate: on loopback the RTT is ~0, so
    # window pipelining buys nothing and per-packet timer bookkeeping
    # can put stop-and-wait ahead — window wins need real delay, which
    # the netsim benches (bench_windows.py) measure under control.
    if baseline is None:
        return problems
    if baseline.get("schema") != report["schema"]:
        problems.append(
            f"baseline schema {baseline.get('schema')!r} != {SCHEMA!r}; "
            "regenerate BENCH_serve.json"
        )
        return problems
    for section, metric in _GATES:
        base = baseline.get(section, {}).get(metric)
        new = report.get(section, {}).get(metric)
        if not base or not new:
            continue
        if new < base * TOLERANCE:
            problems.append(
                f"{section}/{metric}: {new:,.0f} < "
                f"{TOLERANCE:.0%} of baseline {base:,.0f}"
            )
    return problems


def main(argv: Optional[List[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--scale",
        type=float,
        default=1.0,
        help="budget multiplier; 0.2 gives a quick smoke run (default 1.0)",
    )
    parser.add_argument("--output", default="BENCH_serve.json", metavar="FILE")
    parser.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="baseline for --check (default: --output path, read first)",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="exit 1 on structural failure or collapse versus the baseline",
    )
    args = parser.parse_args(argv)

    baseline = None
    baseline_path = args.baseline or args.output
    if args.check and os.path.exists(baseline_path):
        with open(baseline_path, "r", encoding="utf-8") as handle:
            baseline = json.load(handle)

    report = run(seed=args.seed, scale=args.scale)
    with open(args.output, "w", encoding="utf-8") as handle:
        json.dump(report, handle, indent=2, sort_keys=True)
        handle.write("\n")

    for section, metric in _GATES:
        value = report[section][metric]
        print(f"{section:18s} {metric}: {value:,.1f}")
    print(f"wrote {args.output}")

    if args.check:
        problems = check(report, baseline)
        if problems:
            for problem in problems:
                print(f"CHECK FAILED: {problem}", file=sys.stderr)
            return 1
        print("check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
