#!/usr/bin/env python3
"""The paper's §3.4 stop-and-wait ARQ, end to end over a hostile network.

Sweeps the fault level of a simulated duplex link and shows the property
the paper calls correctness-by-construction: however bad the network,
what arrives is *exactly* a prefix of what was sent — never corrupted,
duplicated or reordered data — because unverified packets cannot reach
protocol logic and invalid transitions cannot execute.

Run:  python examples/arq_over_lossy_net.py
"""

from repro.analysis import trace_summary
from repro.netsim import Capture, ChannelConfig, DuplexLink, Node, Simulator
from repro.protocols.arq import (
    ACK_PACKET,
    ARQ_PACKET,
    ArqReceiver,
    ArqSender,
    run_transfer,
)

MESSAGES = [f"message-{i:02d}".encode() for i in range(12)]

print("fault sweep over the same 12-message transfer")
print(f"{'loss':>6} {'corrupt':>8} {'dup':>5} | {'ok':>3} {'retx':>5} "
      f"{'frames':>7} {'violations':>10} {'virt time':>9}")
print("-" * 66)
for loss, corrupt, dup in [
    (0.0, 0.0, 0.0),
    (0.1, 0.0, 0.0),
    (0.2, 0.1, 0.0),
    (0.3, 0.15, 0.1),
    (0.45, 0.2, 0.15),
]:
    config = ChannelConfig(
        loss_rate=loss, corruption_rate=corrupt, duplication_rate=dup
    )
    report = run_transfer(MESSAGES, config, seed=7, max_retries=100)
    print(
        f"{loss:>6.2f} {corrupt:>8.2f} {dup:>5.2f} | "
        f"{'yes' if report.success else 'NO':>3} {report.retransmissions:>5} "
        f"{report.data_frames_sent:>7} {len(report.violations):>10} "
        f"{report.duration:>8.1f}s"
    )

print()
print("a close look at one lossy run: the sender machine's audited trace")
print("-" * 66)
sim = Simulator()
sender_node, receiver_node = Node(sim, "alice"), Node(sim, "bob")
link = DuplexLink(
    sim, sender_node, receiver_node,
    ChannelConfig(loss_rate=0.35), seed=11,
)
capture = Capture(specs=[ARQ_PACKET, ACK_PACKET])
capture.tap(link.forward)
capture.tap(link.backward)
receiver = ArqReceiver(sim, receiver_node, "alice")
sender = ArqSender(sim, sender_node, "bob", [b"alpha", b"beta"], rto=0.4)
sender.start()
sim.run_until(lambda: sender.done or sender.failed, max_events=200_000)

print(trace_summary(sender.machine.trace))
print()
print(f"sender finished: {sender.done}   receiver got: {receiver.delivered}")
print("every step above was dispatched by unification against the typed")
print("transition table of paper §3.4 — SEND/OK/FAIL/TIMEOUT/RETRY/FINISH.")
print()
print("the same run, as the spec-decoding capture tap saw it on the wire:")
print("-" * 66)
print(capture.transcript())
