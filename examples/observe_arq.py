#!/usr/bin/env python3
"""Observability end to end: the ARQ pair over a lossy link, instrumented.

One ``repro.obs`` instrumentation context watches all four runtime layers
at once — the machine runtime (per-transition spans with dispatch/
evidence/guard/step phases), the codec (encode/decode latency
histograms), the simulator (event and timer accounting), and the channels
(per-fate frame counters) — and the capture tap shares the same trace
timeline, so a frame on the wire correlates with the ``exec_trans`` span
that consumed it.

Run:  python examples/observe_arq.py
"""

from repro import obs
from repro.netsim import Capture, ChannelConfig, DuplexLink, Node, Simulator
from repro.protocols.arq import ACK_PACKET, ARQ_PACKET, ArqReceiver, ArqSender

# Switch the process-wide instrumentation on *before* building anything:
# every Machine, Simulator, Channel and Timer constructed afterwards
# reports into this context, with no other wiring.
instr = obs.enable()

sim = Simulator()  # attaches its virtual clock to the tracer
alice, bob = Node(sim, "alice"), Node(sim, "bob")
link = DuplexLink(
    sim, alice, bob,
    ChannelConfig(loss_rate=0.25, corruption_rate=0.1), seed=11,
)
capture = Capture(specs=[ARQ_PACKET, ACK_PACKET], tracer=instr.tracer)
capture.tap(link.forward)
capture.tap(link.backward)

receiver = ArqReceiver(sim, bob, "alice")
sender = ArqSender(
    sim, alice, "bob",
    [f"msg-{i}".encode() for i in range(6)],
    rto=0.4,
)
sender.start()
sim.run_until(lambda: sender.done or sender.failed, max_events=200_000)

print(f"transfer done={sender.done}  delivered={len(receiver.delivered)} "
      f"messages  retransmissions={sender.retransmissions}  "
      f"virtual time={sim.now:.2f}s")
print()

# The whole run, as one dashboard: counters for transitions, frames,
# timers and events; latency histograms for the codec and the machine
# runtime; and a trace excerpt with nested spans in virtual + wall time.
print(obs.render_dashboard(instr, title="ARQ over a lossy link"))
print()

# The two timelines join: each wire frame maps to the transition span
# that consumed its (verified) packet.
print("-- frame -> consuming transition (capture/machine correlation) " + "-" * 8)
for frame, span in capture.correlate():
    print(
        f"  frame#{frame.index:<2} {frame.channel_name:<13} sent@{frame.time:7.3f}v"
        f"  ->  {span.attrs['machine']}.{span.attrs['transition']:<8}"
        f" @{span.virt_start:7.3f}v  [digest {frame.digest}]"
    )
print()
print("structured export: instr.tracer.to_jsonl() / obs.export_json(instr)")
print(f"({len(instr.tracer.records())} trace records, "
      f"{len(instr.registry)} metrics in this run)")
