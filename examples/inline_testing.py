#!/usr/bin/env python3
"""Inline testing: the protocol definition generates its own test suite.

The paper's abstract promises "(b) inline testing", and §2.3 suggests the
DSL "potentially allows automatic construction of (at least some)
behavioural test cases".  This example shows both working:

* structural test cases for packet specs — random valid packets
  (dependent lengths and checksums resolved automatically), round-trips,
  corruption probes, generated-codec cross-checks;
* behavioural test cases for machines — random valid walks whose traces
  are audited against the spec;
* and a deliberately seeded codec bug, caught by the generated suite.

Run:  python examples/inline_testing.py
"""

import random

from repro.core.fields import UInt
from repro.core.packet import PacketSpec
from repro.protocols.arq import ACK_PACKET, ARQ_PACKET, build_sender_spec
from repro.protocols.dns import DNS_HEADER
from repro.protocols.headers import IPV4_HEADER, TCP_HEADER, UDP_HEADER
from repro.testing import machine_self_test, random_packet, spec_self_test

print("1. Random valid packets, dependent shapes resolved automatically")
print("-" * 68)
rng = random.Random(42)
for spec in (ARQ_PACKET, IPV4_HEADER, DNS_HEADER):
    packet = random_packet(spec, rng)
    wire = spec.encode(packet)
    print(f"  {spec.name:<12} {len(wire):>3}B  {wire[:16].hex()}"
          f"{'...' if len(wire) > 16 else ''}")
ip = random_packet(IPV4_HEADER, rng)
print(f"  (note: random IPv4 drew ihl={ip.ihl}, so options is "
      f"{len(ip.options)} bytes and the checksum is 0x{ip.header_checksum:04x})")
print()

print("2. Self-testing every shipped spec — zero hand-written cases")
print("-" * 68)
for spec in (ARQ_PACKET, ACK_PACKET, IPV4_HEADER, UDP_HEADER, TCP_HEADER, DNS_HEADER):
    report = spec_self_test(spec, cases=40, seed=7)
    print(f"  {spec.name:<16} {report.cases} generated cases: "
          f"{'all passed' if report.ok else report.failures[:1]}")
print()

print("3. Behavioural walks over the ARQ sender machine, traces audited")
print("-" * 68)


def provide(transition, machine):
    if transition.requires == "bytes":
        return b"payload"
    if transition.requires is not None:
        return ACK_PACKET.verify(ACK_PACKET.make(seq=machine.current.values[0]))
    return None


report = machine_self_test(build_sender_spec(), provide, walks=25, seed=3)
print(f"  {report.cases} random walks: "
      f"{'all consistent, all traces replay' if report.ok else report.failures[:2]}")
print()

print("4. A seeded bug, caught by the generated suite")
print("-" * 68)


class OffByOneField(UInt):
    """A field whose encoder quietly adds one — a classic transcription bug."""

    def encode(self, writer, value, env):
        super().encode(writer, (value + 1) % 256, env)


buggy = PacketSpec("BuggySpec", fields=[OffByOneField("x", bits=8)])
report = spec_self_test(buggy, cases=10, include_codegen=False)
print(f"  BuggySpec: ok={report.ok}")
print(f"  first failure: {report.failures[0]}")
print()
print("The test suite came from the definition itself — no tests were written.")
