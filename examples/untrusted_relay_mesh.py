#!/usr/bin/env python3
"""Dependable communication through untrusted relays (paper §1.1, ref [12]).

A source reaches a destination through a 4x2 mesh of relays, some of
which are compromised and silently drop traffic.  Three path-selection
strategies compete; the trust-aware one learns forwarding behaviour by
exploration and routes around the compromised nodes.

Run:  python examples/untrusted_relay_mesh.py
"""

import random

from repro.trust import RelayMesh, TrustManager, run_mesh_experiment

print("delivery ratio vs compromised relay fraction (300 rounds, 3 seeds)")
print(f"{'compromised':>12} {'random':>8} {'fixed':>7} {'trust':>7} {'trust tail':>11}")
print("-" * 50)
for fraction in (0.0, 0.2, 0.4, 0.6, 0.8):
    cells = {}
    tail = 0.0
    for strategy in ("random", "fixed", "trust"):
        total = 0.0
        for seed in range(3):
            report = run_mesh_experiment(
                strategy, rounds=300, compromised_fraction=fraction, seed=seed
            )
            total += report.delivery_ratio
            if strategy == "trust":
                tail += report.late_delivery_ratio() / 3
        cells[strategy] = total / 3
    print(
        f"{fraction:>12.1f} {cells['random']:>8.2f} {cells['fixed']:>7.2f} "
        f"{cells['trust']:>7.2f} {tail:>11.2f}"
    )

print()
print("watching the learner converge on one 40%-compromised mesh:")
mesh = RelayMesh(width=4, hops=2, compromised_fraction=0.4, seed=9)
print(f"  secretly compromised: {sorted(mesh.compromised)}")
manager = TrustManager(epsilon=0.1, rng=random.Random(1))
paths = mesh.all_paths()
window = []
for round_number in range(1, 301):
    path = manager.select_path(paths)
    ok = mesh.attempt(path)
    (manager.record_success if ok else manager.record_failure)(path)
    window.append(ok)
    if round_number in (10, 50, 100, 300):
        recent = sum(window[-50:]) / min(len(window), 50)
        print(f"  after {round_number:>3} rounds: recent delivery {recent:.0%}")

print()
print("  learned trust ranking (worst five):")
for node, score in manager.ranking()[-5:]:
    marker = "COMPROMISED" if node in mesh.compromised else "honest"
    print(f"    {node:<12} trust={score:.2f}  ({marker})")
