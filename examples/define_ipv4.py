#!/usr/bin/env python3
"""Figure 1, closed-loop: the RFC 791 IPv4 header as a checked definition.

The paper shows the IPv4 header's ASCII picture as the state of the art
in protocol description.  Here the picture, the ABNF grammar, a standalone
Python codec, and the validation logic are all *derived* from one spec —
and the spec parses real wire bytes (the classic worked example whose
header checksum is 0xB861).

Run:  python examples/define_ipv4.py
"""

from repro.core import export_abnf, generate_codec_source, render_header_diagram
from repro.protocols.headers import (
    IPV4_HEADER,
    ipv4_address_string,
    make_ipv4_header,
)

print("=" * 66)
print("1. The generated ASCII picture (the paper's Figure 1):")
print("=" * 66)
print(render_header_diagram(IPV4_HEADER, title="Figure 1. IPv4 header (generated)"))
print()

print("=" * 66)
print("2. Parsing the classic reference header (checksum 0xB861):")
print("=" * 66)
reference = bytes.fromhex("45000073000040004011b861c0a80001c0a800c7")
verified = IPV4_HEADER.parse(reference)
header = verified.value
print(f"  version={header.version}  ihl={header.ihl}  ttl={header.ttl}")
print(f"  protocol={header.protocol} (UDP)")
print(f"  source={ipv4_address_string(header.source)}")
print(f"  destination={ipv4_address_string(header.destination)}")
print(f"  certificate covers: {list(verified.certificate.constraints)}")
print()

print("Corrupting one TTL bit without fixing the checksum:")
corrupted = bytearray(reference)
corrupted[8] ^= 0x01
print(f"  try_parse -> {IPV4_HEADER.try_parse(bytes(corrupted))}")
print()

print("=" * 66)
print("3. Building a fresh header (checksum and lengths computed):")
print("=" * 66)
wire, packet = make_ipv4_header(
    "10.1.2.3", "10.9.8.7", protocol=6, payload_length=100, ttl=32
)
print(f"  wire: {wire.hex()}")
print(f"  header_checksum=0x{packet.value.header_checksum:04x}")
print()

print("=" * 66)
print("4. The derived ABNF grammar (note the semantic-gap comments):")
print("=" * 66)
print(export_abnf(IPV4_HEADER))
print()

print("=" * 66)
print("5. The first lines of the generated standalone codec:")
print("=" * 66)
source = generate_codec_source(IPV4_HEADER)
print("\n".join(source.splitlines()[:28]))
print(f"  ... ({len(source.splitlines())} lines total; no repro imports)")
