#!/usr/bin/env python3
"""Quickstart: define a protocol — packets, behaviour, verification — in
one file, then watch the framework enforce it.

This walks the arc of the paper (Bhatti et al., ICDCS 2009) in miniature:

1. describe the packet format, with its semantic constraint (a checksum);
2. describe the state machine, with dependent states and typed transitions;
3. let the definition-time checker vet the machine;
4. run it — and see that unverified data simply cannot get in.

Run:  python examples/quickstart.py
"""

from repro.core import (
    Bytes,
    ChecksumField,
    InvalidTransitionError,
    Machine,
    MachineSpec,
    PacketSpec,
    Param,
    UInt,
    UnverifiedPayloadError,
    Var,
    render_header_diagram,
    this,
)

# ---------------------------------------------------------------------------
# 1. The packet format: sequence number, checksum, dependent-length payload.
# ---------------------------------------------------------------------------

PING = PacketSpec(
    "Ping",
    fields=[
        UInt("seq", bits=8, doc="sequence number"),
        ChecksumField("chk", algorithm="xor8", over=("seq", "length", "payload")),
        UInt("length", bits=8, doc="payload length"),
        Bytes("payload", length=this.length, doc="payload"),
    ],
    doc="a tiny ping message",
)

print("The wire format, generated from the spec (cf. the paper's Figure 1):")
print(render_header_diagram(PING, row_bits=8))
print()

# Build, encode, decode, verify.
packet = PING.make(seq=1, length=5, payload=b"hello")
wire = PING.encode(packet)
print(f"encoded: {wire.hex()}  (checksum {packet.chk:#04x} computed for us)")

verified = PING.parse(wire)  # decode + verify: the only road to Verified
print(f"parsed and verified: {verified}")

corrupted = bytearray(wire)
corrupted[4] ^= 0xFF
print(f"corrupted frame parses to: {PING.try_parse(bytes(corrupted))}")
print()

# ---------------------------------------------------------------------------
# 2. The behaviour: a dependent state machine (the paper's sender, §3.4).
# ---------------------------------------------------------------------------

sender = MachineSpec("QuickSender")
seq = Param("seq", bits=8)  # a Byte index, exactly as in the paper
ready = sender.state("Ready", params=[seq], initial=True)
wait = sender.state("Wait", params=[seq])
sent = sender.state("Sent", params=[seq], final=True)
n = Var("seq")

sender.transition("SEND", ready(n), wait(n), requires="bytes")
# OK : Wait seq -> Ready (seq+1), and it *requires* a verified Ping.
sender.transition(
    "OK", wait(n), ready(n + 1), requires=PING,
    guard=lambda bindings, payload: payload.value.seq == bindings["seq"],
)
sender.transition("FAIL", wait(n), ready(n))
sender.transition("FINISH", ready(n), sent(n))

# 3. Definition-time checking: unsound/incomplete machines never seal.
sender.seal()
print(f"machine sealed after checking: {sender}")

# ---------------------------------------------------------------------------
# 4. Execution: only valid transitions, only verified evidence.
# ---------------------------------------------------------------------------

machine = Machine(sender)
machine.exec_trans("SEND", b"hello")
print(f"after SEND: {machine.current}")

raw = PING.decode(wire)  # decoded but NOT verified
try:
    machine.exec_trans("OK", raw)
except UnverifiedPayloadError as exc:
    print(f"raw packet rejected, as the types demand:\n  {exc}")

ack = PING.parse(PING.encode(PING.make(seq=0, length=0, payload=b"")))
machine.exec_trans("OK", ack)
print(f"after verified OK: {machine.current}  (sequence advanced: seq+1)")

try:
    machine.exec_trans("OK", ack)  # we are in Ready now: OK is invalid
except InvalidTransitionError as exc:
    print(f"invalid transition rejected:\n  {exc}")

machine.exec_trans("FINISH")
print(f"finished consistently: {machine.current}, trace length {len(machine.trace)}")
