#!/usr/bin/env python3
"""Verifying the ARQ *system* — sender, lossy channel and receiver together.

The paper verifies each machine's transitions through its types; this
example closes the remaining gap (§2.2's process-model territory) by
composing the two protocol machines with an adversarial channel model and
exhaustively checking the product:

* the only stuck configurations are genuine success states;
* the receiver never runs more than one message ahead of the sender;
* from every reachable configuration, success remains reachable.

It then seeds the classic stop-and-wait bug — dropping duplicates without
re-acknowledging — and shows the checker produce the livelock witness.

Run:  python examples/verify_arq_pair.py
"""

from repro.modelcheck.arq_model import verify_arq_system
from repro.modelcheck.markov import expected_transmissions_per_message
from repro.modelcheck.petri import arq_petri_net, explore_net

print("1. The correct protocol, composed and exhaustively checked")
print("-" * 62)
for modulus, messages in ((4, 1), (4, 3), (8, 5)):
    report = verify_arq_system(modulus=modulus, messages=messages)
    print(
        f"  seq mod {modulus}, {messages} messages: "
        f"{report.states:>5} states, {report.edges:>5} edges | "
        f"deadlocks={len(report.bad_deadlocks)} "
        f"safety={len(report.safety_violations)} "
        f"stuck={len(report.stuck_states)} -> "
        f"{'VERIFIED' if report.ok else 'FAILED'}"
    )

print()
print("2. The negative control: a receiver that drops duplicates silently")
print("-" * 62)
broken = verify_arq_system(modulus=4, messages=3, broken_receiver=True)
print(
    f"  {broken.states} states explored; "
    f"{len(broken.stuck_states)} configurations can no longer succeed"
)
sender, channel, receiver = broken.stuck_states[0]
print(f"  witness: sender={sender} channel={channel} receiver={receiver}")
print("  (the ack for a delivered packet was lost; every retransmission")
print("   is now discarded un-acked — the textbook stop-and-wait livelock)")

print()
print("3. Cross-checks from the other formalisms")
print("-" * 62)
net, initial = arq_petri_net()
petri = explore_net(net, initial)
print(
    f"  Petri net: {petri.markings} markings, deadlock-free="
    f"{not petri.deadlocks}, 2-bounded={petri.is_k_bounded(2)}, "
    f"1-safe={petri.is_safe}"
)
print("   -> not 1-safe: premature timeouts allow two copies in flight,")
print("      which is exactly why the protocol needs sequence numbers.")
for loss in (0.1, 0.3):
    analytic = expected_transmissions_per_message(loss, loss)
    print(
        f"  DTMC: at {loss:.0%} duplex loss, expected transmissions/message "
        f"= {analytic:.2f}"
    )
print()
print("One protocol; four mutually-checking views: typed machines (DSL),")
print("state product (CSP-style), token flow (Petri), probability (DTMC).")
