#!/usr/bin/env python3
"""Media-stream adaptation with a fuzzy controller (paper §1.1, ref [1]).

A sender streams across a path whose capacity steps up and down.  The
static sender keeps pushing at its configured rate; the fuzzy sender
feeds observed loss and delay into a Mamdani controller each second and
scales its rate by the result.

Run:  python examples/adaptive_streaming.py
"""

from repro.adapt import build_rate_controller, run_streaming_session
from repro.adapt.streaming import stepped_capacity

CAPACITY_STEPS = [4.0, 1.0, 3.0, 0.5, 5.0]
capacity = stepped_capacity(CAPACITY_STEPS, slot_duration=12.0)

print("capacity schedule (Mbit/s):", CAPACITY_STEPS, "(12s each)")
print()

static = run_streaming_session(capacity, duration=60, initial_rate=3.0, policy="static")
fuzzy = run_streaming_session(capacity, duration=60, initial_rate=3.0, policy="fuzzy")

print(f"{'policy':>8} {'delivered':>10} {'lost':>8} {'loss%':>7} "
      f"{'mean delay':>11} {'utility':>8}")
print("-" * 58)
for report in (static, fuzzy):
    print(
        f"{report.policy:>8} {report.delivered:>10.1f} {report.lost:>8.1f} "
        f"{report.loss_fraction:>7.1%} {report.mean_delay:>10.2f}s "
        f"{report.utility:>8.1f}"
    )

print()
print("the fuzzy sender's rate trace vs the capacity it cannot see directly:")
print(f"{'t':>4} {'capacity':>9} {'rate':>7} {'slot loss':>9}")
for t in range(0, 60, 4):
    print(
        f"{t:>4} {capacity(t):>9.2f} {fuzzy.rate_history[t]:>7.2f} "
        f"{fuzzy.loss_history[t]:>9.1%}"
    )

print()
print("what the controller itself says for a few operating points:")
controller = build_rate_controller()
for loss, delay in [(0.0, 0.0), (0.05, 0.2), (0.15, 0.5), (0.4, 0.9)]:
    factor = controller.infer(loss=loss, delay=delay)
    verdict = "probe" if factor > 1.05 else ("hold" if factor > 0.95 else "back off")
    print(f"  loss={loss:.2f} delay={delay:.1f} -> rate x{factor:.2f}  ({verdict})")
