"""Socket clients: the DSL *sender* machines driven over real UDP.

Each client hosts the same sender machine the simulator drivers use
(:class:`~repro.protocols.arq.ArqSender` and friends) but swaps the
substrate: ``node.send`` becomes ``transport.sendto``, the simulator
:class:`~repro.netsim.timers.Timer` becomes a
:class:`~repro.serve.wheel.WheelTimer` riding the hashed wheel, and
completion is an :class:`asyncio.Future` instead of ``sim.run()``
draining.  The protocol reasoning — which transition fires, what a
verified frame proves — is untouched, which is the whole point: the
machine doesn't know it moved from the simulator to a socket.

All clients share one :class:`WheelRunner` (one tick task advancing one
wheel off ``loop.time()``); 500 concurrent clients cost 500 wheel
entries, not 500 ``call_later`` handles churning the loop's heap.
"""

from __future__ import annotations

import asyncio
import random
from functools import lru_cache
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.machine import Machine
from repro.protocols.arq import ACK_PACKET, ARQ_PACKET, build_sender_spec
from repro.protocols.handshake import (
    HANDSHAKE_PACKET,
    MSG_ACK,
    MSG_SYN,
    MSG_SYN_ACK,
    build_initiator_spec,
)
from repro.protocols.sliding import (
    KIND_SELECTIVE,
    SLIDING_ACK,
    SLIDING_PACKET,
    build_gbn_sender_spec,
)
from repro.serve.wheel import TimerWheel, WheelTimer

# One sealed spec (and so one staged dispatch table, one compiled codec
# state) per sender role, shared by every client — the same per-protocol
# spec constant the server apps use; machine state stays per-instance.
_sender_spec = lru_cache(maxsize=None)(build_sender_spec)
_initiator_spec = lru_cache(maxsize=None)(build_initiator_spec)
_gbn_sender_spec = lru_cache(maxsize=None)(build_gbn_sender_spec)


class WheelRunner:
    """One ticking hashed wheel shared by any number of clients."""

    def __init__(
        self, loop: asyncio.AbstractEventLoop, tick: float = 0.005
    ) -> None:
        self.loop = loop
        self.wheel = TimerWheel(tick=tick, slots=512, now=loop.time())
        self._tick = tick
        self._task: Optional[asyncio.Task] = None

    def start(self) -> "WheelRunner":
        if self._task is None:
            self._task = self.loop.create_task(self._run())
        return self

    async def _run(self) -> None:
        try:
            while True:
                await asyncio.sleep(self._tick)
                self.wheel.advance(self.loop.time())
        except asyncio.CancelledError:
            pass

    async def close(self) -> None:
        if self._task is not None:
            self._task.cancel()
            try:
                await self._task
            except asyncio.CancelledError:
                pass
            self._task = None


class _ClientProtocol(asyncio.DatagramProtocol):
    """Thin datagram shim: hand every inbound frame to the client."""

    def __init__(self, on_frame: Callable[[bytes], None]) -> None:
        self.on_frame = on_frame

    def datagram_received(self, data: bytes, addr: Tuple[str, int]) -> None:
        self.on_frame(data)

    def error_received(self, exc: Exception) -> None:
        pass  # ICMP unreachable etc.; the retransmission timer covers it


class BaseClient:
    """Shared socket/future plumbing for the concrete protocol clients."""

    protocol: str = ""

    def __init__(self, runner: WheelRunner) -> None:
        self.runner = runner
        self.loop = runner.loop
        self.transport: Optional[asyncio.DatagramTransport] = None
        self.done: "asyncio.Future[bool]" = self.loop.create_future()
        self.frames_sent = 0
        self.retransmissions = 0
        self.failed = False

    async def connect(self, host: str, port: int) -> "BaseClient":
        transport, _ = await self.loop.create_datagram_endpoint(
            lambda: _ClientProtocol(self._on_frame),
            remote_addr=(host, port),
        )
        self.transport = transport
        return self

    def _sendto(self, data: bytes) -> None:
        if self.transport is not None and not self.transport.is_closing():
            self.transport.sendto(data)
            self.frames_sent += 1

    def _finish(self, ok: bool) -> None:
        self.failed = not ok
        if not self.done.done():
            self.done.set_result(ok)

    async def wait(self, timeout: float = 10.0) -> bool:
        """Await completion; False on protocol failure or deadline."""
        try:
            return await asyncio.wait_for(asyncio.shield(self.done), timeout)
        except asyncio.TimeoutError:
            self.failed = True
            return False

    def close(self) -> None:
        if self.transport is not None:
            self.transport.close()
            self.transport = None

    def _on_frame(self, data: bytes) -> None:
        raise NotImplementedError

    def summary(self) -> Dict[str, Any]:
        return {
            "protocol": self.protocol,
            "ok": self.done.done() and not self.failed and self.done.result(),
            "frames_sent": self.frames_sent,
            "retransmissions": self.retransmissions,
        }


class ArqClient(BaseClient):
    """Stop-and-wait sender machine over a datagram endpoint."""

    protocol = "arq"

    def __init__(
        self,
        runner: WheelRunner,
        messages: Sequence[bytes],
        rto: float = 0.25,
        max_retries: int = 25,
    ) -> None:
        super().__init__(runner)
        self.machine = Machine(_sender_spec(), context=list(messages))
        self.queue: List[bytes] = list(messages)
        self.rto = rto
        self.max_retries = max_retries
        self.retries_used = 0
        self.timer = WheelTimer(
            runner.wheel, rto, self._on_timeout, name="arq-rto"
        )

    @property
    def current_seq(self) -> int:
        return self.machine.current.values[0]

    def start(self) -> None:
        self._advance()

    def _advance(self) -> None:
        if not self.queue:
            self.machine.exec_trans("FINISH")
            self.timer.stop()
            self._finish(True)
            return
        payload = self.queue[0]
        self.machine.exec_trans("SEND", payload)
        self._transmit(payload)
        self.retries_used = 0
        self.timer.start(self.rto)

    def _retransmit(self) -> None:
        payload = self.queue[0]
        self.machine.exec_trans("SEND", payload)
        self._transmit(payload)
        self.retransmissions += 1
        self.timer.start(self.rto)

    def _transmit(self, payload: bytes) -> None:
        packet = ARQ_PACKET.make(
            seq=self.current_seq, length=len(payload), payload=payload
        )
        self._sendto(ARQ_PACKET.encode(packet))

    def _on_frame(self, data: bytes) -> None:
        if not self.machine.in_state("Wait"):
            return  # stale ack after we already advanced (or finished)
        verified = ACK_PACKET.try_parse(data)
        if verified is not None and verified.value.seq != self.current_seq:
            return  # verified but stale: dropping avoids a duplicate storm
        if verified is None:
            self.machine.exec_trans("FAIL")
            self._retransmit()
            return
        self.timer.stop()
        self.machine.exec_trans("OK", verified)
        self.queue.pop(0)
        self._advance()

    def _on_timeout(self) -> None:
        if not self.machine.in_state("Wait"):
            return  # stale timer
        self.machine.exec_trans("TIMEOUT")
        if self.retries_used >= self.max_retries:
            self._finish(False)  # rests in Timeout(seq): consistent failure
            return
        self.retries_used += 1
        self.machine.exec_trans("RETRY")
        self._retransmit()


class HandshakeClient(BaseClient):
    """Three-way handshake initiator over a datagram endpoint."""

    protocol = "handshake"

    def __init__(
        self,
        runner: WheelRunner,
        seed: int = 0,
        rto: float = 0.25,
        max_retries: int = 8,
    ) -> None:
        super().__init__(runner)
        self.machine = Machine(_initiator_spec())
        self.rng = random.Random(seed)
        self.rto = rto
        self.max_retries = max_retries
        self.retries_used = 0
        self._syn_frame = b""
        self.timer = WheelTimer(
            runner.wheel, rto, self._on_timeout, name="hs-rto"
        )

    @property
    def established(self) -> bool:
        return self.machine.in_state("Established")

    def start(self) -> None:
        nonce = self.rng.randrange(1, 1 << 16)
        self.machine.exec_trans("CONNECT", nonce=nonce)
        packet = HANDSHAKE_PACKET.make(
            msg_type=MSG_SYN, initiator_nonce=nonce, responder_nonce=0
        )
        self._syn_frame = HANDSHAKE_PACKET.encode(packet)
        self._sendto(self._syn_frame)
        self.timer.start(self.rto)

    def _on_frame(self, data: bytes) -> None:
        if not self.machine.in_state("SynSent"):
            return
        verified = HANDSHAKE_PACKET.try_parse(data)
        if verified is None or verified.value.msg_type != MSG_SYN_ACK:
            return
        if verified.value.initiator_nonce != self.machine.current.values[0]:
            return  # stale or forged SYN-ACK: the guard would reject it too
        self.machine.exec_trans("SYNACK", verified)
        self.timer.stop()
        reply = HANDSHAKE_PACKET.make(
            msg_type=MSG_ACK,
            initiator_nonce=verified.value.initiator_nonce,
            responder_nonce=verified.value.responder_nonce,
        )
        self._sendto(HANDSHAKE_PACKET.encode(reply))
        self._finish(True)

    def _on_timeout(self) -> None:
        if not self.machine.in_state("SynSent"):
            return
        if self.retries_used >= self.max_retries:
            # The machine's GIVE_UP: a consistent, inspectable failure.
            self.machine.exec_trans("GIVE_UP")
            self._finish(False)
            return
        # SYN retransmission is a driver policy (the machine stays in
        # SynSent): resend the *same* SYN so the nonce doesn't fork.
        self.retries_used += 1
        self.retransmissions += 1
        self._sendto(self._syn_frame)
        self.timer.start(self.rto)


class SlidingClient(BaseClient):
    """Selective-repeat sender machine over a datagram endpoint."""

    protocol = "sliding"

    def __init__(
        self,
        runner: WheelRunner,
        messages: Sequence[bytes],
        window: int = 8,
        rto: float = 0.25,
        max_retries: int = 50,
    ) -> None:
        super().__init__(runner)
        self.messages = list(messages)
        self.window = window
        self.machine = Machine(_gbn_sender_spec(window), context=self.messages)
        self.rto = rto
        self.max_retries = max_retries
        self.acked: Dict[int, bool] = {}
        self.timers: Dict[int, WheelTimer] = {}
        self.retries: Dict[int, int] = {}

    @property
    def base(self) -> int:
        return self.machine.current.values[0]

    @property
    def nxt(self) -> int:
        values = self.machine.current.values
        return values[1] if len(values) > 1 else self.base

    def start(self) -> None:
        self._fill_window()
        self._maybe_finish()

    def _fill_window(self) -> None:
        while (
            not self.machine.is_finished
            and self.nxt < len(self.messages)
            and self.nxt - self.base < self.window
        ):
            seq = self.nxt
            payload = self.messages[seq]
            self.machine.exec_trans("SEND", payload)
            self._transmit(seq, payload)
            self._arm_timer(seq)

    def _transmit(self, seq: int, payload: bytes) -> None:
        packet = SLIDING_PACKET.make(seq=seq, length=len(payload), payload=payload)
        self._sendto(SLIDING_PACKET.encode(packet))

    def _arm_timer(self, seq: int) -> None:
        if seq not in self.timers:
            self.timers[seq] = WheelTimer(
                self.runner.wheel,
                self.rto,
                lambda s=seq: self._on_timeout(s),
                name=f"sr-rto-{seq}",
            )
        self.timers[seq].start(self.rto)

    def _maybe_finish(self) -> None:
        if (
            not self.machine.is_finished
            and self.base == self.nxt
            and self.base >= len(self.messages)
        ):
            self.machine.exec_trans("FINISH")
            self._finish(True)

    def _on_frame(self, data: bytes) -> None:
        if self.machine.is_finished:
            return
        verified = SLIDING_ACK.try_parse(data)
        if verified is None or verified.value.kind != KIND_SELECTIVE:
            return
        seq = verified.value.seq
        if not self.base <= seq < self.nxt or self.acked.get(seq):
            if seq < self.base:
                self.machine.exec_trans("ACK_OLD", verified, ack=seq)
            return
        self.acked[seq] = True
        if seq in self.timers:
            self.timers[seq].stop()
        # Slide the base over the contiguous acked prefix: each step is
        # the machine's ACK transition with the base packet's number.
        while self.base < self.nxt and self.acked.get(self.base):
            self.machine.exec_trans("ACK", verified, ack=self.base)
        self._fill_window()
        self._maybe_finish()

    def _on_timeout(self, seq: int) -> None:
        if self.machine.is_finished or self.acked.get(seq):
            return
        if not self.base <= seq < self.nxt:
            return
        used = self.retries.get(seq, 0)
        if used >= self.max_retries:
            self._finish(False)
            return
        self.retries[seq] = used + 1
        self._transmit(seq, self.messages[seq])
        self.retransmissions += 1
        self._arm_timer(seq)


def build_client(
    protocol: str,
    runner: WheelRunner,
    *,
    messages: Sequence[bytes] = (),
    seed: int = 0,
    rto: float = 0.25,
    window: int = 8,
) -> BaseClient:
    """Instantiate the right client for a serve protocol name."""
    if protocol == "arq":
        return ArqClient(runner, messages, rto=rto)
    if protocol == "handshake":
        return HandshakeClient(runner, seed=seed, rto=rto)
    if protocol == "sliding":
        return SlidingClient(runner, messages, window=window, rto=rto)
    raise ValueError(
        f"unknown serve protocol {protocol!r}; known: arq, handshake, sliding"
    )
