"""``python -m repro.serve`` — the serving plane's operational CLI.

Three subcommands:

* ``serve`` binds a real UDP (and/or TCP) listener hosting a registry
  protocol; with ``--record FILE`` every session's exchange is written
  as JSONL for offline differential replay.  Point
  ``REPRO_OBS_EXPORT`` at a path and ``python -m repro.obs top`` at the
  same path for a live dashboard.
* ``client`` drives one DSL sender machine against a server.
* ``loopback`` runs the full differential experiment — server + N
  clients + seeded impairment + simulator replay — and exits non-zero
  on any divergence; this is the command CI's serve-smoke lane runs.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import signal
import sys
from typing import List, Optional

from repro.obs.instrument import enable as obs_enable
from repro.serve.client import WheelRunner, build_client
from repro.serve.loop import LOOP_CHOICES, choose_loop, run as run_under_loop
from repro.serve.loopback import LoopbackConfig, run_loopback
from repro.serve.record import save_records
from repro.serve.transport import ServeConfig, Server


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve",
        description="Real-socket serving plane for the DSL protocol machines.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    serve = sub.add_parser("serve", help="bind a listener and serve sessions")
    serve.add_argument("protocol", choices=["arq", "handshake", "sliding"])
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument("--port", type=int, default=9300)
    serve.add_argument(
        "--kind", choices=["udp", "tcp", "both"], default="udp",
        help="listener kind (default udp)",
    )
    serve.add_argument("--max-sessions", type=int, default=1024)
    serve.add_argument("--max-queue", type=int, default=64)
    serve.add_argument("--idle-timeout", type=float, default=30.0)
    serve.add_argument("--window", type=int, default=8, help="sliding window")
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--record", metavar="FILE", default=None,
        help="write per-session exchange records (JSONL) on shutdown",
    )
    serve.add_argument(
        "--loop", choices=list(LOOP_CHOICES), default=None,
        help="event loop policy (default: $REPRO_SERVE_LOOP, else auto; "
        "uvloop falls back to asyncio when not installed)",
    )

    client = sub.add_parser("client", help="run one DSL client against a server")
    client.add_argument("protocol", choices=["arq", "handshake", "sliding"])
    client.add_argument("--host", default="127.0.0.1")
    client.add_argument("--port", type=int, default=9300)
    client.add_argument("--messages", type=int, default=8)
    client.add_argument("--payload-size", type=int, default=24)
    client.add_argument("--window", type=int, default=8)
    client.add_argument("--rto", type=float, default=0.25)
    client.add_argument("--seed", type=int, default=0)
    client.add_argument("--timeout", type=float, default=15.0)

    loop = sub.add_parser(
        "loopback",
        help="differential experiment: live server vs simulator oracle",
    )
    loop.add_argument(
        "protocol", choices=["arq", "handshake", "sliding", "all"]
    )
    loop.add_argument("--clients", type=int, default=4)
    loop.add_argument("--messages", type=int, default=6)
    loop.add_argument("--payload-size", type=int, default=24)
    loop.add_argument("--window", type=int, default=8)
    loop.add_argument("--seed", type=int, default=0)
    loop.add_argument("--rto", type=float, default=0.08)
    loop.add_argument("--loss", type=float, default=0.0)
    loop.add_argument("--duplication", type=float, default=0.0)
    loop.add_argument("--reorder", type=float, default=0.0)
    loop.add_argument("--timeout", type=float, default=20.0)
    loop.add_argument("--json", action="store_true", help="machine-readable")
    return parser


async def _serve(args: argparse.Namespace, loop_name: str = "asyncio") -> int:
    obs_enable()
    params = {"window": args.window} if args.protocol == "sliding" else {}
    server = await Server.start(
        ServeConfig(
            protocol=args.protocol,
            host=args.host,
            port=args.port,
            kind=args.kind,
            max_sessions=args.max_sessions,
            max_queue=args.max_queue,
            idle_timeout=args.idle_timeout,
            seed=args.seed,
            record=args.record is not None,
            app_params=params,
        )
    )
    ports = []
    if server.udp_port is not None:
        ports.append(f"udp:{server.udp_port}")
    if server.tcp_port is not None:
        ports.append(f"tcp:{server.tcp_port}")
    print(
        f"serving {args.protocol} on {args.host} [{', '.join(ports)}] "
        f"(max {args.max_sessions} sessions, {loop_name} loop); Ctrl-C stops",
        flush=True,
    )
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, stop.set)
        except NotImplementedError:
            pass
    try:
        await stop.wait()
    finally:
        server.manager.close_all(reason="shutdown")
        if args.record:
            records = server.manager.collect_records()
            with open(args.record, "w", encoding="utf-8") as handle:
                count = save_records(records, handle)
            print(f"wrote {count} exchange records to {args.record}")
        print(json.dumps(server.manager.stats(), sort_keys=True))
        await server.close()
    return 0


async def _client(args: argparse.Namespace) -> int:
    from repro.serve.loopback import LoopbackConfig, client_messages

    runner = WheelRunner(asyncio.get_running_loop()).start()
    messages = client_messages(
        LoopbackConfig(
            messages=args.messages,
            payload_size=args.payload_size,
            seed=args.seed,
        ),
        0,
    )
    client = build_client(
        args.protocol,
        runner,
        messages=messages,
        seed=args.seed,
        rto=args.rto,
        window=args.window,
    )
    try:
        await client.connect(args.host, args.port)
        client.start()
        ok = await client.wait(args.timeout)
    finally:
        client.close()
        await runner.close()
    print(json.dumps(client.summary(), sort_keys=True))
    return 0 if ok else 1


async def _loopback(args: argparse.Namespace) -> int:
    protocols = (
        ["arq", "handshake", "sliding"]
        if args.protocol == "all"
        else [args.protocol]
    )
    exit_code = 0
    for protocol in protocols:
        config = LoopbackConfig(
            protocol=protocol,
            clients=args.clients,
            messages=args.messages,
            payload_size=args.payload_size,
            window=args.window,
            seed=args.seed,
            rto=args.rto,
            loss_rate=args.loss,
            duplication_rate=args.duplication,
            reorder_rate=args.reorder,
            client_timeout=args.timeout,
        )
        report = await run_loopback(config)
        if args.json:
            print(json.dumps(report.summary(), sort_keys=True))
        else:
            summary = report.summary()
            diff = summary.get("differential", {})
            print(
                f"{protocol}: clients {summary['clients_ok']}/"
                f"{summary['clients']}, records {diff.get('records', 0)}, "
                f"divergences {diff.get('divergent', 0)} -> "
                f"{'OK' if report.ok else 'DIVERGED'}"
            )
            if report.differential is not None:
                for result in report.differential.divergent:
                    for line in result.divergences + result.model_notes:
                        print(f"  {result.record.peer}: {line}")
        if not report.ok:
            exit_code = 1
    return exit_code


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "serve":
        choice = choose_loop(args.loop)
        return run_under_loop(_serve(args, loop_name=choice.name), choice)
    if args.command == "client":
        return asyncio.run(_client(args))
    return asyncio.run(_loopback(args))


if __name__ == "__main__":
    sys.exit(main())
