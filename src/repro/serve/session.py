"""Session storage for the serving plane: a slab, viewed through handles.

PR 7 stored one :class:`Session` *object* per peer — fine at hundreds of
sessions, allocator churn at tens of thousands.  This module now mirrors
the simulator's slab move (``netsim/simulator.py``): every hot per-session
field lives in **parallel arrays indexed by a recycled slot id**, and
:class:`Session` is a thin *view* over the slab — the manager's datapath
reads and writes the arrays directly, while tests, transports and apps
keep the exact attribute surface they had.

The slab is the density story in three parts:

* **One dict, period.**  The manager's ``peer -> Session`` table is the
  only per-frame hash lookup; the view carries its slot, and everything
  else is array indexing.
* **Slots are recycled** through a free list the moment a session closes,
  so a server under peer churn reuses a bounded arena — including the
  per-slot drain/idle callback objects the manager preallocates, which is
  what makes the demux hot path allocation-free (no ``lambda`` per
  enqueue, no closure per idle re-arm).
* **Views freeze on retire.**  When a session closes, its terminal field
  values are copied into the handle before the slot is recycled, so a
  caller that kept the :class:`Session` (the interop tests inspect closed
  sessions' apps) can never observe the next occupant.

A per-slot **generation** counter is bumped on every retire/alloc; the
manager's preallocated timer callbacks carry the generation they were
armed for, so a timer that survives into a recycled slot is recognizably
stale and ignored (property-tested in ``tests/test_timer_wheel.py``).
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, List, Optional

from repro.serve.apps import SessionApp
from repro.serve.record import ExchangeRecorder


class SessionSlab:
    """Parallel per-session arrays indexed by a recycled slot id.

    The slab stores state only — the manager owns policy (bounds,
    shedding, timers) and keeps its own parallel arrays for the
    preallocated callback objects, extended in lockstep through
    :attr:`capacity`.
    """

    __slots__ = (
        "peer",
        "app",
        "recorder",
        "queue",
        "opened_at",
        "last_activity",
        "congested",
        "resume",
        "idle_handle",
        "drops",
        "closed",
        "generation",
        "send",
        "drain_scheduled",
        "handle",
        "free",
        "live",
        "max_queue",
    )

    def __init__(self, max_queue: int = 1 << 30) -> None:
        self.max_queue = max_queue
        self.peer: List[Any] = []
        self.app: List[Optional[SessionApp]] = []
        self.recorder: List[Optional[ExchangeRecorder]] = []
        self.queue: List[Deque[bytes]] = []
        self.opened_at: List[float] = []
        self.last_activity: List[float] = []
        self.congested: List[bool] = []
        self.resume: List[Optional[Callable[[], None]]] = []
        self.idle_handle: List[Any] = []
        self.drops: List[int] = []
        self.closed: List[bool] = []
        #: Bumped on every retire; alloc stamps the slot's current value
        #: into the view and the manager's timer callbacks, so anything
        #: armed for a previous occupant is recognizably stale.
        self.generation: List[int] = []
        self.send: List[Optional[Callable[[bytes], None]]] = []
        self.drain_scheduled: List[bool] = []
        self.handle: List[Optional["Session"]] = []
        self.free: List[int] = []
        self.live = 0

    @property
    def capacity(self) -> int:
        """Slots ever created (live + free); bounded by peak concurrency."""
        return len(self.peer)

    def alloc(
        self,
        peer: Any,
        app: SessionApp,
        send: Callable[[bytes], None],
        opened_at: float,
        recorder: Optional[ExchangeRecorder] = None,
    ) -> int:
        """Claim a slot (recycled when possible) and populate it."""
        if self.free:
            slot = self.free.pop()
            self.peer[slot] = peer
            self.app[slot] = app
            self.recorder[slot] = recorder
            # The deque survives retirement empty; reuse it.
            self.opened_at[slot] = opened_at
            self.last_activity[slot] = opened_at
            self.congested[slot] = False
            self.resume[slot] = None
            self.idle_handle[slot] = None
            self.drops[slot] = 0
            self.closed[slot] = False
            self.send[slot] = send
            self.drain_scheduled[slot] = False
        else:
            slot = len(self.peer)
            self.peer.append(peer)
            self.app.append(app)
            self.recorder.append(recorder)
            self.queue.append(deque())
            self.opened_at.append(opened_at)
            self.last_activity.append(opened_at)
            self.congested.append(False)
            self.resume.append(None)
            self.idle_handle.append(None)
            self.drops.append(0)
            self.closed.append(False)
            self.generation.append(0)
            self.send.append(send)
            self.drain_scheduled.append(False)
            self.handle.append(None)
        view = Session(self, slot, self.generation[slot])
        self.handle[slot] = view
        self.live += 1
        return slot

    def retire(self, slot: int) -> "Session":
        """Freeze the slot's view, clear the arrays, recycle the slot."""
        view = self.handle[slot]
        assert view is not None
        view._freeze()
        self.peer[slot] = None
        self.app[slot] = None
        self.recorder[slot] = None
        self.queue[slot].clear()
        self.resume[slot] = None
        self.idle_handle[slot] = None
        self.closed[slot] = True
        self.send[slot] = None
        self.drain_scheduled[slot] = False
        self.handle[slot] = None
        self.generation[slot] += 1  # stale-timer fence
        self.free.append(slot)
        self.live -= 1
        return view


class Session:
    """A thin view over one slab slot; freezes when the session closes.

    The attribute surface is PR 7's session object, unchanged — the
    manager's hot path bypasses these properties and indexes the slab
    arrays directly.
    """

    __slots__ = ("_slab", "_slot", "generation", "_frozen")

    def __init__(self, slab: SessionSlab, slot: int, generation: int) -> None:
        self._slab: Optional[SessionSlab] = slab
        self._slot = slot
        self.generation = generation
        self._frozen: Optional[dict] = None

    @property
    def slot(self) -> int:
        """The slab slot this view indexes (stable until the close)."""
        return self._slot

    def _freeze(self) -> None:
        """Copy terminal state into the view; called once by retire."""
        slab, slot = self._slab, self._slot
        assert slab is not None
        self._frozen = {
            "peer": slab.peer[slot],
            "app": slab.app[slot],
            "recorder": slab.recorder[slot],
            "queue": deque(slab.queue[slot]),
            "opened_at": slab.opened_at[slot],
            "last_activity": slab.last_activity[slot],
            "congested": slab.congested[slot],
            "resume": slab.resume[slot],
            "idle_handle": None,
            "drops": slab.drops[slot],
        }
        self._slab = None

    # -- field views -------------------------------------------------------

    @property
    def peer(self) -> Any:
        slab = self._slab
        return slab.peer[self._slot] if slab is not None else self._frozen["peer"]

    @property
    def app(self) -> SessionApp:
        slab = self._slab
        return slab.app[self._slot] if slab is not None else self._frozen["app"]

    @property
    def recorder(self) -> Optional[ExchangeRecorder]:
        slab = self._slab
        if slab is not None:
            return slab.recorder[self._slot]
        return self._frozen["recorder"]

    @property
    def queue(self) -> Deque[bytes]:
        slab = self._slab
        return slab.queue[self._slot] if slab is not None else self._frozen["queue"]

    @property
    def opened_at(self) -> float:
        slab = self._slab
        if slab is not None:
            return slab.opened_at[self._slot]
        return self._frozen["opened_at"]

    @property
    def last_activity(self) -> float:
        slab = self._slab
        if slab is not None:
            return slab.last_activity[self._slot]
        return self._frozen["last_activity"]

    @property
    def congested(self) -> bool:
        slab = self._slab
        if slab is not None:
            return slab.congested[self._slot]
        return self._frozen["congested"]

    @congested.setter
    def congested(self, value: bool) -> None:
        slab = self._slab
        if slab is not None:
            slab.congested[self._slot] = value
        else:
            self._frozen["congested"] = value

    @property
    def resume(self) -> Optional[Callable[[], None]]:
        slab = self._slab
        if slab is not None:
            return slab.resume[self._slot]
        return self._frozen["resume"]

    @resume.setter
    def resume(self, value: Optional[Callable[[], None]]) -> None:
        slab = self._slab
        if slab is not None:
            slab.resume[self._slot] = value
        else:
            self._frozen["resume"] = value

    @property
    def idle_handle(self) -> Any:
        slab = self._slab
        if slab is not None:
            return slab.idle_handle[self._slot]
        return self._frozen["idle_handle"]

    @property
    def drops(self) -> int:
        slab = self._slab
        return slab.drops[self._slot] if slab is not None else self._frozen["drops"]

    @property
    def closed(self) -> bool:
        """True once the manager retired this session's slot."""
        return self._slab is None

    # -- compat operations (the manager's hot path inlines these) ----------

    def enqueue(self, data: bytes) -> bool:
        """Offer a frame; False (and a drop) when the queue is full."""
        slab = self._slab
        if slab is None:
            return False
        slot = self._slot
        queue = slab.queue[slot]
        if len(queue) >= slab.max_queue:
            slab.drops[slot] += 1
            slab.congested[slot] = True
            return False
        queue.append(data)
        if len(queue) >= slab.max_queue:
            slab.congested[slot] = True
        return True

    def consume(self, data: bytes, now: float) -> None:
        """Feed one frame to the app, recording it; updates activity."""
        slab = self._slab
        if slab is None:
            return
        slot = self._slot
        slab.last_activity[slot] = now
        recorder = slab.recorder[slot]
        if recorder is not None:
            recorder.frame_in(data)
        slab.app[slot].on_frame(data)

    def __repr__(self) -> str:
        state = "closed" if self.closed else f"slot={self._slot}"
        return f"Session({self.peer!r}, {self.app.protocol}, {state})"
