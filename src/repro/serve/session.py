"""One live session: app + bounded inbound queue + exchange record.

A session is the unit the manager demultiplexes to — one peer address,
one :class:`~repro.serve.apps.SessionApp`, one bounded receive queue,
one optional :class:`~repro.serve.record.ExchangeRecorder`.  The queue
is the backpressure point: transports enqueue, the manager drains, and
a full queue is reported upward so a stream transport can pause its
read side while a datagram transport sheds the frame (the only honest
option UDP has).

Frames are recorded at *consumption* time (when the app sees them), not
arrival time: the differential oracle replays what the session actually
processed, so a frame dropped by an overflowing queue — which the app
never saw — correctly never reaches the oracle either.
"""

from __future__ import annotations

from collections import deque
from typing import Any, Callable, Deque, Optional

from repro.serve.apps import SessionApp
from repro.serve.record import ExchangeRecorder


class Session:
    """State for one peer; created and owned by the session manager."""

    __slots__ = (
        "peer",
        "app",
        "recorder",
        "queue",
        "max_queue",
        "opened_at",
        "last_activity",
        "congested",
        "resume",
        "idle_handle",
        "drops",
        "closed",
    )

    def __init__(
        self,
        peer: str,
        app: SessionApp,
        max_queue: int,
        opened_at: float,
        recorder: Optional[ExchangeRecorder] = None,
    ) -> None:
        self.peer = peer
        self.app = app
        self.recorder = recorder
        self.queue: Deque[bytes] = deque()
        self.max_queue = max_queue
        self.opened_at = opened_at
        self.last_activity = opened_at
        self.congested = False
        #: Set by a stream transport that paused reading; called once the
        #: queue drains back to empty.
        self.resume: Optional[Callable[[], None]] = None
        self.idle_handle: Any = None
        self.drops = 0
        self.closed = False

    def enqueue(self, data: bytes) -> bool:
        """Offer a frame; False (and a drop) when the queue is full."""
        if len(self.queue) >= self.max_queue:
            self.drops += 1
            self.congested = True
            return False
        self.queue.append(data)
        if len(self.queue) >= self.max_queue:
            self.congested = True
        return True

    def consume(self, data: bytes, now: float) -> None:
        """Feed one frame to the app, recording it; updates activity."""
        self.last_activity = now
        if self.recorder is not None:
            self.recorder.frame_in(data)
        self.app.on_frame(data)

    def __repr__(self) -> str:
        return (
            f"Session({self.peer!r}, {self.app.protocol}, "
            f"queued={len(self.queue)})"
        )
