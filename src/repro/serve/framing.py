"""Stream framing: datagram-shaped protocols over byte-stream transports.

Every protocol in the registry is specified in frames; UDP preserves
frame boundaries for free but TCP is a byte stream, so the serving plane
wraps each frame in a 2-byte big-endian length prefix.  The prefix is
deliberately the simplest thing that works — the interesting parsing all
lives in the packet specs; this layer only restores the boundaries the
stream erased.

:class:`StreamDeframer` is incremental and allocation-light: feed it
arbitrary chunks, take complete frames out.  Oversized or zero-length
prefixes raise :class:`FramingError` immediately — a desynchronized
stream cannot be resynchronized, so the connection must be torn down
(the TCP transport does exactly that).
"""

from __future__ import annotations

import struct
from typing import List

#: Length prefix: unsigned 16-bit big-endian.
HEADER = struct.Struct("!H")

#: Frames larger than this are rejected; protects the per-connection
#: buffer from a hostile or desynchronized peer.
MAX_FRAME = 65_535


class FramingError(ValueError):
    """A stream produced an impossible frame; the connection is dead."""


def encode_frame(payload: bytes) -> bytes:
    """Wrap one frame for a stream transport."""
    if not payload:
        raise FramingError("cannot frame an empty payload")
    if len(payload) > MAX_FRAME:
        raise FramingError(f"frame of {len(payload)} bytes exceeds {MAX_FRAME}")
    return HEADER.pack(len(payload)) + payload


class StreamDeframer:
    """Reassembles length-prefixed frames from arbitrary stream chunks."""

    def __init__(self, max_frame: int = MAX_FRAME) -> None:
        self.max_frame = max_frame
        self._buffer = bytearray()
        self.frames_out = 0
        self.bytes_in = 0

    @property
    def buffered(self) -> int:
        """Bytes held waiting for a complete frame."""
        return len(self._buffer)

    def feed(self, chunk: bytes) -> List[bytes]:
        """Absorb a chunk; returns every frame it completed, in order."""
        self.bytes_in += len(chunk)
        self._buffer.extend(chunk)
        frames: List[bytes] = []
        while True:
            if len(self._buffer) < HEADER.size:
                break
            (length,) = HEADER.unpack_from(self._buffer)
            if length == 0:
                raise FramingError("zero-length frame: stream is desynchronized")
            if length > self.max_frame:
                raise FramingError(
                    f"declared frame of {length} bytes exceeds {self.max_frame}"
                )
            if len(self._buffer) < HEADER.size + length:
                break
            frames.append(bytes(self._buffer[HEADER.size : HEADER.size + length]))
            del self._buffer[: HEADER.size + length]
            self.frames_out += 1
        return frames
