"""Session apps: protocol behaviours hosted by either plane.

A *session app* is the server-side role of a registry protocol (the ARQ
receiver, the handshake responder, the sliding-window receiver) written
against the narrowest possible host surface: a ``send(bytes)`` callable
and an ``on_frame(bytes)`` entry point.  Nothing else — no sockets, no
simulator, no clocks.  That narrowness is the load-bearing design move
of the serving plane: the **same app instance type** runs

* live, under :class:`~repro.serve.manager.SessionManager` on a real
  UDP/TCP socket, and
* replayed, under :class:`~repro.netsim.replay.ScriptedHost` with the
  simulator as the delivery substrate,

so the loopback differential compares two hostings of one behaviour,
not two implementations of one protocol.

Every free choice an app makes (the responder's nonce) comes from a
seeded RNG so a replay with the recorded seed makes the same choices.
The DSL machines do the protocol reasoning; apps use the runtime's
:meth:`~repro.core.machine.Machine.try_exec` driver hook to probe which
transition a verified frame feeds, and never touch an unverified byte
beyond handing it to ``try_parse`` — the paper's §3.4 guarantee, kept
on a real socket.
"""

from __future__ import annotations

import random
from functools import lru_cache
from typing import Any, Callable, Dict, List, Optional, Tuple, Type

from repro.core.machine import Machine
from repro.protocols.arq import ACK_PACKET, ARQ_PACKET, build_receiver_spec
from repro.protocols.handshake import (
    HANDSHAKE_PACKET,
    MSG_ACK,
    MSG_SYN,
    MSG_SYN_ACK,
    build_responder_spec,
)
from repro.protocols.sliding import (
    KIND_SELECTIVE,
    SLIDING_ACK,
    SLIDING_PACKET,
    build_window_receiver_spec,
)

Send = Callable[[bytes], None]


# Machine specs are immutable once built, and both compiled caches —
# ``dispatch.staged_table`` (the sealed per-transition closures) and
# ``fastpath.active_state`` (the codec tier) — key off the spec *object*.
# Building a fresh spec per session therefore recompiles everything per
# accept; these cached builders make the spec (and so its compiled
# artifacts) a per-protocol constant shared by every session, the same
# move megasim uses to host a million machines on one sealed spec.
# Profiling PR 7's accept path showed per-session spec builds were ~75%
# of accept cost.

_receiver_spec = lru_cache(maxsize=None)(build_receiver_spec)
_responder_spec = lru_cache(maxsize=None)(build_responder_spec)
_window_receiver_spec = lru_cache(maxsize=None)(build_window_receiver_spec)


class SessionApp:
    """Base class: the host surface every plane can provide."""

    #: Registry key; the wire name used in exchange records and the CLI.
    protocol: str = ""
    #: Packet specs this app speaks — warmed through the fastpath at
    #: accept time and used to render transcripts.
    specs: Tuple[Any, ...] = ()

    def __init__(self, send: Send, seed: int = 0, **params: Any) -> None:
        self._send = send
        self.seed = seed
        self.params: Dict[str, Any] = dict(params)
        self.frames_in = 0
        self.frames_out = 0
        self.rejected = 0

    # -- host entry points -------------------------------------------------

    def on_frame(self, data: bytes) -> None:
        """One inbound frame; may call ``self.send`` any number of times."""
        raise NotImplementedError

    def on_timer(self) -> None:
        """The host's protocol timer fired (reset/housekeeping); optional."""

    # -- shared plumbing ---------------------------------------------------

    def send(self, data: bytes) -> None:
        self.frames_out += 1
        self._send(data)

    @property
    def machine(self) -> Machine:
        raise NotImplementedError

    @property
    def finished(self) -> bool:
        """True when the protocol reached a final state (if it has one)."""
        return self.machine.is_finished

    def summary(self) -> Dict[str, Any]:
        """Operator-facing counters for dashboards and reports."""
        return {
            "protocol": self.protocol,
            "state": repr(self.machine.current),
            "frames_in": self.frames_in,
            "frames_out": self.frames_out,
            "rejected": self.rejected,
        }


class ArqResponderApp(SessionApp):
    """Stop-and-wait receiver: deliver in order, acknowledge, re-ack dups."""

    protocol = "arq"
    specs = (ARQ_PACKET, ACK_PACKET)

    def __init__(self, send: Send, seed: int = 0, **params: Any) -> None:
        super().__init__(send, seed, **params)
        self._machine = Machine(_receiver_spec())
        self.delivered: List[bytes] = []
        self.acks_sent = 0

    @property
    def machine(self) -> Machine:
        return self._machine

    def on_frame(self, data: bytes) -> None:
        self.frames_in += 1
        verified = ARQ_PACKET.try_parse(data)
        if verified is None:
            self.rejected += 1  # unverifiable bytes never reach the machine
            return
        # Probe the machine: RECV consumes the expected packet, DUP_ACK a
        # duplicate of the previous one; the guards decide, not the driver.
        if self._machine.try_exec("RECV", verified) is not None:
            self.delivered.append(verified.value.payload)
            self._ack(verified.value.seq)
        elif self._machine.try_exec("DUP_ACK", verified) is not None:
            self._ack(verified.value.seq)
        else:
            self.rejected += 1  # verified but outside the window discipline

    def _ack(self, seq: int) -> None:
        ack = ACK_PACKET.make(seq=seq)
        self.send(ACK_PACKET.encode(ack))
        self.acks_sent += 1

    def summary(self) -> Dict[str, Any]:
        base = super().summary()
        base["delivered"] = len(self.delivered)
        return base


class HandshakeResponderApp(SessionApp):
    """Three-way handshake responder; nonces flow from the session seed."""

    protocol = "handshake"
    specs = (HANDSHAKE_PACKET,)

    def __init__(self, send: Send, seed: int = 0, **params: Any) -> None:
        super().__init__(send, seed, **params)
        self._machine = Machine(_responder_spec())
        self._rng = random.Random(seed)
        self._synack_frame = b""
        self._synack_for = -1  # initiator nonce the cached SYN-ACK answers

    @property
    def machine(self) -> Machine:
        return self._machine

    def on_frame(self, data: bytes) -> None:
        self.frames_in += 1
        verified = HANDSHAKE_PACKET.try_parse(data)
        if verified is None:
            self.rejected += 1
            return
        message = verified.value
        if message.msg_type == MSG_SYN:
            nonce = self._rng.randrange(1, 1 << 16)
            if self._machine.try_exec("SYN", verified, nonce=nonce) is None:
                # The machine refuses a SYN outside Listen.  A *retransmit*
                # of the SYN we already answered means our SYN-ACK was
                # probably lost: resend the cached frame (driver policy —
                # the machine's nonce state must not fork).  Any other SYN
                # is noise.
                if (
                    self._machine.in_state("SynReceived")
                    and message.initiator_nonce == self._synack_for
                ):
                    self.send(self._synack_frame)
                else:
                    self.rejected += 1
                return
            reply = HANDSHAKE_PACKET.make(
                msg_type=MSG_SYN_ACK,
                initiator_nonce=message.initiator_nonce,
                responder_nonce=nonce,
            )
            self._synack_frame = HANDSHAKE_PACKET.encode(reply)
            self._synack_for = message.initiator_nonce
            self.send(self._synack_frame)
        elif message.msg_type == MSG_ACK:
            if self._machine.try_exec("ACK", verified) is None:
                self.rejected += 1
        else:
            self.rejected += 1  # a SYN-ACK aimed at a responder is noise

    def on_timer(self) -> None:
        # Half-open handshake expired: return to Listen (the machine's
        # RESET transition), so the slot can serve a fresh attempt.
        self._machine.try_exec("RESET")

    @property
    def established(self) -> bool:
        return self._machine.in_state("Established")


class SlidingResponderApp(SessionApp):
    """Selective-repeat receiver: buffer verified out-of-order, ack each."""

    protocol = "sliding"
    specs = (SLIDING_PACKET, SLIDING_ACK)

    def __init__(
        self, send: Send, seed: int = 0, window: int = 8, **params: Any
    ) -> None:
        super().__init__(send, seed, window=window, **params)
        self.window = int(window)
        self._machine = Machine(_window_receiver_spec("SrReceiver"))
        self.buffer: Dict[int, Any] = {}  # seq -> Verified[SlidingData]
        self.delivered: List[bytes] = []
        self.acks_sent = 0

    @property
    def machine(self) -> Machine:
        return self._machine

    @property
    def expected(self) -> int:
        return self._machine.current.values[0]

    def on_frame(self, data: bytes) -> None:
        self.frames_in += 1
        verified = SLIDING_PACKET.try_parse(data)
        if verified is None:
            self.rejected += 1
            return
        seq = verified.value.seq
        if self._machine.try_exec("RECV", verified) is not None:
            self.delivered.append(verified.value.payload)
            self._ack(seq)
            self._drain_buffer()
            return
        # Not the expected packet; OUT_OF_ORDER admits any other verified
        # frame without advancing — buffering/ack policy lives here.
        if self._machine.try_exec("OUT_OF_ORDER", verified) is None:
            self.rejected += 1
            return
        if self.expected < seq < self.expected + self.window:
            self.buffer[seq] = verified
            self._ack(seq)
        elif seq < self.expected:
            self._ack(seq)  # the earlier ack was probably lost: re-ack
        else:
            self.rejected += 1  # beyond the advertised window

    def _drain_buffer(self) -> None:
        while self.expected in self.buffer:
            verified = self.buffer.pop(self.expected)
            self._machine.exec_trans("RECV", verified)
            self.delivered.append(verified.value.payload)

    def _ack(self, seq: int) -> None:
        ack = SLIDING_ACK.make(kind=KIND_SELECTIVE, seq=seq)
        self.send(SLIDING_ACK.encode(ack))
        self.acks_sent += 1

    def summary(self) -> Dict[str, Any]:
        base = super().summary()
        base["delivered"] = len(self.delivered)
        base["buffered"] = len(self.buffer)
        return base


#: The serving plane's protocol registry.
APPS: Dict[str, Type[SessionApp]] = {
    ArqResponderApp.protocol: ArqResponderApp,
    HandshakeResponderApp.protocol: HandshakeResponderApp,
    SlidingResponderApp.protocol: SlidingResponderApp,
}


def app_class(protocol: str) -> Type[SessionApp]:
    """Look up a session app by protocol name."""
    try:
        return APPS[protocol]
    except KeyError:
        raise ValueError(
            f"unknown serve protocol {protocol!r}; known: {sorted(APPS)}"
        ) from None


def build_app(
    protocol: str, send: Send, seed: int = 0, params: Optional[Dict[str, Any]] = None
) -> SessionApp:
    """Instantiate a session app for either plane."""
    return app_class(protocol)(send, seed=seed, **(params or {}))
