"""The differential oracle: replay a live exchange through the simulator.

Session apps are deterministic functions of (inbound frame sequence,
seed): every free choice flows from the seeded RNG, every protocol step
from the DSL machine.  So a recorded live session replays exactly —
build the *same* app type with the *same* seed and params under
:class:`~repro.netsim.replay.ScriptedHost`, feed it the frames the live
session actually consumed at their recorded relative times, and the
oracle must emit byte-for-byte the frames the live session sent.  Any
divergence means a hosting bug: the serving plane dropped, duplicated,
reordered or mangled something the protocol logic never saw.

A second, independent check rides along: the replayed machine's
execution trace is dual-stepped against the one-step model semantics
(:func:`repro.modelcheck.explicit.successors_of` with the exact inputs
the runtime used), so the oracle run itself is validated against the
spec — the differential is only as trustworthy as its oracle, and the
oracle carries its own evidence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.core.machine import Machine, TraceStep
from repro.modelcheck.explicit import successors_of
from repro.netsim.capture import describe_frame
from repro.netsim.replay import ScriptedHost
from repro.serve.apps import SessionApp, app_class
from repro.serve.record import ExchangeRecord


@dataclass
class ReplayResult:
    """One record's verdict under the simulator oracle."""

    record: ExchangeRecord
    live_out: List[bytes]
    oracle_out: List[bytes]
    divergences: List[str] = field(default_factory=list)
    model_notes: List[str] = field(default_factory=list)
    final_state: str = ""

    @property
    def ok(self) -> bool:
        """True when live and oracle agree and the trace checks out."""
        return not self.divergences and not self.model_notes

    def summary(self) -> Dict[str, Any]:
        return {
            "protocol": self.record.protocol,
            "peer": self.record.peer,
            "frames_in": len(self.record.inbound()),
            "frames_out": len(self.live_out),
            "oracle_out": len(self.oracle_out),
            "divergences": len(self.divergences),
            "model_notes": len(self.model_notes),
            "final_state": self.final_state,
            "ok": self.ok,
        }


def _diff_transcripts(
    live: Sequence[bytes], oracle: Sequence[bytes], specs: Sequence[Any]
) -> List[str]:
    """Frame-by-frame comparison, rendered for humans on mismatch."""
    divergences: List[str] = []
    for index in range(max(len(live), len(oracle))):
        have = live[index] if index < len(live) else None
        want = oracle[index] if index < len(oracle) else None
        if have == want:
            continue
        have_text = (
            describe_frame(have, specs)[1] if have is not None else "(nothing)"
        )
        want_text = (
            describe_frame(want, specs)[1] if want is not None else "(nothing)"
        )
        divergences.append(
            f"outbound[{index}]: live sent {have_text}, oracle sent {want_text}"
        )
    return divergences


def check_trace_against_model(machine: Machine) -> List[str]:
    """Dual-step a machine's executed trace against the model semantics.

    For every executed :class:`~repro.core.machine.TraceStep`, ask the
    one-step model (same spec, singleton input domains built from the
    step's recorded bindings) which targets the transition admits from
    the step's source; the runtime's target must be among them.  Steps
    the model can only approximate (payload-dependent guards) are
    skipped — may-fire answers prove nothing either way.
    """
    notes: List[str] = []
    spec = machine.spec
    for step in machine.trace:
        transition = spec.transition_named(step.transition)
        bindings = step.bindings_dict()
        inputs = {
            name: bindings[name]
            for name in transition.inputs
            if name in bindings
        }
        domains = (
            {transition.name: {k: (v,) for k, v in inputs.items()}}
            if inputs
            else None
        )
        targets, approximated = successors_of(
            spec, transition, step.source, domains
        )
        if approximated:
            continue
        target_keys = {(t.state.name, t.values) for t in targets}
        runtime_key = (step.target.state.name, step.target.values)
        if runtime_key not in target_keys:
            notes.append(
                f"{step.transition}: runtime stepped to {runtime_key}, "
                f"model admits only {sorted(target_keys)}"
            )
    return notes


def replay_record(
    record: ExchangeRecord, check_model: bool = True
) -> ReplayResult:
    """Replay one recorded session; returns the differential verdict."""
    app_cls = app_class(record.protocol)
    specs = list(app_cls.specs)
    host = ScriptedHost(specs=specs, seed=record.seed)
    # host() needs the handler and the app needs host()'s send callable;
    # the holder breaks the cycle (the closure resolves at delivery time,
    # after the app exists).
    holder: List[SessionApp] = []
    send = host.host(lambda frame: holder[0].on_frame(frame))
    app = app_cls(send, seed=record.seed, **record.params)
    holder.append(app)
    host.feed(record.inbound_script())
    oracle_out = host.run()
    live_out = [event.data for event in record.outbound()]
    result = ReplayResult(
        record=record,
        live_out=live_out,
        oracle_out=oracle_out,
        divergences=_diff_transcripts(live_out, oracle_out, specs),
        final_state=repr(app.machine.current),
    )
    if check_model:
        result.model_notes = check_trace_against_model(app.machine)
    return result


@dataclass
class DifferentialReport:
    """Aggregate verdict over a batch of records."""

    results: List[ReplayResult] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.results)

    @property
    def divergent(self) -> List[ReplayResult]:
        return [result for result in self.results if not result.ok]

    def summary(self) -> Dict[str, Any]:
        return {
            "records": len(self.results),
            "ok": sum(1 for r in self.results if r.ok),
            "divergent": len(self.divergent),
            "frames_compared": sum(len(r.live_out) for r in self.results),
        }


def replay_records(
    records: Sequence[ExchangeRecord], check_model: bool = True
) -> DifferentialReport:
    """Replay every record; empty sessions (no events) are skipped."""
    report = DifferentialReport()
    for record in records:
        if not record.events:
            continue
        report.results.append(replay_record(record, check_model=check_model))
    return report
