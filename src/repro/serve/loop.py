"""Pluggable event-loop policy for the serving plane.

The default selector loop is the accept-rate ceiling once the datapath
itself stops allocating; ``uvloop`` (libuv's loop behind the same
asyncio API) lifts it where available.  This module keeps that choice
*policy*, not code: nothing in :mod:`repro.serve` imports uvloop
directly, and a missing uvloop is a clean fallback, never a crash —
the repo's rule for every optional dependency.

Selection order (first hit wins):

1. an explicit request (the ``--loop`` CLI flag),
2. the ``REPRO_SERVE_LOOP`` environment variable,
3. ``auto``: uvloop when importable, asyncio otherwise.

Requesting ``uvloop`` where it isn't installed resolves to asyncio with
a human-readable :attr:`LoopChoice.note` the CLI surfaces — the server
still starts.
"""

from __future__ import annotations

import asyncio
import os
import sys
from dataclasses import dataclass
from typing import Any, Coroutine, Optional

#: Environment override consulted when the CLI doesn't pass ``--loop``.
LOOP_ENV = "REPRO_SERVE_LOOP"

#: The loop names the policy understands (``auto`` resolves to one of
#: the other two).
LOOP_CHOICES = ("auto", "asyncio", "uvloop")


@dataclass(frozen=True)
class LoopChoice:
    """A resolved loop policy: what was asked for and what will run."""

    requested: str  #: "auto" | "asyncio" | "uvloop" (post-env resolution)
    name: str  #: the loop that will actually run: "asyncio" | "uvloop"
    note: Optional[str] = None  #: human-readable fallback reason, if any


def _import_uvloop() -> Any:
    """uvloop if importable, else None (import error swallowed)."""
    try:
        import uvloop  # type: ignore[import-not-found]
    except ImportError:
        return None
    return uvloop


def uvloop_available() -> bool:
    """True when uvloop can be imported in this interpreter."""
    return _import_uvloop() is not None


def choose_loop(
    requested: Optional[str] = None, env: Optional[dict] = None
) -> LoopChoice:
    """Resolve the loop policy; never raises for a *missing* uvloop.

    ``requested`` beats the environment; ``None``/empty falls through to
    ``REPRO_SERVE_LOOP``, then ``auto``.  Unknown names raise
    ``ValueError`` (a typo should not silently serve on the wrong loop).
    """
    environ = os.environ if env is None else env
    name = (requested or environ.get(LOOP_ENV) or "auto").strip().lower()
    if name not in LOOP_CHOICES:
        raise ValueError(
            f"unknown loop policy {name!r}; choose from {'|'.join(LOOP_CHOICES)}"
        )
    if name == "asyncio":
        return LoopChoice("asyncio", "asyncio")
    if _import_uvloop() is not None:
        return LoopChoice(name, "uvloop")
    if name == "uvloop":
        return LoopChoice(
            "uvloop",
            "asyncio",
            "uvloop requested but not installed; serving on asyncio",
        )
    return LoopChoice("auto", "asyncio")


def run(coro: Coroutine[Any, Any, Any], choice: Optional[LoopChoice] = None) -> Any:
    """``asyncio.run`` under the chosen loop policy.

    With a uvloop choice this prefers ``uvloop.run`` (uvloop ≥ 0.18) and
    falls back to ``uvloop.install()`` + ``asyncio.run`` for older
    releases; the asyncio path is untouched stdlib.
    """
    if choice is None:
        choice = choose_loop()
    if choice.note:
        print(f"repro.serve: {choice.note}", file=sys.stderr)
    if choice.name == "uvloop":
        uvloop = _import_uvloop()
        if uvloop is None:  # raced away since choose_loop; fall back
            return asyncio.run(coro)
        runner = getattr(uvloop, "run", None)
        if runner is not None:
            return runner(coro)
        uvloop.install()
    return asyncio.run(coro)
