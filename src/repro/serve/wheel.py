"""A hashed timer wheel for the real-time serving plane.

The simulator's :class:`~repro.netsim.timers.Timer` rides the event heap:
every start is an ``O(log n)`` push and every restart a tombstone.  A
server multiplexing thousands of sessions restarts a retransmission or
idle timer on *every* frame, so the serving plane uses the classic hashed
wheel instead: scheduling and cancellation are O(1), and one ``advance``
per tick fires everything due, regardless of how many sessions exist.

The wheel is deliberately host-agnostic — it never reads a clock.  The
asyncio transport advances it from a tick task with ``loop.time()``; the
tests advance it by hand.  That is what makes the wheel property-testable
with the same interleaving style as the simulator's cancel/accounting
suite (``tests/test_netsim_properties.py``):

* ``pending`` always equals scheduled minus (fired + cancelled);
* a cancelled timer never fires, and cancelling twice is a no-op;
* a timer never fires before its deadline (it may fire up to one tick
  *late* — wheel granularity — never early).

Entries carry their absolute tick index, so a far-future timer parked in
a wrapped slot is skipped until the cursor genuinely reaches its round.
Within one advance, due timers fire in ``(deadline, schedule order)``
order — deterministic under equal deadlines, like the simulator.
"""

from __future__ import annotations

import math
from typing import Callable, List, Optional


class TimerHandle:
    """One scheduled callback; returned by :meth:`TimerWheel.schedule`."""

    __slots__ = ("deadline", "tick", "seq", "callback", "cancelled", "fired")

    def __init__(
        self, deadline: float, tick: int, seq: int, callback: Callable[[], None]
    ) -> None:
        self.deadline = deadline
        self.tick = tick
        self.seq = seq
        self.callback = callback
        self.cancelled = False
        self.fired = False

    @property
    def live(self) -> bool:
        """True while the timer is scheduled and still due to fire."""
        return not self.cancelled and not self.fired

    def __repr__(self) -> str:
        state = "cancelled" if self.cancelled else "fired" if self.fired else "pending"
        return f"TimerHandle(deadline={self.deadline:.4f}, {state})"


class TimerWheel:
    """A hashed timer wheel: O(1) schedule/cancel, one scan per tick.

    Parameters
    ----------
    tick:
        Wheel granularity in seconds.  Timers fire at the first processed
        tick boundary at or after their deadline, so expiry can be late by
        up to one tick but never early.
    slots:
        Number of hash buckets; timers further out than ``slots * tick``
        simply survive extra cursor passes (each entry knows its absolute
        tick index).
    now:
        The wheel's initial clock reading; pass ``loop.time()`` when
        driving it from asyncio so deadlines share the loop's epoch.
    """

    def __init__(self, tick: float = 0.005, slots: int = 256, now: float = 0.0) -> None:
        if tick <= 0:
            raise ValueError(f"tick must be positive, got {tick}")
        if slots < 2:
            raise ValueError(f"need at least 2 slots, got {slots}")
        self.tick = tick
        self.slots = slots
        self._buckets: List[List[TimerHandle]] = [[] for _ in range(slots)]
        self._now = now
        self._cursor = math.floor(now / tick)
        self._seq = 0
        self._pending = 0
        self.scheduled_total = 0
        self.fired_total = 0
        self.cancelled_total = 0

    # -- inspection --------------------------------------------------------

    @property
    def now(self) -> float:
        """The clock reading of the last :meth:`advance`."""
        return self._now

    @property
    def pending(self) -> int:
        """Timers scheduled and still due to fire."""
        return self._pending

    # -- scheduling --------------------------------------------------------

    def schedule(self, delay: float, callback: Callable[[], None]) -> TimerHandle:
        """Schedule ``callback`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise ValueError(f"cannot schedule in the past (delay={delay})")
        deadline = self._now + delay
        # First tick boundary at or after the deadline; clamp past the
        # cursor so an intra-tick deadline lands on the very next advance.
        tick_index = math.ceil(deadline / self.tick - 1e-9)
        if tick_index * self.tick < deadline:
            tick_index += 1
        tick_index = max(tick_index, self._cursor + 1)
        handle = TimerHandle(deadline, tick_index, self._seq, callback)
        self._seq += 1
        self._buckets[tick_index % self.slots].append(handle)
        self._pending += 1
        self.scheduled_total += 1
        return handle

    def cancel(self, handle: TimerHandle) -> bool:
        """Cancel a pending timer; returns whether it was still live.

        O(1): the entry stays in its bucket as a tombstone and is dropped
        when the cursor reaches it.  Cancelling a fired or already
        cancelled handle is a no-op, as with simulator events.
        """
        if handle.cancelled or handle.fired:
            return False
        handle.cancelled = True
        self._pending -= 1
        self.cancelled_total += 1
        return True

    # -- driving -----------------------------------------------------------

    def advance(self, now: float) -> int:
        """Fire every timer due at or before ``now``; returns the count.

        Callbacks run inside the call and may freely schedule or cancel
        further timers (a retransmission rearming itself lands on a later
        tick of the same advance when its delay is short enough).
        """
        if now < self._now:
            raise ValueError(f"clock went backwards: {now} < {self._now}")
        self._now = now
        target = math.floor(now / self.tick + 1e-9)
        fired = 0
        while self._cursor < target:
            self._cursor += 1
            bucket = self._buckets[self._cursor % self.slots]
            due: List[TimerHandle] = []
            keep: List[TimerHandle] = []
            for handle in bucket:
                if handle.cancelled:
                    continue  # drop the tombstone on the way past
                if handle.tick == self._cursor:
                    due.append(handle)
                else:
                    keep.append(handle)
            self._buckets[self._cursor % self.slots] = keep
            due.sort(key=lambda h: (h.deadline, h.seq))
            for handle in due:
                if handle.cancelled:  # cancelled by an earlier callback
                    continue
                handle.fired = True
                self._pending -= 1
                self.fired_total += 1
                fired += 1
                handle.callback()
        return fired

    def __repr__(self) -> str:
        return (
            f"TimerWheel(tick={self.tick}, slots={self.slots}, "
            f"pending={self._pending})"
        )


class WheelTimer:
    """A restartable one-shot timer over a wheel.

    The serving plane's drop-in for :class:`~repro.netsim.timers.Timer`:
    the same ``start``/``stop``/``running`` surface the simulator drivers
    use, so protocol code reads identically on both planes.
    """

    def __init__(
        self,
        wheel: TimerWheel,
        duration: float,
        callback: Callable[[], None],
        name: str = "timer",
    ) -> None:
        if duration <= 0:
            raise ValueError(f"timer duration must be positive, got {duration}")
        self.wheel = wheel
        self.duration = duration
        self.callback = callback
        self.name = name
        self._handle: Optional[TimerHandle] = None
        self.starts = 0
        self.expirations = 0

    @property
    def running(self) -> bool:
        """True while an expiry is pending."""
        return self._handle is not None and self._handle.live

    def start(self, duration: Optional[float] = None) -> None:
        """(Re)start the timer; a pending expiry is cancelled first."""
        if duration is not None:
            if duration <= 0:
                raise ValueError(f"timer duration must be positive, got {duration}")
            self.duration = duration
        self.stop()
        self.starts += 1
        self._handle = self.wheel.schedule(self.duration, self._fire)

    def stop(self) -> None:
        """Cancel a pending expiry; no-op when idle."""
        if self._handle is not None:
            self.wheel.cancel(self._handle)
            self._handle = None

    def _fire(self) -> None:
        self._handle = None
        self.expirations += 1
        self.callback()

    def __repr__(self) -> str:
        state = "running" if self.running else "idle"
        return f"WheelTimer({self.name!r}, {self.duration}s, {state})"
