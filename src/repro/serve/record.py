"""Per-session exchange records: the serving plane's capture tap.

:class:`~repro.netsim.capture.Capture` taps a simulator channel at the
sender's NIC; :class:`ExchangeRecorder` is the same idea for a live
session — every frame the session *consumed* and every frame it *sent*
is stamped with a relative monotonic time and a direction.  The record
is the bridge between the planes: feeding its inbound side to
:class:`~repro.netsim.replay.ScriptedHost` re-runs the exchange under
the simulator oracle, and the oracle's responses are compared against
the recorded outbound side byte for byte.

Records serialize to JSONL (hex frames) so a live server's exchanges
can be shipped to an offline differential run, and they render with
:func:`~repro.netsim.capture.describe_frame` so a serve transcript
reads exactly like a netsim capture transcript.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Sequence, TextIO, Tuple

from repro.netsim.capture import describe_frame

IN = "in"
OUT = "out"


@dataclass(frozen=True)
class ExchangeEvent:
    """One frame crossing the session boundary."""

    time: float  # seconds since the session opened (monotonic clock)
    direction: str  # IN (peer -> session) or OUT (session -> peer)
    data: bytes

    def to_dict(self) -> Dict[str, Any]:
        return {"t": round(self.time, 6), "dir": self.direction, "data": self.data.hex()}

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "ExchangeEvent":
        return cls(float(raw["t"]), str(raw["dir"]), bytes.fromhex(raw["data"]))


@dataclass
class ExchangeRecord:
    """Everything needed to replay one session through the oracle.

    ``seed`` and ``params`` pin the session app's free choices (the
    handshake responder's nonce stream, a receiver's window) so the
    replayed instance makes the same ones.
    """

    protocol: str
    peer: str
    seed: int = 0
    params: Dict[str, Any] = field(default_factory=dict)
    events: List[ExchangeEvent] = field(default_factory=list)

    def inbound(self) -> List[ExchangeEvent]:
        """Frames the session consumed, in consumption order."""
        return [e for e in self.events if e.direction == IN]

    def outbound(self) -> List[ExchangeEvent]:
        """Frames the session transmitted, in transmission order."""
        return [e for e in self.events if e.direction == OUT]

    def inbound_script(self) -> List[Tuple[float, bytes]]:
        """The inbound side as ``(time, data)`` pairs for the replay host."""
        return [(e.time, e.data) for e in self.inbound()]

    def to_dict(self) -> Dict[str, Any]:
        return {
            "type": "exchange",
            "protocol": self.protocol,
            "peer": self.peer,
            "seed": self.seed,
            "params": dict(self.params),
            "events": [e.to_dict() for e in self.events],
        }

    @classmethod
    def from_dict(cls, raw: Dict[str, Any]) -> "ExchangeRecord":
        return cls(
            protocol=str(raw["protocol"]),
            peer=str(raw["peer"]),
            seed=int(raw.get("seed", 0)),
            params=dict(raw.get("params", {})),
            events=[ExchangeEvent.from_dict(e) for e in raw.get("events", [])],
        )

    def transcript(self, specs: Sequence[Any] = ()) -> str:
        """Render the exchange, one line per frame, spec-decoded."""
        lines = []
        for event in self.events:
            _, description = describe_frame(event.data, specs)
            arrow = "->" if event.direction == IN else "<-"
            lines.append(f"{event.time:10.4f}  {arrow} {description}")
        return "\n".join(lines)

    def __len__(self) -> int:
        return len(self.events)


class ExchangeRecorder:
    """Accumulates one session's :class:`ExchangeRecord`.

    ``clock`` is any monotonic float source (``loop.time`` live,
    a hand-advanced counter in tests); the recorder stores times
    relative to its construction so records are host-epoch free.
    """

    def __init__(
        self,
        protocol: str,
        peer: str,
        clock: Any,
        seed: int = 0,
        params: Optional[Dict[str, Any]] = None,
    ) -> None:
        self._clock = clock
        self._start = clock()
        self.record = ExchangeRecord(
            protocol=protocol, peer=peer, seed=seed, params=dict(params or {})
        )

    def _stamp(self) -> float:
        return max(0.0, self._clock() - self._start)

    def frame_in(self, data: bytes) -> None:
        """The session consumed ``data``."""
        self.record.events.append(ExchangeEvent(self._stamp(), IN, bytes(data)))

    def frame_out(self, data: bytes) -> None:
        """The session transmitted ``data``."""
        self.record.events.append(ExchangeEvent(self._stamp(), OUT, bytes(data)))


def save_records(records: Sequence[ExchangeRecord], stream: TextIO) -> int:
    """Write records as JSONL; returns the count."""
    for record in records:
        stream.write(json.dumps(record.to_dict(), sort_keys=True) + "\n")
    return len(records)


def load_records(stream: TextIO) -> List[ExchangeRecord]:
    """Read back a JSONL record stream (blank lines ignored)."""
    records = []
    for line in stream:
        line = line.strip()
        if not line:
            continue
        raw = json.loads(line)
        if raw.get("type") != "exchange":
            continue
        records.append(ExchangeRecord.from_dict(raw))
    return records
