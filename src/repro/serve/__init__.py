"""repro.serve — the real-socket serving plane.

Everything below here exists to answer one question the simulator alone
cannot: *do the DSL machines behave identically when the substrate is a
real kernel socket instead of a discrete-event channel?*  The plane is
built so the question is decidable:

* session apps (:mod:`~repro.serve.apps`) are written against
  ``send(bytes)``/``on_frame(bytes)`` only, so the same behaviour runs
  live and under the simulator;
* every live session can record its exchange
  (:mod:`~repro.serve.record`) in a form the simulator replays
  (:mod:`~repro.serve.replay`);
* :mod:`~repro.serve.loopback` runs both planes against each other and
  reports byte-level divergences (the answer should always be: none).

Operationally the plane carries the full serving feature set — session
demultiplexing with oldest-idle shedding (:mod:`~repro.serve.manager`),
bounded receive queues with UDP drop / TCP pause backpressure
(:mod:`~repro.serve.transport`), retransmission and idle reaping off a
hashed timer wheel (:mod:`~repro.serve.wheel`), and ``repro.obs``
instrumentation throughout (``python -m repro.obs top`` works against a
live server's export stream).

CLI: ``python -m repro.serve {serve,client,loopback}``.
"""

from repro.serve.apps import APPS, SessionApp, build_app
from repro.serve.client import (
    ArqClient,
    HandshakeClient,
    SlidingClient,
    WheelRunner,
    build_client,
)
from repro.serve.framing import FramingError, StreamDeframer, encode_frame
from repro.serve.loopback import (
    LoopbackConfig,
    LoopbackReport,
    run_loopback,
    run_loopback_sync,
)
from repro.serve.manager import Admission, SessionManager, session_seed
from repro.serve.record import (
    ExchangeEvent,
    ExchangeRecord,
    ExchangeRecorder,
    load_records,
    save_records,
)
from repro.serve.replay import (
    DifferentialReport,
    ReplayResult,
    check_trace_against_model,
    replay_record,
    replay_records,
)
from repro.serve.session import Session
from repro.serve.transport import (
    LossyDatagramTransport,
    ServeConfig,
    Server,
    TcpServeProtocol,
    UdpServeProtocol,
)
from repro.serve.wheel import TimerHandle, TimerWheel, WheelTimer

__all__ = [
    "APPS",
    "Admission",
    "ArqClient",
    "DifferentialReport",
    "ExchangeEvent",
    "ExchangeRecord",
    "ExchangeRecorder",
    "FramingError",
    "HandshakeClient",
    "LoopbackConfig",
    "LoopbackReport",
    "LossyDatagramTransport",
    "ReplayResult",
    "ServeConfig",
    "Server",
    "Session",
    "SessionApp",
    "SessionManager",
    "SlidingClient",
    "StreamDeframer",
    "TcpServeProtocol",
    "TimerHandle",
    "TimerWheel",
    "UdpServeProtocol",
    "WheelRunner",
    "WheelTimer",
    "build_app",
    "build_client",
    "check_trace_against_model",
    "encode_frame",
    "load_records",
    "replay_record",
    "replay_records",
    "run_loopback",
    "run_loopback_sync",
    "save_records",
    "session_seed",
]
