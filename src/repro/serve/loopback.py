"""Loopback differential mode: real sockets vs the simulator oracle.

One call stands up the whole experiment on 127.0.0.1:

1. a recording :class:`~repro.serve.transport.Server` on an ephemeral
   UDP port;
2. N concurrent DSL clients (:mod:`repro.serve.client`), each with
   deterministically derived payloads and seeds, optionally speaking
   through seeded loss/duplication/reorder impairment in both
   directions (outbound via
   :class:`~repro.serve.transport.LossyDatagramTransport`, inbound via
   a seeded filter in front of the client's frame handler);
3. every exchange the server recorded replayed through the
   :class:`~repro.netsim.replay.ScriptedHost` oracle and compared
   byte-for-byte (:mod:`repro.serve.replay`).

The report answers the only question that matters: *did the serving
plane host the protocol exactly as the simulator specifies it?*  Loss
and reordering do not perturb the answer — they reshape the recorded
inbound sequence, and the oracle replays that reshaped sequence.
"""

from __future__ import annotations

import asyncio
import random
import zlib
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional

from repro.serve.client import BaseClient, WheelRunner, build_client
from repro.serve.manager import session_seed
from repro.serve.record import ExchangeRecord
from repro.serve.replay import DifferentialReport, replay_records
from repro.serve.transport import LossyDatagramTransport, ServeConfig, Server


@dataclass(frozen=True)
class LoopbackConfig:
    """One loopback differential experiment."""

    protocol: str = "arq"
    clients: int = 4
    messages: int = 6
    payload_size: int = 24
    window: int = 8
    seed: int = 0
    rto: float = 0.08
    loss_rate: float = 0.0
    duplication_rate: float = 0.0
    reorder_rate: float = 0.0
    client_timeout: float = 15.0
    check_model: bool = True


@dataclass
class LoopbackReport:
    """What happened, on both planes."""

    config: LoopbackConfig
    clients: List[Dict[str, Any]] = field(default_factory=list)
    server_stats: Dict[str, int] = field(default_factory=dict)
    records: List[ExchangeRecord] = field(default_factory=list)
    differential: Optional[DifferentialReport] = None

    @property
    def clients_ok(self) -> bool:
        return all(c["ok"] for c in self.clients)

    @property
    def ok(self) -> bool:
        """Clients completed and zero differential divergences."""
        return self.clients_ok and (
            self.differential is None or self.differential.ok
        )

    def summary(self) -> Dict[str, Any]:
        out: Dict[str, Any] = {
            "protocol": self.config.protocol,
            "clients": len(self.clients),
            "clients_ok": sum(1 for c in self.clients if c["ok"]),
            "server": dict(self.server_stats),
            "ok": self.ok,
        }
        if self.differential is not None:
            out["differential"] = self.differential.summary()
        return out


def _derive_rng(seed: int, key: str) -> random.Random:
    """A deterministic per-role RNG (CRC32, never randomized str hash)."""
    return random.Random(zlib.crc32(f"{seed}:{key}".encode()))


def client_messages(config: LoopbackConfig, index: int) -> List[bytes]:
    """The payloads client ``index`` sends — derivable by any checker."""
    rng = _derive_rng(config.seed, f"client:{index}")
    return [
        bytes(rng.randrange(256) for _ in range(config.payload_size))
        for _ in range(config.messages)
    ]


def _lossy_inbound(
    on_frame: Callable[[bytes], None], rng: random.Random, config: LoopbackConfig
) -> Callable[[bytes], None]:
    """Seeded server->client impairment: drop/duplicate before the client."""

    def filtered(data: bytes) -> None:
        if rng.random() < config.loss_rate:
            return
        on_frame(data)
        if rng.random() < config.duplication_rate:
            on_frame(data)

    return filtered


async def run_loopback(config: LoopbackConfig) -> LoopbackReport:
    """Run one differential experiment end to end."""
    loop = asyncio.get_running_loop()
    app_params: Dict[str, Any] = (
        {"window": config.window} if config.protocol == "sliding" else {}
    )
    server = await Server.start(
        ServeConfig(
            protocol=config.protocol,
            kind="udp",
            max_sessions=max(config.clients * 2, 8),
            idle_timeout=max(4.0, config.client_timeout),
            seed=config.seed,
            record=True,
            app_params=app_params,
        )
    )
    runner = WheelRunner(loop).start()
    report = LoopbackReport(config=config)
    clients: List[BaseClient] = []
    impaired = config.loss_rate or config.duplication_rate or config.reorder_rate
    try:
        port = server.udp_port
        assert port is not None
        for index in range(config.clients):
            client = build_client(
                config.protocol,
                runner,
                messages=client_messages(config, index),
                seed=session_seed(config.seed, f"initiator:{index}"),
                rto=config.rto,
                window=config.window,
            )
            if impaired:
                client._on_frame = _lossy_inbound(  # server -> client leg
                    client._on_frame,
                    _derive_rng(config.seed, f"down:{index}"),
                    config,
                )
            await client.connect("127.0.0.1", port)
            if impaired:  # client -> server leg
                client.transport = LossyDatagramTransport(
                    client.transport,
                    loop,
                    seed=zlib.crc32(f"{config.seed}:up:{index}".encode()),
                    loss_rate=config.loss_rate,
                    duplication_rate=config.duplication_rate,
                    reorder_rate=config.reorder_rate,
                )
            clients.append(client)
        for client in clients:
            client.start()
        await asyncio.gather(
            *(client.wait(config.client_timeout) for client in clients)
        )
        # Let in-flight final frames (last acks, dup retransmits) land so
        # the records are complete before sessions are finalized.
        await asyncio.sleep(max(0.05, config.rto))
        for client in clients:
            report.clients.append(client.summary())
        report.server_stats = server.manager.stats()
        server.manager.close_all(reason="experiment")
        report.records = server.manager.collect_records()
    finally:
        for client in clients:
            client.close()
        await runner.close()
        await server.close()
    report.differential = replay_records(
        report.records, check_model=config.check_model
    )
    return report


def run_loopback_sync(config: LoopbackConfig) -> LoopbackReport:
    """Blocking wrapper for tests and the CLI."""
    return asyncio.run(run_loopback(config))
