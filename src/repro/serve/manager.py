"""The session manager: demultiplex, bound, shed, observe.

One :class:`SessionManager` owns every session a listener serves.  It is
deliberately transport-agnostic and synchronous — the asyncio transports
call into it, and the stress tests drive it directly — which keeps the
overload logic (the part that must not be subtly wrong) testable without
sockets or an event loop.

Responsibilities, in the order a frame meets them:

1. **Demultiplex** by peer key.  An unknown peer opens a session: its
   app is built with a peer-derived seed, its packet specs are warmed
   through the :mod:`repro.fastpath` compiled tier *at accept time* (no
   64-call interpreter ramp on a serving path), and an exchange recorder
   is attached when differential recording is on.
2. **Admission under overload.**  When the session table is at
   ``max_sessions``, the *oldest-idle* session is shed to make room —
   the peer that has gone longest without traffic loses its slot, which
   under SYN-flood-shaped load degrades to exactly the behaviour you
   want (half-open strangers are reaped, active transfers survive).
3. **Bounded queueing.**  Each session's receive queue is capped; a full
   queue drops the frame (UDP) or reports congestion so the transport
   pauses reading (TCP).  Drains are deferred through the host's
   ``defer`` hook (``loop.call_soon`` live, inline in tests), so a
   burst arriving in one loop iteration genuinely queues.
4. **Idle reaping** rides the hashed timer wheel lazily: one timer per
   session, rescheduled only when it fires early — no cancel churn on
   the per-frame hot path.

Everything lands on ``repro.obs``: ``serve.sessions_active`` gauge,
open/close/shed/drop counters labeled by reason, per-dispatch spans
(nesting the machine's own ``exec_trans`` spans), and session-lifetime
histograms — so ``python -m repro.obs top`` pointed at a live server's
export stream shows the serving plane breathing.
"""

from __future__ import annotations

import zlib
from typing import Any, Callable, Dict, List, Optional

from repro.fastpath.cache import active_state
from repro.obs.instrument import Instrumentation, get_default
from repro.serve.apps import app_class
from repro.serve.record import ExchangeRecord, ExchangeRecorder
from repro.serve.session import Session
from repro.serve.wheel import TimerWheel

Send = Callable[[bytes], None]
Defer = Callable[[Callable[[], None]], None]


class Admission:
    """What happened to one offered frame."""

    __slots__ = ("accepted", "congested", "session")

    def __init__(self, accepted: bool, congested: bool, session: Session) -> None:
        self.accepted = accepted
        self.congested = congested
        self.session = session


def session_seed(base_seed: int, peer: str) -> int:
    """Deterministic per-peer seed (CRC32, not randomized str hashing)."""
    return zlib.crc32(f"{base_seed}:{peer}".encode())


class SessionManager:
    """Owns the session table for one listener.

    Parameters
    ----------
    protocol:
        Registry key into :data:`repro.serve.apps.APPS`.
    wheel:
        The hashed timer wheel driving idle reaping (and, live, shared
        with the clients' retransmission timers).
    clock:
        Monotonic float source; ``loop.time`` live, hand-advanced in
        tests.
    max_sessions:
        The shed threshold: admitting a new peer beyond this evicts the
        oldest-idle session first.
    max_queue:
        Per-session receive-queue bound.
    idle_timeout:
        Seconds of silence before a session is reaped.  Doubles as the
        protocol timer (the handshake responder's half-open RESET fires
        on reaping).
    app_params:
        Extra keyword arguments for the session app (e.g. ``window``).
    record:
        Attach an exchange recorder to every session (the loopback
        differential mode).
    defer:
        Drain scheduler; defaults to immediate (synchronous) draining.
    """

    def __init__(
        self,
        protocol: str,
        *,
        wheel: TimerWheel,
        clock: Callable[[], float],
        max_sessions: int = 1024,
        max_queue: int = 64,
        idle_timeout: float = 30.0,
        app_params: Optional[Dict[str, Any]] = None,
        seed: int = 0,
        record: bool = False,
        defer: Optional[Defer] = None,
        obs: Optional[Instrumentation] = None,
    ) -> None:
        if max_sessions < 1:
            raise ValueError(f"max_sessions must be positive, got {max_sessions}")
        if max_queue < 1:
            raise ValueError(f"max_queue must be positive, got {max_queue}")
        self.protocol = protocol
        self.app_cls = app_class(protocol)
        self.wheel = wheel
        self.clock = clock
        self.max_sessions = max_sessions
        self.max_queue = max_queue
        self.idle_timeout = idle_timeout
        self.app_params = dict(app_params or {})
        self.seed = seed
        self.record = record
        self.defer: Defer = defer if defer is not None else (lambda fn: fn())
        self.obs = obs if obs is not None else get_default()
        self.sessions: Dict[Any, Session] = {}
        #: Records of *closed* sessions, in close order.
        self.records: List[ExchangeRecord] = []
        self.opened_total = 0
        self.closed_total = 0
        self.shed_total = 0
        self.drop_total = 0
        self._drain_scheduled: Dict[Any, bool] = {}

    # -- the datapath ------------------------------------------------------

    def frame_from(self, peer: Any, data: bytes, send: Send) -> Admission:
        """One inbound frame from ``peer``; the transport's entry point."""
        session = self.sessions.get(peer)
        if session is None:
            session = self._open(peer, send)
        accepted = session.enqueue(data)
        obs = self.obs
        if not accepted:
            self.drop_total += 1
            if obs.enabled:
                obs.registry.counter(
                    "serve.queue_drops", protocol=self.protocol
                ).inc()
        elif not self._drain_scheduled.get(peer):
            self._drain_scheduled[peer] = True
            self.defer(lambda: self._drain(peer))
        return Admission(accepted, session.congested, session)

    def _drain(self, peer: Any) -> None:
        self._drain_scheduled[peer] = False
        session = self.sessions.get(peer)
        if session is None or session.closed:
            return
        obs = self.obs
        now = self.clock()
        while session.queue:
            data = session.queue.popleft()
            if obs.enabled:
                obs.registry.counter(
                    "serve.frames_in", protocol=self.protocol
                ).inc()
                with obs.tracer.span(
                    "serve.dispatch", protocol=self.protocol, peer=str(peer)
                ):
                    session.consume(data, now)
            else:
                session.consume(data, now)
        if session.congested:
            session.congested = False
            resume = session.resume
            if resume is not None:
                resume()

    # -- session lifecycle -------------------------------------------------

    def _open(self, peer: Any, send: Send) -> Session:
        while len(self.sessions) >= self.max_sessions:
            self._shed_oldest_idle()
        now = self.clock()
        seed = session_seed(self.seed, str(peer))
        recorder: Optional[ExchangeRecorder] = None

        def sending(data: bytes) -> None:
            if recorder is not None:
                recorder.frame_out(data)
            obs = self.obs
            if obs.enabled:
                obs.registry.counter(
                    "serve.frames_out", protocol=self.protocol
                ).inc()
            send(data)

        if self.record:
            recorder = ExchangeRecorder(
                protocol=self.protocol,
                peer=str(peer),
                clock=self.clock,
                seed=seed,
                params=self.app_params,
            )
        app = self.app_cls(sending, seed=seed, **self.app_params)
        # Accept-time codec warm-up: every spec this app speaks is pushed
        # straight to the compiled tier (force bypasses the auto ramp; a
        # refused spec simply stays interpreted).
        for spec in app.specs:
            active_state(spec, force=True)
        session = Session(
            peer=str(peer),
            app=app,
            max_queue=self.max_queue,
            opened_at=now,
            recorder=recorder,
        )
        self.sessions[peer] = session
        self.opened_total += 1
        session.idle_handle = self.wheel.schedule(
            self.idle_timeout, lambda: self._idle_check(peer)
        )
        obs = self.obs
        if obs.enabled:
            obs.registry.counter(
                "serve.sessions_opened", protocol=self.protocol
            ).inc()
            obs.registry.gauge("serve.sessions_active").set(len(self.sessions))
            obs.tracer.event(
                "serve.session_open", protocol=self.protocol, peer=str(peer)
            )
        return session

    def _idle_check(self, peer: Any) -> None:
        session = self.sessions.get(peer)
        if session is None or session.closed:
            return
        idle_for = self.clock() - session.last_activity
        if idle_for + 1e-9 >= self.idle_timeout:
            # Protocol timer first (the handshake responder's RESET),
            # then reap the slot.
            session.app.on_timer()
            self.close(peer, reason="idle")
        else:
            # Activity since scheduling: re-arm for the remainder.  This
            # lazy scheme touches the wheel once per timeout window, not
            # once per frame.
            session.idle_handle = self.wheel.schedule(
                self.idle_timeout - idle_for, lambda: self._idle_check(peer)
            )

    def _shed_oldest_idle(self) -> None:
        peer = min(
            self.sessions, key=lambda p: (self.sessions[p].last_activity,)
        )
        self.shed_total += 1
        obs = self.obs
        if obs.enabled:
            obs.registry.counter(
                "serve.sessions_shed", protocol=self.protocol
            ).inc()
        self.close(peer, reason="shed")

    def close(self, peer: Any, reason: str = "peer") -> Optional[Session]:
        """Close one session; returns it (or None if unknown)."""
        session = self.sessions.pop(peer, None)
        if session is None:
            return None
        session.closed = True
        self._drain_scheduled.pop(peer, None)
        if session.idle_handle is not None:
            self.wheel.cancel(session.idle_handle)
            session.idle_handle = None
        if session.recorder is not None:
            self.records.append(session.recorder.record)
        self.closed_total += 1
        obs = self.obs
        if obs.enabled:
            obs.registry.counter(
                "serve.sessions_closed", protocol=self.protocol, reason=reason
            ).inc()
            obs.registry.gauge("serve.sessions_active").set(len(self.sessions))
            obs.registry.histogram(
                "serve.session_seconds", protocol=self.protocol
            ).observe(max(0.0, self.clock() - session.opened_at))
            obs.tracer.event(
                "serve.session_close",
                protocol=self.protocol,
                peer=str(peer),
                reason=reason,
            )
        return session

    def close_all(self, reason: str = "shutdown") -> int:
        """Close every session; returns how many were open."""
        peers = list(self.sessions)
        for peer in peers:
            self.close(peer, reason=reason)
        return len(peers)

    # -- introspection -----------------------------------------------------

    def collect_records(self) -> List[ExchangeRecord]:
        """Closed sessions' records plus the live ones, in open order."""
        live = [
            s.recorder.record
            for s in self.sessions.values()
            if s.recorder is not None
        ]
        return list(self.records) + live

    def stats(self) -> Dict[str, int]:
        """Operator counters (mirrored in obs when enabled)."""
        return {
            "active": len(self.sessions),
            "opened": self.opened_total,
            "closed": self.closed_total,
            "shed": self.shed_total,
            "queue_drops": self.drop_total,
        }

    def __repr__(self) -> str:
        return (
            f"SessionManager({self.protocol!r}, active={len(self.sessions)}, "
            f"max={self.max_sessions})"
        )
