"""The session manager: demultiplex, bound, shed, observe — at density.

One :class:`SessionManager` owns every session a listener serves.  It is
deliberately transport-agnostic and synchronous — the asyncio transports
call into it, and the stress tests drive it directly — which keeps the
overload logic (the part that must not be subtly wrong) testable without
sockets or an event loop.

Responsibilities, in the order a frame meets them:

1. **Demultiplex** by peer key.  The ``peer -> Session`` table is the
   *only* hash lookup on the per-frame path; everything else is slab
   array indexing through the session's slot id
   (:class:`~repro.serve.session.SessionSlab`).  An unknown peer opens a
   session: its app is built over a **cached sealed spec** (one spec and
   one staged dispatch table shared by every session of a protocol —
   rebuilding them per accept was 75% of PR 7's accept cost), its packet
   specs are warmed through the :mod:`repro.fastpath` compiled tier at
   accept time, and an exchange recorder is attached when differential
   recording is on.
2. **Admission under overload.**  When the session table is at
   ``max_sessions``, the *oldest-idle* session is shed to make room.
   Finding it rides a lazy min-heap of ``(last_activity, open_seq,
   generation, slot)`` stamps: activity never touches the heap; a stale
   stamp surfacing at shed time is re-pushed with the current activity
   (exact, amortized O(log n) — the PR 7 ``min()`` scan was O(n) per
   shed, O(n²) under churn at capacity).  Stale stamps left by normal
   closes are compacted away when they outnumber live sessions, the same
   tombstone policy as the simulator's event queue.
3. **Bounded queueing.**  Each session's receive queue is capped; a full
   queue drops the frame (UDP) or reports congestion so the transport
   pauses reading (TCP).  Drains are deferred through the host's
   ``defer`` hook (``loop.call_soon`` live, inline in tests) via a
   **preallocated per-slot callback** — no ``lambda`` per enqueue —
   fenced by the slot generation so a drain that outlives its session
   can never touch a *retired* slot.  The callback is slot-level and
   idempotent: if the slot was re-allocated before a stale firing, it
   runs the new occupant's pending drain early, and the occupant's own
   deferred firing becomes a no-op — delivery is exactly-once either
   way.
4. **Idle reaping** rides the hashed timer wheel lazily: one
   preallocated per-slot timer callback per session, rescheduled only
   when it fires early — no cancel churn and no closure allocation on
   the per-frame hot path.  The wheel itself is shared: live, the
   :class:`~repro.serve.transport.Server` owns one wheel and every
   manager on it schedules there.

The per-frame metric handles (frames in/out, queue drops) are resolved
once through ``MetricsRegistry.handle_cache`` instead of re-resolving
labeled names per frame; everything still lands on ``repro.obs`` —
``serve.sessions_active`` gauge, open/close/shed/drop counters labeled
by reason, per-dispatch spans, and session-lifetime histograms — so
``python -m repro.obs top`` pointed at a live server's export stream
shows the serving plane breathing.
"""

from __future__ import annotations

import heapq
import zlib
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.fastpath.cache import active_state
from repro.obs.instrument import Instrumentation, get_default
from repro.obs.metrics import Counter, Gauge, Histogram, MetricsRegistry
from repro.serve.apps import app_class
from repro.serve.record import ExchangeRecord, ExchangeRecorder
from repro.serve.session import Session, SessionSlab
from repro.serve.wheel import TimerWheel

Send = Callable[[bytes], None]
Defer = Callable[[Callable[[], None]], None]

#: Compact the shed heap when stale stamps exceed live sessions by this
#: margin (hysteresis so tiny tables never bother).
_HEAP_SLACK = 16


class Admission:
    """What happened to one offered frame.

    The manager reuses **one** :class:`Admission` instance across
    :meth:`SessionManager.frame_from` calls (the demux hot path allocates
    nothing); read it before offering the next frame, copy the fields if
    you must keep them.
    """

    __slots__ = ("accepted", "congested", "session")

    def __init__(
        self, accepted: bool, congested: bool, session: Optional[Session]
    ) -> None:
        self.accepted = accepted
        self.congested = congested
        self.session = session


class SendFactory:
    """Defer building a per-peer send until a session actually opens.

    Datagram transports receive thousands of frames for peers they
    already know; wrapping the ``peer -> send`` factory lets them pass
    one long-lived object to :meth:`SessionManager.frame_from` instead of
    closing over the address per datagram.  The manager calls the factory
    exactly once, at session open.
    """

    __slots__ = ("build",)

    def __init__(self, build: Callable[[Any], Send]) -> None:
        self.build = build

    def __call__(self, peer: Any) -> Send:
        return self.build(peer)


class _DrainTask:
    """Preallocated per-slot drain callback (reused across occupants)."""

    __slots__ = ("manager", "slot", "gen")

    def __init__(self, manager: "SessionManager", slot: int) -> None:
        self.manager = manager
        self.slot = slot
        self.gen = -1

    def __call__(self) -> None:
        self.manager._drain_slot(self.slot, self.gen)


class _IdleTask:
    """Preallocated per-slot idle-check callback with a generation fence."""

    __slots__ = ("manager", "slot", "gen")

    def __init__(self, manager: "SessionManager", slot: int) -> None:
        self.manager = manager
        self.slot = slot
        self.gen = -1

    def __call__(self) -> None:
        self.manager._idle_check(self.slot, self.gen)


class _MetricHandles:
    """Pre-resolved serve metric handles for one protocol.

    Cached in the registry's ``handle_cache("serve")`` so the per-frame
    path pays one dict ``get`` instead of name resolution plus label
    sorting; ``registry.clear()`` empties the cache (handles would be
    stale), ``reset()`` keeps it (instances survive).
    """

    __slots__ = (
        "registry",
        "protocol",
        "frames_in",
        "frames_out",
        "queue_drops",
        "opened",
        "shed",
        "active",
        "seconds",
        "_closed",
    )

    def __init__(self, registry: MetricsRegistry, protocol: str) -> None:
        self.registry = registry
        self.protocol = protocol
        self.frames_in: Counter = registry.counter(
            "serve.frames_in", protocol=protocol
        )
        self.frames_out: Counter = registry.counter(
            "serve.frames_out", protocol=protocol
        )
        self.queue_drops: Counter = registry.counter(
            "serve.queue_drops", protocol=protocol
        )
        self.opened: Counter = registry.counter(
            "serve.sessions_opened", protocol=protocol
        )
        self.shed: Counter = registry.counter(
            "serve.sessions_shed", protocol=protocol
        )
        self.active: Gauge = registry.gauge("serve.sessions_active")
        self.seconds: Histogram = registry.histogram(
            "serve.session_seconds", protocol=protocol
        )
        self._closed: Dict[str, Counter] = {}

    def closed(self, reason: str) -> Counter:
        handle = self._closed.get(reason)
        if handle is None:
            handle = self._closed[reason] = self.registry.counter(
                "serve.sessions_closed", protocol=self.protocol, reason=reason
            )
        return handle


def session_seed(base_seed: int, peer: str) -> int:
    """Deterministic per-peer seed (CRC32, not randomized str hashing)."""
    return zlib.crc32(f"{base_seed}:{peer}".encode())


class SessionManager:
    """Owns the session table for one listener.

    Parameters
    ----------
    protocol:
        Registry key into :data:`repro.serve.apps.APPS`.
    wheel:
        The hashed timer wheel driving idle reaping.  Live, this is the
        owning :class:`~repro.serve.transport.Server`'s wheel, shared by
        every manager (and ticked once); tests hand-advance it.
    clock:
        Monotonic float source; ``loop.time`` live, hand-advanced in
        tests.
    max_sessions:
        The shed threshold: admitting a new peer beyond this evicts the
        oldest-idle session first.
    max_queue:
        Per-session receive-queue bound.
    idle_timeout:
        Seconds of silence before a session is reaped.  Doubles as the
        protocol timer (the handshake responder's half-open RESET fires
        on reaping).
    app_params:
        Extra keyword arguments for the session app (e.g. ``window``).
    record:
        Attach an exchange recorder to every session (the loopback
        differential mode).
    defer:
        Drain scheduler; defaults to immediate (synchronous) draining.
    """

    def __init__(
        self,
        protocol: str,
        *,
        wheel: TimerWheel,
        clock: Callable[[], float],
        max_sessions: int = 1024,
        max_queue: int = 64,
        idle_timeout: float = 30.0,
        app_params: Optional[Dict[str, Any]] = None,
        seed: int = 0,
        record: bool = False,
        defer: Optional[Defer] = None,
        obs: Optional[Instrumentation] = None,
    ) -> None:
        if max_sessions < 1:
            raise ValueError(f"max_sessions must be positive, got {max_sessions}")
        if max_queue < 1:
            raise ValueError(f"max_queue must be positive, got {max_queue}")
        self.protocol = protocol
        self.app_cls = app_class(protocol)
        self.wheel = wheel
        self.clock = clock
        self.max_sessions = max_sessions
        self.max_queue = max_queue
        self.idle_timeout = idle_timeout
        self.app_params = dict(app_params or {})
        self.seed = seed
        self.record = record
        self.defer: Defer = defer if defer is not None else (lambda fn: fn())
        self.obs = obs if obs is not None else get_default()
        #: ``peer -> Session`` — the datapath's one hash lookup.  Views
        #: stay valid after close (frozen); the dict holds live ones only.
        self.sessions: Dict[Any, Session] = {}
        self.slab = SessionSlab(max_queue=max_queue)
        #: Records of *closed* sessions, in close order.
        self.records: List[ExchangeRecord] = []
        self.opened_total = 0
        self.closed_total = 0
        self.shed_total = 0
        self.drop_total = 0
        # Preallocated per-slot callbacks, extended with slab capacity.
        self._drain_tasks: List[_DrainTask] = []
        self._idle_tasks: List[_IdleTask] = []
        # Oldest-idle shed heap: (last_activity, open_seq, generation,
        # slot).  open_seq breaks activity ties in open order, matching
        # the PR 7 min()-over-insertion-order semantics exactly.
        self._idle_heap: List[Tuple[float, int, int, int]] = []
        self._heap_stale = 0
        self._open_seq = 0
        self._admission = Admission(False, False, None)

    # -- observability plumbing --------------------------------------------

    def _handles(self) -> _MetricHandles:
        """The pre-resolved metric handles (one registry lookup, cached)."""
        registry = self.obs.registry
        cache = registry.handle_cache("serve")
        handles = cache.get(self.protocol)
        if handles is None:
            handles = _MetricHandles(registry, self.protocol)
            cache[self.protocol] = handles
        return handles

    # -- the datapath ------------------------------------------------------

    def frame_from(self, peer: Any, data: bytes, send: Any) -> Admission:
        """One inbound frame from ``peer``; the transport's entry point.

        ``send`` is consulted only when this frame *opens* a session: it
        is either the per-peer send callable itself or a
        :class:`SendFactory` the manager invokes with the peer key.  For
        frames on existing sessions it is ignored (the open-time send is
        kept), so transports can pass one long-lived object and the hot
        path allocates nothing.  The returned :class:`Admission` is
        reused across calls.
        """
        session = self.sessions.get(peer)
        if session is None:
            session = self._open(peer, send)
        slab = self.slab
        slot = session._slot
        queue = slab.queue[slot]
        admission = self._admission
        if len(queue) >= self.max_queue:
            slab.drops[slot] += 1
            slab.congested[slot] = True
            self.drop_total += 1
            if self.obs.enabled:
                self._handles().queue_drops.inc()
            admission.accepted = False
        else:
            queue.append(data)
            if len(queue) >= self.max_queue:
                slab.congested[slot] = True
            if not slab.drain_scheduled[slot]:
                slab.drain_scheduled[slot] = True
                task = self._drain_tasks[slot]
                task.gen = slab.generation[slot]
                self.defer(task)
            admission.accepted = True
        admission.congested = slab.congested[slot]
        admission.session = session
        return admission

    def _drain_slot(self, slot: int, gen: int) -> None:
        slab = self.slab
        if slab.generation[slot] != gen or slab.closed[slot]:
            return  # the session this drain was scheduled for is gone
        slab.drain_scheduled[slot] = False
        queue = slab.queue[slot]
        if queue:
            app = slab.app[slot]
            recorder = slab.recorder[slot]
            slab.last_activity[slot] = self.clock()
            obs = self.obs
            if obs.enabled:
                frames_in = self._handles().frames_in
                span = obs.tracer.span
                peer_name = str(slab.peer[slot])
                protocol = self.protocol
                while queue:
                    data = queue.popleft()
                    if recorder is not None:
                        recorder.frame_in(data)
                    frames_in.inc()
                    with span(
                        "serve.dispatch", protocol=protocol, peer=peer_name
                    ):
                        app.on_frame(data)
            else:
                while queue:
                    data = queue.popleft()
                    if recorder is not None:
                        recorder.frame_in(data)
                    app.on_frame(data)
        if slab.congested[slot]:
            slab.congested[slot] = False
            resume = slab.resume[slot]
            if resume is not None:
                resume()

    # -- session lifecycle -------------------------------------------------

    def _open(self, peer: Any, send: Any) -> Session:
        slab = self.slab
        while slab.live >= self.max_sessions:
            self._shed_oldest_idle()
        now = self.clock()
        seed = session_seed(self.seed, str(peer))
        recorder: Optional[ExchangeRecorder] = None
        if self.record:
            recorder = ExchangeRecorder(
                protocol=self.protocol,
                peer=str(peer),
                clock=self.clock,
                seed=seed,
                params=self.app_params,
            )
        if type(send) is SendFactory:
            send = send(peer)

        def sending(data: bytes, _send: Send = send) -> None:
            if recorder is not None:
                recorder.frame_out(data)
            if self.obs.enabled:
                self._handles().frames_out.inc()
            _send(data)

        app = self.app_cls(sending, seed=seed, **self.app_params)
        # Accept-time codec warm-up: every spec this app speaks is pushed
        # straight to the compiled tier (force bypasses the auto ramp; a
        # refused spec simply stays interpreted).  The specs are shared
        # class constants, so after the first session this is a cached
        # status check, not a compile.
        for spec in app.specs:
            active_state(spec, force=True)
        slot = slab.alloc(peer, app, send, now, recorder)
        while len(self._drain_tasks) <= slot:
            index = len(self._drain_tasks)
            self._drain_tasks.append(_DrainTask(self, index))
            self._idle_tasks.append(_IdleTask(self, index))
        session = slab.handle[slot]
        assert session is not None
        self.sessions[peer] = session
        self.opened_total += 1
        self._open_seq += 1
        gen = slab.generation[slot]
        heapq.heappush(self._idle_heap, (now, self._open_seq, gen, slot))
        idle_task = self._idle_tasks[slot]
        idle_task.gen = gen
        slab.idle_handle[slot] = self.wheel.schedule(
            self.idle_timeout, idle_task
        )
        obs = self.obs
        if obs.enabled:
            handles = self._handles()
            handles.opened.inc()
            handles.active.set(slab.live)
            obs.tracer.event(
                "serve.session_open", protocol=self.protocol, peer=str(peer)
            )
        return session

    def _idle_check(self, slot: int, gen: int) -> None:
        slab = self.slab
        if slab.generation[slot] != gen or slab.closed[slot]:
            return  # stale timer: the slot was retired (maybe reused)
        idle_for = self.clock() - slab.last_activity[slot]
        if idle_for + 1e-9 >= self.idle_timeout:
            # Protocol timer first (the handshake responder's RESET),
            # then reap the slot.
            slab.app[slot].on_timer()
            self.close(slab.peer[slot], reason="idle")
        else:
            # Activity since scheduling: re-arm for the remainder.  This
            # lazy scheme touches the wheel once per timeout window, not
            # once per frame — and reuses the same callback object.
            task = self._idle_tasks[slot]
            task.gen = gen
            slab.idle_handle[slot] = self.wheel.schedule(
                self.idle_timeout - idle_for, task
            )

    def _shed_oldest_idle(self) -> None:
        slab = self.slab
        heap = self._idle_heap
        while heap:
            stamp, seq, gen, slot = heap[0]
            if slab.generation[slot] != gen or slab.closed[slot]:
                heapq.heappop(heap)  # tombstone from a normal close
                self._heap_stale = max(0, self._heap_stale - 1)
                continue
            current = slab.last_activity[slot]
            if current > stamp:
                # The session was active since this stamp: refresh the
                # entry in place and look again (exact lazy deletion).
                heapq.heapreplace(heap, (current, seq, gen, slot))
                continue
            heapq.heappop(heap)
            self.shed_total += 1
            if self.obs.enabled:
                self._handles().shed.inc()
            self.close(slab.peer[slot], reason="shed")
            return
        raise RuntimeError(
            "shed requested with no shedable session "
            f"(live={slab.live}, max={self.max_sessions})"
        )

    def close(self, peer: Any, reason: str = "peer") -> Optional[Session]:
        """Close one session; returns its (frozen) view, or None."""
        session = self.sessions.pop(peer, None)
        if session is None:
            return None
        slab = self.slab
        slot = session._slot
        idle_handle = slab.idle_handle[slot]
        if idle_handle is not None:
            self.wheel.cancel(idle_handle)
        recorder = slab.recorder[slot]
        if recorder is not None:
            self.records.append(recorder.record)
        opened_at = slab.opened_at[slot]
        slab.retire(slot)  # freezes the view, bumps the generation
        if reason != "shed":
            # A shed already popped its heap stamp; any other close
            # leaves one behind.  Compact when tombstones outnumber the
            # live table (amortized O(1) per close).
            self._heap_stale += 1
            if self._heap_stale > slab.live + _HEAP_SLACK:
                self._idle_heap = [
                    entry
                    for entry in self._idle_heap
                    if slab.generation[entry[3]] == entry[2]
                    and not slab.closed[entry[3]]
                ]
                heapq.heapify(self._idle_heap)
                self._heap_stale = 0
        self.closed_total += 1
        obs = self.obs
        if obs.enabled:
            handles = self._handles()
            handles.closed(reason).inc()
            handles.active.set(slab.live)
            handles.seconds.observe(max(0.0, self.clock() - opened_at))
            obs.tracer.event(
                "serve.session_close",
                protocol=self.protocol,
                peer=str(peer),
                reason=reason,
            )
        return session

    def close_all(self, reason: str = "shutdown") -> int:
        """Close every session; returns how many were open."""
        peers = list(self.sessions)
        for peer in peers:
            self.close(peer, reason=reason)
        return len(peers)

    # -- introspection -----------------------------------------------------

    def collect_records(self) -> List[ExchangeRecord]:
        """Closed sessions' records plus the live ones, in open order."""
        live = [
            s.recorder.record
            for s in self.sessions.values()
            if s.recorder is not None
        ]
        return list(self.records) + live

    def stats(self) -> Dict[str, int]:
        """Operator counters (mirrored in obs when enabled)."""
        return {
            "active": self.slab.live,
            "opened": self.opened_total,
            "closed": self.closed_total,
            "shed": self.shed_total,
            "queue_drops": self.drop_total,
        }

    def __repr__(self) -> str:
        return (
            f"SessionManager({self.protocol!r}, active={self.slab.live}, "
            f"max={self.max_sessions})"
        )
