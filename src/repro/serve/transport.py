"""The asyncio transport layer: real sockets under the session manager.

Three pieces:

* :class:`UdpServeProtocol` — one datagram endpoint, sessions keyed by
  source address.  Overflowing a session's queue drops the datagram
  (the only backpressure UDP offers) and counts it.
* :class:`TcpServeProtocol` — one connection per session, frames
  restored by :class:`~repro.serve.framing.StreamDeframer`.  A full
  session queue pauses the connection's read side until the manager
  drains it — genuine backpressure, propagated to the peer's send
  buffer by TCP itself.
* :class:`Server` — binds either (or both) listener kinds, owns the
  hashed timer wheel and its tick task, publishes obs snapshots to the
  ``REPRO_OBS_EXPORT`` plane while running, and tears everything down
  cleanly.

:class:`LossyDatagramTransport` is the test/demo impairment shim: a
``tc netem``-style wrapper over a real ``DatagramTransport`` that
drops, duplicates, reorders and delays outbound datagrams from a seeded
RNG — loss the differential oracle never needs to model, because its
effects are visible in what the endpoints actually received.
"""

from __future__ import annotations

import asyncio
import random
from dataclasses import dataclass, field as dataclass_field
from typing import Any, Dict, Optional, Tuple

from repro.obs.instrument import Instrumentation, get_default
from repro.serve.framing import FramingError, StreamDeframer, encode_frame
from repro.serve.manager import SendFactory, SessionManager
from repro.serve.wheel import TimerWheel


@dataclass(frozen=True)
class ServeConfig:
    """Everything a listener needs; the CLI maps straight onto this."""

    protocol: str = "arq"
    host: str = "127.0.0.1"
    port: int = 0  # 0: let the kernel pick (tests)
    kind: str = "udp"  # "udp" | "tcp" | "both"
    max_sessions: int = 1024
    max_queue: int = 64
    idle_timeout: float = 30.0
    wheel_tick: float = 0.005
    wheel_slots: int = 512
    seed: int = 0
    record: bool = False
    app_params: Dict[str, Any] = dataclass_field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in ("udp", "tcp", "both"):
            raise ValueError(f"kind must be udp|tcp|both, got {self.kind!r}")


class UdpServeProtocol(asyncio.DatagramProtocol):
    """Datagram listener: every source address is a session.

    The per-datagram path passes one long-lived :class:`SendFactory` to
    the manager; the per-peer send closure is built exactly once, when a
    session opens — a frame on an existing session allocates nothing
    here.
    """

    def __init__(self, manager: SessionManager) -> None:
        self.manager = manager
        self.transport: Optional[asyncio.DatagramTransport] = None
        self._send_factory: Optional[SendFactory] = None

    def connection_made(self, transport: asyncio.BaseTransport) -> None:
        self.transport = transport  # type: ignore[assignment]
        sendto = transport.sendto  # type: ignore[attr-defined]

        def build(addr: Tuple[str, int]) -> Any:
            def send(frame: bytes, _addr: Tuple[str, int] = addr) -> None:
                sendto(frame, _addr)

            return send

        self._send_factory = SendFactory(build)

    def datagram_received(self, data: bytes, addr: Tuple[str, int]) -> None:
        if self.transport is None:
            return
        self.manager.frame_from(addr, data, self._send_factory)


class TcpServeProtocol(asyncio.Protocol):
    """Stream listener: one connection, one session, framed frames."""

    def __init__(self, manager: SessionManager) -> None:
        self.manager = manager
        self.transport: Optional[asyncio.Transport] = None
        self.deframer = StreamDeframer()
        self.peer: Any = None
        self._paused = False
        self._send: Any = None

    def connection_made(self, transport: asyncio.BaseTransport) -> None:
        self.transport = transport  # type: ignore[assignment]
        self.peer = transport.get_extra_info("peername")
        write = transport.write  # type: ignore[attr-defined]

        # One send closure per connection (the manager captures it at
        # session open), not one per received chunk.
        def send(frame: bytes) -> None:
            write(encode_frame(frame))

        self._send = send

    def data_received(self, data: bytes) -> None:
        transport = self.transport
        if transport is None:
            return
        try:
            frames = self.deframer.feed(data)
        except FramingError:
            # A desynchronized stream cannot be re-synchronized; kill it.
            self.manager.close(self.peer, reason="framing")
            transport.close()
            return
        for frame in frames:
            admission = self.manager.frame_from(self.peer, frame, self._send)
            if admission.congested and not self._paused:
                # Backpressure: stop reading until the manager drains.
                self._paused = True
                admission.session.resume = self._resume
                try:
                    transport.pause_reading()
                except (AttributeError, RuntimeError):
                    self._paused = False  # transport cannot pause; drop-only

    def _resume(self) -> None:
        if not self._paused:
            return
        self._paused = False
        transport = self.transport
        if transport is not None:
            try:
                transport.resume_reading()
            except RuntimeError:
                pass  # already closing

    def connection_lost(self, exc: Optional[Exception]) -> None:
        if self.peer is not None:
            self.manager.close(self.peer, reason="peer")


class LossyDatagramTransport:
    """Seeded netem-style impairment over a real datagram transport.

    Wraps ``sendto``: each outbound datagram may be dropped, duplicated,
    or delayed (delay past a later frame = reordering on the wire).  All
    randomness flows from the seeded RNG, so a test's *impairment
    decisions* are reproducible even though socket timing is not — the
    differential harness depends only on the former.
    """

    def __init__(
        self,
        transport: asyncio.DatagramTransport,
        loop: asyncio.AbstractEventLoop,
        seed: int = 0,
        loss_rate: float = 0.0,
        duplication_rate: float = 0.0,
        reorder_rate: float = 0.0,
        reorder_delay: float = 0.02,
    ) -> None:
        self.transport = transport
        self.loop = loop
        self.rng = random.Random(seed)
        self.loss_rate = loss_rate
        self.duplication_rate = duplication_rate
        self.reorder_rate = reorder_rate
        self.reorder_delay = reorder_delay
        self.sent = 0
        self.dropped = 0
        self.duplicated = 0
        self.reordered = 0

    def sendto(self, data: bytes, addr: Any = None) -> None:
        self.sent += 1
        if self.rng.random() < self.loss_rate:
            self.dropped += 1
            return
        copies = 1
        if self.rng.random() < self.duplication_rate:
            copies = 2
            self.duplicated += 1
        for _ in range(copies):
            if self.rng.random() < self.reorder_rate:
                self.reordered += 1
                self.loop.call_later(
                    self.reorder_delay, self._send_now, data, addr
                )
            else:
                self._send_now(data, addr)

    def _send_now(self, data: bytes, addr: Any) -> None:
        if not self.transport.is_closing():
            self.transport.sendto(data, addr)

    def close(self) -> None:
        self.transport.close()

    def is_closing(self) -> bool:
        return self.transport.is_closing()

    def __getattr__(self, name: str) -> Any:
        return getattr(self.transport, name)


class Server:
    """A bound serving plane: listeners + wheel tick + telemetry export.

    The server owns **one** :class:`TimerWheel`; every manager it hosts
    (the primary listener's plus any added through :meth:`add_listener`)
    schedules into it, so a multi-protocol server ticks one wheel and
    reaps every protocol's idle sessions in the same batch — not one
    tick task per manager.
    """

    def __init__(
        self,
        config: ServeConfig,
        loop: asyncio.AbstractEventLoop,
        obs: Optional[Instrumentation] = None,
    ) -> None:
        self.config = config
        self.loop = loop
        self.obs = obs if obs is not None else get_default()
        self.wheel = TimerWheel(
            tick=config.wheel_tick, slots=config.wheel_slots, now=loop.time()
        )
        self.managers: list[SessionManager] = []
        self.manager = self._make_manager(config)
        self.udp_transport: Optional[asyncio.DatagramTransport] = None
        self.tcp_server: Optional[asyncio.AbstractServer] = None
        self._extra_udp: list[asyncio.DatagramTransport] = []
        self._tick_task: Optional[asyncio.Task] = None
        self._exporter: Any = None
        self._export_every = 0.25
        self._last_export = 0.0

    def _make_manager(self, config: ServeConfig) -> SessionManager:
        manager = SessionManager(
            config.protocol,
            wheel=self.wheel,  # shared: one wheel serves every manager
            clock=self.loop.time,
            max_sessions=config.max_sessions,
            max_queue=config.max_queue,
            idle_timeout=config.idle_timeout,
            app_params=config.app_params,
            seed=config.seed,
            record=config.record,
            defer=self.loop.call_soon,
            obs=self.obs,
        )
        self.managers.append(manager)
        return manager

    async def add_listener(self, config: ServeConfig) -> SessionManager:
        """Bind an additional UDP listener with its own manager.

        The new manager rides this server's wheel and tick task —
        wheel-sharing across managers is the point (see
        ``tests/test_timer_wheel.py`` for the interleaving guarantees).
        Returns the manager so callers can inspect its sessions/stats.
        """
        if config.kind != "udp":
            raise ValueError(
                f"add_listener supports udp listeners, got {config.kind!r}"
            )
        manager = self._make_manager(config)
        transport, _ = await self.loop.create_datagram_endpoint(
            lambda: UdpServeProtocol(manager),
            local_addr=(config.host, config.port),
        )
        self._extra_udp.append(transport)
        return manager

    @classmethod
    async def start(
        cls,
        config: ServeConfig,
        obs: Optional[Instrumentation] = None,
    ) -> "Server":
        """Bind the configured listeners and start ticking the wheel."""
        loop = asyncio.get_running_loop()
        server = cls(config, loop, obs=obs)
        if config.kind in ("udp", "both"):
            transport, _ = await loop.create_datagram_endpoint(
                lambda: UdpServeProtocol(server.manager),
                local_addr=(config.host, config.port),
            )
            server.udp_transport = transport
        if config.kind in ("tcp", "both"):
            tcp_port = config.port
            if config.kind == "both" and config.port == 0 and server.udp_transport:
                tcp_port = 0  # independent ephemeral ports
            server.tcp_server = await loop.create_server(
                lambda: TcpServeProtocol(server.manager),
                host=config.host,
                port=tcp_port,
            )
        # Telemetry export plane: same env contract as the worker pool.
        from repro.obs.live.expose import Exporter

        server._exporter = Exporter.from_env()
        server._tick_task = loop.create_task(server._tick_forever())
        return server

    @property
    def udp_port(self) -> Optional[int]:
        """The bound UDP port (None when not listening on UDP)."""
        if self.udp_transport is None:
            return None
        return self.udp_transport.get_extra_info("sockname")[1]

    @property
    def tcp_port(self) -> Optional[int]:
        """The bound TCP port (None when not listening on TCP)."""
        if self.tcp_server is None or not self.tcp_server.sockets:
            return None
        return self.tcp_server.sockets[0].getsockname()[1]

    async def _tick_forever(self) -> None:
        tick = self.config.wheel_tick
        try:
            while True:
                await asyncio.sleep(tick)
                now = self.loop.time()
                self.wheel.advance(now)
                exporter = self._exporter
                if (
                    exporter is not None
                    and self.obs.enabled
                    and now - self._last_export >= self._export_every
                ):
                    self._last_export = now
                    exporter.publish(self.obs.registry.snapshot())
        except asyncio.CancelledError:
            pass

    async def close(self) -> None:
        """Stop listeners, reap sessions, stop the wheel and exporter."""
        if self._tick_task is not None:
            self._tick_task.cancel()
            try:
                await self._tick_task
            except asyncio.CancelledError:
                pass
            self._tick_task = None
        if self.udp_transport is not None:
            self.udp_transport.close()
            self.udp_transport = None
        for transport in self._extra_udp:
            transport.close()
        self._extra_udp.clear()
        if self.tcp_server is not None:
            self.tcp_server.close()
            await self.tcp_server.wait_closed()
            self.tcp_server = None
        for manager in self.managers:
            manager.close_all(reason="shutdown")
        if self._exporter is not None:
            try:
                self._exporter.close()
            except Exception:
                pass
            self._exporter = None
