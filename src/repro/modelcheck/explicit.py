"""Breadth-first explicit-state exploration of machine specs.

The explorer enumerates every concrete configuration —
(state, parameter values) — reachable from an initial configuration,
following transitions whose guards it can discharge:

* symbolic guards are evaluated exactly over the candidate bindings;
* callable guards (which may inspect payloads the model cannot know) are
  treated as *may-fire* — a sound over-approximation that mirrors the
  "approximate model" the paper criticizes in §4.2 (a model checker sees
  more behaviours than the implementation has);
* transitions with declared inputs enumerate them over caller-supplied
  finite domains.

Parameter domains default to each :class:`~repro.core.Param`'s declared
bit width (``2**bits`` values); the ``abstraction`` knob truncates domains
to fewer values, reproducing the hand-simplification trade-off.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.core.statemachine import MachineSpec, StateInstance, TransitionSpec
from repro.core.symbolic import Predicate, UnificationError

InputDomains = Mapping[str, Mapping[str, Iterable[int]]]
"""Per-transition, per-input finite domains: ``{"ACK": {"ack": range(8)}}``."""


class ExplorationBudgetExceeded(RuntimeError):
    """Raised when the reachable state space outgrows ``max_states``.

    This *is* the paper's state-explosion limitation, surfaced as an
    exception rather than an out-of-memory condition.
    """

    def __init__(self, machine_name: str, budget: int) -> None:
        self.machine_name = machine_name
        self.budget = budget
        super().__init__(
            f"machine {machine_name!r}: reachable state space exceeds "
            f"{budget} states (state explosion)"
        )


@dataclass(frozen=True)
class CounterExample:
    """A violating configuration plus the transition path that reaches it."""

    state: StateInstance
    path: Tuple[str, ...]

    def __str__(self) -> str:
        trail = " -> ".join(self.path) if self.path else "<initial>"
        return f"{self.state!r} via {trail}"


@dataclass
class ModelCheckResult:
    """Everything the explorer learned about the reachable space."""

    machine_name: str
    states_visited: int
    edges_traversed: int
    deadlocks: List[StateInstance]
    approximated_transitions: List[str]
    elapsed_seconds: float
    initial: StateInstance
    _predecessors: Dict[StateInstance, Tuple[Optional[StateInstance], Optional[str]]] = field(
        default_factory=dict, repr=False
    )
    _states: List[StateInstance] = field(default_factory=list, repr=False)
    _edges: Dict[StateInstance, List[Tuple[str, StateInstance]]] = field(
        default_factory=dict, repr=False
    )

    @property
    def deadlock_free(self) -> bool:
        """True when every reachable non-final state has a way out."""
        return not self.deadlocks

    def path_to(self, state: StateInstance) -> Tuple[str, ...]:
        """Transition names from the initial configuration to ``state``."""
        names: List[str] = []
        cursor: Optional[StateInstance] = state
        while cursor is not None:
            predecessor, transition = self._predecessors.get(cursor, (None, None))
            if transition is not None:
                names.append(transition)
            cursor = predecessor
        return tuple(reversed(names))

    def reachable_states(self) -> List[StateInstance]:
        """Every reachable configuration, in discovery order."""
        return list(self._states)

    def successors(self, state: StateInstance) -> List[Tuple[str, StateInstance]]:
        """Outgoing (transition name, next state) edges of a configuration."""
        return list(self._edges.get(state, []))

    def all_can_reach_final(self) -> List[StateInstance]:
        """Configurations from which no final state is reachable.

        An empty list certifies the paper's guarantee 4 at the model level:
        every run can still end in a consistent (final) state.
        """
        final_states = {s for s in self._states if s.is_final}
        # Reverse reachability from final states.
        reverse: Dict[StateInstance, List[StateInstance]] = {}
        for source, edges in self._edges.items():
            for _, target in edges:
                reverse.setdefault(target, []).append(source)
        can_finish = set(final_states)
        frontier = list(final_states)
        while frontier:
            current = frontier.pop()
            for predecessor in reverse.get(current, []):
                if predecessor not in can_finish:
                    can_finish.add(predecessor)
                    frontier.append(predecessor)
        return [s for s in self._states if s not in can_finish]


def explore(
    spec: MachineSpec,
    initial: Optional[StateInstance] = None,
    input_domains: Optional[InputDomains] = None,
    abstraction: Optional[int] = None,
    max_states: int = 1_000_000,
) -> ModelCheckResult:
    """Exhaustively explore the reachable configurations of ``spec``.

    Parameters
    ----------
    spec:
        A (sealed or unsealed) machine spec — the model *is* the
        implementation's spec, eliminating transcription errors.
    initial:
        Starting configuration; defaults to the declared initial state
        with zero parameters.
    input_domains:
        Finite domains for transitions with execution-time inputs; a
        transition with inputs but no domain is recorded as approximated
        and skipped.
    abstraction:
        Truncate every parameter domain to at most this many values — the
        "simplified (and so unrealistic) representation" of §4.2.
    max_states:
        Exploration budget; exceeding it raises
        :class:`ExplorationBudgetExceeded`.
    """
    started = time.perf_counter()
    if initial is None:
        initial_specs = spec.initial_states
        if not initial_specs:
            raise ValueError(f"machine {spec.name!r} declares no initial state")
        initial = initial_specs[0].instance(*([0] * initial_specs[0].arity))
    visited: Dict[StateInstance, None] = {initial: None}
    predecessors: Dict[StateInstance, Tuple[Optional[StateInstance], Optional[str]]] = {
        initial: (None, None)
    }
    edges: Dict[StateInstance, List[Tuple[str, StateInstance]]] = {}
    approximated: List[str] = []
    deadlocks: List[StateInstance] = []
    edge_count = 0
    frontier: List[StateInstance] = [initial]
    while frontier:
        current = frontier.pop(0)
        outgoing: List[Tuple[str, StateInstance]] = []
        for transition in spec.transitions_from(current.state.name):
            for target in _successors(
                spec, transition, current, input_domains, abstraction, approximated
            ):
                outgoing.append((transition.name, target))
                edge_count += 1
                if target not in visited:
                    if len(visited) >= max_states:
                        raise ExplorationBudgetExceeded(spec.name, max_states)
                    visited[target] = None
                    predecessors[target] = (current, transition.name)
                    frontier.append(target)
        edges[current] = outgoing
        if not outgoing and not current.is_final:
            deadlocks.append(current)
    return ModelCheckResult(
        machine_name=spec.name,
        states_visited=len(visited),
        edges_traversed=edge_count,
        deadlocks=deadlocks,
        approximated_transitions=sorted(set(approximated)),
        elapsed_seconds=time.perf_counter() - started,
        initial=initial,
        _predecessors=predecessors,
        _states=list(visited),
        _edges=edges,
    )


def successors_of(
    spec: MachineSpec,
    transition: TransitionSpec,
    current: StateInstance,
    input_domains: Optional[InputDomains] = None,
    abstraction: Optional[int] = None,
) -> Tuple[List[StateInstance], bool]:
    """One-step model semantics: targets of ``transition`` from ``current``.

    Returns ``(targets, approximated)`` where ``approximated`` is True when
    the model had to over- or under-approximate — a callable (payload-
    dependent) guard was treated as may-fire, or the transition declares
    inputs without a caller-supplied domain (no targets enumerable).

    This is the same semantics :func:`explore` applies edge by edge,
    exposed for on-the-fly conformance checking against the runtime —
    usable even when the full reachable space is unbounded.
    """
    approximated: List[str] = []
    targets = _successors(
        spec, transition, current, input_domains, abstraction, approximated
    )
    return targets, bool(approximated)


def _successors(
    spec: MachineSpec,
    transition: TransitionSpec,
    current: StateInstance,
    input_domains: Optional[InputDomains],
    abstraction: Optional[int],
    approximated: List[str],
) -> List[StateInstance]:
    try:
        base_bindings = transition.source.match(current)
    except UnificationError:
        return []
    input_names = transition.inputs
    if input_names:
        domains = (input_domains or {}).get(transition.name)
        if domains is None or any(name not in domains for name in input_names):
            approximated.append(transition.name)
            return []
        value_lists = [list(domains[name]) for name in input_names]
        candidates = [
            dict(base_bindings, **dict(zip(input_names, combo)))
            for combo in itertools.product(*value_lists)
        ]
    else:
        candidates = [base_bindings]
    results: List[StateInstance] = []
    for bindings in candidates:
        if isinstance(transition.guard, Predicate):
            if not transition.guard.evaluate(bindings):
                continue
        elif callable(transition.guard):
            # Payload-dependent guard: may-fire over-approximation.
            if transition.name not in approximated:
                approximated.append(transition.name)
        target = transition.target.instantiate(bindings)
        if abstraction is not None:
            clipped = tuple(
                min(v, abstraction - 1) for v in target.values
            )
            target = target.state.instance(*clipped)
        results.append(target)
    return results


def check_invariant(
    result: ModelCheckResult,
    predicate: Callable[[StateInstance], bool],
    name: str = "invariant",
) -> List[CounterExample]:
    """Check a safety property over every reachable configuration.

    Returns counterexamples (with witness paths); empty means the
    invariant holds throughout the explored space.
    """
    violations: List[CounterExample] = []
    for state in result.reachable_states():
        if not predicate(state):
            violations.append(CounterExample(state, result.path_to(state)))
    return violations
