"""Discrete-time Markov chain analysis (the paper's §4.3 PRISM remark).

The paper notes probabilistic model checking "constrains the problem-space
to specific Markov processes" — but for stop-and-wait over a memoryless
lossy channel, that constraint is *met exactly*, and the analytic answers
make a sharp cross-check for the simulator: expected retransmissions and
delivery times computed here must match the netsim measurements within
sampling error (bench E11d does that comparison).

:class:`MarkovChain` is a small general DTMC with absorption analysis
(fundamental-matrix method, solved with :mod:`numpy`);
:func:`stop_and_wait_chain` builds the protocol-specific chain.
"""

from __future__ import annotations

from typing import Dict, Hashable, List, Mapping, Sequence, Tuple

import numpy as np

State = Hashable


class MarkovError(ValueError):
    """Raised for ill-formed chains or impossible queries."""


class MarkovChain:
    """A finite DTMC given as per-state outgoing probability lists.

    Parameters
    ----------
    transitions:
        ``{state: [(probability, next_state), ...]}``.  Each state's
        probabilities must sum to 1 (within 1e-9).  States appearing only
        as targets are absorbing.
    """

    def __init__(
        self, transitions: Mapping[State, Sequence[Tuple[float, State]]]
    ) -> None:
        if not transitions:
            raise MarkovError("chain needs at least one state")
        self.transitions: Dict[State, List[Tuple[float, State]]] = {}
        states = set(transitions)
        for state, edges in transitions.items():
            total = 0.0
            for probability, target in edges:
                if probability < 0:
                    raise MarkovError(
                        f"negative probability {probability} from {state!r}"
                    )
                total += probability
                states.add(target)
            if edges and abs(total - 1.0) > 1e-9:
                raise MarkovError(
                    f"probabilities from {state!r} sum to {total}, not 1"
                )
            self.transitions[state] = list(edges)
        # States never given outgoing edges are absorbing.
        self.states: List[State] = sorted(states, key=repr)
        for state in self.states:
            self.transitions.setdefault(state, [])
        self.absorbing = frozenset(
            s for s in self.states if not self.transitions[s]
        )
        if not self.absorbing:
            raise MarkovError("chain has no absorbing states to analyse")
        self._index = {state: i for i, state in enumerate(self.states)}

    def _partition(self):
        transient = [s for s in self.states if s not in self.absorbing]
        absorbing = [s for s in self.states if s in self.absorbing]
        return transient, absorbing

    def _fundamental(self):
        """The fundamental matrix N = (I - Q)^-1 of the transient part."""
        transient, absorbing = self._partition()
        t_index = {s: i for i, s in enumerate(transient)}
        a_index = {s: i for i, s in enumerate(absorbing)}
        q = np.zeros((len(transient), len(transient)))
        r = np.zeros((len(transient), len(absorbing)))
        for state in transient:
            for probability, target in self.transitions[state]:
                if target in t_index:
                    q[t_index[state], t_index[target]] += probability
                else:
                    r[t_index[state], a_index[target]] += probability
        identity = np.eye(len(transient))
        try:
            fundamental = np.linalg.inv(identity - q)
        except np.linalg.LinAlgError:
            raise MarkovError(
                "I - Q is singular: some transient state never reaches "
                "absorption"
            ) from None
        return transient, absorbing, fundamental, r

    def expected_steps_to_absorption(self, start: State) -> float:
        """Expected number of steps from ``start`` until absorption."""
        if start in self.absorbing:
            return 0.0
        transient, _, fundamental, _ = self._fundamental()
        index = transient.index(start)
        return float(fundamental[index].sum())

    def absorption_probabilities(self, start: State) -> Dict[State, float]:
        """Probability of ending in each absorbing state from ``start``."""
        if start in self.absorbing:
            return {s: float(s == start) for s in self.absorbing}
        transient, absorbing, fundamental, r = self._fundamental()
        index = transient.index(start)
        b = fundamental @ r
        return {state: float(b[index, j]) for j, state in enumerate(absorbing)}

    def expected_visits(self, start: State, state: State) -> float:
        """Expected number of visits to a transient ``state`` from ``start``."""
        if state in self.absorbing:
            raise MarkovError(f"{state!r} is absorbing; visits are 0 or 1")
        transient, _, fundamental, _ = self._fundamental()
        return float(fundamental[transient.index(start), transient.index(state)])


def stop_and_wait_chain(
    loss_data: float,
    loss_ack: float,
    messages: int,
    max_retries: int = None,
) -> MarkovChain:
    """The stop-and-wait send process as a DTMC.

    One step = one transmission round (send + wait for ack/timeout).  A
    round succeeds with probability ``(1-loss_data) * (1-loss_ack)``;
    corruption can be folded into the loss terms, as a corrupted frame is
    rejected just like a lost one.

    States: ``("sending", k)`` — k messages fully acknowledged so far —
    plus absorbing ``("done",)`` and, with bounded retries,
    ``("failed",)``.  Without a retry bound the chain always absorbs in
    ``("done",)`` and its expected steps are ``messages / p_round``.
    """
    for name, p in (("loss_data", loss_data), ("loss_ack", loss_ack)):
        if not 0.0 <= p < 1.0:
            raise MarkovError(f"{name} must be in [0, 1), got {p}")
    if messages < 1:
        raise MarkovError("need at least one message")
    p_round = (1.0 - loss_data) * (1.0 - loss_ack)
    transitions: Dict[State, List[Tuple[float, State]]] = {}
    if max_retries is None:
        for k in range(messages):
            advance = ("done",) if k + 1 == messages else ("sending", k + 1)
            transitions[("sending", k)] = [
                (p_round, advance),
                (1.0 - p_round, ("sending", k)),
            ]
    else:
        for k in range(messages):
            for attempt in range(max_retries + 1):
                advance = (
                    ("done",) if k + 1 == messages else ("sending", k + 1, 0)
                )
                fail = (
                    ("failed",)
                    if attempt == max_retries
                    else ("sending", k, attempt + 1)
                )
                transitions[("sending", k, attempt)] = [
                    (p_round, ("done",) if k + 1 == messages else ("sending", k + 1, 0)),
                    (1.0 - p_round, fail),
                ]
    return MarkovChain(transitions)


def stop_and_wait_start(max_retries: int = None) -> State:
    """The start state matching :func:`stop_and_wait_chain`'s layout."""
    return ("sending", 0) if max_retries is None else ("sending", 0, 0)


def expected_transmissions_per_message(loss_data: float, loss_ack: float) -> float:
    """Closed form: a geometric mean of rounds, 1 / p_round."""
    p_round = (1.0 - loss_data) * (1.0 - loss_ack)
    if p_round <= 0:
        raise MarkovError("success probability is zero; never delivers")
    return 1.0 / p_round
