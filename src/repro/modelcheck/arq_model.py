"""Compositional verification of the ARQ protocol *pair* over a lossy channel.

The paper verifies each machine's transitions by type; what about the
*system* — sender, receiver and an adversarial channel running together?
This module builds the three as labelled transition systems and composes
them with :mod:`repro.modelcheck.product`, checking:

* **consistent termination** — the only stuck configurations are genuine
  success states (all messages delivered, sender in ``Sent``);
* **safety** — the receiver never runs more than one message ahead of the
  sender's acknowledged progress, and never delivers out of order (the
  delivered count is monotone by construction of its state);
* **possible progress** — from *every* reachable configuration, a path to
  success exists, however unluckily the channel has behaved so far.

The sender/receiver components are written against the same transition
vocabulary as the runtime machines of :mod:`repro.protocols.arq`
(``SEND/OK/FAIL/TIMEOUT/RETRY/FINISH`` and ``RECV/DUP_ACK``), and the
test suite replays every sender LTS edge on a real
:class:`~repro.core.machine.Machine` to rule out the transcription gap
the paper warns about (§3.3 limitation 2).

Channel model: one data slot and one ack slot.  Each may be silently
lost; a retransmission overwrites a stale in-flight copy (equivalent, for
stop-and-wait correctness, to queueing behind it).  Timeouts are
nondeterministic — they may fire even when nothing was lost (premature
timeout), so the model covers more schedules than any finite set of
simulator seeds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Hashable, List, Tuple

from repro.modelcheck.product import Lts, ProductResult, compose

State = Tuple[Hashable, ...]


def build_sender_lts(modulus: int, messages: int) -> Lts:
    """The stop-and-wait sender as an LTS.

    States: ``("Ready", seq, remaining)``, ``("Wait", seq, remaining)``,
    ``("Timeout", seq, remaining)``, ``("Sent", seq)``.
    """
    put_data = frozenset(("put_data", s) for s in range(modulus))
    get_ack = frozenset(("get_ack", a) for a in range(modulus))
    alphabet = put_data | get_ack | {("timeout",), ("retry",), ("finish",)}

    def edges(state: State):
        mode = state[0]
        if mode == "Ready":
            _, seq, remaining = state
            if remaining > 0:
                yield ("put_data", seq), ("Wait", seq, remaining)
            else:
                yield ("finish",), ("Sent", seq)
        elif mode == "Wait":
            _, seq, remaining = state
            for ack in range(modulus):
                if ack == seq:  # OK : Wait seq -> Ready (seq+1)
                    yield ("get_ack", ack), (
                        "Ready",
                        (seq + 1) % modulus,
                        remaining - 1,
                    )
                else:  # FAIL : Wait seq -> Ready seq
                    yield ("get_ack", ack), ("Ready", seq, remaining)
            yield ("timeout",), ("Timeout", seq, remaining)
        elif mode == "Timeout":
            _, seq, remaining = state
            yield ("retry",), ("Ready", seq, remaining)
        # "Sent" is terminal: no edges.

    return Lts("sender", ("Ready", 0, messages), edges, frozenset(alphabet))


def build_channel_lts(modulus: int) -> Lts:
    """A lossy, overwriting, single-slot-per-direction channel LTS.

    States: ``(data, ack)`` with each slot ``None`` or a sequence number.
    """
    labels = set()
    for s in range(modulus):
        labels.add(("put_data", s))
        labels.add(("dlv_data", s))
        labels.add(("put_ack", s))
        labels.add(("get_ack", s))
    labels.add(("lose_data",))
    labels.add(("lose_ack",))

    def edges(state: State):
        data, ack = state
        for s in range(modulus):
            # A (re)transmission overwrites any stale in-flight copy.
            yield ("put_data", s), (s, ack)
            yield ("put_ack", s), (data, s)
        if data is not None:
            yield ("lose_data",), (None, ack)
            yield ("dlv_data", data), (None, ack)
        if ack is not None:
            yield ("lose_ack",), (data, None)
            yield ("get_ack", ack), (data, None)

    return Lts("channel", (None, None), edges, frozenset(labels))


def build_receiver_lts(modulus: int, messages: int) -> Lts:
    """The stop-and-wait receiver as an LTS.

    States: ``("ReadyFor", expected, delivered)`` and
    ``("Acking", expected, delivered, ack_seq)``.
    """
    labels = set()
    for s in range(modulus):
        labels.add(("dlv_data", s))
        labels.add(("put_ack", s))

    def edges(state: State):
        mode = state[0]
        if mode == "ReadyFor":
            _, expected, delivered = state
            for s in range(modulus):
                if s == expected and delivered < messages:
                    # RECV : ReadyFor seq -> ReadyFor (seq+1), then ack.
                    yield ("dlv_data", s), (
                        "Acking",
                        (expected + 1) % modulus,
                        delivered + 1,
                        s,
                    )
                elif s == (expected - 1) % modulus:
                    # DUP_ACK: re-acknowledge, do not deliver.
                    yield ("dlv_data", s), ("Acking", expected, delivered, s)
                else:
                    # Unexpected sequence number: consumed and dropped.
                    yield ("dlv_data", s), state
        else:  # Acking
            _, expected, delivered, ack_seq = state
            yield ("put_ack", ack_seq), ("ReadyFor", expected, delivered)

    return Lts("receiver", ("ReadyFor", 0, 0), edges, frozenset(labels))


def build_broken_receiver_lts(modulus: int, messages: int) -> Lts:
    """The classic stop-and-wait bug: duplicates are dropped WITHOUT re-ack.

    If the ack for packet *n* is lost, the sender retransmits *n*; this
    receiver silently discards the duplicate, so the sender can never
    learn the packet arrived.  Composition must (and does) expose this as
    configurations from which success is unreachable — the negative
    control for the verification method.
    """
    labels = set()
    for s in range(modulus):
        labels.add(("dlv_data", s))
        labels.add(("put_ack", s))

    def edges(state: State):
        mode = state[0]
        if mode == "ReadyFor":
            _, expected, delivered = state
            for s in range(modulus):
                if s == expected and delivered < messages:
                    yield ("dlv_data", s), (
                        "Acking",
                        (expected + 1) % modulus,
                        delivered + 1,
                        s,
                    )
                else:
                    yield ("dlv_data", s), state  # BUG: duplicate not re-acked
        else:
            _, expected, delivered, ack_seq = state
            yield ("put_ack", ack_seq), ("ReadyFor", expected, delivered)

    return Lts("receiver", ("ReadyFor", 0, 0), edges, frozenset(labels))


@dataclass
class ArqVerificationReport:
    """Outcome of compositional verification of the ARQ system."""

    modulus: int
    messages: int
    states: int
    edges: int
    success_states: int
    bad_deadlocks: List[Tuple[State, ...]]
    safety_violations: List
    stuck_states: List[Tuple[State, ...]]

    @property
    def ok(self) -> bool:
        """True when every checked property holds."""
        return (
            not self.bad_deadlocks
            and not self.safety_violations
            and not self.stuck_states
        )


def is_success(product_state: Tuple[State, ...], messages: int) -> bool:
    """All messages delivered, sender finished, channel drained."""
    sender, channel, receiver = product_state
    return (
        sender[0] == "Sent"
        and receiver[0] == "ReadyFor"
        and receiver[2] == messages
        and channel == (None, None)
    )


def _sender_completed(sender: State, messages: int) -> int:
    if sender[0] == "Sent":
        return messages
    return messages - sender[2]


def verify_arq_system(
    modulus: int = 4,
    messages: int = 3,
    max_states: int = 500_000,
    broken_receiver: bool = False,
) -> ArqVerificationReport:
    """Compose sender, channel and receiver; check the three properties.

    Pass ``broken_receiver=True`` to verify the no-dup-ack variant — the
    negative control, whose stuck states the checker must find.
    """
    if messages >= modulus:
        # Stop-and-wait needs the duplicate window (seq-1) to be
        # unambiguous; with messages < modulus the check is exact.
        raise ValueError(
            "verification model requires messages < modulus so the "
            "duplicate-detection window is unambiguous"
        )
    sender = build_sender_lts(modulus, messages)
    channel = build_channel_lts(modulus)
    build_receiver = (
        build_broken_receiver_lts if broken_receiver else build_receiver_lts
    )
    receiver = build_receiver(modulus, messages)
    result: ProductResult = compose([sender, channel, receiver], max_states)

    def success(state) -> bool:
        return is_success(state, messages)

    bad_deadlocks = [s for s in result.deadlocks if not success(s)]

    def safety(state) -> bool:
        sender_state, _, receiver_state = state
        delivered = receiver_state[2]
        completed = _sender_completed(sender_state, messages)
        # The receiver may be exactly one message ahead of what the
        # sender has seen acknowledged — never more, never behind.
        return 0 <= delivered - completed <= 1

    safety_violations = result.check_invariant(safety)
    stuck = result.states_that_cannot_reach(success)
    return ArqVerificationReport(
        modulus=modulus,
        messages=messages,
        states=result.states_visited,
        edges=result.edges_traversed,
        success_states=sum(1 for s in result.reachable_states() if success(s)),
        bad_deadlocks=bad_deadlocks,
        safety_violations=safety_violations,
        stuck_states=stuck,
    )
