"""Place/transition Petri nets: the paper's other model-checking target.

Section 3.3: "The correctness of a network protocol is often verified (if
at all) by model checking a finite-state-machine or Petri Net
representation."  This module supplies the Petri-net half of that
comparator: nets with weighted arcs, reachability-graph construction,
deadlock detection, and k-boundedness checking — plus
:func:`arq_petri_net`, a hand-modelled stop-and-wait net whose safety
(1-boundedness: never two packets in flight) and liveness can be checked
against the DSL machines' behaviour.

Like the FSM explorer, this is a *separate model* of the protocol, so it
carries exactly the transcription risk the paper criticizes; the tests
cross-check it against the LTS composition model.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Mapping, Optional, Tuple

Marking = Tuple[int, ...]


class PetriError(ValueError):
    """Raised for structurally invalid nets or queries."""


class UnboundedNetError(RuntimeError):
    """Raised when exploration exceeds the declared token bound."""


@dataclass(frozen=True)
class Transition:
    """A net transition: tokens consumed and produced per place.

    ``inhibit`` lists places that must be *empty* for the transition to
    fire (inhibitor arcs — the standard extension for zero-tests, needed
    to model "retransmit only after the copy in flight is gone").
    """

    name: str
    consume: Mapping[str, int]
    produce: Mapping[str, int]
    inhibit: FrozenSet[str] = frozenset()


class PetriNet:
    """A place/transition net.

    Parameters
    ----------
    places:
        Ordered place names (order fixes the marking vector layout).
    transitions:
        The net's transitions; arc weights must be positive and refer to
        declared places.
    """

    def __init__(self, places: List[str], transitions: List[Transition]) -> None:
        if len(set(places)) != len(places):
            raise PetriError("place names must be unique")
        if not places:
            raise PetriError("a net needs at least one place")
        self.places = list(places)
        self._place_index = {name: i for i, name in enumerate(places)}
        seen = set()
        for transition in transitions:
            if transition.name in seen:
                raise PetriError(f"duplicate transition {transition.name!r}")
            seen.add(transition.name)
            for arc in (*transition.consume.items(), *transition.produce.items()):
                place, weight = arc
                if place not in self._place_index:
                    raise PetriError(
                        f"transition {transition.name!r} references unknown "
                        f"place {place!r}"
                    )
                if weight <= 0:
                    raise PetriError(
                        f"transition {transition.name!r}: arc weight must be "
                        f"positive, got {weight}"
                    )
            for place in transition.inhibit:
                if place not in self._place_index:
                    raise PetriError(
                        f"transition {transition.name!r} inhibits unknown "
                        f"place {place!r}"
                    )
        self.transitions = list(transitions)

    def marking(self, tokens: Mapping[str, int]) -> Marking:
        """Build a marking vector from a place->count mapping."""
        unknown = set(tokens) - set(self.places)
        if unknown:
            raise PetriError(f"unknown places in marking: {sorted(unknown)}")
        return tuple(tokens.get(place, 0) for place in self.places)

    def render(self, marking: Marking) -> Dict[str, int]:
        """The inverse of :meth:`marking`, for humans."""
        return {
            place: count
            for place, count in zip(self.places, marking)
            if count
        }

    def enabled(self, marking: Marking) -> List[Transition]:
        """Transitions fireable in ``marking``."""
        result = []
        for transition in self.transitions:
            has_tokens = all(
                marking[self._place_index[place]] >= weight
                for place, weight in transition.consume.items()
            )
            unblocked = all(
                marking[self._place_index[place]] == 0
                for place in transition.inhibit
            )
            if has_tokens and unblocked:
                result.append(transition)
        return result

    def fire(self, marking: Marking, transition: Transition) -> Marking:
        """Fire a transition; raises if it is not enabled."""
        vector = list(marking)
        for place, weight in transition.consume.items():
            index = self._place_index[place]
            if vector[index] < weight:
                raise PetriError(
                    f"transition {transition.name!r} not enabled in "
                    f"{self.render(marking)}"
                )
            vector[index] -= weight
        for place, weight in transition.produce.items():
            vector[self._place_index[place]] += weight
        return tuple(vector)


@dataclass
class ReachabilityResult:
    """The reachability graph of a net from one initial marking."""

    markings: int
    edges: int
    deadlocks: List[Marking]
    max_tokens_per_place: Dict[str, int]
    _graph: Dict[Marking, List[Tuple[str, Marking]]] = field(
        default_factory=dict, repr=False
    )

    def is_k_bounded(self, k: int) -> bool:
        """True when no place ever holds more than ``k`` tokens."""
        return all(count <= k for count in self.max_tokens_per_place.values())

    @property
    def is_safe(self) -> bool:
        """1-bounded — the classic safety notion for protocol nets."""
        return self.is_k_bounded(1)

    def reachable_markings(self) -> List[Marking]:
        """All reachable markings in discovery order."""
        return list(self._graph)

    def successors(self, marking: Marking) -> List[Tuple[str, Marking]]:
        """Outgoing (transition name, marking) edges."""
        return list(self._graph.get(marking, []))


def explore_net(
    net: PetriNet,
    initial: Marking,
    max_markings: int = 100_000,
    token_bound: int = 64,
) -> ReachabilityResult:
    """Build the reachability graph; guard against unbounded nets."""
    visited: Dict[Marking, None] = {initial: None}
    graph: Dict[Marking, List[Tuple[str, Marking]]] = {}
    deadlocks: List[Marking] = []
    max_tokens = {place: initial[i] for i, place in enumerate(net.places)}
    edge_count = 0
    frontier = [initial]
    while frontier:
        current = frontier.pop(0)
        outgoing: List[Tuple[str, Marking]] = []
        for transition in net.enabled(current):
            successor = net.fire(current, transition)
            for index, place in enumerate(net.places):
                if successor[index] > token_bound:
                    raise UnboundedNetError(
                        f"place {place!r} exceeds {token_bound} tokens; "
                        "the net looks unbounded"
                    )
                max_tokens[place] = max(max_tokens[place], successor[index])
            outgoing.append((transition.name, successor))
            edge_count += 1
            if successor not in visited:
                if len(visited) >= max_markings:
                    raise UnboundedNetError(
                        f"more than {max_markings} reachable markings"
                    )
                visited[successor] = None
                frontier.append(successor)
        graph[current] = outgoing
        if not outgoing:
            deadlocks.append(current)
    return ReachabilityResult(
        markings=len(visited),
        edges=edge_count,
        deadlocks=deadlocks,
        max_tokens_per_place=max_tokens,
        _graph=graph,
    )


def arq_petri_net() -> Tuple[PetriNet, Marking]:
    """Stop-and-wait ARQ as a (cyclic, message-agnostic) Petri net.

    Places model the sender phase, the receiver phase and the two channel
    directions; the net abstracts away sequence numbers (they are the
    FSM/LTS models' job) and captures the token-flow discipline.

    Checked results (see tests): the net is deadlock-free and 2-bounded
    but **not** 1-safe — premature timeouts can put two data copies (and
    two acks) in flight at once.  That is a finding, not a flaw: it is
    precisely why stop-and-wait needs sequence numbers, and why a single
    formalism that cannot express the message contents (the paper's §2.2
    complaint about process-only models) cannot verify the whole
    protocol.  The LTS composition model, which carries sequence numbers,
    proves the duplicates are handled.
    """
    places = [
        "sender_ready",
        "sender_waiting",
        "data_in_flight",
        "receiver_idle",
        "receiver_acking",
        "ack_in_flight",
    ]
    transitions = [
        Transition("send", {"sender_ready": 1}, {"sender_waiting": 1, "data_in_flight": 1}),
        Transition("lose_data", {"data_in_flight": 1}, {}),
        Transition(
            "deliver",
            {"data_in_flight": 1, "receiver_idle": 1},
            {"receiver_acking": 1},
        ),
        Transition("ack", {"receiver_acking": 1}, {"receiver_idle": 1, "ack_in_flight": 1}),
        Transition("lose_ack", {"ack_in_flight": 1}, {}),
        Transition(
            "receive_ack",
            {"ack_in_flight": 1, "sender_waiting": 1},
            {"sender_ready": 1},
        ),
        Transition(
            "timeout_retransmit",
            {"sender_waiting": 1},
            {"sender_waiting": 1, "data_in_flight": 1},
            # Retransmit only once the in-flight copies are gone; without
            # this inhibitor the net is unbounded (and explore_net says so).
            inhibit=frozenset({"data_in_flight", "ack_in_flight"}),
        ),
    ]
    net = PetriNet(places, transitions)
    initial = net.marking({"sender_ready": 1, "receiver_idle": 1})
    return net, initial
