"""Explicit-state model checking: the verification baseline of paper §4.2.

The paper argues that model checking a protocol FSM has two limitations:
the state space explodes (so models get simplified into unrealism), and
the model is a *separate artifact* from the implementation.  This package
implements that baseline honestly — an explicit-state explorer over the
very same :class:`~repro.core.MachineSpec` the DSL runtime executes — so
experiment E4 can measure the explosion directly against the DSL's
definition-time checker, with zero model-vs-implementation transcription
gap *in our system* (the gap the paper warns about is reproduced by the
``abstraction`` knob, which coarsens parameter domains exactly the way
hand-simplified models do).
"""

from repro.modelcheck.explicit import (
    CounterExample,
    ExplorationBudgetExceeded,
    InputDomains,
    ModelCheckResult,
    check_invariant,
    explore,
    successors_of,
)
from repro.modelcheck.product import (
    CompositionError,
    Lts,
    ProductExplosionError,
    ProductResult,
    compose,
)
from repro.modelcheck.arq_model import (
    ArqVerificationReport,
    verify_arq_system,
)
from repro.modelcheck.markov import (
    MarkovChain,
    MarkovError,
    expected_transmissions_per_message,
    stop_and_wait_chain,
    stop_and_wait_start,
)
from repro.modelcheck.petri import (
    PetriNet,
    PetriError,
    ReachabilityResult,
    Transition,
    UnboundedNetError,
    arq_petri_net,
    explore_net,
)

__all__ = [
    "explore",
    "successors_of",
    "check_invariant",
    "ModelCheckResult",
    "CounterExample",
    "InputDomains",
    "ExplorationBudgetExceeded",
    # composition (CSP-style product)
    "Lts",
    "compose",
    "ProductResult",
    "CompositionError",
    "ProductExplosionError",
    "verify_arq_system",
    "ArqVerificationReport",
    # probabilistic (DTMC)
    "MarkovChain",
    "MarkovError",
    "stop_and_wait_chain",
    "stop_and_wait_start",
    "expected_transmissions_per_message",
    # Petri nets
    "PetriNet",
    "Transition",
    "explore_net",
    "ReachabilityResult",
    "arq_petri_net",
    "PetriError",
    "UnboundedNetError",
]
