"""Composition of labelled transition systems (CSP-style parallel product).

Section 2.2 of the paper observes that process formalisms (CSP, FSP) "can
be used to verify behaviour, but then are not related to the description
of the messages".  This module supplies that comparator capability —
multi-way synchronous composition and exhaustive product exploration — so
that a *pair* of protocol machines plus an explicit channel model can be
verified as a system (see :mod:`repro.modelcheck.arq_model`), while our
DSL keeps the message descriptions attached.

Semantics: each component declares an alphabet.  A label fires iff every
component whose alphabet contains it can take a step with that label; all
of them move simultaneously, everyone else stays put (CSP's alphabetized
parallel).  Labels outside every alphabet are rejected loudly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    FrozenSet,
    Hashable,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

State = Hashable
Label = Hashable
Edge = Tuple[Label, State]


@dataclass(frozen=True)
class Lts:
    """A labelled transition system.

    Attributes
    ----------
    name:
        Component name (used in error messages and state rendering).
    initial:
        The initial state (any hashable value).
    edges:
        ``edges(state)`` yields the outgoing ``(label, next_state)`` pairs.
    alphabet:
        Every label this component participates in.  A component blocks
        any shared label it currently has no edge for — that is exactly
        how synchronization constrains the product.
    """

    name: str
    initial: State
    edges: Callable[[State], Iterable[Edge]]
    alphabet: FrozenSet[Label]


class CompositionError(ValueError):
    """Raised for ill-formed compositions (empty, orphan labels...)."""


class ProductExplosionError(RuntimeError):
    """Raised when the product state space exceeds the exploration budget."""


@dataclass
class ProductResult:
    """Everything learned from exploring a composition."""

    component_names: Tuple[str, ...]
    states_visited: int
    edges_traversed: int
    deadlocks: List[Tuple[State, ...]]
    initial: Tuple[State, ...]
    _edges: Dict[Tuple[State, ...], List[Tuple[Label, Tuple[State, ...]]]] = field(
        default_factory=dict, repr=False
    )
    _predecessors: Dict[
        Tuple[State, ...], Tuple[Optional[Tuple[State, ...]], Optional[Label]]
    ] = field(default_factory=dict, repr=False)

    def reachable_states(self) -> List[Tuple[State, ...]]:
        """Every reachable product state, in discovery order."""
        return list(self._edges)

    def successors(self, state: Tuple[State, ...]) -> List[Tuple[Label, Tuple[State, ...]]]:
        """Outgoing product edges of one state."""
        return list(self._edges.get(state, []))

    def path_to(self, state: Tuple[State, ...]) -> Tuple[Label, ...]:
        """A label path from the initial product state to ``state``."""
        labels: List[Label] = []
        cursor: Optional[Tuple[State, ...]] = state
        while cursor is not None:
            predecessor, label = self._predecessors.get(cursor, (None, None))
            if label is not None:
                labels.append(label)
            cursor = predecessor
        return tuple(reversed(labels))

    def check_invariant(
        self, predicate: Callable[[Tuple[State, ...]], bool]
    ) -> List[Tuple[Tuple[State, ...], Tuple[Label, ...]]]:
        """Safety check: returns (state, witness path) for each violation."""
        violations = []
        for state in self._edges:
            if not predicate(state):
                violations.append((state, self.path_to(state)))
        return violations

    def states_that_cannot_reach(
        self, goal: Callable[[Tuple[State, ...]], bool]
    ) -> List[Tuple[State, ...]]:
        """Liveness-ish check: states from which no goal state is reachable.

        Empty result means *from every reachable configuration the system
        can still succeed* — the protocol never paints itself into a
        corner (the product analogue of paper guarantee 4).
        """
        goal_states = {s for s in self._edges if goal(s)}
        reverse: Dict[Tuple[State, ...], List[Tuple[State, ...]]] = {}
        for source, edges in self._edges.items():
            for _, target in edges:
                reverse.setdefault(target, []).append(source)
        can = set(goal_states)
        frontier = list(goal_states)
        while frontier:
            current = frontier.pop()
            for predecessor in reverse.get(current, []):
                if predecessor not in can:
                    can.add(predecessor)
                    frontier.append(predecessor)
        return [s for s in self._edges if s not in can]


def compose(
    components: Sequence[Lts],
    max_states: int = 1_000_000,
) -> ProductResult:
    """Explore the alphabetized parallel product of ``components``."""
    if not components:
        raise CompositionError("cannot compose zero components")
    names = tuple(component.name for component in components)
    if len(set(names)) != len(names):
        raise CompositionError(f"component names must be unique: {names}")
    initial = tuple(component.initial for component in components)
    participants: Dict[Label, List[int]] = {}
    for index, component in enumerate(components):
        for label in component.alphabet:
            participants.setdefault(label, []).append(index)

    visited: Dict[Tuple[State, ...], None] = {initial: None}
    predecessors: Dict[
        Tuple[State, ...], Tuple[Optional[Tuple[State, ...]], Optional[Label]]
    ] = {initial: (None, None)}
    edges: Dict[Tuple[State, ...], List[Tuple[Label, Tuple[State, ...]]]] = {}
    deadlocks: List[Tuple[State, ...]] = []
    edge_count = 0
    frontier: List[Tuple[State, ...]] = [initial]
    while frontier:
        current = frontier.pop(0)
        outgoing: List[Tuple[Label, Tuple[State, ...]]] = []
        # Candidate labels: anything some component offers right now.
        offers: Dict[Label, Dict[int, List[State]]] = {}
        for index, component in enumerate(components):
            for label, target in component.edges(current[index]):
                if label not in component.alphabet:
                    raise CompositionError(
                        f"component {component.name!r} emitted label "
                        f"{label!r} outside its declared alphabet"
                    )
                offers.setdefault(label, {}).setdefault(index, []).append(target)
        for label, by_component in offers.items():
            required = participants.get(label, [])
            if any(index not in by_component for index in required):
                continue  # some participant blocks the label
            # Cartesian product over each participant's nondeterministic
            # choices; non-participants keep their state.
            combos: List[Dict[int, State]] = [{}]
            for index in required:
                expanded: List[Dict[int, State]] = []
                for combo in combos:
                    for target in by_component[index]:
                        extended = dict(combo)
                        extended[index] = target
                        expanded.append(extended)
                combos = expanded
            for combo in combos:
                successor = tuple(
                    combo.get(index, current[index])
                    for index in range(len(components))
                )
                outgoing.append((label, successor))
                edge_count += 1
                if successor not in visited:
                    if len(visited) >= max_states:
                        raise ProductExplosionError(
                            f"product exceeds {max_states} states"
                        )
                    visited[successor] = None
                    predecessors[successor] = (current, label)
                    frontier.append(successor)
        edges[current] = outgoing
        if not outgoing:
            deadlocks.append(current)
    return ProductResult(
        component_names=names,
        states_visited=len(visited),
        edges_traversed=edge_count,
        deadlocks=deadlocks,
        initial=initial,
        _edges=edges,
        _predecessors=predecessors,
    )
