"""Behavioural hooks for adaptive protocols (paper §1.1).

The paper's first motivation list names three behaviours next-generation
protocols must host, each with a concrete citation:

* **adaptation capability** [1] — a fuzzy-systems approach to media-stream
  adaptation under changing network conditions
  (:mod:`repro.adapt.fuzzy`, :mod:`repro.adapt.streaming`);
* **tuning protocol operation** [5] — adapting protocol timers to reduce
  overhead, as in tuning OLSR (:mod:`repro.adapt.timers`);
* operation in untrusted environments [12] — see :mod:`repro.trust`.

These are the "behavioural hooks ... in place to allow such adaptive
behaviour" that §2.2 demands of a protocol definition framework: each is a
plain object a DSL-defined protocol can consult from its driver loop.
"""

from repro.adapt.fuzzy import (
    FuzzyRule,
    FuzzySystem,
    LinguisticVariable,
    TrapezoidMF,
    TriangularMF,
    build_rate_controller,
)
from repro.adapt.streaming import (
    StreamingReport,
    run_streaming_session,
)
from repro.adapt.timers import (
    AdaptiveIntervalController,
    HelloProtocolReport,
    RttEstimator,
    run_hello_protocol,
)

__all__ = [
    "TriangularMF",
    "TrapezoidMF",
    "LinguisticVariable",
    "FuzzyRule",
    "FuzzySystem",
    "build_rate_controller",
    "run_streaming_session",
    "StreamingReport",
    "RttEstimator",
    "AdaptiveIntervalController",
    "run_hello_protocol",
    "HelloProtocolReport",
]
