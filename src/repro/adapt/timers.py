"""Adaptive protocol timers (E7, after reference [5] — "Tuning OLSR").

Two timer mechanisms protocols need as behavioural hooks:

* :class:`RttEstimator` — Jacobson/Karels smoothed RTT estimation with
  Karn's rule (ignore samples from retransmitted packets) and exponential
  backoff, as used by TCP and by our ARQ drivers for adaptive RTOs;
* :class:`AdaptiveIntervalController` — HELLO-interval tuning in the
  spirit of Huang, Bhatti & Parker's OLSR work: shorten the beacon
  interval when the neighbourhood churns, lengthen it when stable, and
  measure the overhead/latency trade-off against a fixed interval
  (:func:`run_hello_protocol`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import List, Optional


class RttEstimator:
    """RFC 6298-style RTT estimation with Karn's algorithm.

    ``srtt`` and ``rttvar`` follow Jacobson/Karels; :meth:`sample` must
    only be fed measurements from *unretransmitted* exchanges — call
    :meth:`on_retransmit` when a retransmission happens, which also backs
    the RTO off exponentially.
    """

    def __init__(
        self,
        initial_rto: float = 1.0,
        min_rto: float = 0.05,
        max_rto: float = 60.0,
        alpha: float = 0.125,
        beta: float = 0.25,
        k: float = 4.0,
        granularity: float = 0.05,
    ) -> None:
        self.min_rto = min_rto
        self.max_rto = max_rto
        self.alpha = alpha
        self.beta = beta
        self.k = k
        # RFC 6298's clock granularity G: the variance term never drops
        # below it, so on a jitterless path the RTO stays strictly above
        # the RTT instead of converging onto it (which would guarantee
        # spurious timeouts).
        self.granularity = granularity
        self.srtt: Optional[float] = None
        self.rttvar: Optional[float] = None
        self._rto = initial_rto
        self.samples_taken = 0
        self.backoffs = 0

    @property
    def rto(self) -> float:
        """The current retransmission timeout."""
        return self._rto

    def sample(self, rtt: float) -> float:
        """Fold in one RTT measurement; returns the updated RTO."""
        if rtt <= 0:
            raise ValueError(f"RTT samples must be positive, got {rtt}")
        if self.srtt is None:
            self.srtt = rtt
            self.rttvar = rtt / 2.0
        else:
            self.rttvar = (1 - self.beta) * self.rttvar + self.beta * abs(
                self.srtt - rtt
            )
            self.srtt = (1 - self.alpha) * self.srtt + self.alpha * rtt
        self.samples_taken += 1
        variance_term = max(self.k * self.rttvar, self.granularity)
        self._rto = self._clamp(self.srtt + variance_term)
        return self._rto

    def on_retransmit(self) -> float:
        """Karn backoff: double the RTO (samples from retries are ignored
        by the caller simply not calling :meth:`sample` for them)."""
        self.backoffs += 1
        self._rto = self._clamp(self._rto * 2.0)
        return self._rto

    def _clamp(self, value: float) -> float:
        return min(max(value, self.min_rto), self.max_rto)


class AdaptiveIntervalController:
    """Tunes a beacon interval to the observed rate of topology change.

    Each beacon round, feed the number of neighbour changes observed since
    the previous beacon to :meth:`observe`.  The controller keeps an
    exponentially weighted change rate and maps it to an interval between
    ``min_interval`` and ``max_interval``: high churn -> short interval
    (fast detection), stability -> long interval (low overhead).
    """

    def __init__(
        self,
        base_interval: float = 2.0,
        min_interval: float = 0.25,
        max_interval: float = 10.0,
        smoothing: float = 0.5,
        sensitivity: float = 2.0,
    ) -> None:
        if not min_interval < base_interval < max_interval:
            raise ValueError(
                "intervals must satisfy min < base < max, got "
                f"{min_interval}, {base_interval}, {max_interval}"
            )
        self.base_interval = base_interval
        self.min_interval = min_interval
        self.max_interval = max_interval
        self.smoothing = smoothing
        self.sensitivity = sensitivity
        self.change_rate = 0.0
        self._interval = base_interval

    @property
    def interval(self) -> float:
        """The current beacon interval."""
        return self._interval

    def observe(self, changes: int, elapsed: float) -> float:
        """Record ``changes`` neighbour changes over ``elapsed`` seconds."""
        if elapsed <= 0:
            raise ValueError(f"elapsed must be positive, got {elapsed}")
        instantaneous = changes / elapsed
        self.change_rate = (
            (1 - self.smoothing) * self.change_rate + self.smoothing * instantaneous
        )
        # Map the change rate to an interval: at zero churn, drift to the
        # maximum; as churn grows, approach the minimum hyperbolically.
        pressure = self.sensitivity * self.change_rate
        target = self.max_interval / (1.0 + pressure * self.max_interval)
        self._interval = min(
            max(target, self.min_interval), self.max_interval
        )
        return self._interval


@dataclass
class HelloProtocolReport:
    """Outcome of one HELLO-beacon simulation."""

    policy: str
    duration: float
    hellos_sent: int
    changes: int
    detection_latencies: List[float] = field(default_factory=list)

    @property
    def mean_detection_latency(self) -> float:
        """Average delay from a topology change to its detection."""
        if not self.detection_latencies:
            return 0.0
        return sum(self.detection_latencies) / len(self.detection_latencies)

    @property
    def overhead_rate(self) -> float:
        """HELLO messages per second."""
        if self.duration <= 0:
            return 0.0
        return self.hellos_sent / self.duration


def run_hello_protocol(
    change_rate_schedule: List[float],
    phase_duration: float = 30.0,
    policy: str = "adaptive",
    fixed_interval: float = 2.0,
    seed: int = 0,
) -> HelloProtocolReport:
    """Simulate HELLO beaconing against scheduled topology churn.

    ``change_rate_schedule`` gives the Poisson rate of neighbour changes
    (events/second) for successive phases of ``phase_duration`` seconds.
    Detection latency for each change is the gap to the next HELLO.
    """
    if policy not in ("adaptive", "fixed"):
        raise ValueError(f"unknown policy {policy!r}")
    rng = random.Random(seed)
    controller = AdaptiveIntervalController(base_interval=fixed_interval)
    duration = phase_duration * len(change_rate_schedule)
    # Generate change events for each phase.
    changes: List[float] = []
    for phase, rate in enumerate(change_rate_schedule):
        t = phase * phase_duration
        end = t + phase_duration
        while rate > 0:
            t += rng.expovariate(rate)
            if t >= end:
                break
            changes.append(t)
    changes.sort()
    hellos = 0
    now = 0.0
    last_hello = 0.0
    pending = list(changes)
    latencies: List[float] = []
    observed_since_last = 0
    while now < duration:
        interval = controller.interval if policy == "adaptive" else fixed_interval
        now = min(now + interval, duration)
        hellos += 1
        # Changes that occurred since the previous hello are detected now.
        while pending and pending[0] <= now:
            latencies.append(now - pending.pop(0))
            observed_since_last += 1
        if policy == "adaptive":
            controller.observe(observed_since_last, now - last_hello or interval)
            observed_since_last = 0
        last_hello = now
    return HelloProtocolReport(
        policy=policy,
        duration=duration,
        hellos_sent=hellos,
        changes=len(changes),
        detection_latencies=latencies,
    )
