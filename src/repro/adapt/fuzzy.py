"""A Mamdani fuzzy inference system for QoS adaptation decisions.

Reference [1] of the paper (Bhatti & Knight, *Enabling QoS adaptation
decisions for Internet applications*) proposes fuzzy logic for deciding
how an application should adapt a media stream to network conditions.
This module provides the machinery — membership functions, linguistic
variables, a rule base, min/max Mamdani inference with centroid
defuzzification — plus :func:`build_rate_controller`, the ready-made
controller the streaming experiment (E6) uses: observed *loss* and *delay*
in, a multiplicative *rate adjustment* out.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Sequence, Tuple


class MembershipFunction:
    """Base class: maps a crisp value to a membership degree in [0, 1]."""

    def __call__(self, x: float) -> float:
        raise NotImplementedError


@dataclass(frozen=True)
class TriangularMF(MembershipFunction):
    """Triangle with feet at ``a`` and ``c``, peak at ``b``."""

    a: float
    b: float
    c: float

    def __post_init__(self) -> None:
        if not self.a <= self.b <= self.c:
            raise ValueError(f"triangle points must be ordered: {self}")

    def __call__(self, x: float) -> float:
        if x <= self.a or x >= self.c:
            # The peak may sit on a boundary (shoulder triangles).
            if x == self.b:
                return 1.0
            return 0.0
        if x == self.b:
            return 1.0
        if x < self.b:
            return (x - self.a) / (self.b - self.a)
        return (self.c - x) / (self.c - self.b)


@dataclass(frozen=True)
class TrapezoidMF(MembershipFunction):
    """Trapezoid with feet ``a``/``d`` and plateau ``b``..``c``."""

    a: float
    b: float
    c: float
    d: float

    def __post_init__(self) -> None:
        if not self.a <= self.b <= self.c <= self.d:
            raise ValueError(f"trapezoid points must be ordered: {self}")

    def __call__(self, x: float) -> float:
        if self.b <= x <= self.c:
            return 1.0
        if x <= self.a or x >= self.d:
            return 0.0
        if x < self.b:
            return (x - self.a) / (self.b - self.a)
        return (self.d - x) / (self.d - self.c)


class LinguisticVariable:
    """A named variable with linguistic terms over a crisp range."""

    def __init__(
        self,
        name: str,
        terms: Mapping[str, MembershipFunction],
        low: float,
        high: float,
    ) -> None:
        if not terms:
            raise ValueError(f"variable {name!r} needs at least one term")
        if low >= high:
            raise ValueError(f"variable {name!r}: empty range [{low}, {high}]")
        self.name = name
        self.terms = dict(terms)
        self.low = low
        self.high = high

    def fuzzify(self, value: float) -> Dict[str, float]:
        """Membership degree of ``value`` in every term."""
        clamped = min(max(value, self.low), self.high)
        return {term: mf(clamped) for term, mf in self.terms.items()}


@dataclass(frozen=True)
class FuzzyRule:
    """IF antecedents (conjunction) THEN consequent term.

    ``antecedents`` pairs input-variable names with term names; the rule's
    firing strength is the minimum of the antecedent memberships.
    """

    antecedents: Tuple[Tuple[str, str], ...]
    consequent_term: str

    def __post_init__(self) -> None:
        if not self.antecedents:
            raise ValueError("a rule needs at least one antecedent")


class FuzzySystem:
    """Mamdani inference: min activation, max aggregation, centroid output."""

    def __init__(
        self,
        inputs: Sequence[LinguisticVariable],
        output: LinguisticVariable,
        rules: Sequence[FuzzyRule],
        resolution: int = 101,
    ) -> None:
        self.inputs = {variable.name: variable for variable in inputs}
        self.output = output
        self.rules = list(rules)
        self.resolution = resolution
        for rule in self.rules:
            for variable_name, term in rule.antecedents:
                if variable_name not in self.inputs:
                    raise ValueError(f"rule references unknown input {variable_name!r}")
                if term not in self.inputs[variable_name].terms:
                    raise ValueError(
                        f"input {variable_name!r} has no term {term!r}"
                    )
            if rule.consequent_term not in output.terms:
                raise ValueError(
                    f"output {output.name!r} has no term {rule.consequent_term!r}"
                )

    def infer(self, **crisp_inputs: float) -> float:
        """Run inference; returns the defuzzified crisp output.

        Unknown or missing input names raise — silent defaults would turn
        controller miswiring into quiet misbehaviour.
        """
        if set(crisp_inputs) != set(self.inputs):
            raise ValueError(
                f"inputs must be exactly {sorted(self.inputs)}, "
                f"got {sorted(crisp_inputs)}"
            )
        memberships = {
            name: variable.fuzzify(crisp_inputs[name])
            for name, variable in self.inputs.items()
        }
        activations: Dict[str, float] = {}
        for rule in self.rules:
            strength = min(
                memberships[variable][term] for variable, term in rule.antecedents
            )
            current = activations.get(rule.consequent_term, 0.0)
            activations[rule.consequent_term] = max(current, strength)
        return self._centroid(activations)

    def _centroid(self, activations: Mapping[str, float]) -> float:
        span = self.output.high - self.output.low
        numerator = 0.0
        denominator = 0.0
        for index in range(self.resolution):
            x = self.output.low + span * index / (self.resolution - 1)
            degree = 0.0
            for term, strength in activations.items():
                if strength <= 0.0:
                    continue
                degree = max(degree, min(strength, self.output.terms[term](x)))
            numerator += x * degree
            denominator += degree
        if denominator == 0.0:
            return (self.output.low + self.output.high) / 2.0
        return numerator / denominator


def build_rate_controller() -> FuzzySystem:
    """The media-rate controller of experiment E6 (after reference [1]).

    Inputs: ``loss`` (fraction 0–1) and ``delay`` (normalized 0–1, where 1
    means the delay budget is exhausted).  Output: a rate multiplier in
    [0.2, 1.8] — below 1 backs off, above 1 probes for more bandwidth.
    """
    loss = LinguisticVariable(
        "loss",
        {
            "low": TrapezoidMF(0.0, 0.0, 0.01, 0.05),
            "medium": TriangularMF(0.02, 0.08, 0.2),
            "high": TrapezoidMF(0.1, 0.3, 1.0, 1.0),
        },
        0.0,
        1.0,
    )
    delay = LinguisticVariable(
        "delay",
        {
            "low": TrapezoidMF(0.0, 0.0, 0.2, 0.5),
            "high": TrapezoidMF(0.3, 0.7, 1.0, 1.0),
        },
        0.0,
        1.0,
    )
    adjustment = LinguisticVariable(
        "adjustment",
        {
            "cut": TriangularMF(0.2, 0.2, 0.6),
            "reduce": TriangularMF(0.4, 0.7, 1.0),
            "hold": TriangularMF(0.9, 1.0, 1.1),
            "probe": TriangularMF(1.0, 1.4, 1.8),
        },
        0.2,
        1.8,
    )
    rules = [
        FuzzyRule((("loss", "high"),), "cut"),
        FuzzyRule((("loss", "medium"), ("delay", "high")), "cut"),
        FuzzyRule((("loss", "medium"), ("delay", "low")), "reduce"),
        FuzzyRule((("loss", "low"), ("delay", "high")), "reduce"),
        FuzzyRule((("loss", "low"), ("delay", "low")), "probe"),
    ]
    return FuzzySystem([loss, delay], adjustment, rules)
