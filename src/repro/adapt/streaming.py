"""The media-streaming adaptation experiment (E6, after reference [1]).

A sender streams at rate ``r(t)`` into a path whose capacity ``c(t)``
varies over a schedule.  Excess traffic is lost and queues build delay:

* loss fraction per slot is ``max(0, (r - c) / r)``;
* queueing delay follows a one-bucket fluid model — the backlog grows by
  ``max(0, r - c)`` and drains at ``c``.

Two sender policies are compared, the paper's point being that the second
needs a *behavioural hook* in the protocol definition:

* **static** — keeps its configured rate regardless of conditions;
* **fuzzy** — each slot, feeds observed loss and normalized delay to the
  fuzzy controller (:func:`repro.adapt.fuzzy.build_rate_controller`) and
  multiplies its rate by the result.

Delivered *useful* rate counts only what the path carried; the report also
tracks loss and delay so the benchmark can show the adaptive sender
delivering comparable goodput with far less loss.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from repro.adapt.fuzzy import FuzzySystem, build_rate_controller

CapacitySchedule = Callable[[float], float]


def stepped_capacity(steps: Sequence[float], slot_duration: float = 1.0) -> CapacitySchedule:
    """A piecewise-constant capacity schedule from a list of levels."""
    if not steps:
        raise ValueError("schedule needs at least one capacity level")
    for level in steps:
        if level <= 0:
            raise ValueError(f"capacity levels must be positive, got {level}")

    def capacity(t: float) -> float:
        index = min(int(t / slot_duration), len(steps) - 1)
        return steps[index]

    return capacity


@dataclass
class StreamingReport:
    """Per-policy outcome of a streaming session."""

    policy: str
    slots: int
    offered: float
    delivered: float
    lost: float
    mean_delay: float
    peak_delay: float
    rate_history: List[float] = field(default_factory=list)
    loss_history: List[float] = field(default_factory=list)

    @property
    def loss_fraction(self) -> float:
        """Lost volume over offered volume."""
        if self.offered <= 0:
            return 0.0
        return self.lost / self.offered

    @property
    def utility(self) -> float:
        """Delivered volume penalized by delay (a simple QoE proxy)."""
        return self.delivered * (1.0 / (1.0 + self.mean_delay))


def run_streaming_session(
    capacity: CapacitySchedule,
    duration: float = 60.0,
    slot: float = 1.0,
    initial_rate: float = 1.0,
    policy: str = "fuzzy",
    controller: Optional[FuzzySystem] = None,
    delay_budget: float = 2.0,
    min_rate: float = 0.05,
    max_rate: float = 20.0,
) -> StreamingReport:
    """Simulate one session under a policy ('static' or 'fuzzy')."""
    if policy not in ("static", "fuzzy"):
        raise ValueError(f"unknown policy {policy!r}")
    if policy == "fuzzy" and controller is None:
        controller = build_rate_controller()
    rate = initial_rate
    backlog = 0.0
    offered = 0.0
    delivered = 0.0
    lost = 0.0
    delays: List[float] = []
    rate_history: List[float] = []
    loss_history: List[float] = []
    slots = int(duration / slot)
    for index in range(slots):
        t = index * slot
        c = capacity(t)
        offered_now = rate * slot
        carried = min(offered_now, c * slot)
        dropped = offered_now - carried
        backlog = max(0.0, backlog + offered_now - c * slot)
        delay = backlog / c  # time to drain the current backlog
        offered += offered_now
        delivered += carried
        lost += dropped
        delays.append(delay)
        loss_now = dropped / offered_now if offered_now > 0 else 0.0
        rate_history.append(rate)
        loss_history.append(loss_now)
        if policy == "fuzzy":
            normalized_delay = min(delay / delay_budget, 1.0)
            factor = controller.infer(loss=loss_now, delay=normalized_delay)
            rate = min(max(rate * factor, min_rate), max_rate)
    return StreamingReport(
        policy=policy,
        slots=slots,
        offered=offered,
        delivered=delivered,
        lost=lost,
        mean_delay=sum(delays) / len(delays) if delays else 0.0,
        peak_delay=max(delays) if delays else 0.0,
        rate_history=rate_history,
        loss_history=loss_history,
    )
