"""The megasim epoch engine: plan → deliver → cohorts → digest.

Time here is an integer epoch, not the simulator's float clock.  Every
epoch, each machine plans one local event from a hash of ``(seed,
epoch, global index)`` and may emit one message; messages are held at
the epoch barrier and delivered at the *start of the next epoch*.
Delivered and local events are batched into per-event cohorts and
dispatched through :class:`~repro.megasim.population.Population`.

Determinism across shard layouts rests on three facts, argued in
``DESIGN.md`` and pinned by ``tests/test_megasim.py``:

* plans hash global identity only — a machine plans the same event in
  any shard;
* a transition writes only its own machine's slot, and events of one
  machine are applied in fixed event-id order (all deliveries of one
  kind before any of the next), so cohort membership — not arrival
  order — determines the outcome;
* the transcript aggregates are sums (events fired, messages emitted,
  digest partials mod 2**64), which are partition- and order-invariant.

Observability is amortized: counters accumulate in locals during the
epoch and flush to the ``megasim.*`` registry counters once per epoch,
keeping the armed-instrumentation overhead inside the repo's ≤1.10x
gate even at millions of events per epoch.
"""

from __future__ import annotations

import time
from bisect import bisect_right
from dataclasses import asdict, dataclass
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.instrument import Instrumentation, get_default

from repro.megasim.population import Population
from repro.megasim.workloads import Workload, epoch_seed, get_workload

_MASK = (1 << 64) - 1

#: A message at the barrier: (destination, source, kind), global indices.
Message = Tuple[int, int, int]


class StaleShardError(RuntimeError):
    """A shard was asked to run an epoch it is not positioned at."""

    def __init__(self, expected: int, requested: int) -> None:
        super().__init__(
            f"shard is positioned at epoch {expected}, "
            f"cannot run epoch {requested}"
        )
        self.expected = expected
        self.requested = requested


@dataclass(frozen=True)
class RunConfig:
    """Everything that determines a megasim run's transcript."""

    workload: str
    machines: int
    epochs: int
    seed: int

    def __post_init__(self) -> None:
        if self.machines < 1:
            raise ValueError(f"need at least one machine, got {self.machines}")
        if self.epochs < 1:
            raise ValueError(f"need at least one epoch, got {self.epochs}")

    def header(self) -> str:
        # Deliberately no worker/shard count: the transcript must be
        # byte-identical however the run is partitioned.
        return (
            f"megasim workload={self.workload} machines={self.machines} "
            f"epochs={self.epochs} seed={self.seed}"
        )

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)


@dataclass
class EpochResult:
    """One shard's answer for one epoch."""

    fired: int
    emitted: int
    delivered: int
    digest: int
    outbox: List[Message]


@dataclass
class RunResult:
    """A finished run: the transcript plus headline numbers."""

    config: RunConfig
    lines: List[str]
    fired: int
    emitted: int
    elapsed: float

    def text(self) -> str:
        return "\n".join(self.lines) + "\n"

    @property
    def events_per_second(self) -> float:
        return self.fired / self.elapsed if self.elapsed > 0 else 0.0


def shard_bounds(machines: int, shards: int) -> List[Tuple[int, int]]:
    """Split ``range(machines)`` into contiguous balanced shard ranges."""
    shards = max(1, min(shards, machines))
    base, extra = divmod(machines, shards)
    bounds = []
    start = 0
    for index in range(shards):
        end = start + base + (1 if index < extra else 0)
        bounds.append((start, end))
        start = end
    return bounds


def route(
    messages: Sequence[Message], bounds: Sequence[Tuple[int, int]]
) -> List[List[Message]]:
    """Partition barrier messages by owning shard, each box sorted.

    Sorting by ``(dst, src, kind)`` fixes the delivery order regardless
    of which shard emitted what — the barrier half of the determinism
    argument.
    """
    starts = [lo for lo, _ in bounds]
    inboxes: List[List[Message]] = [[] for _ in bounds]
    for message in messages:
        inboxes[bisect_right(starts, message[0]) - 1].append(message)
    for box in inboxes:
        box.sort()
    return inboxes


class ShardEngine:
    """Machines ``[lo, hi)`` of a run, advancing one epoch at a time."""

    def __init__(
        self,
        config: RunConfig,
        lo: int,
        hi: int,
        obs: Optional[Instrumentation] = None,
    ) -> None:
        self.config = config
        self.workload: Workload = get_workload(config.workload)
        self.population = Population(self.workload, lo, hi)
        self.lo = lo
        self.hi = hi
        self.next_epoch = 0
        self._obs = obs if obs is not None else get_default()
        self._rejected_flushed = 0

    def step(self, epoch: int, inbox: Sequence[Message]) -> EpochResult:
        """Run one epoch: plan local events, deliver ``inbox``, dispatch.

        ``inbox`` must hold only messages addressed to this shard's
        range, sorted by ``(dst, src, kind)`` (see :func:`route`).
        """
        if epoch != self.next_epoch:
            raise StaleShardError(self.next_epoch, epoch)
        workload = self.workload
        config = self.config
        cohorts: List[List[int]] = [[] for _ in workload.events]
        outbox: List[Message] = []
        workload.plan(
            epoch_seed(config.seed, epoch),
            self.lo,
            self.hi,
            config.machines,
            cohorts,
            outbox,
        )
        lo = self.lo
        message_event = workload.message_event
        for dst, _src, kind in inbox:
            cohorts[message_event[kind]].append(dst - lo)
        population = self.population
        fired = 0
        for event_id, indices in enumerate(cohorts):
            if indices:
                fired += population.apply(event_id, indices)
        digest = population.digest_partial()
        self.next_epoch = epoch + 1
        obs = self._obs
        if obs.enabled:
            # The amortized flush: one counter touch per metric per
            # epoch, however many million events the epoch dispatched.
            registry = obs.registry
            name = workload.name
            registry.counter("megasim.events", workload=name).inc(fired)
            registry.counter("megasim.messages_sent", workload=name).inc(
                len(outbox)
            )
            registry.counter("megasim.messages_delivered", workload=name).inc(
                len(inbox)
            )
            registry.counter("megasim.epochs", workload=name).inc()
            rejected = population.rejected - self._rejected_flushed
            if rejected:
                registry.counter("megasim.rejected", workload=name).inc(
                    rejected
                )
                self._rejected_flushed = population.rejected
        return EpochResult(
            fired=fired,
            emitted=len(outbox),
            delivered=len(inbox),
            digest=digest,
            outbox=outbox,
        )


def _transcript_line(epoch: int, fired: int, emitted: int, digest: int) -> str:
    return f"epoch={epoch} fired={fired} msgs={emitted} digest={digest:016x}"


def run_serial(
    config: RunConfig, obs: Optional[Instrumentation] = None
) -> RunResult:
    """Run the whole population in one engine, in this process."""
    started = time.perf_counter()
    engine = ShardEngine(config, 0, config.machines, obs=obs)
    lines = [config.header()]
    inbox: List[Message] = []
    fired = emitted = 0
    for epoch in range(config.epochs):
        result = engine.step(epoch, inbox)
        lines.append(
            _transcript_line(epoch, result.fired, result.emitted, result.digest)
        )
        fired += result.fired
        emitted += result.emitted
        inbox = sorted(result.outbox)  # the final epoch's outbox is dropped
    return RunResult(
        config=config,
        lines=lines,
        fired=fired,
        emitted=emitted,
        elapsed=time.perf_counter() - started,
    )


def run_partitioned(
    config: RunConfig, shards: int, obs: Optional[Instrumentation] = None
) -> RunResult:
    """Run ``shards`` engines in this process with barrier routing.

    The pure in-process form of the sharded plane — what
    ``repro.megasim.shard`` distributes over worker processes — used by
    the invariance tests to compare any shard count without forking.
    """
    started = time.perf_counter()
    bounds = shard_bounds(config.machines, shards)
    engines = [ShardEngine(config, lo, hi, obs=obs) for lo, hi in bounds]
    inboxes: List[List[Message]] = [[] for _ in engines]
    lines = [config.header()]
    fired = emitted = 0
    for epoch in range(config.epochs):
        epoch_fired = epoch_emitted = 0
        digest = 0
        all_out: List[Message] = []
        for engine, inbox in zip(engines, inboxes):
            result = engine.step(epoch, inbox)
            epoch_fired += result.fired
            epoch_emitted += result.emitted
            digest = (digest + result.digest) & _MASK
            all_out.extend(result.outbox)
        lines.append(
            _transcript_line(epoch, epoch_fired, epoch_emitted, digest)
        )
        fired += epoch_fired
        emitted += epoch_emitted
        inboxes = route(all_out, bounds)
    return RunResult(
        config=config,
        lines=lines,
        fired=fired,
        emitted=emitted,
        elapsed=time.perf_counter() - started,
    )
