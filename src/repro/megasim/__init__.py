"""Population-scale protocol simulation: a million machines, one process.

The paper's §1.1 settings — wireless OLSR meshes, trust overlays — are
*population* problems: the interesting behaviour emerges from how many
nodes interact, not from any one node's trace.  Hosting each node as a
:class:`~repro.core.machine.Machine` object driven by simulator timers
tops out around 10⁵ events per second; ``repro.megasim`` hosts the same
sealed :class:`~repro.core.statemachine.MachineSpec` definitions as
dense integer arrays and dispatches events in *cohorts* — one generated
Python loop per (state, transition) batch, built at seal time by
``repro.core.dispatch`` — for an order of magnitude more.

Time is an integer epoch with a message barrier: every machine plans
its epoch from a hash of ``(seed, epoch, global index)``, messages are
delivered sorted at the next barrier, and the per-epoch transcript
digests are partition-invariant sums — so a run sharded over any
number of ``repro.parallel`` workers is byte-identical to the serial
one at the same seed.

Quickstart::

    python -m repro.megasim --machines 1000000 --workload olsr --epochs 3

See ``DESIGN.md`` ("Megascale simulation") for the layout and the
determinism argument, and ``benchmarks/bench_megasim.py`` for the
events/sec tier against the per-object baseline.
"""

from repro.megasim.engine import (
    EpochResult,
    RunConfig,
    RunResult,
    ShardEngine,
    StaleShardError,
    route,
    run_partitioned,
    run_serial,
    shard_bounds,
)
from repro.megasim.population import Population
from repro.megasim.shard import ShardedRun, run_sharded
from repro.megasim.workloads import WORKLOADS, Workload, get_workload

__all__ = [
    "EpochResult",
    "Population",
    "RunConfig",
    "RunResult",
    "ShardEngine",
    "ShardedRun",
    "StaleShardError",
    "WORKLOADS",
    "Workload",
    "get_workload",
    "route",
    "run_partitioned",
    "run_serial",
    "run_sharded",
    "shard_bounds",
]
