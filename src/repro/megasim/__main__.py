"""The megasim CLI: ``python -m repro.megasim --machines 1000000``.

Runs one scenario — serial by default, sharded over a
``repro.parallel`` pool with ``--workers N`` — printing the transcript
as epochs complete and a headline events/sec summary at the end.

``--verify-sharding`` runs the scenario twice, serial and sharded, and
demands byte-identical transcripts; the CI ``megasim-smoke`` job drives
this at 50k machines.
"""

from __future__ import annotations

import argparse
import sys
from typing import Optional

from repro.megasim.engine import RunConfig, RunResult, run_serial
from repro.megasim.workloads import WORKLOADS


def _parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.megasim",
        description="Population-scale simulation of the paper's §1.1 meshes.",
    )
    parser.add_argument(
        "--machines", type=int, default=100_000,
        help="population size (default: 100000)",
    )
    parser.add_argument(
        "--workload", choices=WORKLOADS, default="olsr",
        help="which §1.1 scenario to run (default: olsr)",
    )
    parser.add_argument(
        "--epochs", type=int, default=3,
        help="how many epoch barriers to run (default: 3)",
    )
    parser.add_argument(
        "--seed", type=int, default=7,
        help="run seed; same seed, same transcript (default: 7)",
    )
    parser.add_argument(
        "--workers", type=int, default=0,
        help="shard over a worker pool of this size (0 = serial, min 2)",
    )
    parser.add_argument(
        "--shards", type=int, default=None,
        help="logical shard count (default: the worker count)",
    )
    parser.add_argument(
        "--verify-sharding", action="store_true",
        help="run serial AND sharded, demand byte-identical transcripts",
    )
    parser.add_argument(
        "--transcript", metavar="PATH", default=None,
        help="also write the transcript to this file",
    )
    parser.add_argument(
        "--quiet", action="store_true",
        help="suppress per-epoch transcript lines on stdout",
    )
    return parser


def _run_pooled(config: RunConfig, workers: int, shards: Optional[int]) -> RunResult:
    from repro.parallel.pool import ShardedPool

    from repro.megasim.shard import run_sharded

    pool = ShardedPool(workers=max(2, workers))
    try:
        return run_sharded(config, pool, shards=shards)
    finally:
        pool.close()


def _summarize(result: RunResult, mode: str) -> str:
    config = result.config
    return (
        f"hosted {config.machines:,} machines for {config.epochs} epochs "
        f"({mode}): {result.fired:,} events, {result.emitted:,} messages "
        f"in {result.elapsed:.2f}s — {result.events_per_second:,.0f} events/sec"
    )


def main(argv: Optional[list] = None) -> int:
    args = _parser().parse_args(argv)
    config = RunConfig(
        workload=args.workload,
        machines=args.machines,
        epochs=args.epochs,
        seed=args.seed,
    )
    if args.verify_sharding:
        workers = max(2, args.workers)
        serial = run_serial(config)
        sharded = _run_pooled(config, workers, args.shards)
        if not args.quiet:
            sys.stdout.write(serial.text())
        sys.stdout.write(_summarize(serial, "serial") + "\n")
        sys.stdout.write(
            _summarize(sharded, f"{workers} workers") + "\n"
        )
        if serial.text() != sharded.text():
            sys.stdout.write("shard-count invariance: FAILED\n")
            for left, right in zip(serial.lines, sharded.lines):
                if left != right:
                    sys.stdout.write(f"  serial : {left}\n")
                    sys.stdout.write(f"  sharded: {right}\n")
            return 2
        sys.stdout.write(
            f"shard-count invariance: OK "
            f"({len(serial.text())} transcript bytes identical)\n"
        )
        result = serial
    elif args.workers >= 2:
        result = _run_pooled(config, args.workers, args.shards)
        if not args.quiet:
            sys.stdout.write(result.text())
        sys.stdout.write(_summarize(result, f"{args.workers} workers") + "\n")
    else:
        result = run_serial(config)
        if not args.quiet:
            sys.stdout.write(result.text())
        sys.stdout.write(_summarize(result, "serial") + "\n")
    if args.transcript:
        with open(args.transcript, "w", encoding="utf-8") as handle:
            handle.write(result.text())
    return 0


if __name__ == "__main__":
    sys.exit(main())
