"""Dense machine populations with cohort-batched staged dispatch.

A :class:`Population` hosts machines ``[lo, hi)`` of a megasim run as
two parallel arrays — a dense state id and a single integer parameter
value per machine — instead of one :class:`~repro.core.machine.Machine`
object each.  Events are applied in *cohorts*: all machines receiving
the same event in the same state go through one Python-level loop, so
the per-event interpreter overhead (instance allocation, pattern
unification, symbolic evaluation) is paid once per cohort, not once per
machine.

Three kernel tiers, best available wins per transition:

1. the **fused cohort closure** compiled at seal time by
   :func:`repro.core.dispatch._compile_cohort` — match, guard, target
   and normalization in one generated loop over the slab;
2. the per-instance **staged closures** (``match``/``guard``/``target``)
   from the same :class:`~repro.core.dispatch.StagedTransition`, driven
   by a loop here;
3. the fully **interpreted** pattern/guard path, used when staging is
   disabled (``REPRO_MACHINE_STAGED=off``) — the semantics oracle the
   differential tests compare against.

Every tier applies candidates of an event group in declaration order
and passes guard-rejected indices to the next candidate, mirroring how
a :class:`Machine` caller would probe ``try_exec`` down the group.
"""

from __future__ import annotations

from array import array
from typing import Any, Callable, List, Optional, Sequence, Tuple

from repro.core import dispatch as _dispatch
from repro.core.statemachine import StateInstance, TransitionSpec
from repro.core.symbolic import UnificationError

from repro.megasim.workloads import Workload, mix64

_MASK = (1 << 64) - 1
_DIGEST_SALT = 0xD1B54A32D192ED03

# A miss-chain step: indices in -> indices that did not fire.
_Step = Callable[[Sequence[int]], List[int]]


def _interpreted_step(
    transition: TransitionSpec,
    staged: Optional[_dispatch.StagedTransition],
    state_spec: Any,
    arity: int,
    target_sid: int,
    values: array,
    state_ids: array,
) -> _Step:
    """Tier 2/3: per-instance closures, or raw patterns when staging is off."""
    source, target = transition.source, transition.target
    match = staged.match if staged is not None else None
    guard = staged.guard if staged is not None else None
    build = staged.target if staged is not None else None
    has_guard = transition.guard is not None
    same_state = target.state is state_spec
    instance = StateInstance

    def step(indices: Sequence[int]) -> List[int]:
        misses: List[int] = []
        miss = misses.append
        for i in indices:
            inst = instance(state_spec, (values[i],) if arity else ())
            if match is not None:
                bindings = match(inst)
            else:
                try:
                    bindings = source.match(inst)
                except UnificationError:
                    bindings = None
            if bindings is None:
                miss(i)
                continue
            if has_guard:
                if guard is not None:
                    ok = guard(bindings, None)
                else:
                    ok = transition.guard_holds(bindings, None)
                if not ok:
                    miss(i)
                    continue
            new = build(bindings) if build is not None else target.instantiate(bindings)
            if new.values:
                values[i] = new.values[0]
            if not same_state:
                state_ids[i] = target_sid
        return misses

    return step


class Population:
    """Machines ``[lo, hi)`` of a run, stored as parallel dense arrays."""

    def __init__(self, workload: Workload, lo: int, hi: int) -> None:
        spec = workload.spec
        if not spec.sealed:
            raise ValueError(f"workload spec {spec.name!r} must be sealed")
        for state in spec.states.values():
            if state.arity > 1:
                raise NotImplementedError(
                    f"megasim populations host states with at most one "
                    f"parameter; {spec.name}.{state.name} has {state.arity}"
                )
        self.workload = workload
        self.lo = lo
        self.hi = hi
        self.size = hi - lo
        self._state_order = tuple(spec.states.values())
        sid_of = {state.name: sid for sid, state in enumerate(self._state_order)}
        initial = spec.initial_states[0]
        self.state_ids = array("h", [sid_of[initial.name]]) * self.size
        self.values = array(
            "q", (workload.initial_value(i) for i in range(lo, hi))
        )
        self.rejected = 0  # events no candidate accepted (workload bug tell)
        table = _dispatch.staged_table(spec)
        # chains[event_id][state_id] -> miss-chain of candidate steps, or
        # None when no candidate starts from that state.
        self._chains: List[List[Optional[List[_Step]]]] = []
        for group in workload.events:
            per_state: List[Optional[List[_Step]]] = []
            for sid, state in enumerate(self._state_order):
                chain: List[_Step] = []
                for name in group:
                    transition = spec.transition_named(name)
                    if transition.source.state is not state:
                        continue
                    target_sid = sid_of[transition.target.state.name]
                    staged = table.by_name[name] if table is not None else None
                    cohort = staged.cohort if staged is not None else None
                    if cohort is not None:
                        chain.append(
                            self._fused_step(cohort, target_sid)
                        )
                    else:
                        chain.append(
                            _interpreted_step(
                                transition,
                                staged,
                                state,
                                state.arity,
                                target_sid,
                                self.values,
                                self.state_ids,
                            )
                        )
                per_state.append(chain or None)
            self._chains.append(per_state)
        # Per-index digest multipliers: functions of *global* identity, so
        # digest partials sum to the same total under any partition.
        self._digest_pre = [
            mix64(index * 0x9E3779B97F4A7C15 + _DIGEST_SALT) | 1
            for index in range(lo, hi)
        ]

    def _fused_step(self, cohort: Callable, target_sid: int) -> _Step:
        values, state_ids = self.values, self.state_ids

        def step(indices: Sequence[int]) -> List[int]:
            return cohort(indices, values, state_ids, target_sid)

        return step

    # -- execution ---------------------------------------------------------

    def apply(self, event_id: int, indices: Sequence[int]) -> int:
        """Apply one event to every index; returns how many fired."""
        total = len(indices)
        if total == 0:
            return 0
        if len(self._state_order) == 1:
            buckets: Sequence[Tuple[int, Sequence[int]]] = ((0, indices),)
        else:
            per: List[List[int]] = [[] for _ in self._state_order]
            state_ids = self.state_ids
            for i in indices:
                per[state_ids[i]].append(i)
            buckets = tuple(
                (sid, idxs) for sid, idxs in enumerate(per) if idxs
            )
        fired = 0
        chains = self._chains[event_id]
        for sid, idxs in buckets:
            chain = chains[sid]
            if chain is None:
                self.rejected += len(idxs)
                continue
            remaining: Sequence[int] = idxs
            for step in chain:
                if not remaining:
                    break
                remaining = step(remaining)
            fired += len(idxs) - len(remaining)
            self.rejected += len(remaining)
        return fired

    # -- inspection --------------------------------------------------------

    def digest_partial(self) -> int:
        """This shard's contribution to the run digest (mod 2**64).

        A multiplier-weighted checksum over ``(state, value)`` pairs: the
        weights depend only on global machine identity, and partials add
        modulo 2**64, so serial, partitioned, and pooled runs of the same
        scenario produce the same total in any shard arrangement.
        """
        if len(self._state_order) == 1:
            total = sum(
                pre * (value + 1)
                for pre, value in zip(self._digest_pre, self.values)
            )
        else:
            total = sum(
                pre * (value + (sid << 20) + 1)
                for pre, value, sid in zip(
                    self._digest_pre, self.values, self.state_ids
                )
            )
        return total & _MASK

    def state_of(self, local_index: int) -> StateInstance:
        """The machine's current state as a regular ``StateInstance``."""
        state = self._state_order[self.state_ids[local_index]]
        if state.arity:
            return state.instance(self.values[local_index])
        return state.instance()
