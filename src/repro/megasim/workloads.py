"""Population-scale workloads distilled from the paper's §1.1 settings.

Each workload is a sealed :class:`~repro.core.statemachine.MachineSpec`
plus the *epoch plan*: a deterministic function of ``(seed, epoch,
machine index)`` deciding what every machine does this epoch — which
local event it executes and whether it emits a message to a neighbour.
Decisions are pure hashes of global identity, never of shard layout, so
a run partitioned over any number of shards plans exactly the same
events (the first half of the epoch-barrier determinism argument; see
``DESIGN.md``).

Two workloads ship:

``olsr``
    The OLSR-style beacon mesh from §1.1's wireless setting: every node
    keeps a 16-bit beacon sequence, fires a periodic ``HELLO`` (or a
    ``RETX`` after a simulated loss), and bumps its counter on a
    neighbour's beacon (``HEARD``).

``trust``
    The §1.1 trust mesh: every relay carries a saturating score;
    neighbours send good/bad verdicts, and guarded transition groups
    (``GOOD``/``GOOD_SAT``, ``BAD``/``BAD_FLOOR``) clamp the score to
    ``[0, CAP]`` — the same arithmetic ``repro.trust.mesh`` applies one
    object at a time.

Events are identified by small integers indexing ``Workload.events``,
each entry an ordered tuple of candidate transition names: the first
whose guard holds fires (the completeness checker guarantees the group
covers every value, so a fully-missed event means a workload bug).
Message kinds map into event ids through ``Workload.message_event``.
"""

from __future__ import annotations

from typing import Dict, List, Tuple

from repro.core.statemachine import MachineSpec, Param
from repro.core.symbolic import Var

_MASK = (1 << 64) - 1
_GOLDEN = 0x9E3779B97F4A7C15
_MIX1 = 0xBF58476D1CE4E5B9
_MIX2 = 0x94D049BB133111EB


def mix64(z: int) -> int:
    """The splitmix64 finalizer: the run's only source of randomness."""
    z &= _MASK
    z = ((z ^ (z >> 30)) * _MIX1) & _MASK
    z = ((z ^ (z >> 27)) * _MIX2) & _MASK
    return z ^ (z >> 31)


def epoch_seed(seed: int, epoch: int) -> int:
    """The per-epoch hash base; identical in every shard."""
    return mix64((seed + 1) * _GOLDEN + epoch * _MIX1)


class Workload:
    """A sealed spec plus the epoch-planning rules that drive it.

    Subclasses define :meth:`plan` as one inline loop — the per-machine
    decision hash is open-coded there because it runs once per machine
    per epoch, the second-hottest loop in megasim after the cohort
    kernels.
    """

    #: Registry key and transcript label.
    name: str = ""
    #: Event id -> ordered candidate transition names.
    events: Tuple[Tuple[str, ...], ...] = ()
    #: Message kind -> event id applied at the receiver.
    message_event: Dict[int, int] = {}

    def __init__(self) -> None:
        self.spec = self._build_spec()

    def _build_spec(self) -> MachineSpec:
        raise NotImplementedError

    def initial_value(self, index: int) -> int:
        """The machine's starting parameter value (global index -> value)."""
        raise NotImplementedError

    def plan(
        self,
        eseed: int,
        lo: int,
        hi: int,
        machines: int,
        cohorts: List[List[int]],
        outbox: List[Tuple[int, int, int]],
    ) -> None:
        """Plan one epoch for machines ``[lo, hi)`` of ``machines`` total.

        Appends shard-local indices (``global - lo``) to ``cohorts`` and
        ``(dst, src, kind)`` messages (global indices) to ``outbox``.
        """
        raise NotImplementedError


class OlsrBeacons(Workload):
    """§1.1 wireless mesh: HELLO beacons, retransmits, neighbour churn."""

    name = "olsr"
    events = (("HELLO",), ("RETX",), ("HEARD",))
    message_event = {0: 2}  # a beacon on the air -> HEARD at the receiver

    def _build_spec(self) -> MachineSpec:
        sm = MachineSpec(
            "olsr_node",
            doc="An OLSR-style node's beacon counter, population-hosted.",
        )
        beacon = sm.state(
            "Beacon", params=[Param("seq", bits=16)], initial=True
        )
        n = Var("seq")
        sm.transition(
            "HELLO", beacon(n), beacon(n + 1), doc="periodic beacon sent"
        )
        sm.transition(
            "RETX", beacon(n), beacon(n + 1), doc="beacon resent after loss"
        )
        sm.transition(
            "HEARD", beacon(n), beacon(n + 3), doc="neighbour beacon received"
        )
        return sm.seal()

    def initial_value(self, index: int) -> int:
        return index & 0xFFFF

    def plan(self, eseed, lo, hi, machines, cohorts, outbox):
        hello = cohorts[0].append
        retx = cohorts[1].append
        emit = outbox.append
        linked = machines > 1
        mask = _MASK
        for i in range(lo, hi):
            z = (eseed + i * _GOLDEN) & mask
            z = ((z ^ (z >> 30)) * _MIX1) & mask
            z = ((z ^ (z >> 27)) * _MIX2) & mask
            z ^= z >> 31
            if z & 3:  # 3/4 of beacons go out on schedule...
                hello(i - lo)
            else:  # ...the rest were lost once and retransmit
                retx(i - lo)
            if z & 4 and linked:  # half the beacons reach a neighbour
                emit(((i + 1 + ((z >> 16) % (machines - 1))) % machines, i, 0))


class TrustMesh(Workload):
    """§1.1 trust mesh: saturating relay scores driven by peer verdicts."""

    name = "trust"
    events = (("PROBE",), ("GOOD", "GOOD_SAT"), ("BAD", "BAD_FLOOR"))
    message_event = {1: 1, 2: 2}

    #: Score ceiling; GOOD saturates here, matching ``repro.trust.mesh``.
    CAP = 64

    def _build_spec(self) -> MachineSpec:
        sm = MachineSpec(
            "trust_relay",
            doc="A relay's trust score with guarded saturation arithmetic.",
        )
        relay = sm.state(
            "Relay", params=[Param("score", bits=16)], initial=True
        )
        s = Var("score")
        sm.transition(
            "PROBE", relay(s), relay(s), doc="keep-alive probe, score unchanged"
        )
        sm.transition(
            "GOOD",
            relay(s),
            relay(s + 1),
            guard=(s < self.CAP),
            doc="good verdict below the cap",
        )
        sm.transition(
            "GOOD_SAT",
            relay(s),
            relay(s),
            guard=(s >= self.CAP),
            doc="good verdict at the cap: saturate",
        )
        sm.transition(
            "BAD",
            relay(s),
            relay(s - 1),
            guard=(s >= 1),
            doc="bad verdict above the floor",
        )
        sm.transition(
            "BAD_FLOOR",
            relay(s),
            relay(s),
            guard=(s < 1),
            doc="bad verdict at zero: stay floored",
        )
        return sm.seal()

    def initial_value(self, index: int) -> int:
        return (index * 7) % self.CAP

    def plan(self, eseed, lo, hi, machines, cohorts, outbox):
        probe = cohorts[0].append
        emit = outbox.append
        linked = machines > 1
        mask = _MASK
        for i in range(lo, hi):
            z = (eseed + i * _GOLDEN) & mask
            z = ((z ^ (z >> 30)) * _MIX1) & mask
            z = ((z ^ (z >> 27)) * _MIX2) & mask
            z ^= z >> 31
            probe(i - lo)
            if z & 1 and linked:  # half the probes produce a verdict
                # 3/4 of verdicts are good, 1/4 bad — scores drift to the
                # cap, so the guarded saturation branches actually run.
                kind = 1 if z & 6 else 2
                emit(((i + 1 + ((z >> 16) % (machines - 1))) % machines, i, kind))


_REGISTRY = {cls.name: cls for cls in (OlsrBeacons, TrustMesh)}
WORKLOADS = tuple(sorted(_REGISTRY))

_instances: Dict[str, Workload] = {}


def get_workload(name: str) -> Workload:
    """The (shared, stateless) workload instance for ``name``."""
    try:
        instance = _instances[name]
    except KeyError:
        try:
            cls = _REGISTRY[name]
        except KeyError:
            raise KeyError(
                f"unknown megasim workload {name!r}; "
                f"available: {', '.join(WORKLOADS)}"
            ) from None
        instance = _instances[name] = cls()
    return instance
