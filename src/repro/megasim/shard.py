"""Sharding megasim over the ``repro.parallel`` execution plane.

The parent (:class:`ShardedRun`) drives one ``run_epoch`` conformance
call per shard per epoch through
:meth:`~repro.parallel.pool.ShardedPool.run_calls`.  Shard *i* always
rides chunk *i*, and the pool assigns chunk ``i`` to worker ``i %
size`` — so a shard lands on the same worker every epoch and its
:class:`~repro.megasim.engine.ShardEngine` lives in a worker-side cache
keyed by ``(run token, shard)``.

Workers are allowed to die (the pool respawns them cold) or to answer
an epoch for a shard they have never seen.  The protocol recovers
deterministically instead of approximately:

* every engine knows ``next_epoch``; a cache hit positioned at the
  wrong epoch is treated as a miss, never silently advanced;
* a miss at epoch > 0 answers ``{"status": "cold"}``; the parent — who
  keeps every shard's full inbox history — reissues the call with that
  history, and the worker rebuilds the shard by replaying epochs
  ``0..k-1`` from scratch (plans are pure hashes, so the replay is
  exact) before running epoch ``k``.

Messages cross the barrier as plain ``(dst, src, kind)`` tuples; the
parent routes and sorts them (:func:`~repro.megasim.engine.route`), so
every shard sees the same inbox a serial run would have delivered.
"""

from __future__ import annotations

import itertools
import os
import time
from typing import Any, Dict, List, Optional, Sequence

from repro.parallel.pool import CallError, ShardedPool

from repro.megasim.engine import (
    Message,
    RunConfig,
    RunResult,
    ShardEngine,
    _transcript_line,
    route,
    shard_bounds,
)

_MASK = (1 << 64) - 1
_TARGET = "repro.megasim.shard:run_epoch"
_tokens = itertools.count()

# Worker-side shard cache: (token, shard index) -> engine.
_SHARDS: Dict[Any, ShardEngine] = {}


def reset_cache() -> int:
    """Drop every cached shard engine (tests); returns how many."""
    count = len(_SHARDS)
    _SHARDS.clear()
    return count


def run_epoch(
    token: str,
    shard: int,
    shards: int,
    epoch: int,
    inbox: Sequence[Sequence[int]],
    config: Dict[str, Any],
    history: Optional[Sequence[Sequence[Sequence[int]]]] = None,
) -> Dict[str, Any]:
    """The worker-side entry point: advance one shard by one epoch.

    Runs in a pool worker via the ``"call"`` task protocol, but is a
    plain function — the cold-rebuild tests drive it in-process too.
    """
    key = (token, shard)
    engine = _SHARDS.get(key)
    if engine is not None and engine.next_epoch != epoch:
        # This worker missed an epoch (a retry ran it elsewhere) or
        # holds a finished run's namesake.  Never guess: rebuild.
        engine = None
    if engine is None:
        if epoch > 0 and history is None:
            return {"status": "cold", "shard": shard}
        run_config = RunConfig(**config)
        lo, hi = shard_bounds(run_config.machines, shards)[shard]
        engine = ShardEngine(run_config, lo, hi)
        for past_epoch, past_inbox in enumerate(history or ()):
            engine.step(past_epoch, [tuple(m) for m in past_inbox])
        _SHARDS[key] = engine
    result = engine.step(epoch, [tuple(m) for m in inbox])
    return {
        "status": "ok",
        "shard": shard,
        "fired": result.fired,
        "emitted": result.emitted,
        "digest": result.digest,
        "outbox": result.outbox,
    }


class ShardedRun:
    """The parent half: one megasim run fanned over a worker pool."""

    def __init__(
        self,
        config: RunConfig,
        pool: ShardedPool,
        shards: Optional[int] = None,
    ) -> None:
        self.config = config
        self.pool = pool
        self.shards = shards if shards is not None else pool.size
        if self.shards < 1:
            raise ValueError(f"need at least one shard, got {self.shards}")
        self.bounds = shard_bounds(config.machines, self.shards)
        self.shards = len(self.bounds)  # tiny populations clamp the count
        self.token = f"megasim-{os.getpid()}-{next(_tokens)}"
        self._config_dict = config.to_dict()
        # Inbox history per shard, one entry per completed epoch — the
        # replay log a cold worker rebuilds from.
        self.history: List[List[List[Message]]] = [[] for _ in range(self.shards)]
        self.inboxes: List[List[Message]] = [[] for _ in range(self.shards)]
        self.rebuilds = 0

    def _calls(
        self, epoch: int, shard_list: Sequence[int], with_history: bool
    ) -> List[Any]:
        calls = []
        for shard in shard_list:
            kwargs: Dict[str, Any] = {
                "token": self.token,
                "shard": shard,
                "shards": self.shards,
                "epoch": epoch,
                "inbox": self.inboxes[shard],
                "config": self._config_dict,
            }
            if with_history:
                kwargs["history"] = self.history[shard]
            calls.append((_TARGET, kwargs))
        return calls

    def step(self, epoch: int) -> EpochTotals:
        """Advance every shard one epoch; returns the global aggregates."""
        replies = self.pool.run_calls(self._calls(epoch, range(self.shards), False))
        retry = [
            shard
            for shard, reply in enumerate(replies)
            if isinstance(reply, CallError)
            or (isinstance(reply, dict) and reply.get("status") != "ok")
        ]
        if retry:
            # Cold or crashed shards: reissue with the full inbox
            # history so the worker can replay the shard from epoch 0.
            self.rebuilds += len(retry)
            for shard, reply in zip(
                retry, self.pool.run_calls(self._calls(epoch, retry, True))
            ):
                replies[shard] = reply
        for shard, reply in enumerate(replies):
            if isinstance(reply, CallError) or not (
                isinstance(reply, dict) and reply.get("status") == "ok"
            ):
                raise RuntimeError(
                    f"megasim shard {shard} failed after rebuild: {reply!r}"
                )
        fired = sum(reply["fired"] for reply in replies)
        emitted = sum(reply["emitted"] for reply in replies)
        digest = sum(reply["digest"] for reply in replies) & _MASK
        for shard in range(self.shards):
            self.history[shard].append(self.inboxes[shard])
        outbox = [
            tuple(message)
            for reply in replies
            for message in reply["outbox"]
        ]
        self.inboxes = route(outbox, self.bounds)
        return EpochTotals(fired=fired, emitted=emitted, digest=digest)


class EpochTotals:
    """Global per-epoch aggregates from a sharded step."""

    __slots__ = ("fired", "emitted", "digest")

    def __init__(self, fired: int, emitted: int, digest: int) -> None:
        self.fired = fired
        self.emitted = emitted
        self.digest = digest


def run_sharded(
    config: RunConfig, pool: ShardedPool, shards: Optional[int] = None
) -> RunResult:
    """Run a full scenario over ``pool``; transcript matches the serial run."""
    started = time.perf_counter()
    run = ShardedRun(config, pool, shards=shards)
    lines = [config.header()]
    fired = emitted = 0
    for epoch in range(config.epochs):
        totals = run.step(epoch)
        lines.append(
            _transcript_line(epoch, totals.fired, totals.emitted, totals.digest)
        )
        fired += totals.fired
        emitted += totals.emitted
    return RunResult(
        config=config,
        lines=lines,
        fired=fired,
        emitted=emitted,
        elapsed=time.perf_counter() - started,
    )
