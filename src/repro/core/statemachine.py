"""The typed state-machine DSL: parameterized states and indexed transitions.

This module renders the paper's Section 3.4 machinery in Python.  In the
paper, the sender's states are *indexed by the sequence number*::

    data SendSt = Ready Byte | Wait Byte | Timeout Byte | Sent Byte

and transitions are typed by the states they connect::

    OK : SendTrans (Wait seq) (Ready (seq+1))

Here, a :class:`MachineSpec` declares parameterized states and transitions
whose source/target are *state patterns* over symbolic parameters.  The
spec must be :meth:`~MachineSpec.seal`-ed before any runtime machine can be
created; sealing runs the definition-time checker
(:mod:`repro.core.checker`), which enforces the paper's soundness and
completeness properties.  An unsound or incomplete machine is rejected
before it can ever execute — the Python analogue of "it does not
typecheck".
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Dict,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.core.symbolic import (
    Expr,
    ExprLike,
    Predicate,
    UnificationError,
    Var,
    as_expr,
    unify,
)


class MachineSpecError(ValueError):
    """Raised at definition/seal time for an ill-formed machine spec."""


class Param:
    """A dependent parameter of a state (e.g. the sequence number).

    ``bits`` gives the parameter a finite, wrapping domain: a ``Param("seq",
    bits=8)`` is the paper's ``Byte`` index, and target expressions such as
    ``seq + 1`` wrap modulo 256 — exactly the arithmetic the ARQ example
    relies on.  Without ``bits`` the domain is the unbounded naturals.
    """

    __slots__ = ("name", "bits")

    def __init__(self, name: str, bits: Optional[int] = None) -> None:
        if not name.isidentifier():
            raise MachineSpecError(f"param name must be an identifier, got {name!r}")
        if bits is not None and bits <= 0:
            raise MachineSpecError(f"param width must be positive, got {bits}")
        self.name = name
        self.bits = bits

    def normalize(self, value: int) -> int:
        """Clamp a computed value into the parameter's domain."""
        if value < 0 and self.bits is None:
            raise MachineSpecError(
                f"param {self.name!r} cannot take negative value {value}"
            )
        if self.bits is not None:
            return value % (1 << self.bits)
        return value

    def __repr__(self) -> str:
        if self.bits is not None:
            return f"Param({self.name!r}, bits={self.bits})"
        return f"Param({self.name!r})"


ParamLike = Union[Param, str]


def _as_param(value: ParamLike) -> Param:
    if isinstance(value, Param):
        return value
    return Param(value)


class StateSpec:
    """A declared, possibly parameterized state of a machine.

    Calling a state spec with expressions yields a :class:`StatePattern`
    for use in transitions (``Wait(Var("seq"))``), and calling it with
    plain integers yields a concrete pattern usable as an initial state.
    """

    def __init__(
        self,
        machine: "MachineSpec",
        name: str,
        params: Tuple[Param, ...],
        initial: bool,
        final: bool,
        doc: str,
    ) -> None:
        self.machine = machine
        self.name = name
        self.params = params
        self.initial = initial
        self.final = final
        self.doc = doc

    @property
    def arity(self) -> int:
        """Number of dependent parameters."""
        return len(self.params)

    def __call__(self, *args: ExprLike) -> "StatePattern":
        if len(args) != self.arity:
            raise MachineSpecError(
                f"state {self.name!r} takes {self.arity} parameter(s), "
                f"got {len(args)}"
            )
        return StatePattern(self, tuple(as_expr(a) for a in args))

    def instance(self, *values: int) -> "StateInstance":
        """A concrete instance of this state with given parameter values."""
        if len(values) != self.arity:
            raise MachineSpecError(
                f"state {self.name!r} takes {self.arity} parameter(s), "
                f"got {len(values)}"
            )
        normalized = tuple(
            param.normalize(value) for param, value in zip(self.params, values)
        )
        return StateInstance(self, normalized)

    def __repr__(self) -> str:
        return f"StateSpec({self.name!r}, arity={self.arity})"


class StatePattern:
    """A state with symbolic parameter expressions (used in transitions)."""

    __slots__ = ("state", "args")

    def __init__(self, state: StateSpec, args: Tuple[Expr, ...]) -> None:
        self.state = state
        self.args = args

    def free_variables(self) -> frozenset:
        names: frozenset = frozenset()
        for arg in self.args:
            names |= arg.free_variables()
        return names

    def match(self, instance: "StateInstance") -> Dict[str, int]:
        """Unify this pattern against a concrete state instance.

        Returns the variable bindings; raises
        :class:`~repro.core.symbolic.UnificationError` on mismatch.
        """
        if instance.state is not self.state:
            raise UnificationError(
                f"state {instance.state.name!r} does not match "
                f"pattern {self.state.name!r}"
            )
        bindings: Dict[str, int] = {}
        for pattern_arg, value in zip(self.args, instance.values):
            unify(pattern_arg, value, bindings)
        return bindings

    def instantiate(self, bindings: Mapping[str, int]) -> "StateInstance":
        """Evaluate the pattern's expressions to a concrete state."""
        values = tuple(arg.evaluate(bindings) for arg in self.args)
        return self.state.instance(*values)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, StatePattern)
            and other.state is self.state
            and other.args == self.args
        )

    def __hash__(self) -> int:
        return hash((id(self.state), self.args))

    def __repr__(self) -> str:
        inner = ", ".join(str(a) for a in self.args)
        return f"{self.state.name}({inner})"


class StateInstance:
    """A concrete machine state: a state spec plus parameter values."""

    __slots__ = ("state", "values")

    def __init__(self, state: StateSpec, values: Tuple[int, ...]) -> None:
        self.state = state
        self.values = values

    @property
    def name(self) -> str:
        """The underlying state's name."""
        return self.state.name

    @property
    def is_final(self) -> bool:
        """True when the underlying state is final."""
        return self.state.final

    def bindings(self) -> Dict[str, int]:
        """Parameter values keyed by declared parameter names."""
        return {
            param.name: value
            for param, value in zip(self.state.params, self.values)
        }

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, StateInstance)
            and other.state is self.state
            and other.values == self.values
        )

    def __hash__(self) -> int:
        return hash((id(self.state), self.values))

    def __repr__(self) -> str:
        inner = ", ".join(str(v) for v in self.values)
        return f"{self.state.name}({inner})"


PayloadRequirement = Union[None, str, Any]  # None | "bytes" | PacketSpec


class TransitionSpec:
    """A typed transition: named, with source/target state patterns.

    Attributes
    ----------
    requires:
        What evidence the transition demands before it may execute:
        ``None`` (no payload), the string ``"bytes"`` (a raw byte payload,
        like the paper's ``SEND : List Byte -> ...``), or a
        :class:`~repro.core.packet.PacketSpec` — meaning a
        ``Verified`` packet of that spec (the paper's ``OK : ChkPacket ...
        -> ...``; unverified packets are rejected by the runtime).
    guard:
        Optional extra predicate over the matched bindings (symbolic) or
        over ``(bindings, payload)`` (callable); the transition is invalid
        unless it holds.
    event:
        Optional event label for completeness checking: states declare
        which events may occur in them, and the checker requires a
        transition for each.
    inputs:
        Names of extra integer parameters supplied at execution time
        (``machine.exec_trans("ACK", ack=5)``).  This mirrors the paper's
        dependent transition arguments (``RECV : (seq : Byte) -> ...``):
        target expressions may use them, and guards should constrain them
        against the matched source bindings.
    """

    def __init__(
        self,
        name: str,
        source: StatePattern,
        target: StatePattern,
        requires: PayloadRequirement = None,
        guard: Union[None, Predicate, Callable[..., bool]] = None,
        event: Optional[str] = None,
        inputs: Sequence[str] = (),
        doc: str = "",
    ) -> None:
        if not name.isidentifier():
            raise MachineSpecError(
                f"transition name must be an identifier, got {name!r}"
            )
        for input_name in inputs:
            if not input_name.isidentifier():
                raise MachineSpecError(
                    f"transition {name!r}: input {input_name!r} must be an "
                    "identifier"
                )
        self.name = name
        self.source = source
        self.target = target
        self.requires = requires
        self.guard = guard
        self.event = event
        self.inputs = tuple(inputs)
        self.doc = doc

    def guard_holds(self, bindings: Mapping[str, int], payload: Any) -> bool:
        """Evaluate the guard (vacuously true when absent)."""
        if self.guard is None:
            return True
        if isinstance(self.guard, Predicate):
            return self.guard.evaluate(bindings)
        return bool(self.guard(bindings, payload))

    def __repr__(self) -> str:
        return f"TransitionSpec({self.name!r}: {self.source!r} -> {self.target!r})"


class MachineSpec:
    """A protocol state machine specification (the DSL's ``SendTrans``).

    Build one by declaring states and transitions, then call
    :meth:`seal`.  Sealing runs every definition-time check and freezes
    the spec; only sealed specs can be instantiated into runtime machines
    (:class:`repro.core.machine.Machine`).

    Example
    -------
    >>> from repro.core.symbolic import Var
    >>> sm = MachineSpec("sender")
    >>> ready = sm.state("Ready", params=[Param("seq", bits=8)], initial=True)
    >>> wait = sm.state("Wait", params=[Param("seq", bits=8)])
    >>> sent = sm.state("Sent", params=[Param("seq", bits=8)], final=True)
    >>> n = Var("seq")
    >>> _ = sm.transition("SEND", ready(n), wait(n), requires="bytes")
    >>> _ = sm.transition("OK", wait(n), ready(n + 1))
    >>> _ = sm.transition("FINISH", ready(n), sent(n))
    >>> sm.seal()
    """

    def __init__(self, name: str, doc: str = "") -> None:
        if not name.isidentifier():
            raise MachineSpecError(f"machine name must be an identifier, got {name!r}")
        self.name = name
        self.doc = doc
        self.states: Dict[str, StateSpec] = {}
        self.transitions: List[TransitionSpec] = []
        self.expected_events: Dict[str, frozenset] = {}
        self._sealed = False
        # Dispatch indexes, built by seal(): name -> transition and
        # source-state name -> transitions, so the runtime's per-call
        # lookups are dict hits instead of linear scans.
        self._transition_index: Optional[Dict[str, TransitionSpec]] = None
        self._source_index: Optional[Dict[str, Tuple[TransitionSpec, ...]]] = None

    # -- declaration -------------------------------------------------------

    def state(
        self,
        name: str,
        params: Sequence[ParamLike] = (),
        initial: bool = False,
        final: bool = False,
        doc: str = "",
    ) -> StateSpec:
        """Declare a state; returns the spec for use in transitions."""
        self._require_unsealed()
        if not name.isidentifier():
            raise MachineSpecError(f"state name must be an identifier, got {name!r}")
        if name in self.states:
            raise MachineSpecError(
                f"machine {self.name!r}: duplicate state {name!r}"
            )
        param_objects = tuple(_as_param(p) for p in params)
        seen = set()
        for param in param_objects:
            if param.name in seen:
                raise MachineSpecError(
                    f"state {name!r}: duplicate parameter {param.name!r}"
                )
            seen.add(param.name)
        spec = StateSpec(self, name, param_objects, initial, final, doc)
        self.states[name] = spec
        return spec

    def transition(
        self,
        name: str,
        source: StatePattern,
        target: StatePattern,
        requires: PayloadRequirement = None,
        guard: Union[None, Predicate, Callable[..., bool]] = None,
        event: Optional[str] = None,
        inputs: Sequence[str] = (),
        doc: str = "",
    ) -> TransitionSpec:
        """Declare a transition; returns its spec."""
        self._require_unsealed()
        if any(t.name == name for t in self.transitions):
            raise MachineSpecError(
                f"machine {self.name!r}: duplicate transition {name!r}"
            )
        spec = TransitionSpec(
            name, source, target, requires, guard, event, inputs, doc
        )
        self.transitions.append(spec)
        return spec

    def expect_events(self, state: StateSpec, events: Sequence[str]) -> None:
        """Declare the events that may occur while in ``state``.

        The completeness checker then requires an outgoing transition
        labelled with each such event — the paper's "all valid transitions
        are handled".
        """
        self._require_unsealed()
        if state.name not in self.states:
            raise MachineSpecError(f"unknown state {state.name!r}")
        self.expected_events[state.name] = frozenset(events)

    # -- sealing -------------------------------------------------------------

    @property
    def sealed(self) -> bool:
        """True once the spec has passed definition-time checking."""
        return self._sealed

    def seal(self) -> "MachineSpec":
        """Run the definition-time checker and freeze the spec.

        Raises :class:`MachineSpecError` listing *all* problems found, so
        a protocol author fixes the spec in one round trip.
        """
        from repro.core.checker import check_machine  # deferred: avoids cycle

        report = check_machine(self)
        if report.errors:
            raise MachineSpecError(
                f"machine {self.name!r} failed definition-time checking:\n  "
                + "\n  ".join(report.errors)
            )
        self._transition_index = {t.name: t for t in self.transitions}
        source_index: Dict[str, List[TransitionSpec]] = {}
        for transition in self.transitions:
            source_index.setdefault(
                transition.source.state.name, []
            ).append(transition)
        self._source_index = {
            name: tuple(entries) for name, entries in source_index.items()
        }
        self._sealed = True
        return self

    def _require_unsealed(self) -> None:
        if self._sealed:
            raise MachineSpecError(
                f"machine {self.name!r} is sealed; specs are immutable "
                "after checking"
            )

    # -- queries ---------------------------------------------------------------

    @property
    def initial_states(self) -> List[StateSpec]:
        """States declared initial."""
        return [s for s in self.states.values() if s.initial]

    @property
    def final_states(self) -> List[StateSpec]:
        """States declared final."""
        return [s for s in self.states.values() if s.final]

    def transitions_from(self, state_name: str) -> List[TransitionSpec]:
        """Transitions whose source state is ``state_name``.

        Indexed (declaration order preserved) once the spec is sealed;
        the scan below serves the checker, which runs pre-seal.
        """
        if self._source_index is not None:
            return list(self._source_index.get(state_name, ()))
        return [t for t in self.transitions if t.source.state.name == state_name]

    def transition_named(self, name: str) -> TransitionSpec:
        """Look up a transition by name (indexed once sealed)."""
        if self._transition_index is not None:
            try:
                return self._transition_index[name]
            except KeyError:
                raise KeyError(
                    f"machine {self.name!r} has no transition {name!r}"
                ) from None
        for transition in self.transitions:
            if transition.name == name:
                return transition
        raise KeyError(f"machine {self.name!r} has no transition {name!r}")

    def __repr__(self) -> str:
        return (
            f"MachineSpec({self.name!r}, states={len(self.states)}, "
            f"transitions={len(self.transitions)}, sealed={self._sealed})"
        )
