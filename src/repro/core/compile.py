"""Code generation: from a packet spec to standalone Python source.

Section 5 of the paper claims that "if an implementation is created from
the DSL, then it must operate correctly, simply by the properties obtained
from use of dependent type systems".  This module is the staging half of
that claim: :func:`generate_codec_source` emits a self-contained Python
module (no imports beyond the standard library, no dependency on
``repro``) implementing parse / build / checksum / validate functions for
one spec.  :func:`compile_spec` executes that source and hands back the
functions.

Because the generator walks the *same* spec the interpreted codec walks,
the two implementations are differentially testable: for every packet,
``generated.build == spec.encode`` and ``generated.parse == spec.decode``
(experiment E13 sweeps this and measures the speedup).

Generated modules contain:

* ``parse_<name>(data) -> dict`` — field values, raising ``ValueError`` on
  truncated or trailing data;
* ``build_<name>(values) -> bytes`` — verbatim encoding;
* ``finalize_<name>(values) -> dict`` — computes checksum fields;
* ``validate_<name>(values) -> list`` — names of violated constraints
  (checksums, constants, enums, reserved bits; callable constraints are
  not exportable and are listed in the module docstring as residuals).
"""

from __future__ import annotations

import textwrap
from types import ModuleType
from typing import Any, Callable, Dict, List, NamedTuple, Optional

from repro.core.fields import (
    Bytes,
    ChecksumField,
    Flag,
    Reserved,
    Struct,
    Switch,
    UInt,
    UIntList,
)
from repro.core.symbolic import BinOp, Const, Expr, FieldRef, Var
from repro.wire.bits import ByteOrder

_HELPERS = '''
def _read_uint(data, bit, width):
    """Read ``width`` bits at ``bit`` (msb-first) as an unsigned int."""
    end = bit + width
    if end > len(data) * 8:
        raise ValueError("truncated: need %d bits, have %d" % (end, len(data) * 8))
    byte_end = (end + 7) >> 3
    chunk = int.from_bytes(data[bit >> 3:byte_end], "big")
    return (chunk >> ((byte_end << 3) - end)) & ((1 << width) - 1)


def _write_uint(out, bitlen, value, width):
    """Append ``width`` bits of ``value`` to bytearray ``out`` at ``bitlen``."""
    if value < 0 or value >> width:
        raise ValueError("value %r does not fit %d bits" % (value, width))
    end = bitlen + width
    if bitlen & 7 == 0 and width & 7 == 0:
        out += value.to_bytes(width >> 3, "big")
        return end
    byte_end = (end + 7) >> 3
    if len(out) < byte_end:
        out.extend(b"\\x00" * (byte_end - len(out)))
    first = bitlen >> 3
    shift = (byte_end << 3) - end
    span = int.from_bytes(out[first:byte_end], "big") | (value << shift)
    out[first:byte_end] = span.to_bytes(byte_end - first, "big")
    return end


def _patch_uint(out, bit, width, value):
    """Overwrite ``width`` bits of bytearray ``out`` at ``bit`` with ``value``."""
    if width <= 0:
        return
    end = bit + width
    first = bit >> 3
    byte_end = (end + 7) >> 3
    shift = (byte_end << 3) - end
    mask = ((1 << width) - 1) << shift
    span = int.from_bytes(out[first:byte_end], "big")
    out[first:byte_end] = ((span & ~mask) | ((value << shift) & mask)).to_bytes(
        byte_end - first, "big")
'''

_ALGORITHM_SOURCES: Dict[str, str] = {
    "xor8": '''
def _ck_xor8(data):
    value = 0
    for byte in data:
        value ^= byte
    return value
''',
    "internet": '''
def _ck_internet(data):
    if len(data) % 2:
        data = bytes(data) + b"\\x00"
    total = 0
    for i in range(0, len(data), 2):
        total += (data[i] << 8) | data[i + 1]
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return ~total & 0xFFFF
''',
    "fletcher16": '''
def _ck_fletcher16(data):
    c0 = c1 = 0
    for byte in data:
        c0 = (c0 + byte) % 255
        c1 = (c1 + c0) % 255
    return (c1 << 8) | c0
''',
    "crc16-ccitt": '''
def _ck_crc16_ccitt(data):
    crc = 0xFFFF
    for byte in data:
        crc ^= byte << 8
        for _ in range(8):
            if crc & 0x8000:
                crc = ((crc << 1) ^ 0x1021) & 0xFFFF
            else:
                crc = (crc << 1) & 0xFFFF
    return crc
''',
    "crc32": '''
def _ck_crc32(data):
    import zlib
    return zlib.crc32(data) & 0xFFFFFFFF
''',
    "adler32": '''
def _ck_adler32(data):
    import zlib
    return zlib.adler32(data) & 0xFFFFFFFF
''',
}

_ALGORITHM_FUNCTIONS: Dict[str, str] = {
    "xor8": "_ck_xor8",
    "internet": "_ck_internet",
    "fletcher16": "_ck_fletcher16",
    "crc16-ccitt": "_ck_crc16_ccitt",
    "crc32": "_ck_crc32",
    "adler32": "_ck_adler32",
}


class CodegenError(ValueError):
    """Raised when a spec uses features the generator does not stage."""


def _expr_code(expr: Expr, env_name: str = "values") -> str:
    """Translate a symbolic expression into a Python expression string."""
    if isinstance(expr, Const):
        return str(expr.value)
    if isinstance(expr, (Var, FieldRef)):
        name = expr.name if isinstance(expr, Var) else expr.field_name
        return f"{env_name}[{name!r}]"
    if isinstance(expr, BinOp):
        left = _expr_code(expr.left, env_name)
        right = _expr_code(expr.right, env_name)
        return f"({left} {expr.op} {right})"
    raise CodegenError(f"cannot generate code for expression {expr!r}")


class _Layout(NamedTuple):
    """Static layout knowledge while walking fields."""

    static_bit: Optional[int]  # absolute bit offset if statically known
    alignment: Optional[int]  # offset % 8 if statically known


def _advance(layout: _Layout, width: Optional[int]) -> _Layout:
    if width is None:
        return _Layout(None, None)
    static_bit = layout.static_bit + width if layout.static_bit is not None else None
    alignment = (
        (layout.alignment + width) % 8 if layout.alignment is not None else None
    )
    return _Layout(static_bit, alignment)


def _check_checksum_alignment(spec: Any) -> None:
    """Generated checksum covers slice bytes; demand byte-aligned covers.

    The interpreted codec handles sub-byte covered regions; the generator
    deliberately does not, and refuses loudly instead of mis-slicing.
    """
    alignment: Optional[int] = 0
    alignments: Dict[str, Optional[int]] = {}
    for field in spec.fields:
        alignments[field.name] = alignment
        width = field.fixed_bit_width()
        if width is None:
            # Dynamic widths here are whole-byte (Bytes) or element-sized
            # lists; only sub-byte list elements break byte alignment.
            if isinstance(field, UIntList) and field.element_bits % 8 != 0:
                alignment = None
            continue
        if alignment is not None:
            alignment = (alignment + width) % 8
    for field in spec.fields:
        if not isinstance(field, ChecksumField):
            continue
        for covered in field.over or ():
            start = alignments.get(covered)
            covered_field = spec.field_map[covered]
            width = covered_field.fixed_bit_width()
            if start != 0 or (width is not None and width % 8 != 0):
                raise CodegenError(
                    f"spec {spec.name!r}: checksum {field.name!r} covers "
                    f"{covered!r}, which is not statically byte-aligned; "
                    "the code generator only stages byte-aligned covers"
                )


_EXACT_FIELD_TYPES = (UInt, Flag, Reserved, Bytes, UIntList, ChecksumField)


def _check_exact_field_types(spec: Any) -> None:
    """Refuse subclassed fields: their overrides cannot be staged.

    The generator emits code from a field's *declared structure*; a
    subclass may override ``encode``/``decode`` with arbitrary Python
    (test harnesses inject faults exactly this way), which generated
    code would silently ignore.  Refusing keeps compiled and interpreted
    tiers semantically identical.
    """
    for field in spec.fields:
        if type(field) not in _EXACT_FIELD_TYPES and not isinstance(
            field, (Struct, Switch)
        ):
            raise CodegenError(
                f"spec {spec.name!r}: field {field.name!r} is a "
                f"{type(field).__name__}, a subclass the code generator "
                "cannot stage faithfully"
            )


def generate_codec_source(spec: Any) -> str:
    """Emit standalone Python source implementing ``spec``'s codec."""
    _check_exact_field_types(spec)
    _check_checksum_alignment(spec)
    name = spec.name.lower()
    parse_lines = _generate_parse(spec)
    build_lines = _generate_build(spec)
    finalize_lines = _generate_finalize(spec)
    validate_lines = _generate_validate(spec)
    algorithms = sorted(
        {
            field.algorithm.name
            for field in spec.fields
            if isinstance(field, ChecksumField)
        }
    )
    residual = [
        constraint.name
        for constraint in spec.constraints
        if not constraint.is_symbolic and not constraint.name.endswith("_valid")
        and not constraint.name.startswith(tuple(f"{f.name}_is_" for f in spec.fields))
        and not constraint.name.endswith("_in_enum")
    ]
    header = [
        f'"""Generated codec for packet spec {spec.name!r}.',
        "",
        "Produced by repro.core.compile.generate_codec_source; do not edit.",
    ]
    if residual:
        header.append(
            f"Residual (non-exportable) constraints: {sorted(residual)} — "
            "these require the host DSL to check."
        )
    header.append('"""')
    parts = [
        "\n".join(header),
        _HELPERS,
        "".join(_ALGORITHM_SOURCES[a] for a in algorithms),
        "\n".join(parse_lines),
        "",
        "\n".join(build_lines),
        "",
        "\n".join(finalize_lines),
        "",
        "\n".join(validate_lines),
        "",
        f"parse = parse_{name}",
        f"build = build_{name}",
        f"finalize = finalize_{name}",
        f"validate = validate_{name}",
        "",
    ]
    return "\n".join(parts)


def _is_fusable(field: Any) -> bool:
    """True for fixed-width big-endian scalars that can share one word read.

    Runs of such fields are lowered to a single bulk read (or write) of
    the combined width plus shift/mask extraction per field — the key
    speedup over per-field interpretive dispatch for header-style specs.
    """
    if isinstance(field, UInt):
        return field.byteorder is ByteOrder.BIG
    return isinstance(field, (Flag, Reserved, ChecksumField))


def _generate_parse(spec: Any) -> List[str]:
    name = spec.name.lower()
    lines = [
        f"def parse_{name}(data):",
        f'    """Parse bytes into a dict of {spec.name} field values."""',
        "    values = {}",
        "    bit = 0",
    ]
    layout = _Layout(0, 0)
    fields = list(spec.fields)
    index = 0
    while index < len(fields):
        field = fields[index]
        if _is_fusable(field):
            run = [field]
            while index + len(run) < len(fields) and _is_fusable(
                fields[index + len(run)]
            ):
                run.append(fields[index + len(run)])
            lines.extend(_parse_run(run, layout))
            for fused in run:
                layout = _advance(layout, fused.fixed_bit_width())
            index += len(run)
        else:
            lines.extend(_parse_field(spec, field, layout))
            layout = _advance(layout, field.fixed_bit_width())
            index += 1
    lines.append("    if bit != len(data) * 8:")
    lines.append(
        "        raise ValueError('trailing data: %d bits unconsumed' % "
        "(len(data) * 8 - bit))"
    )
    lines.append("    return values")
    return lines


def _parse_run(run: List[Any], layout: _Layout) -> List[str]:
    """One bulk word read covering a run of fixed-width scalar fields."""
    total = sum(field.fixed_bit_width() for field in run)
    lines: List[str] = []
    if (
        layout.alignment == 0
        and total % 8 == 0
        and layout.static_bit is not None
    ):
        start = layout.static_bit // 8
        end = start + total // 8
        lines.append(f"    if len(data) < {end}:")
        lines.append(f"        raise ValueError('truncated at field {run[0].name}')")
        lines.append(f"    _w = int.from_bytes(data[{start}:{end}], 'big')")
    else:
        lines.append(f"    _w = _read_uint(data, bit, {total})")
    offset = total
    for field in run:
        width = field.fixed_bit_width()
        offset -= width
        source = f"(_w >> {offset})" if offset else "_w"
        if isinstance(field, Flag):
            lines.append(f"    values[{field.name!r}] = bool({source} & 1)")
        else:
            lines.append(
                f"    values[{field.name!r}] = {source} & {(1 << width) - 1:#x}"
            )
    lines.append(f"    bit += {total}")
    return lines


def _parse_field(spec: Any, field: Any, layout: _Layout) -> List[str]:
    name = field.name
    lines: List[str] = []
    width = field.fixed_bit_width()
    if isinstance(field, UInt) and field.byteorder is ByteOrder.LITTLE:
        assert width is not None
        lines.append(f"    values[{name!r}] = int.from_bytes(")
        lines.append(
            f"        _read_uint(data, bit, {width}).to_bytes({width // 8}, 'big'),"
        )
        lines.append("        'little')")
        lines.append(f"    bit += {width}")
        return lines
    if isinstance(field, Bytes):
        if field.is_greedy:
            lines.append("    if bit % 8:")
            lines.append("        raise ValueError('greedy field off byte boundary')")
            lines.append(f"    values[{name!r}] = bytes(data[bit // 8:])")
            lines.append("    bit = len(data) * 8")
            return lines
        length_code = _expr_code(field.length)
        lines.append(f"    _len = {length_code}")
        lines.append("    if _len < 0:")
        lines.append(f"        raise ValueError('negative length for {name}')")
        lines.append("    if bit % 8 == 0:")
        lines.append("        _start = bit // 8")
        lines.append("        if _start + _len > len(data):")
        lines.append(f"            raise ValueError('truncated at field {name}')")
        lines.append(f"        values[{name!r}] = bytes(data[_start:_start + _len])")
        lines.append("    else:")
        lines.append(
            f"        values[{name!r}] = bytes(_read_uint(data, bit + 8 * i, 8) "
            "for i in range(_len))"
        )
        lines.append("    bit += _len * 8")
        return lines
    if isinstance(field, UIntList):
        count_code = _expr_code(field.count)
        bits = field.element_bits
        lines.append(f"    _count = {count_code}")
        lines.append("    if _count < 0:")
        lines.append(f"        raise ValueError('negative count for {name}')")
        lines.append(
            f"    values[{name!r}] = tuple(_read_uint(data, bit + {bits} * i, "
            f"{bits}) for i in range(_count))"
        )
        lines.append(f"    bit += {bits} * _count")
        return lines
    raise CodegenError(
        f"spec {spec.name!r}: field {field!r} is not supported by the code "
        "generator (nested Struct/Switch specs must be compiled separately)"
    )


def _generate_build(spec: Any) -> List[str]:
    joined = _generate_build_join(spec)
    if joined is not None:
        return joined
    name = spec.name.lower()
    lines = [
        f"def build_{name}(values, _spans=None):",
        f'    """Encode {spec.name} field values verbatim to bytes."""',
        "    out = bytearray()",
        "    bitlen = 0",
    ]
    fields = list(spec.fields)
    index = 0
    while index < len(fields):
        field = fields[index]
        if _is_fusable(field):
            run = [field]
            while index + len(run) < len(fields) and _is_fusable(
                fields[index + len(run)]
            ):
                run.append(fields[index + len(run)])
            lines.extend(_build_run(run))
            index += len(run)
        else:
            lines.extend(_build_field(spec, field))
            index += 1
    lines.append("    return bytes(out)")
    return lines


def _generate_build_join(spec: Any) -> Optional[List[str]]:
    """Join-mode build for statically byte-aligned specs; None when not.

    The bytearray path above copies every payload twice: once into the
    accumulating buffer (``out.extend``) and once more at ``bytes(out)``.
    When every element of the spec is byte-aligned — fused scalar runs of
    whole-byte total width, whole-byte little-endian ints, and ``Bytes``
    fields — the build can instead collect immutable chunks and flush
    them with one ``b"".join``, so a payload's bytes are copied exactly
    once.  On memcpy-bound specs (UdpDatagram's 33 KB payloads) this is
    the difference between ~1.3x and ~2x over the interpreter.

    Field range checks and error messages are byte-for-byte those of the
    bytearray path; ``UIntList`` and sub-byte-aligned layouts fall back.
    """
    plan: List[Tuple[str, Any]] = []  # ("run", [fields]) | ("field", field)
    fields = list(spec.fields)
    index = 0
    while index < len(fields):
        field = fields[index]
        if _is_fusable(field):
            run = [field]
            while index + len(run) < len(fields) and _is_fusable(
                fields[index + len(run)]
            ):
                run.append(fields[index + len(run)])
            if sum(f.fixed_bit_width() for f in run) % 8 != 0:
                return None
            plan.append(("run", run))
            index += len(run)
            continue
        if isinstance(field, UInt) and field.byteorder is ByteOrder.LITTLE:
            plan.append(("field", field))
        elif isinstance(field, Bytes):
            plan.append(("field", field))
        else:
            return None  # UIntList (or future shapes): bytearray path
        index += 1
    name = spec.name.lower()
    lines = [
        f"def build_{name}(values, _spans=None):",
        f'    """Encode {spec.name} field values verbatim to bytes."""',
        "    _parts = []",
        "    bitlen = 0",
    ]
    for kind, payload in plan:
        if kind == "run":
            run = payload
            total = sum(f.fixed_bit_width() for f in run)
            lines.append("    _w = 0")
            for field in run:
                width = field.fixed_bit_width()
                lines.append(f"    _v = values[{field.name!r}]")
                if isinstance(field, Flag):
                    lines.append(
                        "    if not isinstance(_v, (bool, int)) "
                        "or _v not in (False, True, 0, 1):"
                    )
                    lines.append(
                        f"        raise ValueError('field {field.name}: value %r "
                        "does not fit 1 bits' % (_v,))"
                    )
                    lines.append("    _w = (_w << 1) | (1 if _v else 0)")
                    continue
                if isinstance(field, UInt):
                    lines.append(
                        "    if _v.__class__ is not int and "
                        "(not isinstance(_v, int) or _v.__class__ is bool):"
                    )
                    lines.append(
                        f"        raise ValueError('field {field.name}: expected "
                        "int, got %r' % (_v,))"
                    )
                elif isinstance(field, Reserved):
                    lines.append("    if _v is None:")
                    lines.append(f"        _v = {field.value}")
                lines.append(f"    if _v < 0 or _v >> {width}:")
                lines.append(
                    f"        raise ValueError('field {field.name}: value %r "
                    f"does not fit {width} bits' % (_v,))"
                )
                lines.append(f"    _w = (_w << {width}) | _v")
            lines.append(f"    _parts.append(_w.to_bytes({total // 8}, 'big'))")
            lines.append("    if _spans is not None:")
            offset = 0
            for field in run:
                width = field.fixed_bit_width()
                lines.append(
                    f"        _spans[{field.name!r}] = "
                    f"(bitlen + {offset}, bitlen + {offset + width})"
                )
                offset += width
            lines.append(f"    bitlen += {total}")
            continue
        field = payload
        if isinstance(field, UInt):  # little-endian whole-byte scalar
            width = field.fixed_bit_width()
            lines.append(f"    _v = values[{field.name!r}]")
            lines.append(
                "    if _v.__class__ is not int and "
                "(not isinstance(_v, int) or _v.__class__ is bool):"
            )
            lines.append(
                f"        raise ValueError('field {field.name}: expected int, "
                "got %r' % (_v,))"
            )
            lines.append(f"    if _v < 0 or _v >> {width}:")
            lines.append(
                f"        raise ValueError('field {field.name}: value %r does "
                f"not fit {width} bits' % (_v,))"
            )
            lines.append(
                f"    _parts.append(_v.to_bytes({width // 8}, 'little'))"
            )
            lines.append("    if _spans is not None:")
            lines.append(
                f"        _spans[{field.name!r}] = (bitlen, bitlen + {width})"
            )
            lines.append(f"    bitlen += {width}")
            continue
        # Bytes: appended as-is; b"".join copies it exactly once.
        lines.append(f"    _data = values[{field.name!r}]")
        if not field.is_greedy:
            length_code = _expr_code(field.length)
            lines.append(f"    if len(_data) != {length_code}:")
            lines.append(
                f"        raise ValueError('field {field.name}: length %d != "
                f"declared %d' % (len(_data), {length_code}))"
            )
        lines.append("    _parts.append(_data)")
        lines.append("    if _spans is not None:")
        lines.append(
            f"        _spans[{field.name!r}] = "
            "(bitlen, bitlen + len(_data) * 8)"
        )
        lines.append("    bitlen += len(_data) * 8")
    lines.append('    return b"".join(_parts)')
    return lines


def _build_run(run: List[Any]) -> List[str]:
    """Accumulate a run of fixed-width scalars into one bulk word write.

    Each field is range-checked individually so error messages still name
    the offending field, then shifted into a single accumulator flushed
    with one ``_write_uint`` call.
    """
    total = sum(field.fixed_bit_width() for field in run)
    lines: List[str] = ["    _start = bitlen", "    _w = 0"]
    for field in run:
        width = field.fixed_bit_width()
        lines.append(f"    _v = values[{field.name!r}]")
        if isinstance(field, Flag):
            # Same domain the interpreter's Flag.check_value accepts.
            lines.append(
                "    if not isinstance(_v, (bool, int)) "
                "or _v not in (False, True, 0, 1):"
            )
            lines.append(
                f"        raise ValueError('field {field.name}: value %r "
                "does not fit 1 bits' % (_v,))"
            )
            lines.append("    _w = (_w << 1) | (1 if _v else 0)")
            continue
        if isinstance(field, UInt):
            # UInt.check_value takes ints (subclasses included), not bools.
            lines.append(
                "    if _v.__class__ is not int and "
                "(not isinstance(_v, int) or _v.__class__ is bool):"
            )
            lines.append(
                f"        raise ValueError('field {field.name}: expected "
                "int, got %r' % (_v,))"
            )
        elif isinstance(field, Reserved):
            # Reserved.encode substitutes its fixed value for None.
            lines.append("    if _v is None:")
            lines.append(f"        _v = {field.value}")
        lines.append(f"    if _v < 0 or _v >> {width}:")
        lines.append(
            f"        raise ValueError('field {field.name}: value %r "
            f"does not fit {width} bits' % (_v,))"
        )
        lines.append(f"    _w = (_w << {width}) | _v")
    lines.append(f"    bitlen = _write_uint(out, bitlen, _w, {total})")
    lines.append("    if _spans is not None:")
    offset = 0
    for field in run:
        width = field.fixed_bit_width()
        lines.append(
            f"        _spans[{field.name!r}] = "
            f"(_start + {offset}, _start + {offset + width})"
        )
        offset += width
    return lines


def _build_field(spec: Any, field: Any) -> List[str]:
    name = field.name
    lines: List[str] = [f"    _start = bitlen"]
    width = field.fixed_bit_width()
    if isinstance(field, UInt) and field.byteorder is ByteOrder.LITTLE:
        assert width is not None
        lines.append(f"    _v = values[{name!r}]")
        lines.append(
            "    if _v.__class__ is not int and "
            "(not isinstance(_v, int) or _v.__class__ is bool):"
        )
        lines.append(
            f"        raise ValueError('field {name}: expected int, "
            "got %r' % (_v,))"
        )
        lines.append(f"    if _v < 0 or _v >> {width}:")
        lines.append(
            f"        raise ValueError('field {name}: value %r does not fit "
            f"{width} bits' % (_v,))"
        )
        lines.append(
            f"    _value = int.from_bytes(_v.to_bytes({width // 8}, "
            "'little'), 'big')"
        )
        lines.append(f"    bitlen = _write_uint(out, bitlen, _value, {width})")
    elif isinstance(field, Bytes):
        lines.append(f"    _data = values[{name!r}]")
        if not field.is_greedy:
            length_code = _expr_code(field.length)
            lines.append(f"    if len(_data) != {length_code}:")
            lines.append(
                f"        raise ValueError('field {name}: length %d != declared %d'"
                f" % (len(_data), {length_code}))"
            )
        lines.append("    if bitlen % 8 == 0:")
        lines.append("        out.extend(_data)")
        lines.append("        bitlen += len(_data) * 8")
        lines.append("    else:")
        lines.append("        for _byte in _data:")
        lines.append("            bitlen = _write_uint(out, bitlen, _byte, 8)")
    elif isinstance(field, UIntList):
        bits = field.element_bits
        count_code = _expr_code(field.count)
        lines.append(f"    _elements = values[{name!r}]")
        lines.append(f"    if len(_elements) != {count_code}:")
        lines.append(
            f"        raise ValueError('field {name}: count %d != declared %d'"
            f" % (len(_elements), {count_code}))"
        )
        lines.append("    for _element in _elements:")
        lines.append(f"        bitlen = _write_uint(out, bitlen, _element, {bits})")
    else:
        raise CodegenError(
            f"spec {spec.name!r}: field {field!r} is not supported by the "
            "code generator"
        )
    lines.append("    if _spans is not None:")
    lines.append(f"        _spans[{name!r}] = (_start, bitlen)")
    return lines


def _generate_finalize(spec: Any) -> List[str]:
    name = spec.name.lower()
    checksum_fields = [f for f in spec.fields if isinstance(f, ChecksumField)]
    lines = [
        f"def finalize_{name}(values):",
        f'    """Return values with every checksum field computed."""',
        "    work = dict(values)",
    ]
    if not checksum_fields:
        lines.append("    return work")
        return lines
    for field in checksum_fields:
        lines.append(f"    work[{field.name!r}] = 0")
    lines.append("    spans = {}")
    lines.append(f"    buf = bytearray(build_{name}(work, spans))")
    for field in checksum_fields:
        function = _ALGORITHM_FUNCTIONS[field.algorithm.name]
        lines.append(f"    _s, _e = spans[{field.name!r}]")
        # A memoryview cover: zero-copy, and it tracks the _patch_uint
        # updates of earlier checksums (same-size patches never resize
        # the bytearray, so the exported view stays valid).
        lines.append("    _b = memoryview(buf)")
        if field.covers_whole_packet:
            lines.append("    cover = _b")
            lines.append("    # checksum field is still zero in buf, per over='*'")
        else:
            lines.append("    cover = b''.join(")
            lines.append("        _b[spans[_n][0] // 8:spans[_n][1] // 8]")
            lines.append(f"        for _n in {list(field.over)!r})")
        lines.append(f"    _v = {function}(cover)")
        lines.append(f"    work[{field.name!r}] = _v")
        lines.append(f"    _patch_uint(buf, _s, {field.bits}, _v)")
    lines.append("    return work")
    return lines


def _generate_validate(spec: Any) -> List[str]:
    name = spec.name.lower()
    lines = [
        f"def validate_{name}(values):",
        f'    """Return the names of violated (exportable) constraints."""',
        "    violations = []",
    ]
    for field in spec.fields:
        if isinstance(field, ChecksumField):
            function = _ALGORITHM_FUNCTIONS[field.algorithm.name]
            lines.append("    spans = {}")
            lines.append(f"    buf = bytearray(build_{name}(values, spans))")
            lines.append(f"    _s, _e = spans[{field.name!r}]")
            if field.covers_whole_packet:
                lines.append("    _patch_uint(buf, _s, _e - _s, 0)")
                lines.append("    cover = memoryview(buf)")
            else:
                lines.append("    cover = b''.join(")
                lines.append(
                    "        memoryview(buf)[spans[_n][0] // 8:spans[_n][1] // 8]"
                )
                lines.append(f"        for _n in {list(field.over)!r})")
            lines.append(f"    if {function}(cover) != values[{field.name!r}]:")
            lines.append(f"        violations.append('{field.name}_valid')")
        elif isinstance(field, UInt):
            if field.const is not None:
                lines.append(
                    f"    if values[{field.name!r}] != {field.const}:"
                )
                lines.append(
                    f"        violations.append('{field.name}_is_{field.const}')"
                )
            if field.enum is not None:
                allowed = sorted(field.enum)
                lines.append(
                    f"    if values[{field.name!r}] not in {set(allowed)!r}:"
                )
                lines.append(
                    f"        violations.append('{field.name}_in_enum')"
                )
        elif isinstance(field, Reserved):
            lines.append(f"    if values[{field.name!r}] != {field.value}:")
            lines.append(
                f"        violations.append('{field.name}_is_{field.value}')"
            )
    for constraint in spec.constraints:
        if constraint.is_symbolic:
            code = _predicate_code(constraint.predicate)
            lines.append(f"    if not ({code}):")
            lines.append(f"        violations.append({constraint.name!r})")
    lines.append("    return violations")
    return lines


def _predicate_code(predicate: Any) -> str:
    """Translate a symbolic predicate into Python source."""
    from repro.core.symbolic import BoolOp, Comparison, Not

    if isinstance(predicate, Comparison):
        left = _expr_code(predicate.left)
        right = _expr_code(predicate.right)
        return f"({left} {predicate.op} {right})"
    if isinstance(predicate, BoolOp):
        left = _predicate_code(predicate.left)
        right = _predicate_code(predicate.right)
        return f"({left} {predicate.op} {right})"
    if isinstance(predicate, Not):
        return f"(not {_predicate_code(predicate.operand)})"
    raise CodegenError(f"cannot generate code for predicate {predicate!r}")


class CompiledCodec(NamedTuple):
    """The callable surface of a generated codec module."""

    parse: Callable[[bytes], Dict[str, Any]]
    build: Callable[..., bytes]
    finalize: Callable[[Dict[str, Any]], Dict[str, Any]]
    validate: Callable[[Dict[str, Any]], List[str]]
    source: str
    module: ModuleType


def compile_spec(spec: Any) -> CompiledCodec:
    """Generate, execute and return the staged codec for ``spec``."""
    source = generate_codec_source(spec)
    module = ModuleType(f"repro_generated_{spec.name.lower()}")
    exec(compile(source, module.__name__, "exec"), module.__dict__)
    return CompiledCodec(
        parse=module.parse,
        build=module.build,
        finalize=module.finalize,
        validate=module.validate,
        source=source,
        module=module,
    )
