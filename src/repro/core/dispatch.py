"""Staged machine dispatch: per-transition closures built at seal time.

The interpreted transition path unifies the source pattern, evaluates the
guard predicate tree, and re-evaluates the target expressions — symbolic
recursion on every ``exec_trans`` call.  This module stages that work
once per :class:`~repro.core.statemachine.MachineSpec`, mirroring what
``repro.core.compile`` does for codecs:

* a **matcher** closure per transition when every source-pattern argument
  is a plain ``Var`` or ``Const`` — returns the bindings dict, or ``None``
  on a non-match (``None``, not ``{}``: an empty dict is the legitimate
  match of a zero-parameter pattern);
* a **guard** closure for symbolic predicates, via the same
  ``_predicate_code`` translation the codec generator uses;
* a **target** closure evaluating the target expressions and the
  parameter normalization (modular wrap for ``bits``-bounded params)
  without touching the symbolic tree;
* a **cohort** closure for population-scale execution
  (:mod:`repro.megasim`): one generated Python loop applying the whole
  transition — match, guard, target, normalization fused — to every
  machine index in a dense value slab, returning the indices the guard
  rejected so a caller can fall through to the next transition of an
  event group.  Cohorts exist only for payload-free, input-free
  transitions over states with at most one parameter; anything else
  stays ``None`` and population code uses the per-instance closures.

Anything the stager cannot express is left ``None`` and the machine
runtime uses the interpreted path for that piece.  The interpreted path
also stays on as the **error oracle**: a staged miss or exception is
re-run interpreted, which either produces the canonical error (the tiers
agree) or succeeds — a divergence, which demotes that closure for the
rest of the process and increments ``machine.staged_divergences``.

``REPRO_MACHINE_STAGED=off`` disables the closures process-wide; the
seal-time dispatch *index* on :class:`MachineSpec` (name → transition,
state → transitions) stays on regardless, because it is a pure data
structure with no semantic surface of its own.
"""

from __future__ import annotations

import os
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.compile import CodegenError, _expr_code, _predicate_code
from repro.core.statemachine import (
    StateInstance,
    StatePattern,
    TransitionSpec,
)
from repro.core.symbolic import Const, Predicate, Var

_TABLE_ATTR = "_repro_staged_table"

_stats = {
    "tables": 0,
    "matchers": 0,
    "guards": 0,
    "targets": 0,
    "cohorts": 0,
    "demotions": 0,
}


def _env_enabled() -> bool:
    raw = os.environ.get("REPRO_MACHINE_STAGED", "on").strip().lower()
    return raw not in ("off", "0", "no", "false")


_enabled = _env_enabled()


def enabled() -> bool:
    """Whether the staged-closure tier is on for this process."""
    return _enabled


def set_enabled(flag: bool) -> bool:
    """Toggle the staged tier (tests); existing machines re-check per call."""
    global _enabled
    _enabled = bool(flag)
    return _enabled


def _compile_matcher(
    pattern: StatePattern,
) -> Optional[Callable[[StateInstance], Optional[Dict[str, int]]]]:
    """A closure unifying ``pattern`` against a concrete state.

    Stageable patterns bind each argument position to a fresh variable,
    check it against a constant, or check it against an earlier binding
    of the same variable — exactly the cases ``unify`` handles without
    expression inversion.  Everything else returns ``None`` (not staged).
    """
    lines = [
        "def _match(instance):",
        "    if instance.state is not _state:",
        "        return None",
    ]
    if pattern.args:
        lines.append("    _v = instance.values")
    first_binding: Dict[str, int] = {}
    checks: List[str] = []
    for index, arg in enumerate(pattern.args):
        if isinstance(arg, Var):
            if arg.name in first_binding:
                checks.append(
                    f"    if _v[{index}] != _v[{first_binding[arg.name]}]:"
                )
                checks.append("        return None")
            else:
                first_binding[arg.name] = index
        elif isinstance(arg, Const):
            checks.append(f"    if _v[{index}] != {arg.value!r}:")
            checks.append("        return None")
        else:
            return None
    lines.extend(checks)
    items = ", ".join(
        f"{name!r}: _v[{index}]" for name, index in first_binding.items()
    )
    lines.append(f"    return {{{items}}}")
    namespace: Dict[str, Any] = {"_state": pattern.state}
    exec(compile("\n".join(lines), "<staged-matcher>", "exec"), namespace)
    _stats["matchers"] += 1
    return namespace["_match"]


def _compile_guard(
    transition: TransitionSpec,
) -> Optional[Callable[[Dict[str, int], Any], bool]]:
    """A closure for a symbolic guard; callable/absent guards stay interpreted."""
    if not isinstance(transition.guard, Predicate):
        return None
    try:
        code = _predicate_code(transition.guard)
    except CodegenError:
        return None
    namespace: Dict[str, Any] = {}
    source = f"def _guard(values, payload):\n    return {code}"
    exec(compile(source, "<staged-guard>", "exec"), namespace)
    _stats["guards"] += 1
    return namespace["_guard"]


def _compile_target(
    pattern: StatePattern,
) -> Optional[Callable[[Dict[str, int]], StateInstance]]:
    """A closure computing the concrete target state from bindings.

    Inlines ``Param.normalize``: bounded params wrap modulo ``2**bits``;
    unbounded params reject negatives (the oracle rerun supplies the
    canonical error message when that trips).
    """
    lines = ["def _target(values):"]
    names: List[str] = []
    for index, (param, arg) in enumerate(zip(pattern.state.params, pattern.args)):
        try:
            code = _expr_code(arg)
        except CodegenError:
            return None
        name = f"_v{index}"
        names.append(name)
        if param.bits is not None:
            lines.append(f"    {name} = ({code}) % {1 << param.bits}")
        else:
            lines.append(f"    {name} = {code}")
            lines.append(f"    if {name} < 0:")
            lines.append(
                f"        raise ValueError('negative value for param "
                f"{param.name}')"
            )
    tuple_code = f"({', '.join(names)},)" if names else "()"
    lines.append(f"    return _instance(_state, {tuple_code})")
    namespace: Dict[str, Any] = {
        "_instance": StateInstance,
        "_state": pattern.state,
    }
    exec(compile("\n".join(lines), "<staged-target>", "exec"), namespace)
    _stats["targets"] += 1
    return namespace["_target"]


def _compile_cohort(
    transition: TransitionSpec,
) -> Optional[Callable[[Any, Any, Any, int], List[int]]]:
    """A fused batch closure: the whole transition over a slab of machines.

    ``_cohort(indices, slab, states, target_sid)`` applies the transition
    to every machine index in ``indices``, reading and writing the single
    parameter value in ``slab`` (an array indexed by machine) and the
    dense state id in ``states`` when the transition changes state.  It
    returns the indices that did *not* fire (pattern or guard miss), so a
    population can fall through to the next transition of an event group.

    Only transitions with no payload requirement, no execution-time
    inputs, arity ≤ 1 on both ends, a ``Var``/``Const`` source argument
    and codegen-able guard/target expressions are fused; the rest return
    ``None`` and run through the per-instance closures.
    """
    if transition.requires is not None or transition.inputs:
        return None
    source, target = transition.source, transition.target
    if len(source.args) > 1 or len(target.args) > 1:
        return None
    lines = [
        "def _cohort(indices, slab, states, target_sid):",
        "    misses = []",
        "    _miss = misses.append",
        "    for _i in indices:",
    ]
    bound: Optional[str] = None
    if source.args:
        arg = source.args[0]
        if isinstance(arg, Var):
            bound = arg.name
        elif isinstance(arg, Const):
            lines.append(f"        if slab[_i] != {arg.value!r}:")
            lines.append("            _miss(_i)")
            lines.append("            continue")
        else:
            return None
    guard_code: Optional[str] = None
    if transition.guard is not None:
        if not isinstance(transition.guard, Predicate):
            return None
        try:
            guard_code = _predicate_code(transition.guard)
        except CodegenError:
            return None
    body: List[str] = []
    if guard_code is not None:
        body.append(f"        if not {guard_code}:")
        body.append("            _miss(_i)")
        body.append("            continue")
    if target.args:
        param = target.state.params[0]
        try:
            code = _expr_code(target.args[0])
        except CodegenError:
            return None
        if param.bits is not None:
            body.append(f"        slab[_i] = ({code}) % {1 << param.bits}")
        else:
            body.append(f"        _t = {code}")
            body.append("        if _t < 0:")
            body.append(
                f"            raise ValueError('negative value for param "
                f"{param.name}')"
            )
            body.append("        slab[_i] = _t")
    if target.state is not source.state:
        body.append("        states[_i] = target_sid")
    # Bind the source parameter only when the guard or target reads it.
    needs_binding = any("values[" in line for line in body)
    if needs_binding:
        if bound is None:
            return None
        lines.append(f"        values = {{{bound!r}: slab[_i]}}")
    lines.extend(body if body else ["        pass"])
    lines.append("    return misses")
    namespace: Dict[str, Any] = {}
    exec(compile("\n".join(lines), "<staged-cohort>", "exec"), namespace)
    _stats["cohorts"] += 1
    return namespace["_cohort"]


class StagedTransition:
    """One transition's staged closures (each ``None`` when not staged)."""

    __slots__ = ("transition", "match", "guard", "target", "cohort")

    def __init__(self, transition: TransitionSpec) -> None:
        self.transition = transition
        self.match = _compile_matcher(transition.source)
        self.guard = _compile_guard(transition)
        self.target = _compile_target(transition.target)
        self.cohort = _compile_cohort(transition)

    def __repr__(self) -> str:
        staged = [
            name
            for name in ("match", "guard", "target")
            if getattr(self, name) is not None
        ]
        return f"StagedTransition({self.transition.name!r}, staged={staged})"


class StagedTable:
    """Per-spec dispatch structure: staged transitions by name and source."""

    __slots__ = ("by_name", "by_source")

    def __init__(self, spec: Any) -> None:
        self.by_name: Dict[str, StagedTransition] = {}
        by_source: Dict[str, List[StagedTransition]] = {}
        for transition in spec.transitions:
            staged = StagedTransition(transition)
            self.by_name[transition.name] = staged
            by_source.setdefault(transition.source.state.name, []).append(staged)
        self.by_source: Dict[str, Tuple[StagedTransition, ...]] = {
            name: tuple(entries) for name, entries in by_source.items()
        }


def staged_table(spec: Any) -> Optional[StagedTable]:
    """The (cached) staged table for a sealed spec; None when disabled."""
    if not _enabled:
        return None
    table = getattr(spec, _TABLE_ATTR, None)
    if table is None:
        table = StagedTable(spec)
        try:
            setattr(spec, _TABLE_ATTR, table)
        except AttributeError:
            return table  # exotic specs: rebuild per machine, still correct
        _stats["tables"] += 1
    return table


def demote(staged: StagedTransition, phase: str) -> None:
    """Retire one diverging closure; the other phases stay staged."""
    setattr(staged, phase, None)
    _stats["demotions"] += 1


def stats() -> Dict[str, int]:
    """Staging counters: tables built, closures staged, demotions."""
    return dict(_stats)
