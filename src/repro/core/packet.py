"""Packet specifications and packet values.

:class:`PacketSpec` is the DSL's description of an on-the-wire message: an
ordered list of fields (possibly with dependent shapes) plus semantic
constraints.  Specs are validated **at definition time** — the Python
analogue of the paper's type checking: an ill-formed spec (a forward field
reference, a greedy field in the middle, a checksum narrower than its
algorithm) never becomes a value you could accidentally use.

:class:`Packet` is an immutable record of decoded or constructed field
values, bound to its spec.  Verification turns a raw ``Packet`` into a
``Verified[Packet]`` carrying a certificate — see
:mod:`repro.core.verified`.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.core import codec
from repro.core.constraints import (
    Constraint,
    ConstraintViolation,
    checksum_constraint,
    const_field_constraint,
    enum_field_constraint,
)
from repro.core.fields import (
    Bytes,
    ChecksumField,
    Field,
    FieldValueError,
    Flag,
    Reserved,
    Struct,
    Switch,
    UInt,
    UIntList,
)
from repro.core.verified import Certificate, Verified, _issue


class SpecError(ValueError):
    """Raised at definition time for an ill-formed packet specification."""


class VerificationError(ValueError):
    """Raised when a packet fails verification; carries every violation."""

    def __init__(self, spec_name: str, violations: Sequence[ConstraintViolation]) -> None:
        self.spec_name = spec_name
        self.violations = list(violations)
        details = "; ".join(v.constraint_name for v in self.violations)
        super().__init__(
            f"packet of spec {spec_name!r} failed verification: {details}"
        )


class Packet:
    """An immutable record of field values for one spec.

    Field values are reachable by attribute (``packet.seq``) and by item
    (``packet["seq"]``).  Equality is by spec identity plus values, and
    packets are hashable when all their values are.
    """

    __slots__ = ("_spec", "_values")

    def __init__(self, spec: "PacketSpec", values: Mapping[str, Any]) -> None:
        object.__setattr__(self, "_spec", spec)
        object.__setattr__(self, "_values", dict(values))

    @property
    def spec(self) -> "PacketSpec":
        """The spec this packet instantiates."""
        return self._spec

    @property
    def values(self) -> Dict[str, Any]:
        """A copy of the field-value mapping."""
        return dict(self._values)

    def integer_environment(self) -> Dict[str, int]:
        """Integer-valued fields as an expression environment."""
        env: Dict[str, int] = {}
        for field in self._spec.fields:
            if field.is_integer_valued():
                env[field.name] = int(self._values[field.name])
        return env

    def replace(self, **changes: Any) -> "Packet":
        """A new packet with some fields changed (checksums NOT recomputed).

        Use :meth:`PacketSpec.make` when you want checksums refreshed; this
        method is deliberately literal so tests can build corrupted packets.
        """
        unknown = set(changes) - set(self._values)
        if unknown:
            raise KeyError(f"unknown fields: {sorted(unknown)}")
        merged = dict(self._values)
        merged.update(changes)
        return Packet(self._spec, merged)

    def __getattr__(self, name: str) -> Any:
        try:
            return self._values[name]
        except KeyError:
            raise AttributeError(
                f"packet of spec {self._spec.name!r} has no field {name!r}"
            ) from None

    def __getitem__(self, name: str) -> Any:
        return self._values[name]

    def __contains__(self, name: str) -> bool:
        return name in self._values

    def __iter__(self) -> Iterator[str]:
        return iter(self._spec.field_names)

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("packets are immutable; use replace() or spec.make()")

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Packet)
            and other._spec is self._spec
            and other._values == self._values
        )

    def __hash__(self) -> int:
        return hash(
            (self._spec.name, tuple(sorted((k, _hashable(v)) for k, v in self._values.items())))
        )

    def __repr__(self) -> str:
        inner = ", ".join(f"{name}={self._values[name]!r}" for name in self._spec.field_names)
        return f"{self._spec.name}({inner})"


def _hashable(value: Any) -> Any:
    if isinstance(value, (list, tuple)):
        return tuple(_hashable(v) for v in value)
    if isinstance(value, dict):
        return tuple(sorted((k, _hashable(v)) for k, v in value.items()))
    return value


class PacketSpec:
    """A declarative, dependently-shaped packet format.

    Parameters
    ----------
    name:
        Spec name (an identifier); used in errors, certificates, codegen.
    fields:
        Ordered field descriptions; later fields may reference earlier
        integer-valued fields in their shape expressions.
    constraints:
        Extra semantic constraints beyond the auto-generated ones
        (checksum validity, const pins, enum domains, reserved-zero).
    doc:
        Prose description, used by documentation renderers.

    Raises
    ------
    SpecError
        At construction, for any structural ill-formedness — this is the
        DSL's definition-time ("compile-time") checking.
    """

    def __init__(
        self,
        name: str,
        fields: Sequence[Field],
        constraints: Iterable[Constraint] = (),
        doc: str = "",
    ) -> None:
        if not name.isidentifier():
            raise SpecError(f"spec name must be an identifier, got {name!r}")
        if not fields:
            raise SpecError(f"spec {name!r} must declare at least one field")
        self.name = name
        self.fields: Tuple[Field, ...] = tuple(fields)
        self.doc = doc
        self.field_map: Dict[str, Field] = {}
        self._validate_fields()
        self.constraints: Tuple[Constraint, ...] = tuple(
            self._auto_constraints()
        ) + tuple(constraints)
        self._validate_constraints()

    # -- definition-time validation -------------------------------------

    def _validate_fields(self) -> None:
        integer_fields: set = set()
        for index, field in enumerate(self.fields):
            if field.name in self.field_map:
                raise SpecError(
                    f"spec {self.name!r}: duplicate field name {field.name!r}"
                )
            if not isinstance(field, ChecksumField):
                # Shape refs must look backwards: a field's size can only
                # depend on already-decoded values.  Checksum *coverage*
                # refs are exempt — a checksum routinely covers fields
                # that follow it on the wire (validated below).
                refs = field.referenced_fields()
                missing = refs - set(self.field_map)
                if missing:
                    raise SpecError(
                        f"spec {self.name!r}: field {field.name!r} references "
                        f"{sorted(missing)} which are not defined earlier; "
                        "dependent shapes may only look backwards"
                    )
                non_integer = refs - integer_fields
                if non_integer:
                    raise SpecError(
                        f"spec {self.name!r}: field {field.name!r} references "
                        f"non-integer fields {sorted(non_integer)}"
                    )
            if self._is_greedy(field) and index != len(self.fields) - 1:
                raise SpecError(
                    f"spec {self.name!r}: greedy field {field.name!r} must be last"
                )
            self.field_map[field.name] = field
            if field.is_integer_valued():
                integer_fields.add(field.name)
        self._validate_checksums()
        self._validate_alignment()

    @staticmethod
    def _is_greedy(field: Field) -> bool:
        if isinstance(field, Bytes) and field.is_greedy:
            return True
        if isinstance(field, (Struct, Switch)) and field.fixed_bit_width() is None:
            return True
        return False

    def _validate_checksums(self) -> None:
        for field in self.fields:
            if not isinstance(field, ChecksumField):
                continue
            for covered in field.over or ():
                if covered == field.name:
                    raise SpecError(
                        f"spec {self.name!r}: checksum {field.name!r} cannot "
                        "cover itself; use over='*' for self-zeroed coverage"
                    )
                if covered not in self.field_map:
                    raise SpecError(
                        f"spec {self.name!r}: checksum {field.name!r} covers "
                        f"unknown field {covered!r}"
                    )

    def _validate_alignment(self) -> None:
        """Whole-packet checks that need static widths.

        Fixed-shape specs must be byte-aligned overall; checksum cover
        regions with static widths must span whole bytes.
        """
        width = self.fixed_bit_width()
        if width is not None and width % 8 != 0:
            raise SpecError(
                f"spec {self.name!r}: total width {width} bits is not "
                "byte-aligned; pad with Reserved bits"
            )
        for field in self.fields:
            if isinstance(field, ChecksumField) and field.over is not None:
                total = 0
                static = True
                for name in field.over:
                    covered_width = self.field_map[name].fixed_bit_width()
                    if covered_width is None:
                        static = False
                        break
                    total += covered_width
                if static and total % 8 != 0:
                    raise SpecError(
                        f"spec {self.name!r}: checksum {field.name!r} covers "
                        f"{total} bits, not a whole number of bytes"
                    )

    def _auto_constraints(self) -> List[Constraint]:
        generated: List[Constraint] = []
        for field in self.fields:
            if isinstance(field, ChecksumField):
                generated.append(checksum_constraint(self, field.name))
            elif isinstance(field, UInt):
                if field.const is not None:
                    generated.append(const_field_constraint(field.name, field.const))
                if field.enum is not None:
                    generated.append(
                        enum_field_constraint(field.name, tuple(field.enum))
                    )
            elif isinstance(field, Reserved):
                generated.append(const_field_constraint(field.name, field.value))
        return generated

    def _validate_constraints(self) -> None:
        seen: set = set()
        for constraint in self.constraints:
            if constraint.name in seen:
                raise SpecError(
                    f"spec {self.name!r}: duplicate constraint {constraint.name!r}"
                )
            seen.add(constraint.name)

    # -- structural queries ----------------------------------------------

    @property
    def field_names(self) -> Tuple[str, ...]:
        """Field names in wire order."""
        return tuple(field.name for field in self.fields)

    @property
    def constraint_names(self) -> Tuple[str, ...]:
        """All constraint names (auto-generated plus user-supplied)."""
        return tuple(constraint.name for constraint in self.constraints)

    def fixed_bit_width(self) -> Optional[int]:
        """Total width in bits when every field has static width."""
        total = 0
        for field in self.fields:
            width = field.fixed_bit_width()
            if width is None:
                return None
            total += width
        return total

    # -- construction ------------------------------------------------------

    def make(self, **values: Any) -> Packet:
        """Build a packet, filling defaults and computing checksums.

        ``const`` integer fields default to their constant, reserved fields
        to their fixed value, and checksum fields are always computed (a
        supplied checksum value is rejected — checksums are evidence, not
        input).
        """
        working: Dict[str, Any] = {}
        for field in self.fields:
            if isinstance(field, ChecksumField):
                if field.name in values:
                    raise FieldValueError(
                        field.name,
                        "checksum fields are computed, not supplied; "
                        "use replace() to forge one deliberately",
                    )
                working[field.name] = 0
            elif isinstance(field, Reserved):
                supplied = values.pop(field.name, field.value)
                working[field.name] = supplied
            elif field.name in values:
                working[field.name] = values.pop(field.name)
            elif isinstance(field, UInt) and field.const is not None:
                working[field.name] = field.const
            else:
                raise FieldValueError(field.name, "no value supplied and no default")
        unknown = set(values) - {f.name for f in self.fields}
        if unknown:
            raise SpecError(
                f"spec {self.name!r}: unknown fields {sorted(unknown)} in make()"
            )
        # Normalize to the canonical decoded representations so that
        # make -> encode -> decode is the identity on the value level.
        for field in self.fields:
            value = working[field.name]
            if isinstance(field, UIntList) and isinstance(value, list):
                working[field.name] = tuple(value)
            elif isinstance(field, Bytes) and isinstance(value, bytearray):
                working[field.name] = bytes(value)
        completed = codec.compute_checksums(self, working)
        packet = Packet(self, completed)
        # Shape-check everything now so a bad make() fails eagerly.
        env = packet.integer_environment()
        for field in self.fields:
            field.check_value(completed[field.name], env)
        return packet

    # -- wire I/O ---------------------------------------------------------

    def encode(self, packet: Packet) -> bytes:
        """Encode a packet verbatim (checksums as carried)."""
        if packet.spec is not self:
            raise SpecError(
                f"cannot encode a {packet.spec.name!r} packet with spec {self.name!r}"
            )
        return codec.encode_verbatim(self, packet._values)

    def decode(self, data: bytes) -> Packet:
        """Decode bytes into a raw (unverified) packet."""
        return Packet(self, codec.decode_packet(self, data))

    def encode_many(self, packets: Iterable[Any]) -> List[bytes]:
        """Encode many packets (or value mappings) in one amortized batch.

        Forces the compiled codec tier up front and records one obs
        snapshot for the whole batch; see ``repro.fastpath.batch``.
        """
        from repro.fastpath import batch

        return batch.encode_many(self, packets)

    def decode_many(self, blobs: Iterable[bytes]) -> List[Packet]:
        """Decode many wire buffers in one amortized batch."""
        from repro.fastpath import batch

        return [Packet(self, values) for values in batch.decode_many(self, blobs)]

    def compute_checksum(self, packet: Packet, field_name: str) -> int:
        """Recompute one checksum from the packet's carried values."""
        return codec.compute_one_checksum(self, packet._values, field_name)

    # -- verification -------------------------------------------------------

    def verify(self, packet: Packet) -> Verified[Packet]:
        """Check every constraint; return proof-carrying packet or raise.

        This is the only way (besides :meth:`parse`) to obtain a
        ``Verified[Packet]`` — the construction of the paper's
        ``ChkPacket``.
        """
        if packet.spec is not self:
            raise SpecError(
                f"cannot verify a {packet.spec.name!r} packet with spec {self.name!r}"
            )
        violations: List[ConstraintViolation] = []
        env = packet.integer_environment()
        for field in self.fields:
            try:
                field.check_value(packet[field.name], env)
            except FieldValueError as exc:
                violations.append(
                    ConstraintViolation(self.name, f"{field.name}_shape", str(exc))
                )
        for constraint in self.constraints:
            try:
                if not constraint.holds(packet, env):
                    violations.append(
                        ConstraintViolation(self.name, constraint.name, constraint.doc)
                    )
            except ConstraintViolation as exc:
                violations.append(exc)
        if violations:
            raise VerificationError(self.name, violations)
        certificate = Certificate(self.name, self.constraint_names)
        return _issue(packet, certificate)

    def parse(self, data: bytes) -> Verified[Packet]:
        """Decode *and* verify: the safe entry point for received bytes."""
        return self.verify(self.decode(data))

    def try_parse(self, data: bytes) -> Optional[Verified[Packet]]:
        """Like :meth:`parse` but returns ``None`` on any failure.

        Convenient in protocol receive loops where a bad packet is simply
        dropped (the paper's guarantee 2: no processing of unverified
        packets).
        """
        try:
            return self.parse(data)
        except (codec.DecodeError, VerificationError):
            return None

    def __repr__(self) -> str:
        return f"PacketSpec({self.name!r}, fields={list(self.field_names)})"
