"""A small symbolic expression language for dependent parameters.

The paper's central device is *types predicated on values*: a list indexed
by its length, a send machine indexed by its sequence number, a transition
``OK : SendTrans (Wait seq) (Ready (seq+1))``.  In this Python embedding,
those value indices are **symbolic expressions**: packet field lengths may
be written as ``this.length * 4 - 20``, and state-machine transitions relate
parameterized states through expressions such as ``Var("seq") + 1``.

Expressions are immutable, hashable, structurally comparable, and support:

* ``evaluate(env)`` — compute a concrete value given variable bindings;
* ``free_variables()`` — the set of variable names the expression mentions;
* ``substitute(env)`` — partial evaluation / renaming;
* unification of a *pattern* expression against a concrete value (used by
  the machine runtime to dispatch transitions soundly).

Only the arithmetic fragment the domain needs is provided (integers with
``+ - * // %``), keeping the language total and decidable — mirroring the
paper's requirement that programs (and therefore type-level computation)
be total.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterator, Mapping, Optional, Tuple, Union

Number = int
ExprLike = Union["Expr", int]


class SymbolicError(Exception):
    """Base class for errors in symbolic evaluation or unification."""


class UnboundVariableError(SymbolicError):
    """Raised when evaluation needs a variable the environment lacks."""

    def __init__(self, name: str) -> None:
        self.name = name
        super().__init__(f"variable {name!r} is not bound")


class UnificationError(SymbolicError):
    """Raised when a pattern cannot be unified with a concrete value."""


def as_expr(value: ExprLike) -> "Expr":
    """Coerce an int or expression into an :class:`Expr`."""
    if isinstance(value, Expr):
        return value
    if isinstance(value, bool):  # bool is an int subclass; reject explicitly
        raise TypeError("booleans are not symbolic integers")
    if isinstance(value, int):
        return Const(value)
    raise TypeError(f"cannot interpret {value!r} as a symbolic expression")


class Expr:
    """Base class for symbolic integer expressions.

    Subclasses are value objects: equality and hashing are structural, so
    two independently built ``Var("seq") + 1`` expressions are equal.  This
    is what lets the definition-time checker compare declared state indices.
    """

    def evaluate(self, env: Mapping[str, int]) -> int:
        """Compute the expression's value under ``env``."""
        raise NotImplementedError

    def free_variables(self) -> FrozenSet[str]:
        """Names of variables occurring in the expression."""
        raise NotImplementedError

    def substitute(self, env: Mapping[str, ExprLike]) -> "Expr":
        """Replace variables by expressions; unbound variables stay symbolic."""
        raise NotImplementedError

    def children(self) -> Tuple["Expr", ...]:
        """Immediate sub-expressions (empty for leaves)."""
        return ()

    # -- operator sugar -------------------------------------------------

    def __add__(self, other: ExprLike) -> "Expr":
        return BinOp("+", self, as_expr(other))

    def __radd__(self, other: ExprLike) -> "Expr":
        return BinOp("+", as_expr(other), self)

    def __sub__(self, other: ExprLike) -> "Expr":
        return BinOp("-", self, as_expr(other))

    def __rsub__(self, other: ExprLike) -> "Expr":
        return BinOp("-", as_expr(other), self)

    def __mul__(self, other: ExprLike) -> "Expr":
        return BinOp("*", self, as_expr(other))

    def __rmul__(self, other: ExprLike) -> "Expr":
        return BinOp("*", as_expr(other), self)

    def __floordiv__(self, other: ExprLike) -> "Expr":
        return BinOp("//", self, as_expr(other))

    def __rfloordiv__(self, other: ExprLike) -> "Expr":
        return BinOp("//", as_expr(other), self)

    def __mod__(self, other: ExprLike) -> "Expr":
        return BinOp("%", self, as_expr(other))

    def __rmod__(self, other: ExprLike) -> "Expr":
        return BinOp("%", as_expr(other), self)

    # Comparisons build predicates (used in guards), except __eq__ which
    # must remain structural equality for hashing and checker comparisons.
    # Use Expr.eq / Expr.ne for symbolic (in)equality predicates.

    def eq(self, other: ExprLike) -> "Predicate":
        """Symbolic equality predicate."""
        return Comparison("==", self, as_expr(other))

    def ne(self, other: ExprLike) -> "Predicate":
        """Symbolic inequality predicate."""
        return Comparison("!=", self, as_expr(other))

    def __lt__(self, other: ExprLike) -> "Predicate":
        return Comparison("<", self, as_expr(other))

    def __le__(self, other: ExprLike) -> "Predicate":
        return Comparison("<=", self, as_expr(other))

    def __gt__(self, other: ExprLike) -> "Predicate":
        return Comparison(">", self, as_expr(other))

    def __ge__(self, other: ExprLike) -> "Predicate":
        return Comparison(">=", self, as_expr(other))


class Const(Expr):
    """A literal integer."""

    __slots__ = ("value",)

    def __init__(self, value: int) -> None:
        if not isinstance(value, int) or isinstance(value, bool):
            raise TypeError(f"Const requires an int, got {value!r}")
        self.value = value

    def evaluate(self, env: Mapping[str, int]) -> int:
        return self.value

    def free_variables(self) -> FrozenSet[str]:
        return frozenset()

    def substitute(self, env: Mapping[str, ExprLike]) -> "Expr":
        return self

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Const) and other.value == self.value

    def __hash__(self) -> int:
        return hash(("Const", self.value))

    def __repr__(self) -> str:
        return f"Const({self.value})"

    def __str__(self) -> str:
        return str(self.value)


class Var(Expr):
    """A named integer variable (a dependent parameter)."""

    __slots__ = ("name",)

    def __init__(self, name: str) -> None:
        if not name or not isinstance(name, str):
            raise TypeError(f"Var requires a non-empty name, got {name!r}")
        self.name = name

    def evaluate(self, env: Mapping[str, int]) -> int:
        try:
            return env[self.name]
        except KeyError:
            raise UnboundVariableError(self.name) from None

    def free_variables(self) -> FrozenSet[str]:
        return frozenset((self.name,))

    def substitute(self, env: Mapping[str, ExprLike]) -> "Expr":
        if self.name in env:
            return as_expr(env[self.name])
        return self

    def __eq__(self, other: object) -> bool:
        return isinstance(other, Var) and other.name == self.name

    def __hash__(self) -> int:
        return hash(("Var", self.name))

    def __repr__(self) -> str:
        return f"Var({self.name!r})"

    def __str__(self) -> str:
        return self.name


_BINARY_OPERATIONS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "//": lambda a, b: a // b,
    "%": lambda a, b: a % b,
}


class BinOp(Expr):
    """A binary arithmetic operation over two sub-expressions."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr) -> None:
        if op not in _BINARY_OPERATIONS:
            raise ValueError(f"unsupported operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def evaluate(self, env: Mapping[str, int]) -> int:
        left = self.left.evaluate(env)
        right = self.right.evaluate(env)
        if self.op in ("//", "%") and right == 0:
            raise SymbolicError(
                f"division by zero evaluating {self} with env {dict(env)!r}"
            )
        return _BINARY_OPERATIONS[self.op](left, right)

    def free_variables(self) -> FrozenSet[str]:
        return self.left.free_variables() | self.right.free_variables()

    def substitute(self, env: Mapping[str, ExprLike]) -> "Expr":
        left = self.left.substitute(env)
        right = self.right.substitute(env)
        if isinstance(left, Const) and isinstance(right, Const):
            return Const(self.evaluate_const(left.value, right.value))
        return BinOp(self.op, left, right)

    def evaluate_const(self, left: int, right: int) -> int:
        """Apply the operator to two concrete values."""
        if self.op in ("//", "%") and right == 0:
            raise SymbolicError(f"division by zero in {self}")
        return _BINARY_OPERATIONS[self.op](left, right)

    def children(self) -> Tuple[Expr, ...]:
        return (self.left, self.right)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, BinOp)
            and other.op == self.op
            and other.left == self.left
            and other.right == self.right
        )

    def __hash__(self) -> int:
        return hash(("BinOp", self.op, self.left, self.right))

    def __repr__(self) -> str:
        return f"BinOp({self.op!r}, {self.left!r}, {self.right!r})"

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


class FieldRef(Expr):
    """A reference to another field of the packet being parsed or built.

    ``this.length`` in a packet spec produces ``FieldRef("length")``.  At
    codec time the referenced field's already-decoded value is looked up in
    the in-flight environment — the DSL's version of a dependent record.
    """

    __slots__ = ("field_name",)

    def __init__(self, field_name: str) -> None:
        if not field_name or not isinstance(field_name, str):
            raise TypeError(f"FieldRef requires a field name, got {field_name!r}")
        self.field_name = field_name

    def evaluate(self, env: Mapping[str, int]) -> int:
        try:
            return env[self.field_name]
        except KeyError:
            raise UnboundVariableError(self.field_name) from None

    def free_variables(self) -> FrozenSet[str]:
        return frozenset((self.field_name,))

    def substitute(self, env: Mapping[str, ExprLike]) -> "Expr":
        if self.field_name in env:
            return as_expr(env[self.field_name])
        return self

    def __eq__(self, other: object) -> bool:
        return isinstance(other, FieldRef) and other.field_name == self.field_name

    def __hash__(self) -> int:
        return hash(("FieldRef", self.field_name))

    def __repr__(self) -> str:
        return f"FieldRef({self.field_name!r})"

    def __str__(self) -> str:
        return f"this.{self.field_name}"


class _This:
    """Builder of :class:`FieldRef` expressions via attribute access.

    The module-level singleton :data:`this` lets packet specs read
    naturally: ``Bytes("payload", length=this.length)``.
    """

    def __getattr__(self, name: str) -> FieldRef:
        if name.startswith("_"):
            raise AttributeError(name)
        return FieldRef(name)

    def __repr__(self) -> str:
        return "this"


this = _This()
"""Singleton used to reference sibling packet fields in specs."""


# ---------------------------------------------------------------------------
# Predicates (symbolic booleans for guards and constraints)
# ---------------------------------------------------------------------------


class Predicate:
    """Base class for symbolic boolean expressions."""

    def evaluate(self, env: Mapping[str, int]) -> bool:
        raise NotImplementedError

    def free_variables(self) -> FrozenSet[str]:
        raise NotImplementedError

    def __and__(self, other: "Predicate") -> "Predicate":
        return BoolOp("and", self, other)

    def __or__(self, other: "Predicate") -> "Predicate":
        return BoolOp("or", self, other)

    def __invert__(self) -> "Predicate":
        return Not(self)


_COMPARISONS = {
    "==": lambda a, b: a == b,
    "!=": lambda a, b: a != b,
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


class Comparison(Predicate):
    """A comparison between two integer expressions."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Expr, right: Expr) -> None:
        if op not in _COMPARISONS:
            raise ValueError(f"unsupported comparison {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def evaluate(self, env: Mapping[str, int]) -> bool:
        return _COMPARISONS[self.op](self.left.evaluate(env), self.right.evaluate(env))

    def free_variables(self) -> FrozenSet[str]:
        return self.left.free_variables() | self.right.free_variables()

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Comparison)
            and other.op == self.op
            and other.left == self.left
            and other.right == self.right
        )

    def __hash__(self) -> int:
        return hash(("Comparison", self.op, self.left, self.right))

    def __repr__(self) -> str:
        return f"Comparison({self.op!r}, {self.left!r}, {self.right!r})"

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


class BoolOp(Predicate):
    """Conjunction or disjunction of two predicates."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op: str, left: Predicate, right: Predicate) -> None:
        if op not in ("and", "or"):
            raise ValueError(f"unsupported boolean operator {op!r}")
        self.op = op
        self.left = left
        self.right = right

    def evaluate(self, env: Mapping[str, int]) -> bool:
        if self.op == "and":
            return self.left.evaluate(env) and self.right.evaluate(env)
        return self.left.evaluate(env) or self.right.evaluate(env)

    def free_variables(self) -> FrozenSet[str]:
        return self.left.free_variables() | self.right.free_variables()

    def __str__(self) -> str:
        return f"({self.left} {self.op} {self.right})"


class Not(Predicate):
    """Negation of a predicate."""

    __slots__ = ("operand",)

    def __init__(self, operand: Predicate) -> None:
        self.operand = operand

    def evaluate(self, env: Mapping[str, int]) -> bool:
        return not self.operand.evaluate(env)

    def free_variables(self) -> FrozenSet[str]:
        return self.operand.free_variables()

    def __str__(self) -> str:
        return f"(not {self.operand})"


# ---------------------------------------------------------------------------
# Unification
# ---------------------------------------------------------------------------


def unify(pattern: Expr, value: int, bindings: Optional[Dict[str, int]] = None) -> Dict[str, int]:
    """Unify a pattern expression with a concrete integer value.

    Supports the pattern fragment the state-machine runtime needs:

    * ``Var(x)`` binds ``x`` to ``value`` (or checks consistency if bound);
    * ``Const(c)`` requires ``value == c``;
    * fully bound compound expressions are evaluated and compared;
    * ``var + const`` / ``const + var`` / ``var - const`` patterns are
      inverted so that e.g. matching ``seq + 1`` against ``5`` binds
      ``seq = 4``.

    Returns the (possibly extended) bindings; raises
    :class:`UnificationError` on mismatch.
    """
    if bindings is None:
        bindings = {}
    free = pattern.free_variables()
    if not free:
        expected = pattern.evaluate({})
        if expected != value:
            raise UnificationError(f"pattern {pattern} != value {value}")
        return bindings
    if all(name in bindings for name in free):
        expected = pattern.evaluate(bindings)
        if expected != value:
            raise UnificationError(
                f"pattern {pattern} evaluates to {expected} under "
                f"{bindings!r}, but value is {value}"
            )
        return bindings
    if isinstance(pattern, (Var, FieldRef)):
        name = pattern.name if isinstance(pattern, Var) else pattern.field_name
        if name in bindings and bindings[name] != value:
            raise UnificationError(
                f"variable {name!r} already bound to {bindings[name]}, "
                f"cannot rebind to {value}"
            )
        bindings[name] = value
        return bindings
    if isinstance(pattern, BinOp):
        return _unify_binop(pattern, value, bindings)
    raise UnificationError(f"cannot unify pattern {pattern!r} with {value}")


def _unify_binop(pattern: BinOp, value: int, bindings: Dict[str, int]) -> Dict[str, int]:
    """Invert a binary operation where one side is ground."""
    left_free = pattern.left.free_variables() - frozenset(bindings)
    right_free = pattern.right.free_variables() - frozenset(bindings)
    if left_free and right_free:
        raise UnificationError(
            f"pattern {pattern} has unbound variables on both sides; "
            "unification supports at most one unknown side"
        )
    if right_free:
        ground_value = pattern.left.evaluate(bindings)
        unknown = pattern.right
        inverse = _invert_right(pattern.op, ground_value, value)
    else:
        ground_value = pattern.right.evaluate(bindings)
        unknown = pattern.left
        inverse = _invert_left(pattern.op, ground_value, value)
    return unify(unknown, inverse, bindings)


def _invert_left(op: str, right: int, result: int) -> int:
    """Solve ``x op right == result`` for x."""
    if op == "+":
        return result - right
    if op == "-":
        return result + right
    if op == "*":
        if right == 0 or result % right != 0:
            raise UnificationError(f"cannot invert x * {right} == {result}")
        return result // right
    raise UnificationError(f"cannot invert operator {op!r} on the left")


def _invert_right(op: str, left: int, result: int) -> int:
    """Solve ``left op x == result`` for x."""
    if op == "+":
        return result - left
    if op == "-":
        return left - result
    if op == "*":
        if left == 0 or result % left != 0:
            raise UnificationError(f"cannot invert {left} * x == {result}")
        return result // left
    raise UnificationError(f"cannot invert operator {op!r} on the right")


def iter_subexpressions(expr: Expr) -> Iterator[Expr]:
    """Yield ``expr`` and every sub-expression, pre-order."""
    stack = [expr]
    while stack:
        node = stack.pop()
        yield node
        stack.extend(reversed(node.children()))
