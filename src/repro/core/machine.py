"""The machine runtime: ``exec_trans`` and friends.

A :class:`Machine` is a running instance of a sealed
:class:`~repro.core.statemachine.MachineSpec`.  Its only mutator is
:meth:`Machine.exec_trans` — the paper's

::

    execTrans : SendTrans s s' -> Machine s -> IO (Machine s')

Executing a transition performs, in order:

1. **dispatch** — unify the transition's source pattern against the
   current state (binding dependent parameters, e.g. ``seq``);
2. **evidence check** — if the transition ``requires`` a packet spec, the
   payload must be a ``Verified`` packet of that spec (an unverified
   packet, or a packet of another spec, is rejected — the runtime analogue
   of ``OK`` demanding a ``ChkPacket``);
3. **guard** — any additional predicate must hold;
4. **step** — the target state is *computed* from the bindings (never
   guessed), parameters are normalized into their domains, and the step is
   appended to an immutable trace.

Any failure raises :class:`InvalidTransitionError` and leaves the machine
unchanged: invalid transitions cannot be executed, which is the paper's
soundness property enforced dynamically at the last line of defence (the
first line being the sealed spec).
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.core import dispatch as _dispatch
from repro.core.codec import encode_verbatim
from repro.core.statemachine import (
    MachineSpec,
    MachineSpecError,
    StateInstance,
    TransitionSpec,
)
from repro.core.symbolic import UnificationError
from repro.core.verified import Verified
from repro.obs.instrument import NULL_OBS, Instrumentation, get_default
from repro.obs.trace import frame_digest


class InvalidTransitionError(RuntimeError):
    """Raised when a transition cannot legally execute from the current state.

    ``code`` is a low-cardinality rejection category (``unknown_transition``,
    ``dispatch``, ``inputs``, ``evidence``, ``payload``, ``guard``, ``state``)
    used to label the observability counters; ``reason`` stays free text.
    """

    def __init__(
        self,
        machine_name: str,
        transition_name: str,
        reason: str,
        code: str = "invalid",
    ) -> None:
        self.machine_name = machine_name
        self.transition_name = transition_name
        self.reason = reason
        self.code = code
        super().__init__(
            f"machine {machine_name!r}: cannot execute {transition_name!r}: {reason}"
        )


class UnverifiedPayloadError(InvalidTransitionError):
    """Raised when a transition demanding verified data receives raw data."""

    def __init__(
        self,
        machine_name: str,
        transition_name: str,
        reason: str,
        code: str = "evidence",
    ) -> None:
        super().__init__(machine_name, transition_name, reason, code=code)


@dataclass(frozen=True)
class TraceStep:
    """One executed transition in a machine's history."""

    transition: str
    source: StateInstance
    target: StateInstance
    bindings: Tuple[Tuple[str, int], ...]

    def bindings_dict(self) -> Dict[str, int]:
        """Bindings as a dictionary."""
        return dict(self.bindings)


Observer = Callable[["Machine", TraceStep, Any], None]


class Machine:
    """A running protocol state machine.

    Parameters
    ----------
    spec:
        A **sealed** machine spec; unsealed specs are rejected, so no
        machine ever runs a definition that failed (or skipped) checking.
    initial:
        The concrete starting state; defaults to the spec's declared
        initial state with all parameters zero.
    context:
        Arbitrary user data carried by the machine (e.g. the send queue in
        the ARQ example — the paper's ``sendMachine`` carries the list of
        data to be transmitted).
    obs:
        An :class:`~repro.obs.Instrumentation` context; defaults to the
        process-wide one (disabled unless ``repro.obs.enable()`` ran).
        When enabled, every execution records an ``exec_trans`` span with
        dispatch/evidence/guard/step child spans, a latency histogram, and
        executed/rejected counters labeled by machine and reason.
    """

    def __init__(
        self,
        spec: MachineSpec,
        initial: Optional[StateInstance] = None,
        context: Any = None,
        obs: Optional[Instrumentation] = None,
    ) -> None:
        if not spec.sealed:
            raise MachineSpecError(
                f"machine spec {spec.name!r} must be sealed (checked) before "
                "instantiation"
            )
        self.spec = spec
        if initial is None:
            initial_specs = spec.initial_states
            initial = initial_specs[0].instance(*([0] * initial_specs[0].arity))
        if spec.states.get(initial.state.name) is not initial.state:
            raise MachineSpecError(
                f"initial state {initial!r} does not belong to machine "
                f"{spec.name!r}"
            )
        self._current = initial
        self.context = context
        self._trace: List[TraceStep] = []
        self._observers: List[Observer] = []
        self._obs = obs if obs is not None else get_default()
        # Staged dispatch closures, built once per spec and shared by
        # every machine over it; None when REPRO_MACHINE_STAGED is off.
        self._staged = _dispatch.staged_table(spec)

    # -- inspection ---------------------------------------------------------

    @property
    def current(self) -> StateInstance:
        """The current concrete state."""
        return self._current

    @property
    def trace(self) -> Tuple[TraceStep, ...]:
        """The executed transition history (immutable view)."""
        return tuple(self._trace)

    @property
    def is_finished(self) -> bool:
        """True when the machine sits in a final state."""
        return self._current.is_final

    def in_state(self, state_name: str) -> bool:
        """True when the current state's name is ``state_name``."""
        return self._current.state.name == state_name

    def available_transitions(self) -> List[TransitionSpec]:
        """Transitions whose source pattern matches the current state.

        Guards are *not* evaluated here (they may need payloads); this
        answers "which transitions are shape-valid now", which drivers and
        the completeness tests use.
        """
        current = self._current
        table = self._staged
        matching = []
        if table is not None:
            for staged in table.by_source.get(current.state.name, ()):
                matcher = staged.match
                if matcher is not None:
                    if matcher(current) is not None:
                        matching.append(staged.transition)
                        continue
                    # Staged miss: the interpreted matcher is the oracle
                    # for *excluding* a transition too — a successful
                    # interpreted match here means the closure diverged.
                    try:
                        staged.transition.source.match(current)
                    except UnificationError:
                        continue
                    self._staged_divergence(staged, "match")
                    matching.append(staged.transition)
                else:
                    try:
                        staged.transition.source.match(current)
                    except UnificationError:
                        continue
                    matching.append(staged.transition)
            return matching
        for transition in self.spec.transitions_from(current.state.name):
            try:
                transition.source.match(current)
            except UnificationError:
                continue
            matching.append(transition)
        return matching

    def expect_state(self, state_name: str, **params: int) -> None:
        """Assert the machine is in a given state (used by protocol code).

        Raises :class:`InvalidTransitionError` on mismatch so protocol
        drivers fail loudly rather than drifting.
        """
        if self._current.state.name != state_name:
            raise InvalidTransitionError(
                self.spec.name,
                "<expect_state>",
                f"expected state {state_name!r}, in {self._current!r}",
                code="state",
            )
        actual = self._current.bindings()
        for name, value in params.items():
            if actual.get(name) != value:
                raise InvalidTransitionError(
                    self.spec.name,
                    "<expect_state>",
                    f"expected {name}={value}, got {name}={actual.get(name)!r}",
                    code="state",
                )

    # -- observation ---------------------------------------------------------

    def add_observer(self, observer: Observer) -> None:
        """Register a callback invoked after every executed transition."""
        self._observers.append(observer)

    # -- execution ------------------------------------------------------------

    def exec_trans(
        self, transition_name: str, payload: Any = None, **inputs: int
    ) -> StateInstance:
        """Execute a named transition; returns the new state.

        ``inputs`` supply the transition's declared execution-time
        parameters (e.g. ``exec_trans("ACK", ack=5)``).

        Raises :class:`InvalidTransitionError` (machine unchanged) when the
        transition does not exist, does not match the current state, lacks
        required evidence or inputs, or fails its guard.
        """
        obs = self._obs
        if obs.enabled:
            return self._exec_trans_observed(obs, transition_name, payload, inputs)
        return self._execute(self._lookup(transition_name), payload, inputs)

    def try_exec(
        self, transition_name: str, payload: Any = None, **inputs: int
    ) -> Optional[StateInstance]:
        """Attempt a transition; ``None`` (machine unchanged) on rejection.

        The event-loop driver hook: a server demultiplexing frames wants
        "does this event apply here?" as a branch, not an exception —
        rejection is the *common* case when probing which of several
        transitions (RECV vs. DUP_ACK, say) a verified frame feeds.
        Rejections still land on the observability counters with their
        reason codes; only the control flow changes.
        """
        try:
            return self.exec_trans(transition_name, payload, **inputs)
        except InvalidTransitionError:
            return None

    def _lookup(self, transition_name: str) -> TransitionSpec:
        try:
            return self.spec.transition_named(transition_name)
        except KeyError:
            raise InvalidTransitionError(
                self.spec.name,
                transition_name,
                "no such transition",
                code="unknown_transition",
            ) from None

    def _execute(
        self, transition: TransitionSpec, payload: Any, inputs: Dict[str, int]
    ) -> StateInstance:
        bindings = self._dispatch(transition, inputs)
        self._check_payload(transition, payload)
        self._check_guard(transition, bindings, payload)
        return self._step(transition, bindings, payload)

    def _exec_trans_observed(
        self,
        obs: Instrumentation,
        transition_name: str,
        payload: Any,
        inputs: Dict[str, int],
    ) -> StateInstance:
        """The same four phases as :meth:`_execute`, under the tracer.

        Records an ``exec_trans`` span with one child span per phase, an
        execution-latency histogram, and executed/rejected counters (the
        rejection reason is the exception's ``code``).
        """
        tracer = obs.tracer
        registry = obs.registry
        start = time.perf_counter()
        try:
            with tracer.span(
                "exec_trans", machine=self.spec.name, transition=transition_name
            ) as span:
                if isinstance(payload, (bytes, bytearray)):
                    span.set_attr("payload_digest", frame_digest(payload))
                    span.set_attr("payload_len", len(payload))
                elif isinstance(payload, Verified):
                    span.set_attr("payload_spec", payload.certificate.spec_name)
                    value = payload.value
                    if hasattr(value, "spec") and hasattr(value, "_values"):
                        # Encoding is verbatim, so re-encoding recovers the
                        # exact wire frame this evidence was parsed from —
                        # the digest joins this span to capture records.
                        span.set_attr(
                            "payload_digest",
                            frame_digest(
                                encode_verbatim(value.spec, value._values, obs=NULL_OBS)
                            ),
                        )
                transition = self._lookup(transition_name)
                with tracer.span("dispatch"):
                    bindings = self._dispatch(transition, inputs)
                span.set_attr("bindings", dict(sorted(bindings.items())))
                with tracer.span("evidence"):
                    self._check_payload(transition, payload)
                with tracer.span("guard"):
                    self._check_guard(transition, bindings, payload)
                with tracer.span("step"):
                    target = self._step(transition, bindings, payload)
                span.set_attr("target", repr(target))
        except InvalidTransitionError as exc:
            registry.counter(
                "machine.transitions_rejected",
                machine=self.spec.name,
                transition=transition_name,
                reason=exc.code,
            ).inc()
            raise
        registry.counter(
            "machine.transitions_executed",
            machine=self.spec.name,
            transition=transition_name,
        ).inc()
        registry.histogram(
            "machine.exec_seconds", machine=self.spec.name
        ).observe(time.perf_counter() - start)
        return target

    # -- the four phases (see module docstring) ---------------------------

    def _staged_for(self, transition: TransitionSpec) -> Any:
        table = self._staged
        if table is None:
            return None
        return table.by_name.get(transition.name)

    def _staged_divergence(self, staged: Any, phase: str) -> None:
        """Retire a diverging closure and count it in repro.obs."""
        _dispatch.demote(staged, phase)
        obs = self._obs
        if obs.enabled:
            obs.registry.counter(
                "machine.staged_divergences",
                machine=self.spec.name,
                transition=staged.transition.name,
                phase=phase,
            ).inc()

    def _match_source(self, transition: TransitionSpec) -> Dict[str, int]:
        """Source-pattern bindings, staged matcher first, interpreter as oracle."""
        staged = self._staged_for(transition)
        if staged is not None and staged.match is not None:
            bindings = staged.match(self._current)
            if bindings is not None:
                return bindings
            # Miss: rerun interpreted for the canonical error — or, if it
            # succeeds where the closure refused, demote the closure.
            try:
                bindings = transition.source.match(self._current)
            except UnificationError as exc:
                raise InvalidTransitionError(
                    self.spec.name,
                    transition.name,
                    f"current state {self._current!r} does not match source "
                    f"pattern {transition.source!r} ({exc})",
                    code="dispatch",
                ) from None
            self._staged_divergence(staged, "match")
            return bindings
        try:
            return transition.source.match(self._current)
        except UnificationError as exc:
            raise InvalidTransitionError(
                self.spec.name,
                transition.name,
                f"current state {self._current!r} does not match source "
                f"pattern {transition.source!r} ({exc})",
                code="dispatch",
            ) from None

    def _dispatch(
        self, transition: TransitionSpec, inputs: Dict[str, int]
    ) -> Dict[str, int]:
        bindings = self._match_source(transition)
        if set(inputs) != set(transition.inputs):
            raise InvalidTransitionError(
                self.spec.name,
                transition.name,
                f"transition declares inputs {sorted(transition.inputs)}, "
                f"got {sorted(inputs)}",
                code="inputs",
            )
        for input_name, input_value in inputs.items():
            if not isinstance(input_value, int) or isinstance(input_value, bool):
                raise InvalidTransitionError(
                    self.spec.name,
                    transition.name,
                    f"input {input_name!r} must be an int, got {input_value!r}",
                    code="inputs",
                )
            bindings[input_name] = input_value
        return bindings

    def _check_guard(
        self, transition: TransitionSpec, bindings: Dict[str, int], payload: Any
    ) -> None:
        staged = self._staged_for(transition)
        if staged is not None and staged.guard is not None:
            try:
                holds = bool(staged.guard(bindings, payload))
            except Exception:
                # Oracle rerun: a raise here is canonical (tiers agree);
                # a clean verdict means the staged closure diverged.
                holds = transition.guard_holds(bindings, payload)
                self._staged_divergence(staged, "guard")
        else:
            holds = transition.guard_holds(bindings, payload)
        if not holds:
            raise InvalidTransitionError(
                self.spec.name, transition.name, "guard predicate failed", code="guard"
            )

    def _step(
        self, transition: TransitionSpec, bindings: Dict[str, int], payload: Any
    ) -> StateInstance:
        staged = self._staged_for(transition)
        if staged is not None and staged.target is not None:
            try:
                target = staged.target(bindings)
            except Exception:
                # Oracle rerun: canonical error, or a demoting divergence.
                target = transition.target.instantiate(bindings)
                self._staged_divergence(staged, "target")
        else:
            target = transition.target.instantiate(bindings)
        step = TraceStep(
            transition=transition.name,
            source=self._current,
            target=target,
            bindings=tuple(sorted(bindings.items())),
        )
        self._current = target
        self._trace.append(step)
        for observer in self._observers:
            observer(self, step, payload)
        return target

    def _check_payload(self, transition: TransitionSpec, payload: Any) -> None:
        requires = transition.requires
        if requires is None:
            if payload is not None:
                raise InvalidTransitionError(
                    self.spec.name,
                    transition.name,
                    "transition takes no payload but one was supplied",
                    code="payload",
                )
            return
        if requires == "bytes":
            if not isinstance(payload, (bytes, bytearray)):
                raise InvalidTransitionError(
                    self.spec.name,
                    transition.name,
                    f"transition requires a byte payload, got {type(payload).__name__}",
                    code="payload",
                )
            return
        # requires is a PacketSpec: demand verified evidence of that spec.
        if not isinstance(payload, Verified):
            raise UnverifiedPayloadError(
                self.spec.name,
                transition.name,
                f"transition requires a Verified[{requires.name}] packet; "
                f"got {type(payload).__name__} — validate with "
                f"{requires.name}.parse()/verify() first",
            )
        if payload.certificate.spec_name != requires.name:
            raise UnverifiedPayloadError(
                self.spec.name,
                transition.name,
                f"transition requires Verified[{requires.name}], got "
                f"Verified[{payload.certificate.spec_name}]",
            )

    def __repr__(self) -> str:
        return f"Machine({self.spec.name!r}, current={self._current!r})"


def replay_trace(
    spec: MachineSpec,
    initial: StateInstance,
    steps: Sequence[Any],
) -> Machine:
    """Replay recorded steps on a fresh machine.

    Each step is ``(transition, payload)`` or ``(transition, payload,
    inputs_dict)``.  Used by the trace verifier: a recorded trace is valid
    iff replaying it raises nothing and reproduces the same state sequence.
    """
    machine = Machine(spec, initial)
    for step in steps:
        if len(step) == 2:
            transition_name, payload = step
            inputs: Dict[str, int] = {}
        else:
            transition_name, payload, inputs = step
        machine.exec_trans(transition_name, payload, **inputs)
    return machine
