"""Export packet specs to RFC 5234 ABNF grammars.

The paper positions ABNF as a *syntactic* description technique (§2.1):
machine-parseable, but unable to carry the semantic constraints the DSL
holds.  This exporter derives an ABNF grammar from a
:class:`~repro.core.packet.PacketSpec`, demonstrating the containment the
paper claims: everything ABNF can say about one of our packet formats is
mechanically derivable from the spec, while the reverse direction would
lose the checksum, constant, enumeration and dependency information (the
export appends those as ABNF comments, since the notation itself cannot
express them).

The exported grammar describes the packet at **byte granularity**: sub-byte
fields are grouped into synthetic octet rules annotated with their bit
layout in comments, exactly as RFC authors do in prose.
"""

from __future__ import annotations

from typing import Any, List

from repro.core.fields import (
    Bytes,
    ChecksumField,
    Flag,
    Reserved,
    Struct,
    Switch,
    UInt,
    UIntList,
)


def _rule_name(spec_name: str, suffix: str = "") -> str:
    """ABNF rule names: lower-case, hyphenated."""
    base = spec_name.replace("_", "-").lower()
    return f"{base}-{suffix}" if suffix else base


def _octet_count(bits: int) -> str:
    count = bits // 8
    return "OCTET" if count == 1 else f"{count}OCTET"


def export_abnf(spec: Any) -> str:
    """Render an ABNF grammar (plus semantic-gap comments) for ``spec``."""
    lines: List[str] = []
    lines.append(f"; ABNF for {spec.name} (generated from the protocol DSL)")
    if spec.doc:
        lines.append(f"; {spec.doc.splitlines()[0]}")
    lines.append("; Core rules per RFC 5234: OCTET = %x00-FF")
    lines.append("")
    elements: List[str] = []
    definitions: List[str] = []
    semantic_notes: List[str] = []
    pending_bits: List[Any] = []
    pending_width = 0
    group_index = 0

    def flush_bit_group() -> None:
        nonlocal pending_bits, pending_width, group_index
        if not pending_bits:
            return
        if pending_width % 8 != 0:
            raise ValueError(
                f"spec {spec.name!r}: bit fields sum to {pending_width} bits, "
                "not exportable at octet granularity"
            )
        group_index += 1
        name = _rule_name(spec.name, f"bits{group_index}")
        elements.append(name)
        layout = " ".join(f"{f.name}:{f.fixed_bit_width()}" for f in pending_bits)
        definitions.append(f"{name} = {_octet_count(pending_width)}")
        definitions.append(f"   ; bit layout (msb first): {layout}")
        pending_bits = []
        pending_width = 0

    for field in spec.fields:
        width = field.fixed_bit_width()
        if isinstance(field, (UInt, Flag, Reserved, ChecksumField)) and width is not None:
            if width % 8 != 0 or pending_bits:
                pending_bits.append(field)
                pending_width += width
                if pending_width % 8 == 0:
                    flush_bit_group()
                continue
            name = _rule_name(spec.name, field.name.replace("_", "-"))
            elements.append(name)
            definitions.append(f"{name} = {_octet_count(width)}")
            if isinstance(field, UInt) and field.const is not None:
                semantic_notes.append(
                    f"; {field.name} is fixed to {field.const} — expressible "
                    "in ABNF only as a literal, checked semantically by the DSL"
                )
            if isinstance(field, ChecksumField):
                semantic_notes.append(
                    f"; {field.name} must equal {field.algorithm.name} over "
                    "covered fields — NOT expressible in ABNF"
                )
        elif isinstance(field, Bytes):
            name = _rule_name(spec.name, field.name.replace("_", "-"))
            elements.append(name)
            if field.is_greedy:
                definitions.append(f"{name} = *OCTET")
            elif not field.length.free_variables():
                definitions.append(
                    f"{name} = {_octet_count(field.length.evaluate({}) * 8)}"
                )
            else:
                definitions.append(f"{name} = *OCTET")
                semantic_notes.append(
                    f"; {field.name} length is {field.length} — dependent "
                    "lengths are NOT expressible in ABNF"
                )
        elif isinstance(field, UIntList):
            name = _rule_name(spec.name, field.name.replace("_", "-"))
            elements.append(name)
            definitions.append(f"{name} = *OCTET")
            semantic_notes.append(
                f"; {field.name} is {field.count} elements of "
                f"{field.element_bits} bits — dependent counts are NOT "
                "expressible in ABNF"
            )
        elif isinstance(field, (Struct, Switch)):
            name = _rule_name(spec.name, field.name.replace("_", "-"))
            elements.append(name)
            definitions.append(f"{name} = *OCTET   ; nested structure")
        else:
            raise ValueError(f"cannot export field {field!r} to ABNF")
    flush_bit_group()

    lines.append(f"{_rule_name(spec.name)} = " + " ".join(elements))
    lines.append("")
    lines.extend(definitions)
    if semantic_notes:
        lines.append("")
        lines.append("; --- semantic constraints beyond ABNF ---")
        lines.extend(semantic_notes)
        for constraint in spec.constraints:
            if constraint.doc:
                lines.append(f"; constraint {constraint.name}: {constraint.doc}")
    return "\n".join(lines)
