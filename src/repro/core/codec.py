"""The codec engine: interprets a packet spec to encode and decode bytes.

Encoding is split into two layers:

* :func:`encode_verbatim` — single-pass, writes exactly the values a packet
  carries (checksums included).  This makes ``decode(encode(p)) == p`` hold
  bit-exactly for *every* representable packet, valid or not — a property
  the round-trip test suite and the differential codegen tests rely on.
* :func:`compute_checksums` — the two-pass "make" path: encodes with
  checksum placeholders, derives each checksum from the covered byte
  region, and returns the completed value environment.

Decoding (:func:`decode_packet`) walks fields in order, feeding previously
decoded integer values into the environment so dependent shapes (lengths,
switch discriminators) resolve — the operational reading of the paper's
dependent records.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.core.fields import ChecksumField, Field, FieldValueError
from repro.obs.instrument import Instrumentation, get_default
from repro.wire.bits import BitReader, BitWriter


class DecodeError(ValueError):
    """Raised when bytes cannot be decoded under a spec."""

    def __init__(self, spec_name: str, message: str) -> None:
        self.spec_name = spec_name
        super().__init__(f"cannot decode {spec_name!r}: {message}")


class ExtraDataError(DecodeError):
    """Raised when decoding leaves unconsumed bits."""

    def __init__(self, spec_name: str, extra_bits: int) -> None:
        self.extra_bits = extra_bits
        super().__init__(spec_name, f"{extra_bits} unconsumed bits after packet")


Span = Tuple[int, int]  # (start_bit, end_bit), half-open


def _extract_bits(buffer: bytes, start_bit: int, end_bit: int) -> bytes:
    """Extract the half-open bit range as bytes (must be a whole byte count)."""
    width = end_bit - start_bit
    if width % 8 != 0:
        raise ValueError(
            f"bit range [{start_bit}, {end_bit}) spans {width} bits, "
            "which is not a whole number of bytes"
        )
    if start_bit % 8 == 0:
        return buffer[start_bit // 8 : end_bit // 8]
    reader = BitReader(buffer)
    reader.read_uint(start_bit)  # discard the prefix before the span
    return bytes(reader.read_uint(8) for _ in range(width // 8))


def _patch_bits(buffer: bytearray, start_bit: int, width: int, value: int) -> None:
    """Overwrite ``width`` bits of ``buffer`` at ``start_bit`` with ``value``."""
    for offset in range(width):
        bit = (value >> (width - 1 - offset)) & 1
        position = start_bit + offset
        byte_index = position // 8
        mask = 1 << (7 - position % 8)
        if bit:
            buffer[byte_index] |= mask
        else:
            buffer[byte_index] &= ~mask & 0xFF


def _zeroed(buffer: bytes, span: Span) -> bytes:
    """Return a copy of ``buffer`` with the span's bits cleared."""
    patched = bytearray(buffer)
    _patch_bits(patched, span[0], span[1] - span[0], 0)
    return bytes(patched)


def _encode_fields(
    spec: Any,
    values: Mapping[str, Any],
) -> Tuple[bytes, Dict[str, Span]]:
    """Encode every field verbatim, recording each field's bit span."""
    writer = BitWriter()
    spans: Dict[str, Span] = {}
    env: Dict[str, int] = {}
    for field in spec.fields:
        start = writer.bit_length
        value = values[field.name]
        try:
            field.encode(writer, value, env)
        except FieldValueError:
            raise
        spans[field.name] = (start, writer.bit_length)
        if field.is_integer_valued():
            env[field.name] = int(value)
    return writer.getvalue(), spans


def encode_verbatim(
    spec: Any, values: Mapping[str, Any], obs: Optional[Instrumentation] = None
) -> bytes:
    """Encode a complete value environment exactly as given.

    ``obs`` (default: the process-wide instrumentation) records, when
    enabled, an encode-latency histogram and bytes/packets counters
    labeled by spec.
    """
    if obs is None:
        obs = get_default()
    if not obs.enabled:
        encoded, _ = _encode_fields(spec, values)
        return encoded
    start = time.perf_counter()
    encoded, _ = _encode_fields(spec, values)
    _record_codec(obs, "encode", spec.name, len(encoded), time.perf_counter() - start)
    return encoded


def field_spans(spec: Any, values: Mapping[str, Any]) -> Dict[str, Span]:
    """Each field's encoded bit span for a complete value environment.

    The spans index into the buffer :func:`encode_verbatim` would produce
    for the same values; structure-aware tooling (the conformance fuzzer)
    uses them to aim mutations at individual fields.
    """
    _, spans = _encode_fields(spec, values)
    return spans


def _record_codec(
    obs: Instrumentation, op: str, spec_name: str, size: int, elapsed: float
) -> None:
    """Shared metric updates for one successful encode/decode."""
    registry = obs.registry
    registry.histogram(f"codec.{op}_seconds", spec=spec_name).observe(elapsed)
    registry.counter(f"codec.{op}d_packets", spec=spec_name).inc()
    registry.counter(f"codec.{op}d_bytes", spec=spec_name).inc(size)


def checksum_cover(
    spec: Any,
    field: ChecksumField,
    buffer: bytes,
    spans: Mapping[str, Span],
) -> bytes:
    """The byte region a checksum field covers, given an encoded buffer.

    For ``over="*"`` the cover is the whole buffer with the checksum's own
    span zeroed (RFC 791 style); otherwise it is the concatenation of the
    named fields' encoded bytes.
    """
    if field.covers_whole_packet:
        return _zeroed(buffer, spans[field.name])
    pieces: List[bytes] = []
    for name in field.over or ():
        start, end = spans[name]
        pieces.append(_extract_bits(buffer, start, end))
    return b"".join(pieces)


def compute_checksums(spec: Any, values: Mapping[str, Any]) -> Dict[str, Any]:
    """Fill in every checksum field of a value environment.

    Non-checksum values are passed through unchanged.  Checksums are
    computed in field order over a buffer in which *later* checksums are
    still zero — multi-checksum specs should therefore order dependent
    checksums after their inputs (the spec validator warns otherwise).
    """
    working: Dict[str, Any] = dict(values)
    for field in spec.fields:
        if isinstance(field, ChecksumField):
            working[field.name] = 0
    buffer, spans = _encode_fields(spec, working)
    patched = bytearray(buffer)
    for field in spec.fields:
        if not isinstance(field, ChecksumField):
            continue
        cover = checksum_cover(spec, field, bytes(patched), spans)
        value = field.compute(cover)
        working[field.name] = value
        start, end = spans[field.name]
        _patch_bits(patched, start, end - start, value)
    return working


def compute_one_checksum(spec: Any, values: Mapping[str, Any], field_name: str) -> int:
    """Recompute a single checksum from a packet's own values.

    Used by verification: the other fields (including sibling checksums)
    keep their *carried* values, and only the target field is zeroed when
    it covers the whole packet.
    """
    field = spec.field_map[field_name]
    if not isinstance(field, ChecksumField):
        raise ValueError(f"{field_name!r} is not a checksum field")
    buffer, spans = _encode_fields(spec, values)
    cover = checksum_cover(spec, field, buffer, spans)
    return field.compute(cover)


def decode_packet(
    spec: Any, data: bytes, obs: Optional[Instrumentation] = None
) -> Dict[str, Any]:
    """Decode bytes into a value environment under ``spec``.

    Raises :class:`DecodeError` on truncation and
    :class:`ExtraDataError` when trailing bits remain.

    ``obs`` (default: the process-wide instrumentation) records, when
    enabled, a decode-latency histogram, bytes/packets counters, and a
    :class:`DecodeError` counter labeled by spec and error kind.
    """
    if obs is None:
        obs = get_default()
    if not obs.enabled:
        return _decode_fields(spec, data)
    start = time.perf_counter()
    try:
        values = _decode_fields(spec, data)
    except DecodeError as exc:
        obs.registry.counter(
            "codec.decode_errors", spec=spec.name, kind=type(exc).__name__
        ).inc()
        raise
    _record_codec(obs, "decode", spec.name, len(data), time.perf_counter() - start)
    return values


def _decode_fields(spec: Any, data: bytes) -> Dict[str, Any]:
    reader = BitReader(data)
    values: Dict[str, Any] = {}
    env: Dict[str, int] = {}
    for field in spec.fields:
        try:
            value = field.decode(reader, env)
        except (ValueError, IndexError) as exc:
            raise DecodeError(spec.name, f"field {field.name!r}: {exc}") from exc
        values[field.name] = value
        if field.is_integer_valued():
            env[field.name] = int(value)
    if not reader.at_end:
        raise ExtraDataError(spec.name, reader.bits_remaining)
    return values
