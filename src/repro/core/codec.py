"""The codec engine: interprets a packet spec to encode and decode bytes.

Encoding is split into two layers:

* :func:`encode_verbatim` — single-pass, writes exactly the values a packet
  carries (checksums included).  This makes ``decode(encode(p)) == p`` hold
  bit-exactly for *every* representable packet, valid or not — a property
  the round-trip test suite and the differential codegen tests rely on.
* :func:`compute_checksums` — the two-pass "make" path: encodes with
  checksum placeholders, derives each checksum from the covered byte
  region, and returns the completed value environment.

Decoding (:func:`decode_packet`) walks fields in order, feeding previously
decoded integer values into the environment so dependent shapes (lengths,
switch discriminators) resolve — the operational reading of the paper's
dependent records.

Both entry points consult ``repro.fastpath`` first: when the process-wide
policy has compiled a spec (see ``repro.fastpath.cache``), the generated
closures run instead of the interpretive walk, with the interpreter kept
as the error oracle — a compiled closure that raises is re-run through
the interpreter so callers always see the canonical exception, and a
closure that *diverges* (errors where the interpreter succeeds, or
mismatches under ``verify``) demotes its spec back to interpretation.
"""

from __future__ import annotations

import time
from typing import Any, Dict, List, Mapping, Optional, Tuple

from repro.core.fields import ChecksumField, Field, FieldValueError
from repro.fastpath.cache import active_state as _fp_active
from repro.fastpath.cache import demote as _fp_cache_demote
from repro.obs.instrument import NULL_OBS, Instrumentation, get_default
from repro.wire.bits import BitReader, BitWriter


class DecodeError(ValueError):
    """Raised when bytes cannot be decoded under a spec."""

    def __init__(self, spec_name: str, message: str) -> None:
        self.spec_name = spec_name
        super().__init__(f"cannot decode {spec_name!r}: {message}")


class ExtraDataError(DecodeError):
    """Raised when decoding leaves unconsumed bits."""

    def __init__(self, spec_name: str, extra_bits: int) -> None:
        self.extra_bits = extra_bits
        super().__init__(spec_name, f"{extra_bits} unconsumed bits after packet")


Span = Tuple[int, int]  # (start_bit, end_bit), half-open


def _extract_bits(buffer: bytes, start_bit: int, end_bit: int) -> bytes:
    """Extract the half-open bit range as bytes (must be a whole byte count).

    Unaligned ranges are one bulk ``int.from_bytes`` over the touched
    bytes plus a shift — not a per-byte read loop.
    """
    width = end_bit - start_bit
    if width % 8 != 0:
        raise ValueError(
            f"bit range [{start_bit}, {end_bit}) spans {width} bits, "
            "which is not a whole number of bytes"
        )
    if end_bit > len(buffer) * 8:
        raise ValueError(
            f"bit range [{start_bit}, {end_bit}) runs past the end of a "
            f"{len(buffer)}-byte buffer"
        )
    if start_bit % 8 == 0:
        return buffer[start_bit // 8 : end_bit // 8]
    byte_end = (end_bit + 7) >> 3
    chunk = int.from_bytes(buffer[start_bit >> 3 : byte_end], "big")
    chunk >>= (byte_end << 3) - end_bit
    return (chunk & ((1 << width) - 1)).to_bytes(width >> 3, "big")


def _patch_bits(buffer: bytearray, start_bit: int, width: int, value: int) -> None:
    """Overwrite ``width`` bits of ``buffer`` at ``start_bit`` with ``value``.

    Bulk mask arithmetic over the touched byte span; no per-bit loop.
    """
    if width <= 0:
        return
    end = start_bit + width
    first = start_bit >> 3
    byte_end = (end + 7) >> 3
    shift = (byte_end << 3) - end
    mask = ((1 << width) - 1) << shift
    span = int.from_bytes(buffer[first:byte_end], "big")
    buffer[first:byte_end] = ((span & ~mask) | ((value << shift) & mask)).to_bytes(
        byte_end - first, "big"
    )


def _zeroed(buffer: bytes, span: Span) -> bytes:
    """Return a copy of ``buffer`` with the span's bits cleared."""
    patched = bytearray(buffer)
    _patch_bits(patched, span[0], span[1] - span[0], 0)
    return bytes(patched)


def _encode_fields(
    spec: Any,
    values: Mapping[str, Any],
) -> Tuple[bytes, Dict[str, Span]]:
    """Encode every field verbatim, recording each field's bit span."""
    writer = BitWriter()
    spans: Dict[str, Span] = {}
    env: Dict[str, int] = {}
    for field in spec.fields:
        start = writer.bit_length
        value = values[field.name]
        try:
            field.encode(writer, value, env)
        except FieldValueError:
            raise
        spans[field.name] = (start, writer.bit_length)
        if field.is_integer_valued():
            env[field.name] = int(value)
    return writer.getvalue(), spans


# Compiled-closure errors that trigger the interpreter-as-oracle rerun.
# Anything a generated parse/build can plausibly raise on bad input; the
# rerun either reproduces the canonical interpreted error (agreement) or
# succeeds, which is a divergence and demotes the spec.
_FALLBACK_ERRORS = (ValueError, TypeError, OverflowError, KeyError, IndexError)


def _fp_demote(
    spec: Any,
    state: Any,
    reason: str,
    obs: Optional[Instrumentation],
    payload: Optional[Dict[str, Any]] = None,
) -> None:
    """Demote a diverging spec and count the divergence in repro.obs.

    ``payload`` carries the offending operation (``{"op": "decode",
    "data": ...}`` or ``{"op": "encode", "values": ...}``) to the
    flight recorder so ``--triage`` can re-run the exact divergence;
    demotion is the cold path, so the recorder hook costs nothing here.
    """
    _fp_cache_demote(state, reason)
    if obs is None:
        obs = get_default()
    if obs.enabled:
        obs.registry.counter(
            "fastpath.divergences", spec=spec.name, reason=reason
        ).inc()
    from repro.obs.live.flightrec import record_crash

    extra: Dict[str, Any] = {"reason": reason}
    data: Optional[bytes] = None
    if payload is not None:
        data = payload.get("data")
        extra.update(
            (key, value) for key, value in payload.items() if key != "data"
        )
    record_crash(
        "fastpath_demotion",
        subject=spec.name,
        detail=reason,
        data=data,
        extra=extra,
    )


def _fast_encode(
    spec: Any, state: Any, values: Mapping[str, Any], obs: Optional[Instrumentation]
) -> bytes:
    """Encode via the compiled closure, interpreter as error oracle."""
    try:
        encoded = state.codec.build(values)
    except _FALLBACK_ERRORS:
        # If the interpreter also rejects, its (canonical) error
        # propagates and the two tiers agree; if it succeeds, the
        # compiled closure was wrong to raise — a real divergence.
        encoded, _ = _encode_fields(spec, values)
        _fp_demote(
            spec, state, "encode-error", obs,
            {"op": "encode", "values": repr(dict(values))},
        )
        return encoded
    if state.verify:
        expected, _ = _encode_fields(spec, values)
        if encoded != expected:
            _fp_demote(
                spec, state, "encode-mismatch", obs,
                {"op": "encode", "values": repr(dict(values))},
            )
            return expected
    return encoded


def _fast_encode_spans(
    spec: Any, state: Any, values: Mapping[str, Any], obs: Optional[Instrumentation]
) -> Tuple[bytes, Dict[str, Span]]:
    """Like :func:`_fast_encode` but also returns per-field bit spans."""
    spans: Dict[str, Span] = {}
    try:
        encoded = state.codec.build(values, spans)
    except _FALLBACK_ERRORS:
        encoded, spans = _encode_fields(spec, values)
        _fp_demote(
            spec, state, "encode-error", obs,
            {"op": "encode", "values": repr(dict(values))},
        )
        return encoded, spans
    if state.verify:
        expected, expected_spans = _encode_fields(spec, values)
        if encoded != expected or spans != expected_spans:
            _fp_demote(
                spec, state, "encode-mismatch", obs,
                {"op": "encode", "values": repr(dict(values))},
            )
            return expected, expected_spans
    return encoded, spans


def _fast_decode(
    spec: Any, state: Any, data: bytes, obs: Optional[Instrumentation]
) -> Dict[str, Any]:
    """Decode via the compiled closure, interpreter as error oracle."""
    try:
        values = state.codec.parse(data)
    except _FALLBACK_ERRORS:
        # Interpreter rerun: canonical DecodeError on agreement,
        # divergence demotion when it succeeds where compiled raised.
        values = _decode_fields(spec, data)
        _fp_demote(
            spec, state, "decode-error", obs, {"op": "decode", "data": data}
        )
        return values
    if state.verify:
        try:
            expected = _decode_fields(spec, data)
        except DecodeError:
            _fp_demote(
                spec, state, "decode-mismatch", obs,
                {"op": "decode", "data": data},
            )
            raise
        if values != expected:
            _fp_demote(
                spec, state, "decode-mismatch", obs,
                {"op": "decode", "data": data},
            )
            return expected
    return values


def encode_verbatim(
    spec: Any, values: Mapping[str, Any], obs: Optional[Instrumentation] = None
) -> bytes:
    """Encode a complete value environment exactly as given.

    Dispatches to the compiled tier when the fast-path policy has
    promoted this spec (``repro.fastpath``); semantics are unchanged.

    ``obs`` (default: the process-wide instrumentation) records, when
    enabled, an encode-latency histogram and bytes/packets counters
    labeled by spec.
    """
    if obs is None:
        obs = get_default()
    if not obs.enabled:
        state = _fp_active(spec)
        if state is not None:
            return _fast_encode(spec, state, values, obs)
        encoded, _ = _encode_fields(spec, values)
        return encoded
    start = time.perf_counter()
    state = _fp_active(spec)
    if state is not None:
        encoded = _fast_encode(spec, state, values, obs)
    else:
        encoded, _ = _encode_fields(spec, values)
    _record_codec(obs, "encode", spec.name, len(encoded), time.perf_counter() - start)
    return encoded


def encode_with_spans(
    spec: Any, values: Mapping[str, Any], obs: Optional[Instrumentation] = None
) -> Tuple[bytes, Dict[str, Span]]:
    """Encode verbatim and return ``(encoded, spans)`` from one pass.

    Structure-aware tooling (the conformance fuzzer) needs both the wire
    bytes and each field's bit span; this produces them in a single
    encode instead of the encode-then-re-encode that ``encode`` +
    :func:`field_spans` would cost.
    """
    if obs is None:
        obs = get_default()
    if not obs.enabled:
        state = _fp_active(spec)
        if state is not None:
            return _fast_encode_spans(spec, state, values, obs)
        return _encode_fields(spec, values)
    start = time.perf_counter()
    state = _fp_active(spec)
    if state is not None:
        encoded, spans = _fast_encode_spans(spec, state, values, obs)
    else:
        encoded, spans = _encode_fields(spec, values)
    _record_codec(obs, "encode", spec.name, len(encoded), time.perf_counter() - start)
    return encoded, spans


def field_spans(spec: Any, values: Mapping[str, Any]) -> Dict[str, Span]:
    """Each field's encoded bit span for a complete value environment.

    The spans index into the buffer :func:`encode_verbatim` would produce
    for the same values; structure-aware tooling (the conformance fuzzer)
    uses them to aim mutations at individual fields.  Callers that also
    need the bytes should use :func:`encode_with_spans` and pay one pass.
    """
    return encode_with_spans(spec, values, obs=NULL_OBS)[1]


def _record_codec(
    obs: Instrumentation, op: str, spec_name: str, size: int, elapsed: float
) -> None:
    """Shared metric updates for one successful encode/decode.

    Handles are cached per ``(op, spec)`` in the registry's handle cache
    — resolving a labeled metric costs a dict lookup plus label sorting,
    which at packet rates is real money.  ``registry.clear()`` empties
    the cache; ``reset()`` keeps it (instances survive).
    """
    registry = obs.registry
    cache = registry.handle_cache("codec")
    key = (op, spec_name)
    handles = cache.get(key)
    if handles is None:
        handles = (
            registry.histogram(f"codec.{op}_seconds", spec=spec_name),
            registry.counter(f"codec.{op}d_packets", spec=spec_name),
            registry.counter(f"codec.{op}d_bytes", spec=spec_name),
        )
        cache[key] = handles
    histogram, packets, size_counter = handles
    histogram.observe(elapsed)
    packets.inc()
    size_counter.inc(size)


def checksum_cover(
    spec: Any,
    field: ChecksumField,
    buffer: bytes,
    spans: Mapping[str, Span],
) -> bytes:
    """The byte region a checksum field covers, given an encoded buffer.

    For ``over="*"`` the cover is the whole buffer with the checksum's own
    span zeroed (RFC 791 style); otherwise it is the concatenation of the
    named fields' encoded bytes.
    """
    if field.covers_whole_packet:
        return _zeroed(buffer, spans[field.name])
    pieces: List[bytes] = []
    for name in field.over or ():
        start, end = spans[name]
        pieces.append(_extract_bits(buffer, start, end))
    return b"".join(pieces)


def compute_checksums(spec: Any, values: Mapping[str, Any]) -> Dict[str, Any]:
    """Fill in every checksum field of a value environment.

    Non-checksum values are passed through unchanged.  Checksums are
    computed in field order over a buffer in which *later* checksums are
    still zero — multi-checksum specs should therefore order dependent
    checksums after their inputs (the spec validator warns otherwise).
    """
    state = _fp_active(spec)
    if state is not None:
        try:
            working = state.codec.finalize(values)
        except _FALLBACK_ERRORS:
            working = _compute_checksums_interpreted(spec, values)
            _fp_demote(
                spec, state, "finalize-error", None,
                {"op": "finalize", "values": repr(dict(values))},
            )
            return working
        if state.verify:
            expected = _compute_checksums_interpreted(spec, values)
            if working != expected:
                _fp_demote(
                    spec, state, "finalize-mismatch", None,
                    {"op": "finalize", "values": repr(dict(values))},
                )
                return expected
        return working
    return _compute_checksums_interpreted(spec, values)


def _compute_checksums_interpreted(
    spec: Any, values: Mapping[str, Any]
) -> Dict[str, Any]:
    working: Dict[str, Any] = dict(values)
    for field in spec.fields:
        if isinstance(field, ChecksumField):
            working[field.name] = 0
    buffer, spans = _encode_fields(spec, working)
    patched = bytearray(buffer)
    for field in spec.fields:
        if not isinstance(field, ChecksumField):
            continue
        cover = checksum_cover(spec, field, bytes(patched), spans)
        value = field.compute(cover)
        working[field.name] = value
        start, end = spans[field.name]
        _patch_bits(patched, start, end - start, value)
    return working


def compute_one_checksum(spec: Any, values: Mapping[str, Any], field_name: str) -> int:
    """Recompute a single checksum from a packet's own values.

    Used by verification: the other fields (including sibling checksums)
    keep their *carried* values, and only the target field is zeroed when
    it covers the whole packet.
    """
    field = spec.field_map[field_name]
    if not isinstance(field, ChecksumField):
        raise ValueError(f"{field_name!r} is not a checksum field")
    state = _fp_active(spec)
    if state is not None:
        buffer, spans = _fast_encode_spans(spec, state, values, None)
    else:
        buffer, spans = _encode_fields(spec, values)
    cover = checksum_cover(spec, field, buffer, spans)
    return field.compute(cover)


def decode_packet(
    spec: Any, data: bytes, obs: Optional[Instrumentation] = None
) -> Dict[str, Any]:
    """Decode bytes into a value environment under ``spec``.

    Raises :class:`DecodeError` on truncation and
    :class:`ExtraDataError` when trailing bits remain.

    ``obs`` (default: the process-wide instrumentation) records, when
    enabled, a decode-latency histogram, bytes/packets counters, and a
    :class:`DecodeError` counter labeled by spec and error kind.
    """
    if obs is None:
        obs = get_default()
    if not obs.enabled:
        state = _fp_active(spec)
        if state is not None:
            return _fast_decode(spec, state, data, obs)
        return _decode_fields(spec, data)
    start = time.perf_counter()
    try:
        state = _fp_active(spec)
        if state is not None:
            values = _fast_decode(spec, state, data, obs)
        else:
            values = _decode_fields(spec, data)
    except DecodeError as exc:
        obs.registry.counter(
            "codec.decode_errors", spec=spec.name, kind=type(exc).__name__
        ).inc()
        raise
    _record_codec(obs, "decode", spec.name, len(data), time.perf_counter() - start)
    return values


def _decode_fields(spec: Any, data: bytes) -> Dict[str, Any]:
    reader = BitReader(data)
    values: Dict[str, Any] = {}
    env: Dict[str, int] = {}
    for field in spec.fields:
        try:
            value = field.decode(reader, env)
        except (ValueError, IndexError) as exc:
            raise DecodeError(spec.name, f"field {field.name!r}: {exc}") from exc
        values[field.name] = value
        if field.is_integer_valued():
            env[field.name] = int(value)
    if not reader.at_end:
        raise ExtraDataError(spec.name, reader.bits_remaining)
    return values
