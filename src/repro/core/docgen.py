"""Documentation generated from protocol definitions.

The paper's complaint about today's practice is that the artifacts of a
protocol — diagrams, grammars, behavioural descriptions, test plans —
live apart from each other and drift.  In this framework they are all
*derived*: :func:`document_packet_spec` and :func:`document_machine_spec`
render Markdown reference documentation straight from the checked
definitions, alongside the ASCII picture (:mod:`repro.core.ascii_art`),
the ABNF export (:mod:`repro.core.abnf_export`) and the generated codec
(:mod:`repro.core.compile`).
"""

from __future__ import annotations

from typing import Any, List

from repro.core.ascii_art import RenderError, render_header_diagram
from repro.core.fields import (
    Bytes,
    ChecksumField,
    Flag,
    Reserved,
    Struct,
    Switch,
    UInt,
    UIntList,
)


def _field_kind(field: Any) -> str:
    if isinstance(field, UInt):
        extras = []
        if field.const is not None:
            extras.append(f"const {field.const}")
        if field.enum:
            extras.append("enum " + "/".join(field.enum.values()))
        suffix = f" ({', '.join(extras)})" if extras else ""
        return f"uint{field.bits}{suffix}"
    if isinstance(field, Flag):
        return "flag (1 bit)"
    if isinstance(field, Reserved):
        return f"reserved ({field.bits} bits = {field.value})"
    if isinstance(field, ChecksumField):
        cover = "whole packet (self-zeroed)" if field.covers_whole_packet else ", ".join(field.over)
        return f"checksum {field.algorithm.name} over {cover}"
    if isinstance(field, Bytes):
        if field.is_greedy:
            return "bytes (rest of packet)"
        return f"bytes[{field.length}]"
    if isinstance(field, UIntList):
        return f"list of uint{field.element_bits} x {field.count}"
    if isinstance(field, Struct):
        return f"nested {field.spec.name}"
    if isinstance(field, Switch):
        cases = ", ".join(
            f"{value} -> {spec.name}" for value, spec in sorted(field.cases.items())
        )
        return f"switch on {field.on} ({cases})"
    return type(field).__name__


def _width_text(field: Any) -> str:
    width = field.fixed_bit_width()
    return "variable" if width is None else f"{width} bits"


def document_packet_spec(spec: Any, include_diagram: bool = True) -> str:
    """Render Markdown reference documentation for a packet spec."""
    lines: List[str] = [f"## Packet `{spec.name}`", ""]
    if spec.doc:
        lines.append(spec.doc)
        lines.append("")
    if include_diagram:
        try:
            diagram = render_header_diagram(spec)
            lines.append("```")
            lines.append(diagram)
            lines.append("```")
            lines.append("")
        except RenderError:
            pass  # irregular layouts simply omit the picture
    lines.append("| field | type | width | description |")
    lines.append("|---|---|---|---|")
    for field in spec.fields:
        lines.append(
            f"| `{field.name}` | {_field_kind(field)} | {_width_text(field)} "
            f"| {field.doc or ''} |"
        )
    lines.append("")
    if spec.constraints:
        lines.append("**Constraints (checked by `verify`/`parse`):**")
        lines.append("")
        for constraint in spec.constraints:
            kind = "symbolic" if constraint.is_symbolic else "computed"
            doc = constraint.doc or str(getattr(constraint, "predicate", ""))
            lines.append(f"- `{constraint.name}` ({kind}): {doc}")
        lines.append("")
    return "\n".join(lines)


def document_machine_spec(spec: Any) -> str:
    """Render Markdown reference documentation for a machine spec."""
    lines: List[str] = [f"## Machine `{spec.name}`", ""]
    if spec.doc:
        lines.append(spec.doc)
        lines.append("")
    status = "sealed (checked)" if spec.sealed else "UNSEALED — not yet checked"
    lines.append(f"_Status: {status}_")
    lines.append("")
    lines.append("**States:**")
    lines.append("")
    for state in spec.states.values():
        params = ", ".join(
            f"{p.name}" + (f":{p.bits}b" if p.bits else "") for p in state.params
        )
        markers = []
        if state.initial:
            markers.append("initial")
        if state.final:
            markers.append("final")
        marker_text = f" _({', '.join(markers)})_" if markers else ""
        lines.append(f"- `{state.name}({params})`{marker_text} {state.doc}")
    lines.append("")
    lines.append("| transition | type | requires | guard | event |")
    lines.append("|---|---|---|---|---|")
    for transition in spec.transitions:
        requires = "—"
        if transition.requires == "bytes":
            requires = "byte payload"
        elif transition.requires is not None:
            requires = f"Verified[{transition.requires.name}]"
        if transition.guard is None:
            guard = "—"
        elif hasattr(transition.guard, "evaluate"):
            guard = f"`{transition.guard}`"
        else:
            guard = "(computed)"
        arrow = f"`{transition.source}` → `{transition.target}`"
        if transition.inputs:
            arrow += f" (inputs: {', '.join(transition.inputs)})"
        lines.append(
            f"| `{transition.name}` | {arrow} | {requires} | {guard} "
            f"| {transition.event or '—'} |"
        )
    lines.append("")
    if spec.expected_events:
        lines.append("**Completeness declarations:**")
        lines.append("")
        for state_name, events in sorted(spec.expected_events.items()):
            lines.append(f"- in `{state_name}`: handles {sorted(events)}")
        lines.append("")
    return "\n".join(lines)


def machine_to_dot(spec: Any) -> str:
    """Render a machine spec as a Graphviz DOT digraph.

    Transitions carrying evidence requirements are drawn bold; guards are
    shown in the edge labels.  Paste into any DOT renderer.
    """
    lines: List[str] = [f'digraph "{spec.name}" {{', "  rankdir=LR;"]
    for state in spec.states.values():
        params = ", ".join(p.name for p in state.params)
        label = f"{state.name}({params})" if params else state.name
        shape = "doublecircle" if state.final else "circle"
        attributes = [f'label="{label}"', f"shape={shape}"]
        if state.initial:
            attributes.append("style=bold")
        lines.append(f'  "{state.name}" [{", ".join(attributes)}];')
    if spec.initial_states:
        lines.append('  __start [shape=point];')
        lines.append(f'  __start -> "{spec.initial_states[0].name}";')
    for transition in spec.transitions:
        pieces = [transition.name]
        if transition.requires == "bytes":
            pieces.append("[bytes]")
        elif transition.requires is not None:
            pieces.append(f"[Verified {transition.requires.name}]")
        if transition.guard is not None and hasattr(transition.guard, "evaluate"):
            pieces.append(f"when {transition.guard}")
        style = ' style=bold' if transition.requires is not None else ""
        label = " ".join(pieces).replace('"', "'")
        lines.append(
            f'  "{transition.source.state.name}" -> '
            f'"{transition.target.state.name}" [label="{label}"{style}];'
        )
    lines.append("}")
    return "\n".join(lines)
