"""Proof-carrying values: the Python analogue of the paper's ``ChkPacket``.

In the paper, ``ChkPacket p`` is a dependent type whose inhabitants can only
be built for packets with valid checksums; *the existence of the value is
the proof*.  Python cannot make construction statically impossible, but it
can make it **unforgeable at runtime**: :class:`Verified` instances can only
be created through a packet spec's validator, which passes a private
capability token.  Client code holding a ``Verified[Packet]`` therefore
holds evidence that every constraint of the spec was checked — and, as in
the paper, the value never needs re-validation downstream.

The :class:`Certificate` records *which* constraints were discharged, so a
pipeline stage can also demand specific evidence (e.g. "checksum_valid")
rather than trusting a bare flag.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, FrozenSet, Generic, Tuple, TypeVar

T = TypeVar("T")

# Private capability: not exported, not reachable via a public name.  Code
# that bypasses it (reaching for a _-prefixed module global) is the Python
# equivalent of unsafeCoerce, and is its own audit trail.
_CONSTRUCTION_TOKEN = object()


class ForgedProofError(TypeError):
    """Raised when client code tries to construct a Verified value directly."""


class MissingEvidenceError(ValueError):
    """Raised when a certificate lacks a demanded constraint name."""

    def __init__(self, constraint_name: str, available: FrozenSet[str]) -> None:
        self.constraint_name = constraint_name
        super().__init__(
            f"certificate does not include constraint {constraint_name!r}; "
            f"it certifies {sorted(available)}"
        )


@dataclass(frozen=True)
class Certificate:
    """A record of discharged constraints for one value.

    Attributes
    ----------
    spec_name:
        Name of the packet spec (or other validated domain) it certifies.
    constraints:
        Names of every constraint that was checked and held.
    """

    spec_name: str
    constraints: Tuple[str, ...]

    def certifies(self, constraint_name: str) -> bool:
        """True when ``constraint_name`` was checked."""
        return constraint_name in self.constraints

    def demand(self, constraint_name: str) -> None:
        """Raise :class:`MissingEvidenceError` unless the constraint is covered."""
        if not self.certifies(constraint_name):
            raise MissingEvidenceError(constraint_name, frozenset(self.constraints))


class Verified(Generic[T]):
    """An unforgeable wrapper around a validated value.

    Only a validator holding the private construction token can build one;
    call :meth:`repro.core.packet.PacketSpec.verify` or
    :meth:`repro.core.packet.PacketSpec.parse` to obtain instances.

    The wrapped value is reachable via :attr:`value`; the evidence via
    :attr:`certificate`.  Instances are immutable and hashable when the
    wrapped value is.
    """

    __slots__ = ("_value", "_certificate")

    def __init__(self, value: T, certificate: Certificate, _token: Any = None) -> None:
        if _token is not _CONSTRUCTION_TOKEN:
            raise ForgedProofError(
                "Verified values cannot be constructed directly; obtain them "
                "from a spec's verify()/parse() so the constraints are "
                "actually checked"
            )
        object.__setattr__(self, "_value", value)
        object.__setattr__(self, "_certificate", certificate)

    @property
    def value(self) -> T:
        """The validated value."""
        return self._value

    @property
    def certificate(self) -> Certificate:
        """Evidence of which constraints were discharged."""
        return self._certificate

    def demand(self, constraint_name: str) -> "Verified[T]":
        """Assert specific evidence is present; returns self for chaining."""
        self._certificate.demand(constraint_name)
        return self

    def __setattr__(self, name: str, value: Any) -> None:
        raise AttributeError("Verified values are immutable")

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, Verified)
            and other._value == self._value
            and other._certificate == self._certificate
        )

    def __hash__(self) -> int:
        return hash((self._value, self._certificate))

    def __repr__(self) -> str:
        return f"Verified({self._value!r}, certifies={list(self._certificate.constraints)})"


def _issue(value: T, certificate: Certificate) -> Verified[T]:
    """Internal factory used by validators; see module docstring."""
    return Verified(value, certificate, _token=_CONSTRUCTION_TOKEN)
