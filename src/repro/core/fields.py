"""Field primitives of the packet-format DSL.

A packet specification is an ordered list of fields.  Fields may depend on
the values of *earlier* fields through symbolic expressions (``this.length``
etc.), which is how the DSL expresses the dependent-record idea of the
paper: the shape of later data is indexed by earlier values.

Field classes here are *descriptions*; encoding and decoding is performed
by the codec engine (:mod:`repro.core.codec`) which walks a spec's fields.
"""

from __future__ import annotations

from typing import Any, Dict, FrozenSet, Mapping, Optional, Sequence, Tuple, Union

from repro.core.symbolic import Expr, ExprLike, as_expr
from repro.wire.bits import BitReader, BitWriter, ByteOrder
from repro.wire.checksums import CHECKSUM_ALGORITHMS, ChecksumAlgorithm

LengthLike = Union[int, Expr, None]


class FieldValueError(ValueError):
    """Raised when a value does not fit a field's declared shape."""

    def __init__(self, field_name: str, message: str) -> None:
        self.field_name = field_name
        super().__init__(f"field {field_name!r}: {message}")


class Field:
    """Base class for packet fields.

    Parameters
    ----------
    name:
        Field name; must be unique within a spec and a valid identifier.
    doc:
        Human-readable description, carried into generated documentation
        and ASCII header pictures.
    """

    #: True for fields whose value is derived (checksums) rather than given.
    is_computed: bool = False

    def __init__(self, name: str, doc: str = "") -> None:
        if not name.isidentifier():
            raise ValueError(f"field name must be an identifier, got {name!r}")
        self.name = name
        self.doc = doc

    def fixed_bit_width(self) -> Optional[int]:
        """Bit width if it is a spec-time constant, else ``None``."""
        raise NotImplementedError

    def referenced_fields(self) -> FrozenSet[str]:
        """Names of earlier fields this field's shape depends on."""
        return frozenset()

    def is_integer_valued(self) -> bool:
        """True when the decoded value is an int usable in expressions."""
        return False

    def check_value(self, value: Any, env: Mapping[str, int]) -> None:
        """Validate a candidate value against the field's shape.

        Raises :class:`FieldValueError` on mismatch.  ``env`` carries the
        integer values of earlier fields for dependent-shape checks.
        """
        raise NotImplementedError

    def encode(self, writer: BitWriter, value: Any, env: Mapping[str, int]) -> None:
        """Append the wire encoding of ``value`` to ``writer``."""
        raise NotImplementedError

    def decode(self, reader: BitReader, env: Mapping[str, int]) -> Any:
        """Consume and return this field's value from ``reader``."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"


class UInt(Field):
    """An unsigned integer of a fixed bit width.

    Parameters
    ----------
    bits:
        Width in bits (1–64).
    byteorder:
        Wire byte order; little-endian is restricted to whole-byte widths.
    const:
        If given, the field must always carry exactly this value (e.g. an
        IPv4 ``version`` of 4); decode does not reject other values (the
        raw packet is still representable) but verification does.
    enum:
        Optional mapping of allowed value -> symbolic label, used for
        documentation and (during verification) domain checking.
    """

    def __init__(
        self,
        name: str,
        bits: int,
        byteorder: ByteOrder = ByteOrder.BIG,
        const: Optional[int] = None,
        enum: Optional[Mapping[int, str]] = None,
        doc: str = "",
    ) -> None:
        super().__init__(name, doc)
        if not 1 <= bits <= 64:
            raise ValueError(f"UInt width must be 1..64 bits, got {bits}")
        if byteorder is ByteOrder.LITTLE and bits % 8 != 0:
            raise ValueError("little-endian UInt must span whole bytes")
        if const is not None and not 0 <= const < (1 << bits):
            raise ValueError(f"const {const} does not fit in {bits} bits")
        self.bits = bits
        self.byteorder = byteorder
        self.const = const
        self.enum = dict(enum) if enum else None

    @property
    def max_value(self) -> int:
        """Largest representable value."""
        return (1 << self.bits) - 1

    def fixed_bit_width(self) -> Optional[int]:
        return self.bits

    def is_integer_valued(self) -> bool:
        return True

    def check_value(self, value: Any, env: Mapping[str, int]) -> None:
        if not isinstance(value, int) or isinstance(value, bool):
            raise FieldValueError(self.name, f"expected int, got {value!r}")
        if not 0 <= value <= self.max_value:
            raise FieldValueError(
                self.name, f"value {value} out of range for {self.bits} bits"
            )

    def encode(self, writer: BitWriter, value: Any, env: Mapping[str, int]) -> None:
        self.check_value(value, env)
        writer.write_uint(value, self.bits, self.byteorder)

    def decode(self, reader: BitReader, env: Mapping[str, int]) -> int:
        return reader.read_uint(self.bits, self.byteorder)


class Flag(Field):
    """A single boolean bit."""

    def __init__(self, name: str, doc: str = "") -> None:
        super().__init__(name, doc)

    def fixed_bit_width(self) -> Optional[int]:
        return 1

    def is_integer_valued(self) -> bool:
        # Exposed to expressions as 0/1 so lengths may depend on flags.
        return True

    def check_value(self, value: Any, env: Mapping[str, int]) -> None:
        if not isinstance(value, (bool, int)) or value not in (0, 1, True, False):
            raise FieldValueError(self.name, f"expected a bool, got {value!r}")

    def encode(self, writer: BitWriter, value: Any, env: Mapping[str, int]) -> None:
        self.check_value(value, env)
        writer.write_bool(bool(value))

    def decode(self, reader: BitReader, env: Mapping[str, int]) -> bool:
        return reader.read_bool()


class Reserved(Field):
    """Reserved / padding bits with a fixed value (normally zero).

    Reserved fields take no value from the user: they encode their fixed
    value and decode to it (the decoded value is surfaced so that strict
    verification can flag non-zero reserved bits).
    """

    is_computed = True

    def __init__(self, name: str, bits: int, value: int = 0, doc: str = "") -> None:
        super().__init__(name, doc)
        if not 1 <= bits <= 64:
            raise ValueError(f"Reserved width must be 1..64 bits, got {bits}")
        if not 0 <= value < (1 << bits):
            raise ValueError(f"value {value} does not fit in {bits} bits")
        self.bits = bits
        self.value = value

    def fixed_bit_width(self) -> Optional[int]:
        return self.bits

    def is_integer_valued(self) -> bool:
        return True

    def check_value(self, value: Any, env: Mapping[str, int]) -> None:
        if value != self.value:
            raise FieldValueError(
                self.name, f"reserved field must be {self.value}, got {value!r}"
            )

    def encode(self, writer: BitWriter, value: Any, env: Mapping[str, int]) -> None:
        writer.write_uint(self.value if value is None else value, self.bits)

    def decode(self, reader: BitReader, env: Mapping[str, int]) -> int:
        return reader.read_uint(self.bits)


class Bytes(Field):
    """A run of raw bytes.

    ``length`` counts **bytes** and may be:

    * an ``int`` — fixed length;
    * a symbolic expression over earlier integer fields — dependent length
      (``Bytes("payload", length=this.length)``);
    * ``None`` — greedy: the rest of the packet (only legal for the final
      field of a spec).
    """

    def __init__(self, name: str, length: LengthLike = None, doc: str = "") -> None:
        super().__init__(name, doc)
        if length is None:
            self.length: Optional[Expr] = None
        else:
            self.length = as_expr(length)

    @property
    def is_greedy(self) -> bool:
        """True when the field consumes the remainder of the packet."""
        return self.length is None

    def fixed_bit_width(self) -> Optional[int]:
        if self.length is not None and not self.length.free_variables():
            return self.length.evaluate({}) * 8
        return None

    def referenced_fields(self) -> FrozenSet[str]:
        if self.length is None:
            return frozenset()
        return self.length.free_variables()

    def _expected_length(self, env: Mapping[str, int]) -> Optional[int]:
        if self.length is None:
            return None
        length = self.length.evaluate(env)
        if length < 0:
            raise FieldValueError(
                self.name, f"length expression {self.length} evaluated to {length}"
            )
        return length

    def check_value(self, value: Any, env: Mapping[str, int]) -> None:
        if not isinstance(value, (bytes, bytearray)):
            raise FieldValueError(self.name, f"expected bytes, got {value!r}")
        expected = self._expected_length(env)
        if expected is not None and len(value) != expected:
            raise FieldValueError(
                self.name,
                f"expected {expected} bytes per {self.length}, got {len(value)}",
            )

    def encode(self, writer: BitWriter, value: Any, env: Mapping[str, int]) -> None:
        self.check_value(value, env)
        writer.write_bytes(bytes(value))

    def decode(self, reader: BitReader, env: Mapping[str, int]) -> bytes:
        expected = self._expected_length(env)
        if expected is None:
            return reader.read_remaining()
        return reader.read_bytes(expected)


class UIntList(Field):
    """A homogeneous list of unsigned integers with a dependent count.

    This is the DSL rendering of the paper's length-indexed
    ``List Byte n``: the element count is an expression over earlier
    fields, so a decoded list always has exactly the advertised length.
    """

    def __init__(
        self,
        name: str,
        element_bits: int,
        count: Union[int, Expr],
        byteorder: ByteOrder = ByteOrder.BIG,
        doc: str = "",
    ) -> None:
        super().__init__(name, doc)
        if not 1 <= element_bits <= 64:
            raise ValueError(f"element width must be 1..64 bits, got {element_bits}")
        self.element_bits = element_bits
        self.count = as_expr(count)
        self.byteorder = byteorder

    def fixed_bit_width(self) -> Optional[int]:
        if not self.count.free_variables():
            return self.count.evaluate({}) * self.element_bits
        return None

    def referenced_fields(self) -> FrozenSet[str]:
        return self.count.free_variables()

    def check_value(self, value: Any, env: Mapping[str, int]) -> None:
        if not isinstance(value, (list, tuple)):
            raise FieldValueError(self.name, f"expected a sequence, got {value!r}")
        expected = self.count.evaluate(env)
        if len(value) != expected:
            raise FieldValueError(
                self.name,
                f"expected {expected} elements per {self.count}, got {len(value)}",
            )
        limit = 1 << self.element_bits
        for index, element in enumerate(value):
            if not isinstance(element, int) or not 0 <= element < limit:
                raise FieldValueError(
                    self.name,
                    f"element {index} = {element!r} does not fit "
                    f"{self.element_bits} bits",
                )

    def encode(self, writer: BitWriter, value: Any, env: Mapping[str, int]) -> None:
        self.check_value(value, env)
        for element in value:
            writer.write_uint(element, self.element_bits, self.byteorder)

    def decode(self, reader: BitReader, env: Mapping[str, int]) -> Tuple[int, ...]:
        expected = self.count.evaluate(env)
        if expected < 0:
            raise FieldValueError(
                self.name, f"count expression {self.count} evaluated to {expected}"
            )
        return tuple(
            reader.read_uint(self.element_bits, self.byteorder)
            for _ in range(expected)
        )


class ChecksumField(Field):
    """An integrity field computed from other fields' wire bytes.

    Parameters
    ----------
    algorithm:
        Name of a registered checksum algorithm (see
        :data:`repro.wire.checksums.CHECKSUM_ALGORITHMS`).
    over:
        Names of the fields (in spec order) whose encoded bytes feed the
        algorithm, or the sentinel string ``"*"`` meaning *the entire
        packet with this checksum field zeroed* (IPv4-header style).

    The encoder computes the value automatically; users never supply it.
    Verification recomputes it and compares — producing the paper's
    checksum-validity certificate.
    """

    is_computed = True

    ALL = "*"

    def __init__(
        self,
        name: str,
        algorithm: str,
        over: Union[str, Sequence[str]],
        doc: str = "",
    ) -> None:
        super().__init__(name, doc)
        if algorithm not in CHECKSUM_ALGORITHMS:
            raise ValueError(
                f"unknown checksum algorithm {algorithm!r}; known: "
                f"{sorted(CHECKSUM_ALGORITHMS)}"
            )
        self.algorithm: ChecksumAlgorithm = CHECKSUM_ALGORITHMS[algorithm]
        if isinstance(over, str):
            if over != self.ALL:
                raise ValueError(
                    "over must be a sequence of field names or the "
                    f"sentinel {self.ALL!r}, got {over!r}"
                )
            self.over: Optional[Tuple[str, ...]] = None
        else:
            if not over:
                raise ValueError("over must name at least one field")
            self.over = tuple(over)

    @property
    def covers_whole_packet(self) -> bool:
        """True for the ``over="*"`` (self-zeroed whole packet) form."""
        return self.over is None

    @property
    def bits(self) -> int:
        """Wire width in bits — the algorithm's output width."""
        return self.algorithm.bits

    def fixed_bit_width(self) -> Optional[int]:
        return self.bits

    def referenced_fields(self) -> FrozenSet[str]:
        return frozenset(self.over or ())

    def is_integer_valued(self) -> bool:
        return True

    def check_value(self, value: Any, env: Mapping[str, int]) -> None:
        if not isinstance(value, int) or not 0 <= value < (1 << self.bits):
            raise FieldValueError(
                self.name, f"checksum value {value!r} does not fit {self.bits} bits"
            )

    def compute(self, covered_bytes: bytes) -> int:
        """Apply the algorithm to the covered byte region."""
        return self.algorithm.compute(covered_bytes)

    def encode(self, writer: BitWriter, value: Any, env: Mapping[str, int]) -> None:
        self.check_value(value, env)
        writer.write_uint(value, self.bits)

    def decode(self, reader: BitReader, env: Mapping[str, int]) -> int:
        return reader.read_uint(self.bits)


class Struct(Field):
    """A nested packet: the field's value is a packet of another spec."""

    def __init__(self, name: str, spec: "Any", doc: str = "") -> None:
        # spec is a PacketSpec; typed as Any to avoid a circular import.
        super().__init__(name, doc)
        self.spec = spec

    def fixed_bit_width(self) -> Optional[int]:
        return self.spec.fixed_bit_width()

    def check_value(self, value: Any, env: Mapping[str, int]) -> None:
        if getattr(value, "spec", None) is not self.spec:
            raise FieldValueError(
                self.name,
                f"expected a {self.spec.name} packet, got {value!r}",
            )

    def encode(self, writer: BitWriter, value: Any, env: Mapping[str, int]) -> None:
        self.check_value(value, env)
        writer.write_bytes(self.spec.encode(value))

    def decode(self, reader: BitReader, env: Mapping[str, int]) -> Any:
        width = self.spec.fixed_bit_width()
        if width is None:
            raise FieldValueError(
                self.name,
                "nested specs with variable size cannot be decoded "
                "mid-packet; place them last or give them fixed shape",
            )
        if width % 8 != 0:
            raise FieldValueError(self.name, "nested specs must be byte-aligned")
        return self.spec.decode(reader.read_bytes(width // 8))


class Switch(Field):
    """A discriminated union: the branch is chosen by an earlier field.

    ``cases`` maps discriminator values to :class:`PacketSpec` objects; the
    decoded value is a packet of the selected branch spec.  An optional
    ``default`` spec handles unlisted discriminator values; without one,
    decoding an unknown discriminator raises.
    """

    def __init__(
        self,
        name: str,
        on: Expr,
        cases: Mapping[int, "Any"],
        default: Optional["Any"] = None,
        doc: str = "",
    ) -> None:
        super().__init__(name, doc)
        if not cases:
            raise ValueError("Switch requires at least one case")
        self.on = as_expr(on)
        self.cases: Dict[int, Any] = dict(cases)
        self.default = default

    def referenced_fields(self) -> FrozenSet[str]:
        return self.on.free_variables()

    def fixed_bit_width(self) -> Optional[int]:
        widths = {spec.fixed_bit_width() for spec in self.cases.values()}
        if self.default is not None:
            widths.add(self.default.fixed_bit_width())
        if len(widths) == 1:
            return widths.pop()
        return None

    def _select(self, env: Mapping[str, int]) -> "Any":
        discriminator = self.on.evaluate(env)
        spec = self.cases.get(discriminator, self.default)
        if spec is None:
            raise FieldValueError(
                self.name,
                f"no case for discriminator {self.on} = {discriminator}",
            )
        return spec

    def check_value(self, value: Any, env: Mapping[str, int]) -> None:
        spec = self._select(env)
        if getattr(value, "spec", None) is not spec:
            raise FieldValueError(
                self.name,
                f"expected a {spec.name} packet for this discriminator, "
                f"got {value!r}",
            )

    def encode(self, writer: BitWriter, value: Any, env: Mapping[str, int]) -> None:
        self.check_value(value, env)
        spec = self._select(env)
        writer.write_bytes(spec.encode(value))

    def decode(self, reader: BitReader, env: Mapping[str, int]) -> Any:
        spec = self._select(env)
        width = spec.fixed_bit_width()
        if width is not None:
            if width % 8 != 0:
                raise FieldValueError(self.name, "switch branches must be byte-aligned")
            return spec.decode(reader.read_bytes(width // 8))
        # Variable-size branch: it must consume the rest of the packet.
        return spec.decode(reader.read_remaining())
