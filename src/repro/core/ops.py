"""Typed protocol operations: the paper's ``sendPacket`` discipline.

Section 3.4 gives ``sendPacket`` a type that *promises its ending states*::

    sendPacket : (seq : Byte) -> List Byte ->
                 SendMachine (ReadyToSend seq) -> IO (NextSent seq)

where ``NextSent seq`` is either ``Ready (seq+1)`` or ``Timeout seq`` —
"any type-correct implementation of sendPacket has an explicit guarantee
(verified by the type checker) that it ends in a consistent state".

:class:`ProtocolOp` is this contract as a first-class object: it names a
required *starting* state pattern and the *permitted ending* state
patterns, both over dependent parameters.  Running an operation:

1. checks the machine matches the start pattern (binding parameters);
2. runs the user's body (which drives the machine through transitions);
3. checks the final state matches one of the declared endings **under the
   same parameter bindings** — so an ending ``Ready(seq + 1)`` really
   means *one past the sequence number we started with*;
4. returns an :class:`OpOutcome` naming which ending was reached.

A body that leaves the machine anywhere else raises
:class:`InconsistentEndStateError` — the dynamic residue of the paper's
static guarantee, checked at every run instead of once at compile time,
but equally inescapable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, Mapping, Sequence, Tuple

from repro.core.machine import Machine
from repro.core.statemachine import MachineSpecError, StateInstance, StatePattern
from repro.core.symbolic import UnificationError


class OpContractError(ValueError):
    """Raised at definition time for an ill-formed operation contract."""


class WrongStartStateError(RuntimeError):
    """Raised when an operation is invoked from a non-matching state."""


class InconsistentEndStateError(RuntimeError):
    """Raised when an operation's body ends outside the declared endings."""

    def __init__(self, op_name: str, final_state: StateInstance, endings) -> None:
        self.final_state = final_state
        super().__init__(
            f"operation {op_name!r} ended in {final_state!r}, which matches "
            f"none of its declared endings {[str(e) for e in endings]}"
        )


@dataclass(frozen=True)
class OpOutcome:
    """The result of running a protocol operation.

    Attributes
    ----------
    ending:
        The name given to the matched ending (e.g. ``"next_ready"`` or
        ``"failure"`` — the constructors of the paper's ``NextSent``).
    state:
        The concrete final state.
    bindings:
        Parameter bindings from the start pattern (e.g. the ``seq`` the
        operation was entered with).
    value:
        Whatever the operation body returned.
    """

    ending: str
    state: StateInstance
    bindings: Tuple[Tuple[str, int], ...]
    value: Any

    def bindings_dict(self) -> Dict[str, int]:
        """Start-pattern bindings as a dictionary."""
        return dict(self.bindings)


class ProtocolOp:
    """A named operation with a typed start/end contract.

    Parameters
    ----------
    name:
        Operation name (for errors and logs).
    start:
        The state pattern the machine must be in when the op begins; its
        variables are bound and scope the ending patterns.
    endings:
        Mapping of ending name to permitted ending state pattern.  Ending
        patterns may use the start pattern's variables (``ready(n + 1)``)
        and are checked under the start's bindings.

    Example
    -------
    The paper's ``NextSent``::

        send_packet = ProtocolOp(
            "send_packet",
            start=ready(n),
            endings={"next_ready": ready(n + 1), "failure": timeout(n)},
        )
        outcome = send_packet.run(machine, body)
        assert outcome.ending in ("next_ready", "failure")
    """

    def __init__(
        self,
        name: str,
        start: StatePattern,
        endings: Mapping[str, StatePattern],
    ) -> None:
        if not name.isidentifier():
            raise OpContractError(f"operation name must be an identifier: {name!r}")
        if not endings:
            raise OpContractError(f"operation {name!r} declares no endings")
        bound = start.free_variables()
        for ending_name, pattern in endings.items():
            if not ending_name.isidentifier():
                raise OpContractError(
                    f"ending name must be an identifier: {ending_name!r}"
                )
            unknown = pattern.free_variables() - bound
            if unknown:
                raise OpContractError(
                    f"operation {name!r}: ending {ending_name!r} uses "
                    f"{sorted(unknown)} which the start pattern does not bind"
                )
        self.name = name
        self.start = start
        self.endings: Dict[str, StatePattern] = dict(endings)

    def run(
        self,
        machine: Machine,
        body: Callable[[Machine, Dict[str, int]], Any],
    ) -> OpOutcome:
        """Execute ``body`` under the contract; see the module docstring."""
        try:
            bindings = self.start.match(machine.current)
        except UnificationError as exc:
            raise WrongStartStateError(
                f"operation {self.name!r} requires start state "
                f"{self.start!r}; machine is in {machine.current!r} ({exc})"
            ) from None
        value = body(machine, dict(bindings))
        final_state = machine.current
        for ending_name, pattern in self.endings.items():
            if self._matches_under(pattern, final_state, bindings):
                return OpOutcome(
                    ending=ending_name,
                    state=final_state,
                    bindings=tuple(sorted(bindings.items())),
                    value=value,
                )
        raise InconsistentEndStateError(
            self.name, final_state, list(self.endings.values())
        )

    @staticmethod
    def _matches_under(
        pattern: StatePattern,
        state: StateInstance,
        bindings: Mapping[str, int],
    ) -> bool:
        """Does ``state`` match ``pattern`` with variables pre-bound?"""
        if pattern.state is not state.state:
            return False
        try:
            expected = pattern.instantiate(bindings)
        except (UnificationError, MachineSpecError, KeyError):
            return False
        return expected == state

    def __repr__(self) -> str:
        endings = {name: str(p) for name, p in self.endings.items()}
        return f"ProtocolOp({self.name!r}, start={self.start!r}, endings={endings})"
