"""The protocol DSL: the paper's primary contribution.

Three integrated layers (paper §3.2):

i.   **Packet structure** — :class:`PacketSpec` with dependent field shapes
     and semantic constraints, validated at definition time;
ii.  **States and transitions** — :class:`MachineSpec` with parameterized
     states and typed transitions, checked for soundness and completeness
     at seal time;
iii. **Execution** — :class:`Machine` with ``exec_trans``, which can only
     run transitions that are valid *and* supplied with the evidence
     (``Verified`` packets) their types demand.

Import from here for the public API::

    from repro.core import (
        PacketSpec, UInt, Bytes, ChecksumField, this,
        MachineSpec, Param, Var, Machine,
    )
"""

from repro.core.abnf_export import export_abnf
from repro.core.ascii_art import RenderError, diagram_rows, render_header_diagram
from repro.core.checker import CheckReport, check_machine
from repro.core.codec import DecodeError, ExtraDataError
from repro.core.compile import (
    CodegenError,
    CompiledCodec,
    compile_spec,
    generate_codec_source,
)
from repro.core.constraints import Constraint, ConstraintViolation
from repro.core.docgen import (
    document_machine_spec,
    document_packet_spec,
    machine_to_dot,
)
from repro.core.ops import (
    InconsistentEndStateError,
    OpContractError,
    OpOutcome,
    ProtocolOp,
    WrongStartStateError,
)
from repro.core.fields import (
    Bytes,
    ChecksumField,
    Field,
    FieldValueError,
    Flag,
    Reserved,
    Struct,
    Switch,
    UInt,
    UIntList,
)
from repro.core.machine import (
    InvalidTransitionError,
    Machine,
    TraceStep,
    UnverifiedPayloadError,
    replay_trace,
)
from repro.core.packet import Packet, PacketSpec, SpecError, VerificationError
from repro.core.statemachine import (
    MachineSpec,
    MachineSpecError,
    Param,
    StateInstance,
    StatePattern,
    StateSpec,
    TransitionSpec,
)
from repro.core.symbolic import (
    Const,
    Expr,
    FieldRef,
    Predicate,
    UnificationError,
    Var,
    this,
    unify,
)
from repro.core.verified import (
    Certificate,
    ForgedProofError,
    MissingEvidenceError,
    Verified,
)

__all__ = [
    # packets
    "PacketSpec",
    "Packet",
    "SpecError",
    "VerificationError",
    "Field",
    "UInt",
    "Flag",
    "Reserved",
    "Bytes",
    "UIntList",
    "ChecksumField",
    "Struct",
    "Switch",
    "FieldValueError",
    "Constraint",
    "ConstraintViolation",
    "DecodeError",
    "ExtraDataError",
    # proofs
    "Verified",
    "Certificate",
    "ForgedProofError",
    "MissingEvidenceError",
    # symbolic
    "Expr",
    "Const",
    "Var",
    "FieldRef",
    "Predicate",
    "this",
    "unify",
    "UnificationError",
    # machines
    "MachineSpec",
    "MachineSpecError",
    "Param",
    "StateSpec",
    "StatePattern",
    "StateInstance",
    "TransitionSpec",
    "Machine",
    "InvalidTransitionError",
    "UnverifiedPayloadError",
    "TraceStep",
    "replay_trace",
    "CheckReport",
    "check_machine",
    # typed operations
    "ProtocolOp",
    "OpOutcome",
    "OpContractError",
    "WrongStartStateError",
    "InconsistentEndStateError",
    # derived artifacts
    "document_packet_spec",
    "document_machine_spec",
    "machine_to_dot",
    "render_header_diagram",
    "diagram_rows",
    "RenderError",
    "export_abnf",
    "generate_codec_source",
    "compile_spec",
    "CompiledCodec",
    "CodegenError",
]
