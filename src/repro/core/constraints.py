"""Semantic constraints on packets.

ABNF and ASN.1 stop at syntax; the paper's point is that a protocol DSL
must also carry *semantic* constraints — "the checksum is valid", "the line
count matches the data" — and discharge them once, producing a certificate.

A :class:`Constraint` is a named predicate over a decoded packet.  Symbolic
predicates (over integer fields) are preferred because they can be exported
to generated code and documentation; arbitrary Python callables are
supported for constraints that inspect non-integer fields (payload bytes,
lists, nested packets).
"""

from __future__ import annotations

from typing import Any, Callable, Mapping, Optional, Tuple, Union

from repro.core.symbolic import Predicate


class ConstraintViolation(ValueError):
    """Raised (or collected) when a packet fails a semantic constraint."""

    def __init__(self, spec_name: str, constraint_name: str, detail: str = "") -> None:
        self.spec_name = spec_name
        self.constraint_name = constraint_name
        self.detail = detail
        message = f"packet of spec {spec_name!r} violates constraint {constraint_name!r}"
        if detail:
            message = f"{message}: {detail}"
        super().__init__(message)


class Constraint:
    """A named semantic predicate over a packet.

    Parameters
    ----------
    name:
        Stable identifier; appears in certificates and error messages.
    predicate:
        Either a symbolic :class:`~repro.core.symbolic.Predicate` over
        integer field names, or a callable ``packet -> bool``.
    doc:
        Human-readable statement of the invariant.
    """

    def __init__(
        self,
        name: str,
        predicate: Union[Predicate, Callable[[Any], bool]],
        doc: str = "",
    ) -> None:
        if not name.isidentifier():
            raise ValueError(f"constraint name must be an identifier, got {name!r}")
        self.name = name
        self.predicate = predicate
        self.doc = doc

    @property
    def is_symbolic(self) -> bool:
        """True when the predicate is symbolic (exportable to codegen)."""
        return isinstance(self.predicate, Predicate)

    def holds(self, packet: Any, env: Optional[Mapping[str, int]] = None) -> bool:
        """Evaluate the predicate against a packet.

        ``env`` supplies the integer field environment for symbolic
        predicates; when omitted it is derived from the packet.
        """
        if isinstance(self.predicate, Predicate):
            if env is None:
                env = packet.integer_environment()
            return self.predicate.evaluate(env)
        return bool(self.predicate(packet))

    def check(self, packet: Any, env: Optional[Mapping[str, int]] = None) -> None:
        """Raise :class:`ConstraintViolation` unless the predicate holds."""
        if not self.holds(packet, env):
            raise ConstraintViolation(packet.spec.name, self.name, self.doc)

    def __repr__(self) -> str:
        return f"Constraint({self.name!r})"


def checksum_constraint(spec: Any, field_name: str) -> Constraint:
    """Build the auto-generated validity constraint for a checksum field.

    The constraint recomputes the checksum from the packet's own values
    (via the spec's codec) and compares it with the carried value — the
    runtime content of the paper's ``ChkPacket`` proof.
    """

    def recompute_matches(packet: Any) -> bool:
        expected = packet.spec.compute_checksum(packet, field_name)
        return packet[field_name] == expected

    return Constraint(
        f"{field_name}_valid",
        recompute_matches,
        doc=f"{field_name} equals the recomputed checksum over its covered bytes",
    )


def const_field_constraint(field_name: str, const: int) -> Constraint:
    """Constraint pinning a declared-constant field to its value."""

    def matches(packet: Any) -> bool:
        return packet[field_name] == const

    return Constraint(
        f"{field_name}_is_{const}",
        matches,
        doc=f"{field_name} must equal the declared constant {const}",
    )


def enum_field_constraint(field_name: str, allowed: Tuple[int, ...]) -> Constraint:
    """Constraint restricting a field to an enumerated domain."""

    allowed_set = frozenset(allowed)

    def matches(packet: Any) -> bool:
        return packet[field_name] in allowed_set

    return Constraint(
        f"{field_name}_in_enum",
        matches,
        doc=f"{field_name} must be one of {sorted(allowed_set)}",
    )
