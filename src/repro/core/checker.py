"""Definition-time checking of machine specs: soundness and completeness.

The paper (Section 3.3) claims two compile-time guarantees for protocol
state machines written in the DSL:

1. **Soundness** — only valid transitions can be executed;
2. **Completeness** — all valid transitions are handled.

In this embedding, :func:`check_machine` is the "type checker".  It runs
when a spec is sealed, and a spec that fails it can never be instantiated.
The checks are purely structural — no state-space enumeration — which is
exactly the contrast with model checking that experiment E4 measures: the
checker's cost grows with the number of *declared* states and transitions,
not with the size of the (possibly astronomically larger) reachable
configuration space.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Any, List, Optional, Set

from repro.core.statemachine import MachineSpec, StatePattern, TransitionSpec
from repro.core.symbolic import Const, Var
from repro.obs.instrument import Instrumentation, get_default


@dataclass
class CheckReport:
    """Outcome of definition-time checking.

    ``errors`` are violations that make the spec unusable; ``warnings``
    are suspicious but legal constructions (e.g. an unreachable state in a
    machine the author may still be extending).
    """

    machine_name: str
    errors: List[str] = field(default_factory=list)
    warnings: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no errors were found."""
        return not self.errors


def _run_passes(spec: MachineSpec, report: CheckReport) -> None:
    _check_initial_states(spec, report)
    for transition in spec.transitions:
        _check_transition_soundness(spec, transition, report)
    _check_final_state_consistency(spec, report)
    _check_reachability(spec, report)
    _check_no_dead_states(spec, report)
    _check_event_completeness(spec, report)


def check_machine(
    spec: MachineSpec, obs: Optional[Instrumentation] = None
) -> CheckReport:
    """Run every definition-time check against ``spec``.

    ``obs`` (default: the process-wide instrumentation) records, when
    enabled, per-pass timing histograms (so E4-style "what does checking
    cost" questions can be answered per pass), checked/rejected machine
    counters, and error/warning counts.
    """
    if obs is None:
        obs = get_default()
    report = CheckReport(spec.name)
    if not obs.enabled:
        _run_passes(spec, report)
        return report
    registry = obs.registry

    def timed(pass_name: str, run_pass) -> None:
        start = time.perf_counter()
        run_pass()
        registry.histogram("checker.pass_seconds", check=pass_name).observe(
            time.perf_counter() - start
        )

    def soundness() -> None:
        for transition in spec.transitions:
            _check_transition_soundness(spec, transition, report)

    with obs.tracer.span("check_machine", machine=spec.name) as span:
        timed("initial_states", lambda: _check_initial_states(spec, report))
        timed("transition_soundness", soundness)
        timed("final_states", lambda: _check_final_state_consistency(spec, report))
        timed("reachability", lambda: _check_reachability(spec, report))
        timed("dead_states", lambda: _check_no_dead_states(spec, report))
        timed("event_completeness", lambda: _check_event_completeness(spec, report))
        span.set_attr("errors", len(report.errors))
        span.set_attr("warnings", len(report.warnings))
    registry.counter("checker.machines_checked").inc()
    if report.errors:
        registry.counter("checker.machines_rejected", machine=spec.name).inc()
        registry.counter("checker.errors").inc(len(report.errors))
    if report.warnings:
        registry.counter("checker.warnings").inc(len(report.warnings))
    return report


# -- soundness ---------------------------------------------------------------


def _check_initial_states(spec: MachineSpec, report: CheckReport) -> None:
    initial = spec.initial_states
    if not initial:
        report.errors.append("no initial state declared")
    elif len(initial) > 1:
        names = sorted(s.name for s in initial)
        report.errors.append(f"multiple initial states declared: {names}")


def _check_transition_soundness(
    spec: MachineSpec, transition: TransitionSpec, report: CheckReport
) -> None:
    prefix = f"transition {transition.name!r}:"
    for role, pattern in (("source", transition.source), ("target", transition.target)):
        state = pattern.state
        if spec.states.get(state.name) is not state:
            report.errors.append(
                f"{prefix} {role} state {state.name!r} is not declared "
                f"in machine {spec.name!r}"
            )
        if len(pattern.args) != state.arity:
            report.errors.append(
                f"{prefix} {role} pattern has {len(pattern.args)} argument(s) "
                f"but state {state.name!r} has arity {state.arity}"
            )
    _check_source_pattern_matchable(transition, report, prefix)
    _check_target_computable(transition, report, prefix)
    _check_payload_requirement(transition, report, prefix)
    if transition.guard is not None and hasattr(transition.guard, "free_variables"):
        bound = transition.source.free_variables() | set(transition.inputs)
        unknown = transition.guard.free_variables() - bound
        if unknown:
            report.errors.append(
                f"{prefix} guard references {sorted(unknown)} which neither "
                "the source pattern nor the declared inputs bind"
            )
    overlap = set(transition.inputs) & transition.source.free_variables()
    if overlap:
        report.errors.append(
            f"{prefix} inputs {sorted(overlap)} shadow source pattern "
            "variables"
        )


def _check_source_pattern_matchable(
    transition: TransitionSpec, report: CheckReport, prefix: str
) -> None:
    """Source patterns must be invertible so dispatch can bind parameters.

    Plain variables and constants always are; compound expressions are
    allowed only in the single-unknown forms the unifier can invert.
    """
    seen_vars: Set[str] = set()
    for arg in transition.source.args:
        if isinstance(arg, Var):
            if arg.name in seen_vars:
                # Non-linear patterns (same var twice) are fine: the
                # unifier checks consistency.  Record but allow.
                continue
            seen_vars.add(arg.name)
        elif isinstance(arg, Const):
            continue
        else:
            free = arg.free_variables()
            unknown = free - seen_vars
            if len(unknown) > 1:
                report.errors.append(
                    f"{prefix} source argument {arg} has multiple unbound "
                    f"variables {sorted(unknown)}; patterns must be "
                    "invertible for sound dispatch"
                )
            seen_vars |= free


def _check_target_computable(
    transition: TransitionSpec, report: CheckReport, prefix: str
) -> None:
    """Every variable in the target must be bound by the source pattern.

    This is the dependent-typing discipline of ``OK : SendTrans (Wait seq)
    (Ready (seq+1))`` — the post-state is a *function* of the matched
    pre-state, so executing a transition can never invent state.
    """
    bound = transition.source.free_variables() | set(transition.inputs)
    for arg in transition.target.args:
        unknown = arg.free_variables() - bound
        if unknown:
            report.errors.append(
                f"{prefix} target argument {arg} uses {sorted(unknown)} "
                "which neither the source pattern nor the declared "
                "inputs bind"
            )


def _check_payload_requirement(
    transition: TransitionSpec, report: CheckReport, prefix: str
) -> None:
    requires = transition.requires
    if requires is None or requires == "bytes":
        return
    # Anything else must look like a PacketSpec: named, with constraints.
    if not hasattr(requires, "constraint_names") or not hasattr(requires, "verify"):
        report.errors.append(
            f"{prefix} requires must be None, 'bytes', or a PacketSpec; "
            f"got {requires!r}"
        )


def _check_final_state_consistency(spec: MachineSpec, report: CheckReport) -> None:
    """Final states must be terminal (paper guarantee 4: consistent ends)."""
    for state in spec.final_states:
        outgoing = spec.transitions_from(state.name)
        if outgoing:
            names = sorted(t.name for t in outgoing)
            report.errors.append(
                f"final state {state.name!r} has outgoing transitions {names}; "
                "final states must be terminal"
            )


# -- completeness -------------------------------------------------------------


def _check_reachability(spec: MachineSpec, report: CheckReport) -> None:
    """Every declared state should be reachable from the initial state."""
    initial = spec.initial_states
    if not initial:
        return  # already an error
    reachable: Set[str] = {initial[0].name}
    frontier = [initial[0].name]
    while frontier:
        current = frontier.pop()
        for transition in spec.transitions_from(current):
            target = transition.target.state.name
            if target not in reachable:
                reachable.add(target)
                frontier.append(target)
    for name in spec.states:
        if name not in reachable:
            report.errors.append(
                f"state {name!r} is unreachable from the initial state"
            )


def _check_no_dead_states(spec: MachineSpec, report: CheckReport) -> None:
    """Non-final states must have a way out (no accidental deadlock)."""
    for name, state in spec.states.items():
        if state.final:
            continue
        if not spec.transitions_from(name):
            report.errors.append(
                f"non-final state {name!r} has no outgoing transitions "
                "(deadlock); declare it final or add transitions"
            )


def _check_event_completeness(spec: MachineSpec, report: CheckReport) -> None:
    """Each declared possible event in a state must have a handler.

    This is the strongest completeness property the DSL offers: the
    author declares, per state, which external events can occur there
    (ack arrival, timer expiry, ...), and the checker demands a labelled
    transition for every one of them.
    """
    for state_name, expected in spec.expected_events.items():
        handled = {
            t.event
            for t in spec.transitions_from(state_name)
            if t.event is not None
        }
        missing = expected - handled
        if missing:
            report.errors.append(
                f"state {state_name!r} does not handle declared event(s) "
                f"{sorted(missing)}; completeness requires a transition "
                "for each"
            )
        surplus = handled - expected
        if surplus:
            report.warnings.append(
                f"state {state_name!r} handles event(s) {sorted(surplus)} "
                "that are not declared as possible there"
            )
