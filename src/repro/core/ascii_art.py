"""RFC-style ASCII header pictures, generated from packet specs.

Section 2.1 of the paper observes that wire formats are "still often
described using 'ASCII pictures' of the byte-level, on-the-wire encoding"
and reproduces the RFC 791 IPv4 header as its Figure 1.  This module closes
the loop: given a :class:`~repro.core.packet.PacketSpec`, it renders that
exact style of diagram — so the canonical human-readable view is *derived
from* the machine-checked definition instead of being a separate artifact
that can drift.

The layout convention matches RFC 791: ``row_bits`` (default 32) bit
columns per row, a field of ``b`` bits occupying ``2*b - 1`` character
cells, rows separated by ``+-+-...`` rules.  Variable-length fields render
as full-width rows tagged "(variable)".  A partial final row (or a partial
row just before a variable-length field) is closed with a jagged rule over
the consumed columns, as RFC authors draw by hand.
"""

from __future__ import annotations

from typing import Any, List, Optional, Tuple


class RenderError(ValueError):
    """Raised when a spec cannot be laid out in RFC picture style."""


def _rule(bits: int) -> str:
    """The ``+-+-...`` separator line spanning ``bits`` bit columns."""
    return "+" + "-+" * bits


def _bit_ruler(row_bits: int) -> List[str]:
    """The two bit-numbering header lines from RFC 791 diagrams.

    Digit for bit ``b`` sits at column ``2*b + 1`` — centred over the
    character cell between the ``|`` separators of the rows below.
    """
    tens = [" "] * (2 * row_bits + 1)
    ones = [" "] * (2 * row_bits + 1)
    for bit in range(row_bits):
        column = 2 * bit + 1
        ones[column] = str(bit % 10)
        if bit % 10 == 0:
            tens[column] = str(bit // 10)
    return ["".join(tens).rstrip(), "".join(ones).rstrip()]


def _cell(label: str, bits: int) -> str:
    """Center a label in a cell spanning ``bits`` bit columns."""
    width = 2 * bits - 1
    if len(label) > width:
        label = label[: max(width - 1, 1)] + ("." if width > 1 else "")
    return label.center(width)


def _field_label(field: Any) -> str:
    """Display label: the doc's first line if short, else the name."""
    if field.doc:
        first_line = field.doc.splitlines()[0].strip()
        if 0 < len(first_line) <= 24:
            return first_line
    return field.name


def render_header_diagram(
    spec: Any,
    title: Optional[str] = None,
    row_bits: int = 32,
) -> str:
    """Render a packet spec as an RFC-791-style ASCII picture.

    Parameters
    ----------
    spec:
        A :class:`~repro.core.packet.PacketSpec`.
    title:
        Optional caption appended below the diagram.
    row_bits:
        Bit columns per row; 32 matches RFC convention, small byte-oriented
        protocols read better at 8 or 16.

    Returns the diagram as a single string (no trailing newline).
    """
    lines: List[str] = list(_bit_ruler(row_bits))
    lines.append(_rule(row_bits))
    row_cells: List[str] = []
    bits_in_row = 0

    def flush_row() -> None:
        nonlocal row_cells, bits_in_row
        if bits_in_row == 0:
            return
        lines.append("|" + "|".join(row_cells) + "|")
        lines.append(_rule(bits_in_row))
        row_cells = []
        bits_in_row = 0

    for field in spec.fields:
        width = field.fixed_bit_width()
        if width is None:
            flush_row()
            label = f"{_field_label(field)} (variable)"
            lines.append("|" + _cell(label, row_bits) + "|")
            lines.append(_rule(row_bits))
            continue
        remaining = row_bits - bits_in_row
        if width <= remaining:
            row_cells.append(_cell(_field_label(field), width))
            bits_in_row += width
            if bits_in_row == row_bits:
                flush_row()
            continue
        if bits_in_row != 0:
            raise RenderError(
                f"spec {spec.name!r}: field {field.name!r} ({width} bits) "
                f"does not fit the {remaining} bits left in its row and "
                "does not start row-aligned"
            )
        if width % row_bits != 0:
            raise RenderError(
                f"spec {spec.name!r}: field {field.name!r} spans {width} "
                "bits, which is neither within one row nor a whole number "
                "of rows"
            )
        for row_index in range(width // row_bits):
            label = _field_label(field) if row_index == 0 else ""
            lines.append("|" + _cell(label, row_bits) + "|")
            lines.append(_rule(row_bits))
    flush_row()
    if title:
        lines.append("")
        lines.append(title)
    return "\n".join(lines)


def diagram_rows(spec: Any) -> List[Tuple[str, int, int]]:
    """Field layout as ``(name, start_bit, width_bits)`` triples.

    A structured companion to the rendered picture, convenient for tests
    that check layout without comparing whitespace.  A variable-width
    field reports width ``-1`` and terminates the listing.
    """
    rows: List[Tuple[str, int, int]] = []
    offset = 0
    for field in spec.fields:
        width = field.fixed_bit_width()
        if width is None:
            rows.append((field.name, offset, -1))
            break
        rows.append((field.name, offset, width))
        offset += width
    return rows
