"""Sliding-window protocols built with the DSL: Go-Back-N and Selective Repeat.

Section 5.1 of the paper promises that, with the DSL in place, new
protocols can be built "quickly and easily" from the same framework.  This
module makes that concrete: both sliding-window ARQ variants reuse the
packet DSL, the verified-evidence discipline and the typed machine runtime
of :mod:`repro.core`, differing from the paper's stop-and-wait example
only in their state indexing:

* the Go-Back-N sender's state is indexed by *two* dependent parameters
  ``(base, nxt)`` — the window edges — and its ``ACK`` transition takes an
  execution-time input (the cumulative acknowledgement number), bounded by
  a symbolic guard ``base <= ack < nxt``;
* Selective Repeat keeps the same indexed window but acknowledges
  individual packets; its receiver buffers verified out-of-order packets
  (buffering *raw* packets is impossible by construction — the buffer
  holds ``Verified`` values).

Sequence numbers here are 16-bit and the runs are finite, so window
arithmetic never wraps; the machines use unbounded parameters and the
specs' guards enforce the window discipline symbolically.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.fields import Bytes, ChecksumField, UInt
from repro.core.machine import Machine
from repro.core.packet import PacketSpec
from repro.core.statemachine import MachineSpec, Param
from repro.core.symbolic import Var, this
from repro.netsim.channel import ChannelConfig
from repro.netsim.node import DuplexLink, Node
from repro.netsim.simulator import Simulator
from repro.netsim.timers import Timer

SEQ_BITS = 16

#: Data packet for the sliding-window protocols: like the paper's ARQ
#: packet, with a 16-bit sequence space and a CRC-16 for integrity.
SLIDING_PACKET = PacketSpec(
    "SlidingData",
    fields=[
        UInt("seq", bits=SEQ_BITS, doc="sequence number"),
        ChecksumField(
            "chk",
            algorithm="crc16-ccitt",
            over=("seq", "length", "payload"),
            doc="CRC over sequence number and payload",
        ),
        UInt("length", bits=8, doc="payload length in bytes"),
        Bytes("payload", length=this.length, doc="payload"),
    ],
    doc="sliding-window data packet",
)

#: Acknowledgement: ``kind`` distinguishes cumulative (Go-Back-N) from
#: selective (Selective Repeat) acknowledgements.
SLIDING_ACK = PacketSpec(
    "SlidingAck",
    fields=[
        UInt("kind", bits=8, enum={0: "cumulative", 1: "selective"}, doc="ack kind"),
        UInt("seq", bits=SEQ_BITS, doc="acknowledged sequence number"),
        ChecksumField("chk", algorithm="crc16-ccitt", over=("kind", "seq")),
    ],
    doc="sliding-window acknowledgement",
)

KIND_CUMULATIVE = 0
KIND_SELECTIVE = 1


def build_gbn_sender_spec(window: int) -> MachineSpec:
    """Go-Back-N sender machine, indexed by the window edges.

    States: ``Active(base, nxt)`` (initial) and ``Done(base)`` (final).
    The symbolic guards carry the whole window discipline:

    * ``SEND``   : Active(b, n) -> Active(b, n+1)   when n - b < window
    * ``ACK``    : Active(b, n) -> Active(a+1, n)   input a, b <= a < n
    * ``ACK_OLD``: Active(b, n) -> Active(b, n)     input a, a < b
    * ``GO_BACK``: Active(b, n) -> Active(b, b)     timer expiry
    * ``FINISH`` : Active(b, n) -> Done(b)          when b == n
    """
    if window < 1:
        raise ValueError(f"window must be at least 1, got {window}")
    spec = MachineSpec("GbnSender", doc=f"Go-Back-N sender, window={window}")
    base = Param("base")
    nxt = Param("nxt")
    active = spec.state("Active", params=[base, nxt], initial=True)
    done = spec.state("Done", params=[Param("base")], final=True)
    b, n, a = Var("base"), Var("nxt"), Var("ack")
    spec.transition(
        "SEND", active(b, n), active(b, n + 1), requires="bytes", event="submit",
        guard=(n - b) < window,
        doc="transmit the next packet while the window has room",
    )
    spec.transition(
        "ACK", active(b, n), active(a + 1, n), inputs=("ack",), event="ack",
        requires=SLIDING_ACK,
        guard=(a >= b) & (a < n),
        doc="cumulative acknowledgement slides the window base",
    )
    spec.transition(
        "ACK_OLD", active(b, n), active(b, n), inputs=("ack",), event="old_ack",
        requires=SLIDING_ACK,
        guard=a < b,
        doc="stale acknowledgement: ignore but account",
    )
    spec.transition(
        "GO_BACK", active(b, n), active(b, b), event="timer",
        doc="timer expiry rewinds transmission to the window base",
    )
    spec.transition(
        "FINISH", active(b, n), done(b), event="drained",
        guard=b.eq(n),
        doc="window empty and queue drained: consistent end state",
    )
    spec.expect_events(active, ["submit", "ack", "old_ack", "timer", "drained"])
    return spec.seal()


def build_window_receiver_spec(name: str) -> MachineSpec:
    """Receiver machine shared by both sliding-window variants.

    ``ReadyFor(seq)`` is the paper's receiver state; ``RECV`` advances on
    the expected verified packet, ``OUT_OF_ORDER`` handles any other
    verified packet without advancing (Go-Back-N re-acks; Selective Repeat
    buffers and acks selectively — that policy lives in the driver, the
    machine only guarantees no unverified packet is ever processed).
    """
    spec = MachineSpec(name, doc="sliding-window receiver")
    seq = Param("seq")
    ready_for = spec.state("ReadyFor", params=[seq], initial=True)
    n = Var("seq")
    spec.transition(
        "RECV", ready_for(n), ready_for(n + 1), requires=SLIDING_PACKET, event="data",
        guard=lambda bindings, payload: payload.value.seq == bindings["seq"],
        doc="accept the expected verified packet and advance",
    )
    spec.transition(
        "OUT_OF_ORDER", ready_for(n), ready_for(n), requires=SLIDING_PACKET,
        event="other",
        guard=lambda bindings, payload: payload.value.seq != bindings["seq"],
        doc="verified but not the expected packet: do not advance",
    )
    spec.expect_events(ready_for, ["data", "other"])
    return spec.seal()


@dataclass
class SlidingTransferReport:
    """Outcome of a sliding-window transfer experiment."""

    protocol: str
    window: int
    success: bool
    messages: List[bytes]
    delivered: List[bytes]
    data_frames_sent: int
    ack_frames_sent: int
    retransmissions: int
    duration: float
    violations: List[str] = field(default_factory=list)

    @property
    def goodput(self) -> float:
        """Delivered payload bytes per virtual second."""
        if self.duration <= 0:
            return 0.0
        return sum(len(m) for m in self.delivered) / self.duration


def _delivery_violations(
    messages: Sequence[bytes], delivered: Sequence[bytes]
) -> List[str]:
    violations: List[str] = []
    for index, payload in enumerate(delivered):
        if index >= len(messages):
            violations.append("delivered more messages than were sent")
            break
        if payload != messages[index]:
            violations.append(
                f"message {index} delivered as {payload!r}, sent "
                f"{messages[index]!r}"
            )
    return violations


class GoBackNSender:
    """Go-Back-N sender: one timer for the window base, cumulative acks."""

    def __init__(
        self,
        sim: Simulator,
        node: Node,
        peer_name: str,
        messages: Sequence[bytes],
        window: int = 8,
        rto: float = 0.5,
        max_retries: int = 50,
    ) -> None:
        self.sim = sim
        self.node = node
        self.peer_name = peer_name
        self.messages = list(messages)
        self.window = window
        self.spec = build_gbn_sender_spec(window)
        self.machine = Machine(self.spec, context=self.messages)
        self.rto = rto
        self.max_retries = max_retries
        self.retries_used = 0
        self.retransmissions = 0
        self.frames_sent = 0
        self.failed = False
        self.timer = Timer(sim, rto, self._on_timeout, name="gbn-rto")
        node.on_receive(self._on_frame)

    @property
    def base(self) -> int:
        """Lower window edge (oldest unacknowledged sequence number)."""
        return self.machine.current.values[0]

    @property
    def nxt(self) -> int:
        """Next sequence number to transmit."""
        return (
            self.machine.current.values[1]
            if len(self.machine.current.values) > 1
            else self.base
        )

    @property
    def done(self) -> bool:
        """True once the machine reached Done."""
        return self.machine.is_finished

    def start(self) -> None:
        """Begin the transfer."""
        self._fill_window()
        self._maybe_finish()

    def _fill_window(self) -> None:
        while (
            not self.machine.is_finished
            and self.nxt < len(self.messages)
            and self.nxt - self.base < self.window
        ):
            payload = self.messages[self.nxt]
            seq = self.nxt
            self.machine.exec_trans("SEND", payload)
            self._transmit(seq, payload)
        if self.base < self.nxt and not self.timer.running:
            self.timer.start(self.rto)

    def _transmit(self, seq: int, payload: bytes) -> None:
        packet = SLIDING_PACKET.make(seq=seq, length=len(payload), payload=payload)
        self.node.send(self.peer_name, SLIDING_PACKET.encode(packet))
        self.frames_sent += 1

    def _maybe_finish(self) -> None:
        if (
            not self.machine.is_finished
            and self.base == self.nxt
            and self.base >= len(self.messages)
        ):
            self.machine.exec_trans("FINISH")
            self.timer.stop()

    def _on_frame(self, frame: bytes, sender: str) -> None:
        if self.machine.is_finished:
            return
        verified = SLIDING_ACK.try_parse(frame)
        if verified is None or verified.value.kind != KIND_CUMULATIVE:
            return  # unverifiable acks are dropped; the timer recovers
        ack = verified.value.seq
        if self.base <= ack < self.nxt:
            self.machine.exec_trans("ACK", verified, ack=ack)
            self.retries_used = 0
            if self.base < self.nxt:
                self.timer.start(self.rto)
            else:
                self.timer.stop()
            self._fill_window()
            self._maybe_finish()
        elif ack < self.base:
            self.machine.exec_trans("ACK_OLD", verified, ack=ack)

    def _on_timeout(self) -> None:
        if self.machine.is_finished or self.base == self.nxt:
            return
        if self.retries_used >= self.max_retries:
            self.failed = True
            return
        self.retries_used += 1
        resend_from = self.base
        resend_to = self.nxt
        self.machine.exec_trans("GO_BACK")
        # Go back: retransmit every outstanding packet in order.
        for seq in range(resend_from, resend_to):
            payload = self.messages[seq]
            self.machine.exec_trans("SEND", payload)
            self._transmit(seq, payload)
            self.retransmissions += 1
        self.timer.start(self.rto)


class GoBackNReceiver:
    """Go-Back-N receiver: accepts in order, cumulative acknowledgements."""

    def __init__(self, sim: Simulator, node: Node, peer_name: str) -> None:
        self.sim = sim
        self.node = node
        self.peer_name = peer_name
        self.spec = build_window_receiver_spec("GbnReceiver")
        self.machine = Machine(self.spec)
        self.delivered: List[bytes] = []
        self.acks_sent = 0
        node.on_receive(self._on_frame)

    @property
    def expected(self) -> int:
        """Next in-order sequence number."""
        return self.machine.current.values[0]

    def _on_frame(self, frame: bytes, sender: str) -> None:
        verified = SLIDING_PACKET.try_parse(frame)
        if verified is None:
            return
        if verified.value.seq == self.expected:
            self.machine.exec_trans("RECV", verified)
            self.delivered.append(verified.value.payload)
            self._ack(self.expected - 1)
        else:
            self.machine.exec_trans("OUT_OF_ORDER", verified)
            if self.expected > 0:
                self._ack(self.expected - 1)

    def _ack(self, seq: int) -> None:
        ack = SLIDING_ACK.make(kind=KIND_CUMULATIVE, seq=seq)
        self.node.send(self.peer_name, SLIDING_ACK.encode(ack))
        self.acks_sent += 1


class SelectiveRepeatSender:
    """Selective Repeat sender: per-packet timers, selective acks."""

    def __init__(
        self,
        sim: Simulator,
        node: Node,
        peer_name: str,
        messages: Sequence[bytes],
        window: int = 8,
        rto: float = 0.5,
        max_retries: int = 50,
    ) -> None:
        self.sim = sim
        self.node = node
        self.peer_name = peer_name
        self.messages = list(messages)
        self.window = window
        # The control machine is the GBN window machine minus GO_BACK
        # semantics — base slides over *acked* packets; per-packet resend
        # policy lives here, keyed by the acked set.
        self.spec = build_gbn_sender_spec(window)
        self.machine = Machine(self.spec, context=self.messages)
        self.rto = rto
        self.max_retries = max_retries
        self.retransmissions = 0
        self.frames_sent = 0
        self.failed = False
        self.acked: Dict[int, bool] = {}
        self.timers: Dict[int, Timer] = {}
        self.retries: Dict[int, int] = {}
        node.on_receive(self._on_frame)

    @property
    def base(self) -> int:
        """Lower window edge."""
        return self.machine.current.values[0]

    @property
    def nxt(self) -> int:
        """Next sequence number to transmit."""
        return (
            self.machine.current.values[1]
            if len(self.machine.current.values) > 1
            else self.base
        )

    @property
    def done(self) -> bool:
        """True once the machine reached Done."""
        return self.machine.is_finished

    def start(self) -> None:
        """Begin the transfer."""
        self._fill_window()
        self._maybe_finish()

    def _fill_window(self) -> None:
        while (
            not self.machine.is_finished
            and self.nxt < len(self.messages)
            and self.nxt - self.base < self.window
        ):
            seq = self.nxt
            payload = self.messages[seq]
            self.machine.exec_trans("SEND", payload)
            self._transmit(seq, payload)
            self._arm_timer(seq)

    def _transmit(self, seq: int, payload: bytes) -> None:
        packet = SLIDING_PACKET.make(seq=seq, length=len(payload), payload=payload)
        self.node.send(self.peer_name, SLIDING_PACKET.encode(packet))
        self.frames_sent += 1

    def _arm_timer(self, seq: int) -> None:
        if seq not in self.timers:
            self.timers[seq] = Timer(
                self.sim, self.rto, lambda s=seq: self._on_timeout(s),
                name=f"sr-rto-{seq}",
            )
        self.timers[seq].start(self.rto)

    def _maybe_finish(self) -> None:
        if (
            not self.machine.is_finished
            and self.base == self.nxt
            and self.base >= len(self.messages)
        ):
            self.machine.exec_trans("FINISH")

    def _on_frame(self, frame: bytes, sender: str) -> None:
        if self.machine.is_finished:
            return
        verified = SLIDING_ACK.try_parse(frame)
        if verified is None or verified.value.kind != KIND_SELECTIVE:
            return
        seq = verified.value.seq
        if not self.base <= seq < self.nxt or self.acked.get(seq):
            if seq < self.base:
                self.machine.exec_trans("ACK_OLD", verified, ack=seq)
            return
        self.acked[seq] = True
        if seq in self.timers:
            self.timers[seq].stop()
        # Slide the base over the contiguous acked prefix: each slide step
        # is the machine's ACK transition with the base packet's number.
        while self.base < self.nxt and self.acked.get(self.base):
            self.machine.exec_trans("ACK", verified, ack=self.base)
        self._fill_window()
        self._maybe_finish()

    def _on_timeout(self, seq: int) -> None:
        if self.machine.is_finished or self.acked.get(seq):
            return
        if not self.base <= seq < self.nxt:
            return
        used = self.retries.get(seq, 0)
        if used >= self.max_retries:
            self.failed = True
            return
        self.retries[seq] = used + 1
        self._transmit(seq, self.messages[seq])
        self.retransmissions += 1
        self._arm_timer(seq)


class SelectiveRepeatReceiver:
    """Selective Repeat receiver: buffers verified out-of-order packets.

    The buffer's type tells the story: it maps sequence numbers to
    ``Verified`` packets, so nothing unverified can be buffered, let alone
    delivered — paper §3.4 guarantee 2, extended to buffered operation.
    """

    def __init__(
        self, sim: Simulator, node: Node, peer_name: str, window: int = 8
    ) -> None:
        self.sim = sim
        self.node = node
        self.peer_name = peer_name
        self.window = window
        self.spec = build_window_receiver_spec("SrReceiver")
        self.machine = Machine(self.spec)
        self.buffer: Dict[int, object] = {}  # seq -> Verified[SlidingData]
        self.delivered: List[bytes] = []
        self.acks_sent = 0
        node.on_receive(self._on_frame)

    @property
    def expected(self) -> int:
        """Next in-order sequence number."""
        return self.machine.current.values[0]

    def _on_frame(self, frame: bytes, sender: str) -> None:
        verified = SLIDING_PACKET.try_parse(frame)
        if verified is None:
            return
        seq = verified.value.seq
        if seq == self.expected:
            self.machine.exec_trans("RECV", verified)
            self.delivered.append(verified.value.payload)
            self._ack(seq)
            self._drain_buffer()
        elif self.expected < seq < self.expected + self.window:
            self.machine.exec_trans("OUT_OF_ORDER", verified)
            self.buffer[seq] = verified
            self._ack(seq)
        elif seq < self.expected:
            self.machine.exec_trans("OUT_OF_ORDER", verified)
            self._ack(seq)  # re-ack: the earlier ack was probably lost

    def _drain_buffer(self) -> None:
        while self.expected in self.buffer:
            verified = self.buffer.pop(self.expected)
            self.machine.exec_trans("RECV", verified)
            self.delivered.append(verified.value.payload)

    def _ack(self, seq: int) -> None:
        ack = SLIDING_ACK.make(kind=KIND_SELECTIVE, seq=seq)
        self.node.send(self.peer_name, SLIDING_ACK.encode(ack))
        self.acks_sent += 1


def _run_sliding(
    protocol: str,
    messages: Sequence[bytes],
    config: Optional[ChannelConfig],
    window: int,
    seed: int,
    rto: float,
    max_retries: int,
    max_events: int,
) -> SlidingTransferReport:
    sim = Simulator()
    sender_node = Node(sim, "sender")
    receiver_node = Node(sim, "receiver")
    DuplexLink(sim, sender_node, receiver_node, config or ChannelConfig(), seed=seed)
    if protocol == "gbn":
        receiver = GoBackNReceiver(sim, receiver_node, "sender")
        sender = GoBackNSender(
            sim, sender_node, "receiver", messages,
            window=window, rto=rto, max_retries=max_retries,
        )
    else:
        receiver = SelectiveRepeatReceiver(
            sim, receiver_node, "sender", window=window
        )
        sender = SelectiveRepeatSender(
            sim, sender_node, "receiver", messages,
            window=window, rto=rto, max_retries=max_retries,
        )
    sender.start()
    sim.run_until(lambda: sender.done or sender.failed, max_events=max_events)
    sim.run(until=sim.now + 2 * rto)
    delivered = list(receiver.delivered)
    return SlidingTransferReport(
        protocol=protocol,
        window=window,
        success=sender.done and delivered == list(messages),
        messages=list(messages),
        delivered=delivered,
        data_frames_sent=sender.frames_sent,
        ack_frames_sent=receiver.acks_sent,
        retransmissions=sender.retransmissions,
        duration=sim.now,
        violations=_delivery_violations(messages, delivered),
    )


def run_gbn_transfer(
    messages: Sequence[bytes],
    config: Optional[ChannelConfig] = None,
    window: int = 8,
    seed: int = 0,
    rto: float = 0.5,
    max_retries: int = 50,
    max_events: int = 1_000_000,
) -> SlidingTransferReport:
    """Run a Go-Back-N transfer over a faulty duplex link.

    Exhausting ``max_events`` with work still pending raises
    :class:`~repro.netsim.simulator.BudgetExhausted`.
    """
    return _run_sliding(
        "gbn", messages, config, window, seed, rto, max_retries, max_events
    )


def run_sr_transfer(
    messages: Sequence[bytes],
    config: Optional[ChannelConfig] = None,
    window: int = 8,
    seed: int = 0,
    rto: float = 0.5,
    max_retries: int = 50,
    max_events: int = 1_000_000,
) -> SlidingTransferReport:
    """Run a Selective Repeat transfer over a faulty duplex link.

    Exhausting ``max_events`` with work still pending raises
    :class:`~repro.netsim.simulator.BudgetExhausted`.
    """
    return _run_sliding(
        "sr", messages, config, window, seed, rto, max_retries, max_events
    )
