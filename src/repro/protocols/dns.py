"""The DNS message header (RFC 1035 §4.1.1) in the DSL.

A dense, real-world exercise for sub-byte fields: the second 16-bit word
of the DNS header packs seven fields (QR, Opcode, AA, TC, RD, RA, Z,
RCODE) into exacting bit positions.  The spec also carries RFC 1035's
semantic constraints — a response code only means something in responses,
Z must be zero — which no grammar formalism can express.

Also provided: :data:`DNS_QUESTION_FIXED`, the fixed tail of a question
entry (QTYPE/QCLASS), and helpers to build simple query headers.
"""

from __future__ import annotations

from repro.core.constraints import Constraint
from repro.core.fields import Flag, Reserved, UInt
from repro.core.packet import PacketSpec

OPCODES = {0: "QUERY", 1: "IQUERY", 2: "STATUS"}
RCODES = {
    0: "NoError",
    1: "FormErr",
    2: "ServFail",
    3: "NXDomain",
    4: "NotImp",
    5: "Refused",
}

#: RFC 1035 §4.1.1 — the 12-byte DNS message header.
DNS_HEADER = PacketSpec(
    "DnsHeader",
    fields=[
        UInt("id", bits=16, doc="ID"),
        Flag("qr", doc="QR"),
        UInt("opcode", bits=4, enum=OPCODES, doc="Opcode"),
        Flag("aa", doc="AA"),
        Flag("tc", doc="TC"),
        Flag("rd", doc="RD"),
        Flag("ra", doc="RA"),
        Reserved("z", bits=3, doc="Z"),
        UInt("rcode", bits=4, enum=RCODES, doc="RCODE"),
        UInt("qdcount", bits=16, doc="QDCOUNT"),
        UInt("ancount", bits=16, doc="ANCOUNT"),
        UInt("nscount", bits=16, doc="NSCOUNT"),
        UInt("arcount", bits=16, doc="ARCOUNT"),
    ],
    constraints=[
        Constraint(
            "aa_only_in_responses",
            lambda p: not p.aa or p.qr,
            doc="Authoritative Answer is only meaningful in responses",
        ),
        Constraint(
            "rcode_zero_in_queries",
            lambda p: p.qr or p.rcode == 0,
            doc="queries carry RCODE 0; response codes belong to responses",
        ),
        Constraint(
            "answers_only_in_responses",
            lambda p: p.qr or p.ancount == 0,
            doc="a query carries no answer records",
        ),
    ],
    doc="RFC 1035 DNS message header",
)

#: The fixed tail of a question entry (the QNAME is variable-length and
#: label-compressed, outside this header-focused spec's scope).
DNS_QUESTION_FIXED = PacketSpec(
    "DnsQuestionFixed",
    fields=[
        UInt(
            "qtype",
            bits=16,
            enum={1: "A", 2: "NS", 5: "CNAME", 12: "PTR", 15: "MX", 28: "AAAA"},
            doc="QTYPE",
        ),
        UInt("qclass", bits=16, enum={1: "IN", 3: "CH"}, doc="QCLASS"),
    ],
    doc="RFC 1035 question entry, fixed part",
)


def make_query_header(transaction_id: int, questions: int = 1, recursion: bool = True):
    """A standard-query DNS header, verified."""
    packet = DNS_HEADER.make(
        id=transaction_id,
        qr=False,
        opcode=0,
        aa=False,
        tc=False,
        rd=recursion,
        ra=False,
        rcode=0,
        qdcount=questions,
        ancount=0,
        nscount=0,
        arcount=0,
    )
    return DNS_HEADER.verify(packet)


def make_response_header(
    transaction_id: int,
    answers: int,
    rcode: int = 0,
    authoritative: bool = False,
):
    """A response DNS header matching a query's transaction id, verified."""
    packet = DNS_HEADER.make(
        id=transaction_id,
        qr=True,
        opcode=0,
        aa=authoritative,
        tc=False,
        rd=True,
        ra=True,
        rcode=rcode,
        qdcount=1,
        ancount=answers,
        nscount=0,
        arcount=0,
    )
    return DNS_HEADER.verify(packet)
