"""A line-oriented application protocol: ABNF syntax + DSL semantics.

Section 1.2 notes the approach "could equally be applied to application
layer protocols".  This module demonstrates it with a small chat
protocol, and — more importantly — shows the two formalisms *composing*:
the command line's syntax is specified in RFC 5234 ABNF and enforced by
the :mod:`repro.abnf` engine **as a DSL constraint**, while the framing,
the integrity checksum, and the session behaviour stay in the DSL, which
is exactly the division of labour the paper proposes (syntax notations
are fine at what they do; the DSL carries what they cannot).

Wire format: a CRC-protected frame whose payload must match the
``command`` rule of :data:`CHAT_GRAMMAR`.  Session behaviour: a machine
that only lets you speak in a room you have joined.
"""

from __future__ import annotations

from repro.abnf import Matcher, parse_grammar
from repro.core.constraints import Constraint
from repro.core.fields import Bytes, ChecksumField, UInt
from repro.core.machine import Machine
from repro.core.packet import PacketSpec
from repro.core.statemachine import MachineSpec
from repro.core.symbolic import this

#: The command syntax, in honest RFC 5234 ABNF.
CHAT_GRAMMAR = parse_grammar(
    """
    command  = join / leave / message / ping
    join     = "JOIN" SP room CRLF
    leave    = "LEAVE" SP room CRLF
    message  = "MSG" SP room SP text CRLF
    ping     = "PING" CRLF
    room     = 1*16(ALPHA / DIGIT / "-")
    text     = 1*128(VCHAR / SP)
    """
)

_matcher = Matcher(CHAT_GRAMMAR)


def is_wellformed_command(line: bytes) -> bool:
    """True when ``line`` matches the ABNF ``command`` rule."""
    try:
        return _matcher.fullmatch("command", line)
    except (UnicodeError, ValueError):
        return False


#: The frame: length-prefixed, CRC-protected, ABNF-constrained payload.
CHAT_FRAME = PacketSpec(
    "ChatFrame",
    fields=[
        UInt("length", bits=16, doc="command length in bytes"),
        ChecksumField(
            "crc", algorithm="crc16-ccitt", over=("length", "command"),
        ),
        Bytes("command", length=this.length, doc="the command line"),
    ],
    constraints=[
        Constraint(
            "command_wellformed",
            lambda p: is_wellformed_command(p.command),
            doc="the payload must match the ABNF 'command' rule",
        ),
    ],
    doc="chat protocol frame: DSL framing + checksum, ABNF payload syntax",
)


def make_frame(command: str) -> bytes:
    """Build a verified chat frame for ``command`` (CRLF appended)."""
    line = command.encode("ascii") + b"\r\n"
    packet = CHAT_FRAME.make(length=len(line), command=line)
    CHAT_FRAME.verify(packet)  # includes the ABNF constraint
    return CHAT_FRAME.encode(packet)


def parse_command(line: bytes):
    """Split a verified command line into (verb, room, text)."""
    body = line.rstrip(b"\r\n").decode("ascii")
    parts = body.split(" ", 2)
    verb = parts[0]
    room = parts[1] if len(parts) > 1 else None
    text = parts[2] if len(parts) > 2 else None
    return verb, room, text


def build_session_spec() -> MachineSpec:
    """Client session behaviour: you may only MSG a room you are in.

    The room identity is tracked in context by the driver; the machine
    tracks the *phase* (Outside/Joined) so that the completeness checker
    guarantees every command verb has a home in every phase.
    """
    spec = MachineSpec("ChatSession")
    outside = spec.state("Outside", initial=True, doc="not in any room")
    joined = spec.state("Joined", doc="member of exactly one room")
    closed = spec.state("Closed", final=True)
    spec.transition(
        "JOIN", outside(), joined(), requires=CHAT_FRAME, event="join",
        guard=lambda bindings, payload: payload.value.command.startswith(b"JOIN "),
    )
    spec.transition(
        "MSG", joined(), joined(), requires=CHAT_FRAME, event="msg",
        guard=lambda bindings, payload: payload.value.command.startswith(b"MSG "),
    )
    spec.transition(
        "LEAVE", joined(), outside(), requires=CHAT_FRAME, event="leave",
        guard=lambda bindings, payload: payload.value.command.startswith(b"LEAVE "),
    )
    spec.transition("PING_OUT", outside(), outside(), requires=CHAT_FRAME,
                    event="ping",
                    guard=lambda bindings, payload: payload.value.command == b"PING\r\n")
    spec.transition("PING_IN", joined(), joined(), requires=CHAT_FRAME,
                    event="ping",
                    guard=lambda bindings, payload: payload.value.command == b"PING\r\n")
    spec.transition("QUIT_OUT", outside(), closed(), event="quit")
    spec.transition("QUIT_IN", joined(), closed(), event="quit")
    spec.expect_events(outside, ["join", "ping", "quit"])
    spec.expect_events(joined, ["msg", "leave", "ping", "quit"])
    return spec.seal()


class ChatSession:
    """A client session enforcing both syntax and behaviour."""

    def __init__(self) -> None:
        self.machine = Machine(build_session_spec())
        self.room: str = ""
        self.log: list = []

    def submit(self, wire: bytes) -> bool:
        """Feed one frame; returns True when accepted.

        Rejections are total: bad CRC, ill-formed ABNF, or a command that
        is behaviourally invalid in the current phase all leave the
        session unchanged.
        """
        verified = CHAT_FRAME.try_parse(wire)
        if verified is None:
            return False
        verb, room, text = parse_command(verified.value.command)
        from repro.core.machine import InvalidTransitionError

        transition = {
            "JOIN": "JOIN",
            "MSG": "MSG",
            "LEAVE": "LEAVE",
            "PING": "PING_IN" if self.machine.in_state("Joined") else "PING_OUT",
        }.get(verb)
        if transition is None:
            return False
        if verb == "MSG" and room != self.room:
            return False  # speaking into a room we have not joined
        try:
            self.machine.exec_trans(transition, verified)
        except InvalidTransitionError:
            return False
        if verb == "JOIN":
            self.room = room
        elif verb == "LEAVE":
            self.room = ""
        self.log.append((verb, room, text))
        return True
