"""A three-way connection handshake in the DSL.

A compact demonstration that *control-plane* behaviour (the paper's §1.2
scope explicitly includes protocols with a control-plane element) fits the
same framework as data transfer: two machines — initiator and responder —
negotiate a connection with SYN / SYN-ACK / ACK messages carrying random
nonces, and the types guarantee that:

* no side processes an unverified handshake message;
* the initiator can only complete against the nonce it offered (the state
  is *indexed by the nonce*, so a stale or forged SYN-ACK cannot move the
  machine — the guard compares against the dependent state parameter);
* both machines end in a consistent state: ``Established`` or ``Failed``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.core.fields import ChecksumField, UInt
from repro.core.machine import Machine
from repro.core.packet import PacketSpec
from repro.core.statemachine import MachineSpec, Param
from repro.core.symbolic import Var
from repro.netsim.channel import ChannelConfig
from repro.netsim.node import DuplexLink, Node
from repro.netsim.simulator import Simulator
from repro.netsim.timers import Timer

MSG_SYN = 1
MSG_SYN_ACK = 2
MSG_ACK = 3

#: Handshake message: a message type, the initiator's nonce and the
#: responder's nonce (zero until assigned), integrity-protected.
HANDSHAKE_PACKET = PacketSpec(
    "Handshake",
    fields=[
        UInt(
            "msg_type",
            bits=8,
            enum={MSG_SYN: "syn", MSG_SYN_ACK: "syn-ack", MSG_ACK: "ack"},
            doc="message type",
        ),
        UInt("initiator_nonce", bits=16, doc="initiator's nonce"),
        UInt("responder_nonce", bits=16, doc="responder's nonce"),
        ChecksumField(
            "chk",
            algorithm="crc16-ccitt",
            over=("msg_type", "initiator_nonce", "responder_nonce"),
        ),
    ],
    doc="three-way handshake message",
)


def build_initiator_spec() -> MachineSpec:
    """Initiator machine: Closed -> SynSent(nonce) -> Established / Failed."""
    spec = MachineSpec("HandshakeInitiator")
    closed = spec.state("Closed", initial=True)
    nonce = Param("nonce", bits=16)
    syn_sent = spec.state("SynSent", params=[nonce], doc="SYN sent, awaiting SYN-ACK")
    established = spec.state("Established", params=[nonce], final=True)
    failed = spec.state("Failed", final=True)
    n = Var("nonce")
    spec.transition(
        "CONNECT", closed(), syn_sent(n), inputs=("nonce",), event="connect",
        doc="send SYN carrying a fresh nonce; the state is indexed by it",
    )
    spec.transition(
        "SYNACK", syn_sent(n), established(n), requires=HANDSHAKE_PACKET,
        event="synack",
        guard=lambda bindings, payload: (
            payload.value.msg_type == MSG_SYN_ACK
            and payload.value.initiator_nonce == bindings["nonce"]
        ),
        doc="verified SYN-ACK echoing our nonce: established",
    )
    spec.transition(
        "GIVE_UP", syn_sent(n), failed(), event="timer",
        doc="handshake timer expired: consistent failure",
    )
    spec.expect_events(syn_sent, ["synack", "timer"])
    return spec.seal()


def build_responder_spec() -> MachineSpec:
    """Responder machine: Listen -> SynReceived(nonce) -> Established / Listen."""
    spec = MachineSpec("HandshakeResponder")
    listen = spec.state("Listen", initial=True)
    nonce = Param("nonce", bits=16)
    syn_received = spec.state("SynReceived", params=[nonce])
    established = spec.state("Established", params=[nonce], final=True)
    n = Var("nonce")
    spec.transition(
        "SYN", listen(), syn_received(n), requires=HANDSHAKE_PACKET,
        inputs=("nonce",), event="syn",
        guard=lambda bindings, payload: (
            payload.value.msg_type == MSG_SYN
            and payload.value.responder_nonce == 0  # not yet assigned
            and bindings["nonce"] != 0
        ),
        doc="verified SYN: adopt a fresh nonce and reply with SYN-ACK",
    )
    spec.transition(
        "ACK", syn_received(n), established(n), requires=HANDSHAKE_PACKET,
        event="ack",
        guard=lambda bindings, payload: (
            payload.value.msg_type == MSG_ACK
            and payload.value.responder_nonce == bindings["nonce"]
        ),
        doc="verified final ACK echoing our nonce: established",
    )
    spec.transition(
        "RESET", syn_received(n), listen(), event="timer",
        doc="handshake timer expired: return to listening",
    )
    spec.expect_events(syn_received, ["ack", "timer"])
    return spec.seal()


class HandshakeInitiator:
    """Drives the initiator machine over a simulator node."""

    def __init__(
        self,
        sim: Simulator,
        node: Node,
        peer_name: str,
        rng: random.Random,
        timeout: float = 2.0,
    ) -> None:
        self.sim = sim
        self.node = node
        self.peer_name = peer_name
        self.rng = rng
        self.machine = Machine(build_initiator_spec())
        self.timer = Timer(sim, timeout, self._on_timeout, name="hs-initiator")
        self.frames_sent = 0
        node.on_receive(self._on_frame)

    @property
    def established(self) -> bool:
        """True when the handshake completed."""
        return self.machine.in_state("Established")

    @property
    def failed(self) -> bool:
        """True when the handshake gave up."""
        return self.machine.in_state("Failed")

    def connect(self) -> None:
        """Kick off the handshake with a fresh nonce."""
        nonce = self.rng.randrange(1, 1 << 16)
        self.machine.exec_trans("CONNECT", nonce=nonce)
        packet = HANDSHAKE_PACKET.make(
            msg_type=MSG_SYN, initiator_nonce=nonce, responder_nonce=0
        )
        self.node.send(self.peer_name, HANDSHAKE_PACKET.encode(packet))
        self.frames_sent += 1
        self.timer.start()

    def _on_frame(self, frame: bytes, sender: str) -> None:
        if not self.machine.in_state("SynSent"):
            return
        verified = HANDSHAKE_PACKET.try_parse(frame)
        if verified is None or verified.value.msg_type != MSG_SYN_ACK:
            return
        if verified.value.initiator_nonce != self.machine.current.values[0]:
            return  # stale or forged SYN-ACK: the guard would reject it too
        self.machine.exec_trans("SYNACK", verified)
        self.timer.stop()
        reply = HANDSHAKE_PACKET.make(
            msg_type=MSG_ACK,
            initiator_nonce=verified.value.initiator_nonce,
            responder_nonce=verified.value.responder_nonce,
        )
        self.node.send(self.peer_name, HANDSHAKE_PACKET.encode(reply))
        self.frames_sent += 1

    def _on_timeout(self) -> None:
        if self.machine.in_state("SynSent"):
            self.machine.exec_trans("GIVE_UP")


class HandshakeResponder:
    """Drives the responder machine over a simulator node."""

    def __init__(
        self,
        sim: Simulator,
        node: Node,
        peer_name: str,
        rng: random.Random,
        timeout: float = 4.0,
    ) -> None:
        self.sim = sim
        self.node = node
        self.peer_name = peer_name
        self.rng = rng
        self.machine = Machine(build_responder_spec())
        self.timer = Timer(sim, timeout, self._on_timeout, name="hs-responder")
        self.frames_sent = 0
        node.on_receive(self._on_frame)

    @property
    def established(self) -> bool:
        """True when the handshake completed."""
        return self.machine.in_state("Established")

    def _on_frame(self, frame: bytes, sender: str) -> None:
        verified = HANDSHAKE_PACKET.try_parse(frame)
        if verified is None:
            return
        message = verified.value
        if self.machine.in_state("Listen") and message.msg_type == MSG_SYN:
            nonce = self.rng.randrange(1, 1 << 16)
            self.machine.exec_trans("SYN", verified, nonce=nonce)
            reply = HANDSHAKE_PACKET.make(
                msg_type=MSG_SYN_ACK,
                initiator_nonce=message.initiator_nonce,
                responder_nonce=nonce,
            )
            self.node.send(self.peer_name, HANDSHAKE_PACKET.encode(reply))
            self.frames_sent += 1
            self.timer.start()
        elif self.machine.in_state("SynReceived") and message.msg_type == MSG_ACK:
            if message.responder_nonce != self.machine.current.values[0]:
                return
            self.machine.exec_trans("ACK", verified)
            self.timer.stop()

    def _on_timeout(self) -> None:
        if self.machine.in_state("SynReceived"):
            self.machine.exec_trans("RESET")


@dataclass
class HandshakeReport:
    """Outcome of a simulated handshake."""

    established: bool
    initiator_state: str
    responder_state: str
    frames_sent: int
    duration: float


def run_handshake(
    config: Optional[ChannelConfig] = None,
    seed: int = 0,
    timeout: float = 2.0,
) -> HandshakeReport:
    """Run one three-way handshake over a (possibly faulty) link."""
    sim = Simulator()
    a = Node(sim, "initiator")
    b = Node(sim, "responder")
    DuplexLink(sim, a, b, config or ChannelConfig(), seed=seed)
    rng = random.Random(seed)
    initiator = HandshakeInitiator(sim, a, "responder", rng, timeout=timeout)
    responder = HandshakeResponder(sim, b, "initiator", rng, timeout=2 * timeout)
    initiator.connect()
    sim.run()
    return HandshakeReport(
        established=initiator.established and responder.established,
        initiator_state=initiator.machine.current.name,
        responder_state=responder.machine.current.name,
        frames_sent=initiator.frames_sent + responder.frames_sent,
        duration=sim.now,
    )
