"""Protocols written in the DSL.

* :mod:`repro.protocols.headers` — classic wire formats: the RFC 791 IPv4
  header (the paper's Figure 1), UDP, the TCP header, ICMP echo.
* :mod:`repro.protocols.arq` — the paper's §3.4 stop-and-wait ARQ, both
  machines, plus runnable sender/receiver endpoints over the simulator.
* :mod:`repro.protocols.sliding` — Go-Back-N and Selective Repeat, the
  "build new protocols quickly" extensions of §5.1.
* :mod:`repro.protocols.handshake` — a three-way connection handshake.
"""

from repro.protocols.headers import (
    ICMP_ECHO,
    IPV4_HEADER,
    TCP_HEADER,
    UDP_HEADER,
    ipv4_address,
    ipv4_address_string,
)
from repro.protocols.arq import (
    ACK_PACKET,
    ARQ_PACKET,
    ArqReceiver,
    ArqSender,
    TransferReport,
    build_receiver_spec,
    build_sender_spec,
    run_transfer,
)
from repro.protocols.sliding import (
    GoBackNReceiver,
    GoBackNSender,
    SlidingTransferReport,
    SelectiveRepeatReceiver,
    SelectiveRepeatSender,
    run_gbn_transfer,
    run_sr_transfer,
)
from repro.protocols.handshake import (
    HANDSHAKE_PACKET,
    HandshakeInitiator,
    HandshakeResponder,
    run_handshake,
)

__all__ = [
    "IPV4_HEADER",
    "UDP_HEADER",
    "TCP_HEADER",
    "ICMP_ECHO",
    "ipv4_address",
    "ipv4_address_string",
    "ARQ_PACKET",
    "ACK_PACKET",
    "build_sender_spec",
    "build_receiver_spec",
    "ArqSender",
    "ArqReceiver",
    "run_transfer",
    "TransferReport",
    "GoBackNSender",
    "GoBackNReceiver",
    "SelectiveRepeatSender",
    "SelectiveRepeatReceiver",
    "run_gbn_transfer",
    "run_sr_transfer",
    "SlidingTransferReport",
    "HANDSHAKE_PACKET",
    "HandshakeInitiator",
    "HandshakeResponder",
    "run_handshake",
]
