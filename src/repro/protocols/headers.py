"""Classic wire formats defined in the DSL.

The centrepiece is :data:`IPV4_HEADER` — the RFC 791 IPv4 header the paper
reproduces as its Figure 1.  Here the ASCII picture is *generated from the
spec* (see :func:`repro.core.render_header_diagram`), closing the loop the
paper draws between informal diagrams and machine-checked definitions.

Also provided: UDP (RFC 768), the TCP fixed header (RFC 793), and ICMP
echo request/reply (RFC 792).  Each spec carries its real semantic
constraints (header checksums, version pins, length consistency) so that
``parse`` on real-looking wire bytes yields verified packets.
"""

from __future__ import annotations

from typing import Tuple

from repro.core.constraints import Constraint
from repro.core.fields import Bytes, ChecksumField, Flag, Reserved, UInt
from repro.core.packet import PacketSpec
from repro.core.symbolic import this


def ipv4_address(dotted: str) -> int:
    """Convert dotted-quad notation to the 32-bit integer the spec carries."""
    parts = dotted.split(".")
    if len(parts) != 4:
        raise ValueError(f"not a dotted quad: {dotted!r}")
    value = 0
    for part in parts:
        octet = int(part)
        if not 0 <= octet <= 255:
            raise ValueError(f"octet {octet} out of range in {dotted!r}")
        value = (value << 8) | octet
    return value


def ipv4_address_string(value: int) -> str:
    """Render a 32-bit address as dotted-quad notation."""
    if not 0 <= value < (1 << 32):
        raise ValueError(f"not a 32-bit address: {value}")
    return ".".join(str((value >> shift) & 0xFF) for shift in (24, 16, 8, 0))


#: The RFC 791 IPv4 header — the paper's Figure 1, as a checked spec.
#: ``options`` carries ``(ihl - 5) * 4`` bytes, a dependent length; the
#: header checksum is the Internet checksum over the whole header with the
#: checksum field zeroed, exactly as RFC 791 prescribes.
IPV4_HEADER = PacketSpec(
    "Ipv4Header",
    fields=[
        UInt("version", bits=4, const=4, doc="Version"),
        UInt("ihl", bits=4, doc="IHL"),
        UInt("tos", bits=8, doc="Type of Service"),
        UInt("total_length", bits=16, doc="Total Length"),
        UInt("identification", bits=16, doc="Identification"),
        UInt("flags", bits=3, doc="Flags"),
        UInt("fragment_offset", bits=13, doc="Fragment Offset"),
        UInt("ttl", bits=8, doc="Time to Live"),
        UInt("protocol", bits=8, doc="Protocol"),
        ChecksumField(
            "header_checksum",
            algorithm="internet",
            over="*",
            doc="Header Checksum",
        ),
        UInt("source", bits=32, doc="Source Address"),
        UInt("destination", bits=32, doc="Destination Address"),
        Bytes("options", length=(this.ihl - 5) * 4, doc="Options"),
    ],
    constraints=[
        Constraint(
            "ihl_at_least_5",
            this.ihl >= 5,
            doc="IHL counts 32-bit words and the fixed header is 5 words",
        ),
        Constraint(
            "total_length_covers_header",
            this.total_length >= this.ihl * 4,
            doc="Total Length includes the header",
        ),
    ],
    doc="RFC 791 Internet Protocol header (the paper's Figure 1)",
)


#: RFC 768 UDP header plus payload.  The UDP checksum proper requires the
#: IP pseudo-header; this spec checksums header+payload (pseudo-header
#: handling lives in the layer that owns both headers).
UDP_HEADER = PacketSpec(
    "UdpDatagram",
    fields=[
        UInt("source_port", bits=16, doc="Source Port"),
        UInt("destination_port", bits=16, doc="Destination Port"),
        UInt("length", bits=16, doc="Length"),
        ChecksumField("checksum", algorithm="internet", over="*", doc="Checksum"),
        Bytes("payload", length=this.length - 8, doc="data octets"),
    ],
    constraints=[
        Constraint(
            "length_at_least_8",
            this.length >= 8,
            doc="Length includes the 8-byte UDP header",
        ),
    ],
    doc="RFC 768 User Datagram Protocol",
)


#: RFC 793 TCP header (fixed part + options, no payload segmentation).
TCP_HEADER = PacketSpec(
    "TcpHeader",
    fields=[
        UInt("source_port", bits=16, doc="Source Port"),
        UInt("destination_port", bits=16, doc="Destination Port"),
        UInt("sequence", bits=32, doc="Sequence Number"),
        UInt("acknowledgment", bits=32, doc="Acknowledgment Number"),
        UInt("data_offset", bits=4, doc="Data Offset"),
        Reserved("reserved", bits=6, doc="Reserved"),
        Flag("urg", doc="URG"),
        Flag("ack", doc="ACK"),
        Flag("psh", doc="PSH"),
        Flag("rst", doc="RST"),
        Flag("syn", doc="SYN"),
        Flag("fin", doc="FIN"),
        UInt("window", bits=16, doc="Window"),
        ChecksumField("checksum", algorithm="internet", over="*", doc="Checksum"),
        UInt("urgent_pointer", bits=16, doc="Urgent Pointer"),
        Bytes("options", length=(this.data_offset - 5) * 4, doc="Options"),
    ],
    constraints=[
        Constraint(
            "data_offset_at_least_5",
            this.data_offset >= 5,
            doc="Data Offset counts 32-bit words; the fixed header is 5",
        ),
        Constraint(
            "syn_fin_exclusive",
            lambda p: not (p.syn and p.fin),
            doc="a segment must not carry SYN and FIN together",
        ),
    ],
    doc="RFC 793 Transmission Control Protocol header",
)


#: RFC 792 ICMP echo request/reply.
ICMP_ECHO = PacketSpec(
    "IcmpEcho",
    fields=[
        UInt("type", bits=8, enum={0: "echo-reply", 8: "echo-request"}, doc="Type"),
        UInt("code", bits=8, const=0, doc="Code"),
        ChecksumField("checksum", algorithm="internet", over="*", doc="Checksum"),
        UInt("identifier", bits=16, doc="Identifier"),
        UInt("sequence_number", bits=16, doc="Sequence Number"),
        Bytes("data", doc="Data"),
    ],
    doc="RFC 792 ICMP echo message",
)


def make_ipv4_header(
    source: str,
    destination: str,
    protocol: int = 17,
    payload_length: int = 0,
    ttl: int = 64,
    identification: int = 0,
    options: bytes = b"",
) -> "Tuple[bytes, object]":
    """Convenience builder: a valid IPv4 header for the given addresses.

    Returns ``(wire_bytes, verified_packet)``; the checksum and dependent
    lengths are computed by the spec.
    """
    if len(options) % 4 != 0:
        raise ValueError("IPv4 options must pad to a 32-bit boundary")
    ihl = 5 + len(options) // 4
    packet = IPV4_HEADER.make(
        ihl=ihl,
        tos=0,
        total_length=ihl * 4 + payload_length,
        identification=identification,
        flags=0,
        fragment_offset=0,
        ttl=ttl,
        protocol=protocol,
        source=ipv4_address(source),
        destination=ipv4_address(destination),
        options=options,
    )
    verified = IPV4_HEADER.verify(packet)
    return IPV4_HEADER.encode(packet), verified
