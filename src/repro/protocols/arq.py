"""The paper's worked example: a stop-and-wait ARQ transport (§3.4).

Everything in Section 3.4 of the paper appears here, renamed only as far
as Python requires:

* the packet — ``data Packet = Pkt Byte Byte (List Byte)`` — becomes
  :data:`ARQ_PACKET`, with the checksum tied to the sequence number and
  payload by a generated constraint (the ``ChkPacket`` evidence);
* the sender states — ``Ready | Wait | Timeout | Sent``, each indexed by
  the sequence number — become a :class:`~repro.core.MachineSpec` built by
  :func:`build_sender_spec`, with the transitions ``SEND``, ``OK``,
  ``FAIL``, ``TIMEOUT`` and ``FINISH`` typed exactly as in the paper
  (``OK : SendTrans (Wait seq) (Ready (seq+1))`` demands a verified
  packet);
* the receiver — ``RECV : ... RecvTrans (ReadyFor seq) (ReadyFor (seq+1))``
  — becomes :func:`build_receiver_spec`.

Two operational additions the paper's prose anticipates are marked in the
specs: ``RETRY`` (Timeout -> Ready: "the request timed out and the machine
is ready to try again") and the receiver's ``DUP_ACK`` (re-acknowledging a
duplicate of the previous packet, required for progress when the *ack*
direction loses frames).

:class:`ArqSender` / :class:`ArqReceiver` drive the machines over the
network simulator, and :func:`run_transfer` packages a full experiment:
deliver a list of messages across a faulty link and report what happened.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.core.fields import Bytes, ChecksumField, UInt
from repro.core.machine import Machine
from repro.core.packet import PacketSpec
from repro.core.statemachine import MachineSpec, Param
from repro.core.symbolic import Var, this
from repro.netsim.channel import ChannelConfig
from repro.netsim.node import DuplexLink, Node
from repro.netsim.simulator import Simulator
from repro.netsim.timers import Timer

SEQ_BITS = 8  # the paper's sequence numbers are Bytes
MAX_PAYLOAD = 255

#: The paper's data packet: sequence number, checksum over (seq, payload),
#: and the payload itself.  ``length`` frames the payload on the wire (the
#: paper's List carries its length in its type; on the wire it must be
#: carried explicitly).
ARQ_PACKET = PacketSpec(
    "ArqData",
    fields=[
        UInt("seq", bits=SEQ_BITS, doc="sequence number"),
        ChecksumField(
            "chk",
            algorithm="xor8",
            over=("seq", "length", "payload"),
            doc="checksum over sequence number and payload",
        ),
        UInt("length", bits=8, doc="payload length in bytes"),
        Bytes("payload", length=this.length, doc="payload"),
    ],
    doc="stop-and-wait ARQ data packet (paper §3.4)",
)

#: The acknowledgement: the sequence number being acknowledged, protected
#: by its own checksum so a corrupted ack cannot be mistaken for a real
#: one (the sender's FAIL transition handles that case).
ACK_PACKET = PacketSpec(
    "ArqAck",
    fields=[
        UInt("seq", bits=SEQ_BITS, doc="acknowledged sequence number"),
        ChecksumField("chk", algorithm="xor8", over=("seq",), doc="checksum"),
    ],
    doc="stop-and-wait ARQ acknowledgement",
)


def build_sender_spec(max_seq_bits: int = SEQ_BITS) -> MachineSpec:
    """The sender machine of paper §3.4, sealed (checked) and ready to run.

    States: ``Ready seq | Wait seq | Timeout seq | Sent seq``.
    Transitions (paper names):

    ========  =============================  ==========================
    name      type                            evidence required
    ========  =============================  ==========================
    SEND      Ready seq -> Wait seq           a byte payload
    OK        Wait seq  -> Ready (seq+1)      a Verified[ArqAck]
    FAIL      Wait seq  -> Ready seq          none (bad/unverifiable ack)
    TIMEOUT   Wait seq  -> Timeout seq        none
    FINISH    Ready seq -> Sent seq           none
    RETRY     Timeout seq -> Ready seq        none (operational addition)
    ========  =============================  ==========================
    """
    spec = MachineSpec("ArqSender", doc="stop-and-wait sender (paper §3.4)")
    seq = Param("seq", bits=max_seq_bits)
    ready = spec.state("Ready", params=[seq], initial=True, doc="ready to send")
    wait = spec.state("Wait", params=[seq], doc="waiting for acknowledgement")
    timeout = spec.state("Timeout", params=[seq], doc="timed out")
    spec.state("Sent", params=[seq], final=True, doc="all data sent")
    sent = spec.states["Sent"]
    n = Var("seq")
    spec.transition(
        "SEND", ready(n), wait(n), requires="bytes", event="submit",
        doc="transmit the packet for the current sequence number",
    )
    spec.transition(
        "OK", wait(n), ready(n + 1), requires=ACK_PACKET, event="good_ack",
        guard=lambda bindings, payload: payload.value.seq == bindings["seq"],
        doc="verified acknowledgement for the outstanding packet",
    )
    spec.transition(
        "FAIL", wait(n), ready(n), event="bad_ack",
        doc="an acknowledgement arrived but could not be accepted",
    )
    spec.transition(
        "TIMEOUT", wait(n), timeout(n), event="timer",
        doc="retransmission timer expired",
    )
    spec.transition(
        "FINISH", ready(n), sent(n), event="drained",
        doc="no more data to send; end in the consistent Sent state",
    )
    spec.transition(
        "RETRY", timeout(n), ready(n), event="retry",
        doc="ready to try again after a timeout (paper §3.4 prose)",
    )
    # Completeness declarations: these are the events that can genuinely
    # occur in each state; the checker demands a handler for each.
    spec.expect_events(ready, ["submit", "drained"])
    spec.expect_events(wait, ["good_ack", "bad_ack", "timer"])
    spec.expect_events(timeout, ["retry"])
    return spec.seal()


def build_receiver_spec(max_seq_bits: int = SEQ_BITS) -> MachineSpec:
    """The receiver machine of paper §3.4.

    ``RECV : ReadyFor seq -> ReadyFor (seq+1)`` demands a verified data
    packet whose sequence number equals the state's index; ``DUP_ACK``
    re-acknowledges the immediately preceding packet without advancing.
    """
    spec = MachineSpec("ArqReceiver", doc="stop-and-wait receiver (paper §3.4)")
    seq = Param("seq", bits=max_seq_bits)
    ready_for = spec.state(
        "ReadyFor", params=[seq], initial=True, doc="expecting this sequence number"
    )
    n = Var("seq")
    spec.transition(
        "RECV", ready_for(n), ready_for(n + 1), requires=ARQ_PACKET, event="data",
        guard=lambda bindings, payload: payload.value.seq == bindings["seq"],
        doc="accept the expected, verified packet and advance",
    )
    spec.transition(
        "DUP_ACK", ready_for(n), ready_for(n), requires=ARQ_PACKET, event="dup",
        guard=lambda bindings, payload: (
            payload.value.seq == (bindings["seq"] - 1) % (1 << max_seq_bits)
        ),
        doc="duplicate of the previous packet: re-acknowledge, do not deliver",
    )
    spec.expect_events(ready_for, ["data", "dup"])
    return spec.seal()


def send_packet_op(spec: MachineSpec) -> "ProtocolOp":
    """The paper's ``sendPacket`` contract as a first-class operation.

    ::

        sendPacket : (seq : Byte) -> List Byte ->
                     SendMachine (ReadyToSend seq) -> IO (NextSent seq)

    with ``NextSent seq = NextReady (Ready (seq+1)) | Failure (Timeout
    seq)``.  Any body run under this operation must leave the machine in
    ``Ready(seq + 1)`` (the packet was sent and acknowledged) or
    ``Timeout(seq)`` (the request timed out) — every other outcome raises.
    """
    from repro.core.ops import ProtocolOp
    from repro.core.symbolic import Var

    ready = spec.states["Ready"]
    timeout = spec.states["Timeout"]
    n = Var("seq")
    return ProtocolOp(
        "send_packet",
        start=ready(n),
        endings={"next_ready": ready(n + 1), "failure": timeout(n)},
    )


class ArqSender:
    """Drives the sender machine over a simulator node.

    The machine's *context* is the outstanding send queue — the paper's
    ``sendMachine : List (List Byte) -> (s : SendSt) -> SendMachine s``.
    """

    def __init__(
        self,
        sim: Simulator,
        node: Node,
        peer_name: str,
        messages: Sequence[bytes],
        rto: float = 0.5,
        max_retries: int = 25,
        adaptive_rto: bool = False,
        max_rto: float = 60.0,
    ) -> None:
        for index, message in enumerate(messages):
            if len(message) > MAX_PAYLOAD:
                raise ValueError(
                    f"message {index} is {len(message)} bytes; stop-and-wait "
                    f"frames carry at most {MAX_PAYLOAD}"
                )
        self.sim = sim
        self.node = node
        self.peer_name = peer_name
        self.spec = build_sender_spec()
        self.machine = Machine(self.spec, context=list(messages))
        self.queue: List[bytes] = list(messages)
        self.rto = rto
        self.max_retries = max_retries
        self.retries_used = 0
        self.retransmissions = 0
        self.frames_sent = 0
        self.failed = False
        # The §1.1 "tuning protocol operation" hook: Jacobson/Karn RTT
        # estimation replaces the fixed timeout when requested.
        self.estimator = None
        self._send_time: Optional[float] = None
        self._sample_valid = False  # Karn: no samples from retransmissions
        if adaptive_rto:
            from repro.adapt.timers import RttEstimator

            # max_rto caps Karn backoff; on channels with heavy *random*
            # loss (not congestion) unbounded doubling is punitive, which
            # the E7c ablation measures.
            self.estimator = RttEstimator(initial_rto=rto, max_rto=max_rto)
        self.timer = Timer(sim, rto, self._on_timeout, name="arq-rto")
        node.on_receive(self._on_frame)

    # -- driving ---------------------------------------------------------

    def start(self) -> None:
        """Begin the transfer (or finish immediately on an empty queue)."""
        self._advance()

    @property
    def done(self) -> bool:
        """True when the machine reached its final state."""
        return self.machine.is_finished

    @property
    def current_seq(self) -> int:
        """The sequence number indexing the current state."""
        return self.machine.current.values[0]

    @property
    def current_rto(self) -> float:
        """The timeout in force (adaptive when an estimator is attached)."""
        if self.estimator is not None:
            return self.estimator.rto
        return self.rto

    def _advance(self) -> None:
        """In Ready: send the next message or FINISH."""
        if not self.queue:
            self.machine.exec_trans("FINISH")
            self.timer.stop()
            return
        payload = self.queue[0]
        self.machine.exec_trans("SEND", payload)
        self._transmit(payload)
        self._send_time = self.sim.now
        self._sample_valid = True  # a fresh, unretransmitted exchange
        self.retries_used = 0
        self.timer.start(self.current_rto)

    def _retransmit(self) -> None:
        """In Ready after FAIL/RETRY: resend the outstanding message."""
        payload = self.queue[0]
        self.machine.exec_trans("SEND", payload)
        self._transmit(payload)
        self._sample_valid = False  # Karn: ambiguous RTT from now on
        self.retransmissions += 1
        self.timer.start(self.current_rto)

    def _transmit(self, payload: bytes) -> None:
        packet = ARQ_PACKET.make(
            seq=self.current_seq, length=len(payload), payload=payload
        )
        self.node.send(self.peer_name, ARQ_PACKET.encode(packet))
        self.frames_sent += 1

    # -- events -----------------------------------------------------------

    def _on_frame(self, frame: bytes, sender: str) -> None:
        if not self.machine.in_state("Wait"):
            return  # stale ack after we already advanced (or finished)
        verified = ACK_PACKET.try_parse(frame)
        if verified is not None and verified.value.seq != self.current_seq:
            # A verified but stale acknowledgement (a duplicate of the
            # previous exchange, reordered or re-acked).  Dropping it is
            # the right move: retransmitting here feeds a duplicate storm
            # (each dup data elicits a dup ack elicits a retransmit...).
            return
        if verified is None:
            # Unverifiable (corrupted) acknowledgement: the FAIL
            # transition returns to Ready(seq) and we retransmit.
            self.machine.exec_trans("FAIL")
            self._retransmit()
            return
        self.timer.stop()
        if (
            self.estimator is not None
            and self._sample_valid
            and self._send_time is not None
        ):
            rtt = self.sim.now - self._send_time
            if rtt > 0:
                self.estimator.sample(rtt)
        self.machine.exec_trans("OK", verified)
        self.queue.pop(0)
        self._advance()

    def _on_timeout(self) -> None:
        if not self.machine.in_state("Wait"):
            return  # stale timer
        if self.estimator is not None:
            self.estimator.on_retransmit()  # exponential backoff
        self.machine.exec_trans("TIMEOUT")
        if self.retries_used >= self.max_retries:
            # Consistent failure: the machine rests in Timeout(seq), which
            # is exactly the paper's "Failure" outcome of sendPacket.
            self.failed = True
            return
        self.retries_used += 1
        self.machine.exec_trans("RETRY")
        self._retransmit()


class ArqReceiver:
    """Drives the receiver machine; delivers verified payloads in order."""

    def __init__(self, sim: Simulator, node: Node, peer_name: str) -> None:
        self.sim = sim
        self.node = node
        self.peer_name = peer_name
        self.spec = build_receiver_spec()
        self.machine = Machine(self.spec)
        self.delivered: List[bytes] = []
        self.acks_sent = 0
        self.rejected = 0
        node.on_receive(self._on_frame)

    @property
    def expected_seq(self) -> int:
        """The sequence number the receiver is waiting for."""
        return self.machine.current.values[0]

    def _on_frame(self, frame: bytes, sender: str) -> None:
        verified = ARQ_PACKET.try_parse(frame)
        if verified is None:
            self.rejected += 1  # unverified packets are never processed
            return
        packet = verified.value
        if packet.seq == self.expected_seq:
            self.machine.exec_trans("RECV", verified)
            self.delivered.append(packet.payload)
            self._send_ack(packet.seq)
        elif packet.seq == (self.expected_seq - 1) % (1 << SEQ_BITS):
            self.machine.exec_trans("DUP_ACK", verified)
            self._send_ack(packet.seq)
        else:
            self.rejected += 1

    def _send_ack(self, seq: int) -> None:
        ack = ACK_PACKET.make(seq=seq)
        self.node.send(self.peer_name, ACK_PACKET.encode(ack))
        self.acks_sent += 1


@dataclass
class TransferReport:
    """Outcome of one simulated ARQ transfer."""

    success: bool
    messages: List[bytes]
    delivered: List[bytes]
    retransmissions: int
    data_frames_sent: int
    ack_frames_sent: int
    rejected_frames: int
    duration: float
    violations: List[str] = field(default_factory=list)

    @property
    def goodput(self) -> float:
        """Delivered payload bytes per virtual second."""
        if self.duration <= 0:
            return 0.0
        return sum(len(m) for m in self.delivered) / self.duration


def check_transfer_invariants(
    messages: Sequence[bytes], delivered: Sequence[bytes]
) -> List[str]:
    """The protocol invariants of a reliable in-order transfer.

    Returns human-readable violation descriptions; an empty list means the
    delivery is a faithful prefix (complete transfers must deliver all).
    """
    violations: List[str] = []
    for index, payload in enumerate(delivered):
        if index >= len(messages):
            violations.append(
                f"delivered {len(delivered)} messages but only "
                f"{len(messages)} were sent (duplication)"
            )
            break
        if payload != messages[index]:
            violations.append(
                f"message {index} delivered as {payload!r}, sent "
                f"{messages[index]!r} (corruption, loss, duplication or "
                "reordering reached the application)"
            )
    return violations


def run_transfer(
    messages: Sequence[bytes],
    config: Optional[ChannelConfig] = None,
    seed: int = 0,
    rto: float = 0.5,
    max_retries: int = 25,
    time_limit: float = 10_000.0,
    adaptive_rto: bool = False,
    max_rto: float = 60.0,
    max_events: int = 1_000_000,
) -> TransferReport:
    """Run a full stop-and-wait transfer over a faulty duplex link.

    ``max_events`` is the simulation budget; a transfer that exhausts it
    while events are still pending raises
    :class:`~repro.netsim.simulator.BudgetExhausted` rather than quietly
    reporting failure — a retry-capped stop-and-wait run ends (done or
    failed) orders of magnitude below the default.
    """
    sim = Simulator()
    sender_node = Node(sim, "sender")
    receiver_node = Node(sim, "receiver")
    link = DuplexLink(
        sim, sender_node, receiver_node, config or ChannelConfig(), seed=seed
    )
    receiver = ArqReceiver(sim, receiver_node, "sender")
    sender = ArqSender(
        sim, sender_node, "receiver", messages, rto=rto,
        max_retries=max_retries, adaptive_rto=adaptive_rto, max_rto=max_rto,
    )
    sender.start()
    sim.run_until(lambda: sender.done or sender.failed, max_events=max_events)
    sim.run(until=min(sim.now + 2 * rto, time_limit))  # drain in-flight acks
    delivered = list(receiver.delivered)
    violations = check_transfer_invariants(messages, delivered)
    success = sender.done and delivered == list(messages)
    return TransferReport(
        success=success,
        messages=list(messages),
        delivered=delivered,
        retransmissions=sender.retransmissions,
        data_frames_sent=sender.frames_sent,
        ack_frames_sent=receiver.acks_sent,
        rejected_frames=receiver.rejected,
        duration=sim.now,
        violations=violations,
    )
