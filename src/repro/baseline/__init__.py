"""Hand-coded, sockets-style protocol implementations (the §1 comparator).

The paper opens with the C sockets experience: manual byte packing,
pervasive error checking tangled into protocol logic, and bugs that a type
system would have caught.  :mod:`repro.baseline.sockets_arq` is that
style of code, written deliberately and honestly — ``struct`` packing,
sentinel error codes, manual state flags — plus **seedable bugs**
(:data:`~repro.baseline.sockets_arq.KNOWN_BUGS`), each a one-line mistake
of a kind the DSL makes unrepresentable.  Experiment E1 injects faults and
counts the protocol violations each variant lets through; experiment E5
measures how much of this code is error handling.
"""

from repro.baseline.sockets_arq import (
    KNOWN_BUGS,
    SocketsStyleReceiver,
    SocketsStyleSender,
    run_baseline_transfer,
)

__all__ = [
    "SocketsStyleSender",
    "SocketsStyleReceiver",
    "run_baseline_transfer",
    "KNOWN_BUGS",
]
