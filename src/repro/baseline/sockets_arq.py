"""A stop-and-wait ARQ written the way the paper says protocols get written.

This module is the control group.  It implements the *same* protocol as
:mod:`repro.protocols.arq`, against the same simulator, but in classic
C-sockets style: ``struct`` packing with hand-tracked offsets, sentinel
error codes, manual state flags, and validation logic interleaved with
protocol logic.  Nothing here touches :mod:`repro.core` — that is the
point.

The ``bug`` parameter seeds one of four realistic, one-line mistakes
(:data:`KNOWN_BUGS`).  Each has a direct DSL counterpart that *cannot be
written*:

=================  ====================================================
bug                why the DSL forbids the equivalent
=================  ====================================================
skip_checksum      RECV requires a ``Verified`` packet; there is no
                   path from raw bytes to processing that skips
                   verification.
accept_any_ack     OK's guard ties the ack's sequence number to the
                   state index; OK demands a ``Verified[ArqAck]``.
bad_dup_check      the duplicate guard compares against the dependent
                   state parameter, not a hand-maintained counter.
forget_timer       not a type error even in the DSL — but the sender
                   machine's completeness declaration forces a ``timer``
                   handler to *exist*; here the handler exists and is
                   silently never armed.
=================  ====================================================

Wire format (identical to the DSL spec, so the two interoperate):
``seq:1  chk:1  len:1  payload:len`` for data, ``seq:1  chk:1`` for acks,
with ``chk`` an XOR over the other bytes.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from repro.netsim.channel import ChannelConfig
from repro.netsim.node import DuplexLink, Node
from repro.netsim.simulator import BudgetExhausted, Simulator
from repro.netsim.timers import Timer

# Error codes, C style.
ERR_OK = 0
ERR_TOO_SHORT = -1
ERR_BAD_LENGTH = -2
ERR_BAD_CHECKSUM = -3
ERR_BAD_SEQ = -4

KNOWN_BUGS = ("skip_checksum", "accept_any_ack", "bad_dup_check", "forget_timer")


def _xor(data: bytes) -> int:
    value = 0
    for byte in data:
        value ^= byte
    return value


def pack_data(seq: int, payload: bytes) -> bytes:
    """Manually pack a data frame (header offsets tracked by hand)."""
    if not 0 <= seq <= 255:
        raise ValueError("seq out of range")
    if len(payload) > 255:
        raise ValueError("payload too long")
    chk = _xor(bytes((seq, len(payload))) + payload)
    return struct.pack("!BBB", seq, chk, len(payload)) + payload


def unpack_data(frame: bytes, validate_checksum: bool = True):
    """Manually unpack a data frame; returns (err, seq, payload)."""
    if len(frame) < 3:
        return ERR_TOO_SHORT, 0, b""
    seq, chk, length = struct.unpack("!BBB", frame[:3])
    payload = frame[3:]
    if len(payload) != length:
        return ERR_BAD_LENGTH, seq, b""
    if validate_checksum:
        expected = _xor(bytes((seq, length)) + payload)
        if chk != expected:
            return ERR_BAD_CHECKSUM, seq, b""
    return ERR_OK, seq, payload


def pack_ack(seq: int) -> bytes:
    """Manually pack an acknowledgement frame."""
    return struct.pack("!BB", seq, _xor(bytes((seq,))))


def unpack_ack(frame: bytes):
    """Manually unpack an ack; returns (err, seq)."""
    if len(frame) != 2:
        return ERR_TOO_SHORT, 0
    seq, chk = struct.unpack("!BB", frame)
    if chk != _xor(bytes((seq,))):
        return ERR_BAD_CHECKSUM, seq
    return ERR_OK, seq


class SocketsStyleSender:
    """The hand-rolled sender: state is a string flag plus counters."""

    def __init__(
        self,
        sim: Simulator,
        node: Node,
        peer_name: str,
        messages: Sequence[bytes],
        rto: float = 0.5,
        max_retries: int = 25,
        bug: Optional[str] = None,
    ) -> None:
        if bug is not None and bug not in KNOWN_BUGS:
            raise ValueError(f"unknown bug {bug!r}; known: {KNOWN_BUGS}")
        self.sim = sim
        self.node = node
        self.peer_name = peer_name
        self.queue: List[bytes] = list(messages)
        self.rto = rto
        self.max_retries = max_retries
        self.bug = bug
        self.state = "ready"  # "ready" | "wait" | "done" | "failed"
        self.seq = 0
        self.retries = 0
        self.retransmissions = 0
        self.frames_sent = 0
        self.timer = Timer(sim, rto, self._on_timeout, name="baseline-rto")
        node.on_receive(self._on_frame)

    @property
    def done(self) -> bool:
        """True when the transfer finished."""
        return self.state == "done"

    @property
    def failed(self) -> bool:
        """True when retries were exhausted."""
        return self.state == "failed"

    def start(self) -> None:
        """Begin the transfer."""
        self._send_next()

    def _send_next(self) -> None:
        if not self.queue:
            self.state = "done"
            self.timer.stop()
            return
        self.state = "wait"
        self.retries = 0
        self._transmit()
        self.timer.start(self.rto)

    def _transmit(self) -> None:
        frame = pack_data(self.seq, self.queue[0])
        self.node.send(self.peer_name, frame)
        self.frames_sent += 1

    def _on_frame(self, frame: bytes, sender: str) -> None:
        if self.state != "wait":
            return
        err, ack_seq = unpack_ack(frame)
        if self.bug == "accept_any_ack":
            # BUG: advance on *any* frame that parses as two bytes, without
            # checking the checksum result or the sequence number.  A
            # corrupted or stale ack silently skips a message.
            if len(frame) == 2:
                self._accept_ack()
            return
        if err != ERR_OK:
            self._transmit()  # bad ack: resend immediately
            self.retransmissions += 1
            return
        if ack_seq != self.seq:
            self._transmit()
            self.retransmissions += 1
            return
        self._accept_ack()

    def _accept_ack(self) -> None:
        self.timer.stop()
        self.queue.pop(0)
        self.seq = (self.seq + 1) % 256
        self.state = "ready"
        self._send_next()

    def _on_timeout(self) -> None:
        if self.state != "wait":
            return
        if self.retries >= self.max_retries:
            self.state = "failed"
            return
        self.retries += 1
        self.retransmissions += 1
        self._transmit()
        if self.bug != "forget_timer":
            self.timer.start(self.rto)
        # BUG(forget_timer): the retransmission is sent but the timer is
        # never re-armed; if this retransmission (or its ack) is lost, the
        # transfer silently hangs forever.


class SocketsStyleReceiver:
    """The hand-rolled receiver: expected-seq counter plus manual checks."""

    def __init__(
        self,
        sim: Simulator,
        node: Node,
        peer_name: str,
        bug: Optional[str] = None,
    ) -> None:
        if bug is not None and bug not in KNOWN_BUGS:
            raise ValueError(f"unknown bug {bug!r}; known: {KNOWN_BUGS}")
        self.sim = sim
        self.node = node
        self.peer_name = peer_name
        self.bug = bug
        self.expected = 0
        self.delivered: List[bytes] = []
        self.acks_sent = 0
        self.rejected = 0
        node.on_receive(self._on_frame)

    def _on_frame(self, frame: bytes, sender: str) -> None:
        validate = self.bug != "skip_checksum"
        # BUG(skip_checksum): checksum validation disabled — corrupted
        # payloads flow straight into the application.
        err, seq, payload = unpack_data(frame, validate_checksum=validate)
        if err != ERR_OK:
            self.rejected += 1
            return
        if seq == self.expected:
            self.delivered.append(payload)
            self.expected = (self.expected + 1) % 256
            self._ack(seq)
        elif self.bug == "bad_dup_check":
            # BUG: sloppy duplicate handling — any non-expected sequence
            # number is treated as new data instead of being re-acked or
            # dropped, so duplicates and strays reach the application.
            self.delivered.append(payload)
            self._ack(seq)
        elif seq == (self.expected - 1) % 256:
            self._ack(seq)  # duplicate of the previous packet: re-ack
        else:
            self.rejected += 1

    def _ack(self, seq: int) -> None:
        self.node.send(self.peer_name, pack_ack(seq))
        self.acks_sent += 1


class BlockingArqClient:
    """Hand-rolled blocking-socket ARQ sender: the classic while-loop.

    The live counterpart of :class:`SocketsStyleSender` — same wire
    format, same manual state flag, but over a real kernel socket
    against the ``repro.serve`` plane, which is exactly the interop the
    paper's position implies: a DSL-hosted endpoint must converse with
    code written the ordinary way.

    Over UDP each frame is one datagram and the bare wire format works
    as-is.  Over TCP it does not: a stream carries no frame boundaries,
    so two back-to-back acks arrive as one ``recv`` and a frame can
    split across reads — the classic sockets-code framing mistake (the
    first cut of this client read fixed sizes and desynchronized).  The
    fix is the classic sockets-code fix, hand-rolled here to match the
    serving plane's stream framing: a 2-byte big-endian length prefix
    before every frame, with an explicit read-exactly loop.
    """

    def __init__(
        self,
        host: str,
        port: int,
        transport: str = "udp",
        rto: float = 0.25,
        max_retries: int = 25,
    ) -> None:
        if transport not in ("udp", "tcp"):
            raise ValueError(f"transport must be udp|tcp, got {transport!r}")
        self.host = host
        self.port = port
        self.transport = transport
        self.rto = rto
        self.max_retries = max_retries
        self.seq = 0
        self.frames_sent = 0
        self.retransmissions = 0
        self.acks_seen = 0

    # -- hand-rolled stream framing (the TCP fix) ------------------------

    @staticmethod
    def _frame_tcp(frame: bytes) -> bytes:
        return struct.pack("!H", len(frame)) + frame

    @staticmethod
    def _read_exact(sock, count: int) -> bytes:
        """Read exactly ``count`` bytes or raise on EOF; the loop every
        sockets programmer eventually writes after the first time
        ``recv`` returns a short read."""
        chunks = []
        remaining = count
        while remaining:
            chunk = sock.recv(remaining)
            if not chunk:
                raise ConnectionError("peer closed mid-frame")
            chunks.append(chunk)
            remaining -= len(chunk)
        return b"".join(chunks)

    def _recv_frame(self, sock) -> bytes:
        if self.transport == "udp":
            return sock.recv(4096)
        (length,) = struct.unpack("!H", self._read_exact(sock, 2))
        if length == 0:
            raise ConnectionError("zero-length frame prefix")
        return self._read_exact(sock, length)

    def _send_frame(self, sock, frame: bytes) -> None:
        if self.transport == "udp":
            sock.send(frame)
        else:
            sock.sendall(self._frame_tcp(frame))
        self.frames_sent += 1

    # -- the transfer loop ----------------------------------------------

    def send_messages(self, messages: Sequence[bytes]) -> dict:
        """Send every message stop-and-wait; returns a summary dict."""
        import socket as socket_mod

        kind = (
            socket_mod.SOCK_DGRAM
            if self.transport == "udp"
            else socket_mod.SOCK_STREAM
        )
        ok = True
        with socket_mod.socket(socket_mod.AF_INET, kind) as sock:
            sock.connect((self.host, self.port))
            sock.settimeout(self.rto)
            for payload in messages:
                if not self._send_one(sock, payload):
                    ok = False
                    break
        return {
            "ok": ok,
            "sent": self.frames_sent,
            "retransmissions": self.retransmissions,
            "acks_seen": self.acks_seen,
            "final_seq": self.seq,
        }

    def _send_one(self, sock, payload: bytes) -> bool:
        import socket as socket_mod

        frame = pack_data(self.seq, payload)
        self._send_frame(sock, frame)
        retries = 0
        while True:
            try:
                reply = self._recv_frame(sock)
            except socket_mod.timeout:
                if retries >= self.max_retries:
                    return False
                retries += 1
                self.retransmissions += 1
                self._send_frame(sock, frame)
                continue
            err, ack_seq = unpack_ack(reply)
            self.acks_seen += 1
            if err != ERR_OK or ack_seq != self.seq:
                self.retransmissions += 1
                self._send_frame(sock, frame)
                continue
            self.seq = (self.seq + 1) % 256
            return True


def run_baseline_transfer(
    messages: Sequence[bytes],
    config: Optional[ChannelConfig] = None,
    seed: int = 0,
    rto: float = 0.5,
    max_retries: int = 25,
    sender_bug: Optional[str] = None,
    receiver_bug: Optional[str] = None,
    max_events: int = 2_000_000,
):
    """Run the hand-coded ARQ; returns the same TransferReport as the DSL.

    ``max_events`` bounds the simulation because the ``forget_timer`` bug
    can hang a transfer forever — itself a finding.
    """
    from repro.protocols.arq import TransferReport, check_transfer_invariants

    sim = Simulator()
    sender_node = Node(sim, "sender")
    receiver_node = Node(sim, "receiver")
    DuplexLink(sim, sender_node, receiver_node, config or ChannelConfig(), seed=seed)
    receiver = SocketsStyleReceiver(sim, receiver_node, "sender", bug=receiver_bug)
    sender = SocketsStyleSender(
        sim, sender_node, "receiver", messages,
        rto=rto, max_retries=max_retries, bug=sender_bug,
    )
    sender.start()
    try:
        sim.run_until(lambda: sender.done or sender.failed, max_events=max_events)
    except BudgetExhausted:
        # The seeded bug wedged the transfer (e.g. ``forget_timer`` leaves
        # the sender waiting forever); the report below records the
        # failure, which is exactly the finding this baseline exists for.
        pass
    sim.run(until=sim.now + 2 * rto)
    delivered = list(receiver.delivered)
    violations = check_transfer_invariants(messages, delivered)
    return TransferReport(
        success=sender.done and delivered == list(messages),
        messages=list(messages),
        delivered=delivered,
        retransmissions=sender.retransmissions,
        data_frames_sent=sender.frames_sent,
        ack_frames_sent=receiver.acks_sent,
        rejected_frames=receiver.rejected,
        duration=sim.now,
        violations=violations,
    )
