"""Static measurement of error-handling code density.

The paper claims (§1) that in sockets-style protocol code, "typically, 50%
or more of the code will deal with error checking or other software
control functions rather than the functionality of the protocol, and it is
not easy to separate these aspects".  This module operationalizes the
measurement with an AST-based classifier so experiment E5 can apply one
impartial rule to both the hand-coded baseline and the DSL definitions.

A *code line* is a physical line carrying at least one executable AST
statement (docstrings, comments and blanks are excluded).  A statement is
classified as **error handling** when it is:

* a ``raise`` or ``assert``;
* any statement inside an ``except`` handler (plus the handler line);
* the ``try`` scaffolding lines themselves;
* a guard conditional: an ``if`` whose body (and each terminal branch)
  immediately bails — ``raise``, ``return`` of an error sentinel
  (``None``, ``False``, or a negative constant), bare ``return``,
  ``continue``, or ``break`` — the classic C-style check-and-bail shape;
* a call to an obvious validation routine (name containing ``valid``,
  ``check`` or ``unpack`` whose result feeds a guard is already covered
  by the guard rule; direct ``validate``/``check_*`` calls count too).
"""

from __future__ import annotations

import ast
import inspect
import textwrap
from dataclasses import dataclass
from types import ModuleType
from typing import Set, Union


@dataclass(frozen=True)
class CodeMetrics:
    """Line counts for one measured source body."""

    name: str
    code_lines: int
    error_handling_lines: int

    @property
    def error_fraction(self) -> float:
        """Error-handling lines over all code lines."""
        if self.code_lines == 0:
            return 0.0
        return self.error_handling_lines / self.code_lines


def _is_error_sentinel(node: ast.AST) -> bool:
    """None, False, or a negative numeric constant (C-style error codes)."""
    if isinstance(node, ast.Constant):
        if node.value is None or node.value is False:
            return True
        return isinstance(node.value, (int, float)) and node.value < 0
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        return isinstance(node.operand, ast.Constant)
    if isinstance(node, ast.Name):
        return node.id.upper().startswith("ERR")
    if isinstance(node, ast.Tuple):
        return any(_is_error_sentinel(element) for element in node.elts)
    return False


def _is_bail_statement(stmt: ast.stmt) -> bool:
    if isinstance(stmt, (ast.Raise, ast.Continue, ast.Break)):
        return True
    if isinstance(stmt, ast.Return):
        if stmt.value is None:
            return True
        return _is_error_sentinel(stmt.value)
    return False


def _is_guard_conditional(node: ast.If) -> bool:
    """An ``if`` whose every branch terminal is a bail-out."""

    def branch_bails(body) -> bool:
        return bool(body) and _is_bail_statement(body[-1])

    if not branch_bails(node.body):
        return False
    if node.orelse:
        # elif chains: every arm must bail for the whole thing to be a guard.
        if len(node.orelse) == 1 and isinstance(node.orelse[0], ast.If):
            return _is_guard_conditional(node.orelse[0])
        return branch_bails(node.orelse)
    return True


_VALIDATION_NAME_MARKERS = ("validate", "check_", "verify", "assert_")


def _is_validation_call(stmt: ast.stmt) -> bool:
    if not isinstance(stmt, ast.Expr) or not isinstance(stmt.value, ast.Call):
        return False
    function = stmt.value.func
    if isinstance(function, ast.Attribute):
        name = function.attr
    elif isinstance(function, ast.Name):
        name = function.id
    else:
        return False
    lowered = name.lower()
    return any(marker in lowered for marker in _VALIDATION_NAME_MARKERS)


def _collect_lines(node: ast.AST, into: Set[int]) -> None:
    for child in ast.walk(node):
        lineno = getattr(child, "lineno", None)
        if lineno is not None:
            into.add(lineno)
        end = getattr(child, "end_lineno", None)
        if lineno is not None and end is not None:
            into.update(range(lineno, end + 1))


class _Classifier(ast.NodeVisitor):
    """Walks a module AST, collecting code lines and error-handling lines."""

    def __init__(self) -> None:
        self.code_lines: Set[int] = set()
        self.error_lines: Set[int] = set()

    def classify(self, tree: ast.AST) -> None:
        """Entry point."""
        for node in ast.walk(tree):
            if isinstance(node, ast.stmt):
                lineno = getattr(node, "lineno", None)
                if lineno is not None:
                    self.code_lines.add(lineno)
                if isinstance(node, ast.Expr) and isinstance(
                    node.value, ast.Constant
                ):
                    # Docstrings / bare string expressions are not code.
                    self.code_lines.discard(lineno)
                    continue
                self._classify_statement(node)

    def _classify_statement(self, node: ast.stmt) -> None:
        if isinstance(node, (ast.Raise, ast.Assert)):
            _collect_lines(node, self.error_lines)
        elif isinstance(node, ast.Try):
            # The try/except scaffolding and handler bodies are handling;
            # the try body itself is protocol logic.
            self.error_lines.add(node.lineno)
            for handler in node.handlers:
                _collect_lines(handler, self.error_lines)
        elif isinstance(node, ast.If) and _is_guard_conditional(node):
            _collect_lines(node, self.error_lines)
        elif _is_validation_call(node):
            _collect_lines(node, self.error_lines)


def measure_source(source: str, name: str = "<source>") -> CodeMetrics:
    """Measure a source string; see the module docstring for the rules."""
    tree = ast.parse(textwrap.dedent(source))
    classifier = _Classifier()
    classifier.classify(tree)
    # Error lines that are also code lines (they all should be).
    error = classifier.error_lines & classifier.code_lines
    return CodeMetrics(
        name=name,
        code_lines=len(classifier.code_lines),
        error_handling_lines=len(error),
    )


def measure_module(module: Union[ModuleType, type]) -> CodeMetrics:
    """Measure an imported module (or class) by introspecting its source."""
    source = inspect.getsource(module)
    name = getattr(module, "__name__", repr(module))
    return measure_source(source, name=name)


def error_handling_fraction(source_or_module: Union[str, ModuleType]) -> float:
    """Convenience: the error-handling fraction of a source body."""
    if isinstance(source_or_module, str):
        return measure_source(source_or_module).error_fraction
    return measure_module(source_or_module).error_fraction
