"""Code metrics and trace verification utilities.

* :mod:`repro.analysis.metrics` — static classification of source lines
  into protocol logic vs error handling, quantifying the paper's §1 claim
  that "typically, 50% or more of the code will deal with error checking
  or other software control functions" in sockets-style implementations
  (experiment E5);
* :mod:`repro.analysis.traces` — validation of recorded machine traces:
  chain consistency and replayability against the sealed spec.
"""

from repro.analysis.metrics import (
    CodeMetrics,
    error_handling_fraction,
    measure_module,
    measure_source,
)
from repro.analysis.traces import TraceValidationError, trace_summary, validate_trace

__all__ = [
    "CodeMetrics",
    "measure_source",
    "measure_module",
    "error_handling_fraction",
    "validate_trace",
    "trace_summary",
    "TraceValidationError",
]
