"""Validation of recorded machine traces.

A :class:`~repro.core.machine.Machine` records every executed transition
as a :class:`~repro.core.machine.TraceStep`.  These helpers audit a trace
after the fact — the "inline testing" the paper's abstract promises:

* :func:`validate_trace` checks chain consistency (each step starts where
  the previous ended), that every named transition exists in the spec,
  and that each step's source/target instantiate that transition's
  patterns under the recorded bindings;
* :func:`trace_summary` renders a human-readable transcript.
"""

from __future__ import annotations

from typing import Sequence

from repro.core.machine import TraceStep
from repro.core.statemachine import MachineSpec, StateInstance
from repro.core.symbolic import UnificationError


class TraceValidationError(ValueError):
    """Raised when a recorded trace is inconsistent with its spec."""

    def __init__(self, step_index: int, message: str) -> None:
        self.step_index = step_index
        super().__init__(f"trace step {step_index}: {message}")


def validate_trace(
    spec: MachineSpec,
    initial: StateInstance,
    trace: Sequence[TraceStep],
) -> None:
    """Audit a recorded trace against its machine spec.

    Raises :class:`TraceValidationError` at the first inconsistency; a
    clean return certifies the trace is a genuine run of the spec.
    """
    current = initial
    for index, step in enumerate(trace):
        if step.source != current:
            raise TraceValidationError(
                index,
                f"starts at {step.source!r} but the machine was at {current!r}",
            )
        try:
            transition = spec.transition_named(step.transition)
        except KeyError:
            raise TraceValidationError(
                index, f"no transition named {step.transition!r} in spec"
            ) from None
        bindings = step.bindings_dict()
        try:
            matched = transition.source.match(step.source)
        except UnificationError as exc:
            raise TraceValidationError(
                index,
                f"source {step.source!r} does not match pattern "
                f"{transition.source!r}: {exc}",
            ) from None
        for name, value in matched.items():
            if bindings.get(name) != value:
                raise TraceValidationError(
                    index,
                    f"recorded binding {name}={bindings.get(name)!r} "
                    f"disagrees with matched value {value}",
                )
        expected_target = transition.target.instantiate(bindings)
        if expected_target != step.target:
            raise TraceValidationError(
                index,
                f"target {step.target!r} differs from the spec-computed "
                f"{expected_target!r}",
            )
        current = step.target


def trace_summary(trace: Sequence[TraceStep]) -> str:
    """A readable, line-per-step transcript of a machine run."""
    lines = []
    for index, step in enumerate(trace):
        bindings = ", ".join(f"{k}={v}" for k, v in step.bindings)
        lines.append(
            f"{index:4d}  {step.source!r} --{step.transition}"
            f"[{bindings}]--> {step.target!r}"
        )
    return "\n".join(lines)
