"""repro — a DSL for network protocols, after Bhatti et al. (ICDCS 2009).

A Python embedding of the paper's position: protocol *formats*, *behaviour*
and *verification* defined together in one framework, with
correct-by-construction guarantees enforced at definition time and
proof-carrying values at runtime.

Package map
-----------
``repro.core``
    The DSL: packet specs, verified values, typed state machines, the
    machine runtime, the definition-time checker, ASCII/ABNF exporters and
    the code generator.
``repro.obs``
    Unified observability: labeled metrics (counters, gauges, log-bucket
    histograms), a ring-buffered span/event tracer on dual wall/virtual
    timelines, ``@profiled`` hooks, and a text dashboard + JSON export.
    Disabled by default; ``repro.obs.enable()`` switches the process on.
``repro.wire``
    Bit-level I/O and checksum algorithms.
``repro.netsim``
    Deterministic discrete-event network simulator (loss, corruption,
    duplication, reordering, delay).
``repro.protocols``
    Protocols written in the DSL: the paper's ARQ example, Go-Back-N,
    Selective Repeat, a connection handshake, and classic header formats
    (IPv4 — the paper's Figure 1 — UDP, TCP, ICMP).
``repro.abnf`` / ``repro.asn1``
    The syntactic comparators the paper discusses (RFC 5234 ABNF engine;
    mini-ASN.1 with two encoding rule sets).
``repro.modelcheck``
    Explicit-state FSM model checker (the verification baseline of §4.2).
``repro.adapt`` / ``repro.trust``
    Behavioural hooks from §1.1: fuzzy adaptation, adaptive timers,
    trust-aware forwarding.
``repro.baseline``
    Hand-coded sockets-style ARQ used as the correctness/code-volume
    comparator.
``repro.analysis``
    Code metrics and trace verification utilities.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
