"""The replayable corpus: interesting inputs and counterexamples on disk.

A corpus is a JSONL file of :class:`CorpusEntry` records.  Two uses:

* **seeding** — inputs that reached new coverage are persisted, so the
  next fuzzing run starts from territory the last one conquered;
* **replay** — every reported failure carries the exact bytes (original
  and shrunk) plus the classification it produced, so
  ``python -m repro.conformance --replay FILE`` re-runs each entry and
  verifies the behaviour is still reproducible — the regression gate for
  every future codec/runtime change.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional


@dataclass
class CorpusEntry:
    """One persisted input: where it came from and what it did."""

    engine: str  # "fuzz" | "differential" | "machine"
    subject: str  # spec or machine name
    outcome: str  # classification label at record time
    data: bytes  # the original input (bytes or encoded event list)
    shrunk: Optional[bytes] = None  # minimized reproducer, when one exists
    seed: Optional[int] = None  # run seed that produced it
    detail: str = ""  # free-text context (exception repr, field, ...)
    meta: Dict[str, str] = field(default_factory=dict)

    def reproducer(self) -> bytes:
        """The bytes to replay: the shrunk form when available."""
        return self.shrunk if self.shrunk is not None else self.data

    def to_json(self) -> str:
        record = {
            "engine": self.engine,
            "subject": self.subject,
            "outcome": self.outcome,
            "data": self.data.hex(),
            "shrunk": self.shrunk.hex() if self.shrunk is not None else None,
            "seed": self.seed,
            "detail": self.detail,
            "meta": self.meta,
        }
        return json.dumps(record, sort_keys=True)

    @classmethod
    def from_json(cls, line: str) -> "CorpusEntry":
        record = json.loads(line)
        return cls(
            engine=record["engine"],
            subject=record["subject"],
            outcome=record["outcome"],
            data=bytes.fromhex(record["data"]),
            shrunk=(
                bytes.fromhex(record["shrunk"])
                if record.get("shrunk") is not None
                else None
            ),
            seed=record.get("seed"),
            detail=record.get("detail", ""),
            meta=record.get("meta", {}),
        )


class Corpus:
    """An append-only collection of entries with JSONL persistence."""

    def __init__(self, path: Optional[str] = None) -> None:
        self.path = path
        self.entries: List[CorpusEntry] = []
        if path is not None and os.path.exists(path):
            self.entries = list(load_entries(path))

    def add(self, entry: CorpusEntry) -> None:
        """Record an entry (in memory; call :meth:`save` to persist)."""
        self.entries.append(entry)

    def by_subject(self, subject: str) -> List[CorpusEntry]:
        """Entries for one spec or machine, oldest first."""
        return [e for e in self.entries if e.subject == subject]

    def failures(self) -> List[CorpusEntry]:
        """Entries whose outcome is a bug classification."""
        return [e for e in self.entries if e.outcome.startswith("bug")]

    def save(self, path: Optional[str] = None) -> str:
        """Write all entries as JSONL; returns the path written."""
        target = path or self.path
        if target is None:
            raise ValueError("no corpus path configured")
        directory = os.path.dirname(target)
        if directory:
            os.makedirs(directory, exist_ok=True)
        with open(target, "w", encoding="utf-8") as handle:
            for entry in self.entries:
                handle.write(entry.to_json() + "\n")
        return target

    def __len__(self) -> int:
        return len(self.entries)

    def __iter__(self) -> Iterator[CorpusEntry]:
        return iter(self.entries)


def load_entries(path: str) -> Iterator[CorpusEntry]:
    """Stream entries from a JSONL corpus file."""
    with open(path, "r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                yield CorpusEntry.from_json(line)
