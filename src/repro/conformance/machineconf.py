"""State-machine conformance: the runtime versus the explicit-state model.

The same :class:`~repro.core.statemachine.MachineSpec` drives two
independent semantics in this repo — the :class:`~repro.core.Machine`
runtime (``exec_trans``) and the :mod:`repro.modelcheck` explorer.  The
paper's promise is that the spec *is* the model, so the two must agree.
This engine makes that promise executable: it drives random event
sequences through a runtime machine while stepping the model alongside
(:func:`repro.modelcheck.successors_of` with the exact inputs used,
pinned as singleton domains), and flags any divergence:

* ``runtime_accepts_model_forbids`` — the runtime executed a transition
  whose target the model's one-step semantics does not admit.  The model
  over-approximates callable guards (may-fire), so this direction is
  always a genuine bug.
* ``model_allows_runtime_rejects`` — the runtime rejected with a
  dispatch/guard code although the model, with *exact* (non-approximated)
  semantics, admits a target.  Evidence/payload/inputs rejections carry
  no verdict: the model never sees payloads.

For machines whose reachable space is finite (``entry.graph``), a second
leg precomputes the full graph with :func:`repro.modelcheck.explore` and
additionally checks that every visited configuration stays inside the
reachable set and every fired edge exists in the graph.  The model and
runtime sides use *separate* spec builds, compared by
``(state name, parameter values)`` — state instances compare by spec
identity, so cross-build comparison must go through value keys.

Known blind spot, inherited from may-fire: a runtime whose callable
guard is *looser* than intended cannot be told apart from the model's
over-approximation.  Target and state-update drift, guard predicates,
and dispatch behaviour are all covered.

Failing event sequences are minimized with
:func:`repro.conformance.shrink.shrink_sequence` and persisted to the
corpus in a replayable JSON form.
"""

from __future__ import annotations

import json
import random
from typing import Any, Dict, List, Optional, Set, Tuple

from repro.core.machine import InvalidTransitionError, Machine
from repro.core.packet import PacketSpec
from repro.core.statemachine import MachineSpec, StateInstance
from repro.core.verified import Verified
from repro.modelcheck.explicit import explore, successors_of
from repro.conformance.corpus import Corpus, CorpusEntry
from repro.conformance.coverage import REJECTIONS, TRANSITIONS, CoverageMap
from repro.conformance.mutate import Finding
from repro.conformance.registry import MachineEntry, all_spec_entries
from repro.conformance.shrink import shrink_sequence

BUG_DIVERGENCE = "bug_divergence"
BUG_MACHINE_CRASH = "bug_machine_crash"

#: Rejection codes the model can adjudicate.  ``evidence``/``payload``/
#: ``inputs`` rejections depend on data the model never sees.
_MODEL_COMPARABLE_CODES = ("dispatch", "guard")

Op = Tuple[str, Any, Dict[str, int]]  # (transition, payload, inputs)

ConfigKey = Tuple[str, Tuple[int, ...]]


def _key(instance: StateInstance) -> ConfigKey:
    """Cross-build comparison key for a configuration."""
    return (instance.state.name, instance.values)


def _spec_by_name() -> Dict[str, PacketSpec]:
    return {entry.spec.name: entry.spec for entry in all_spec_entries()}


def encode_ops(ops: List[Op]) -> bytes:
    """Serialize an event sequence for the corpus (JSON, replayable)."""
    records = []
    for name, payload, inputs in ops:
        if payload is None:
            encoded: Any = None
        elif isinstance(payload, (bytes, bytearray)):
            encoded = {"kind": "bytes", "hex": bytes(payload).hex()}
        elif isinstance(payload, Verified):
            spec_name = payload.certificate.spec_name
            spec = _spec_by_name()[spec_name]
            encoded = {
                "kind": "verified",
                "spec": spec_name,
                "hex": spec.encode(payload.value).hex(),
            }
        else:
            raise TypeError(f"cannot serialize payload {payload!r}")
        records.append({"t": name, "payload": encoded, "inputs": inputs})
    return json.dumps(records, sort_keys=True).encode("utf-8")


def decode_ops(data: bytes) -> List[Op]:
    """Inverse of :func:`encode_ops`; verified payloads are re-parsed."""
    specs = _spec_by_name()
    ops: List[Op] = []
    for record in json.loads(data.decode("utf-8")):
        encoded = record["payload"]
        if encoded is None:
            payload: Any = None
        elif encoded["kind"] == "bytes":
            payload = bytes.fromhex(encoded["hex"])
        else:
            payload = specs[encoded["spec"]].parse(bytes.fromhex(encoded["hex"]))
        ops.append((record["t"], payload, dict(record["inputs"])))
    return ops


class MachineConformance:
    """Dual-steps one machine entry: runtime walk against model semantics.

    ``runtime_build`` lets callers substitute a different (e.g.
    deliberately corrupted) spec build for the runtime side while the
    model side keeps ``entry.build`` — the fault-injection hook the
    negative tests use.  By default both sides build from the same
    factory, so any disagreement indicts the runtime/model pair itself.
    """

    def __init__(
        self,
        entry: MachineEntry,
        rng: random.Random,
        coverage: CoverageMap,
        corpus: Optional[Corpus] = None,
        seed: Optional[int] = None,
        runtime_build: Optional[Any] = None,
        shrink_budget: int = 400,
    ) -> None:
        self.entry = entry
        self.rng = rng
        self.coverage = coverage
        self.corpus = corpus
        self.seed = seed
        self.shrink_budget = shrink_budget
        self.cases = 0
        self.model_spec: MachineSpec = entry.build()
        self.runtime_build = runtime_build if runtime_build is not None else entry.build
        self._reachable: Optional[Set[ConfigKey]] = None
        self._graph_edges: Optional[Dict[ConfigKey, Set[Tuple[str, ConfigKey]]]] = None
        self._graph_approx: Set[str] = set()
        if entry.graph:
            result = explore(
                self.model_spec,
                input_domains=entry.input_domains,
                max_states=50_000,
            )
            self._reachable = {_key(s) for s in result.reachable_states()}
            self._graph_edges = {
                _key(s): {(t, _key(target)) for t, target in result.successors(s)}
                for s in result.reachable_states()
            }
            self._graph_approx = set(result.approximated_transitions)

    # -- one step of the dual semantics -----------------------------------

    def _model_view(self, instance: StateInstance) -> Optional[StateInstance]:
        """The model-spec configuration matching a runtime configuration."""
        state = self.model_spec.states.get(instance.state.name)
        if state is None or state.arity != len(instance.values):
            return None
        return state.instance(*instance.values)

    def _check_step(
        self, machine: Machine, name: str, payload: Any, inputs: Dict[str, int]
    ) -> Optional[Tuple[str, str]]:
        """Execute one op; returns ``(outcome, detail)`` on divergence."""
        before = machine.current
        before_model = self._model_view(before)
        if before_model is None:
            return BUG_DIVERGENCE, (
                f"runtime configuration {before!r} has no counterpart in the "
                "model spec"
            )
        try:
            transition = self.model_spec.transition_named(name)
        except KeyError:
            return BUG_DIVERGENCE, f"runtime spec has transition {name!r}, model does not"
        domains = (
            {name: {k: (v,) for k, v in inputs.items()}} if inputs else None
        )
        targets, approximated = successors_of(
            self.model_spec, transition, before_model, domains
        )
        target_keys = {_key(t) for t in targets}
        try:
            after = machine.exec_trans(name, payload, **inputs)
        except InvalidTransitionError as exc:
            self.coverage.record_rejection(self.entry.name, name, exc.code)
            if (
                exc.code in _MODEL_COMPARABLE_CODES
                and target_keys
                and not approximated
            ):
                return BUG_DIVERGENCE, (
                    f"model allows {name!r} from {before_model!r} "
                    f"(targets {sorted(target_keys)}) but runtime rejects: "
                    f"{exc.reason} [{exc.code}]"
                )
            return None
        except Exception as exc:  # anything undeclared escaping exec_trans
            return BUG_MACHINE_CRASH, f"exec_trans({name!r}) raised {exc!r}"
        self.coverage.record_transition(self.entry.name, name)
        after_key = _key(after)
        if after_key not in target_keys:
            return BUG_DIVERGENCE, (
                f"runtime executed {name!r}: {_key(before)} -> {after_key}, "
                f"but model admits only {sorted(target_keys)}"
                + (" (may-fire approximated)" if approximated else "")
            )
        if self._reachable is not None and after_key not in self._reachable:
            return BUG_DIVERGENCE, (
                f"runtime reached {after_key} via {name!r}, outside the "
                f"model's reachable graph ({len(self._reachable)} configs)"
            )
        if (
            self._graph_edges is not None
            and name not in self._graph_approx
            and (name, after_key) not in self._graph_edges.get(_key(before), set())
        ):
            return BUG_DIVERGENCE, (
                f"edge ({name!r}, {_key(before)} -> {after_key}) missing from "
                "the model's explored graph"
            )
        return None

    def _replay_diverges(self, ops: List[Op]) -> Optional[Tuple[str, str]]:
        """Replay an op list on a fresh runtime machine; first divergence."""
        machine = Machine(self.runtime_build())
        for name, payload, inputs in ops:
            divergence = self._check_step(machine, name, payload, inputs)
            if divergence is not None:
                return divergence
        return None

    # -- the walk ----------------------------------------------------------

    def run(self, budget: int) -> List[Finding]:
        """Drive ``budget`` events through runtime+model; report divergences."""
        findings: List[Finding] = []
        entry = self.entry
        rng = self.rng
        steps_left = budget
        while steps_left > 0:
            machine = Machine(self.runtime_build())
            ops: List[Op] = []
            for _ in range(min(entry.max_walk_steps, steps_left)):
                steps_left -= 1
                self.cases += 1
                transition = self.coverage.pick(
                    rng,
                    list(self.model_spec.transitions),
                    key=lambda t: (
                        TRANSITIONS,
                        {"machine": entry.name, "transition": t.name},
                    ),
                )
                runtime_transition = transition
                try:
                    runtime_transition = machine.spec.transition_named(
                        transition.name
                    )
                except KeyError:
                    pass
                payload, inputs = entry.arm(runtime_transition, machine, rng)
                ops.append((transition.name, payload, inputs))
                divergence = self._check_step(
                    machine, transition.name, payload, inputs
                )
                if divergence is None:
                    self.coverage.record_outcome("machine", entry.name, "agree")
                    continue
                outcome, detail = divergence
                self.coverage.record_outcome("machine", entry.name, outcome)
                shrunk_ops = shrink_sequence(
                    ops,
                    lambda candidate: self._replay_diverges(list(candidate))
                    is not None,
                    max_evaluations=self.shrink_budget,
                )
                replayed = self._replay_diverges(shrunk_ops)
                finding = Finding(
                    subject=entry.name,
                    outcome=outcome,
                    data=encode_ops(ops),
                    shrunk=encode_ops(shrunk_ops),
                    detail=replayed[1] if replayed else detail,
                )
                findings.append(finding)
                if self.corpus is not None:
                    self.corpus.add(
                        CorpusEntry(
                            engine="machine",
                            subject=entry.name,
                            outcome=outcome,
                            data=finding.data,
                            shrunk=finding.shrunk,
                            seed=self.seed,
                            detail=finding.detail,
                            meta={"events": str(len(shrunk_ops))},
                        )
                    )
                break  # divergent machine state is tainted; start a new walk
        return findings


def replay_machine_entry(
    corpus_entry: CorpusEntry, machine_entry: MachineEntry
) -> Tuple[bool, str]:
    """Replay a persisted machine-divergence entry; True if it still diverges."""
    conformance = MachineConformance(
        machine_entry,
        random.Random(0),
        CoverageMap(),
    )
    ops = decode_ops(corpus_entry.reproducer())
    divergence = conformance._replay_diverges(ops)
    if corpus_entry.outcome.startswith("bug"):
        if divergence is not None:
            return True, divergence[1]
        return False, "recorded divergence no longer reproduces"
    return True, "nothing to check for non-bug entries"
