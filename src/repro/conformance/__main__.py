"""``python -m repro.conformance`` — the correctness gate as a command.

Examples::

    python -m repro.conformance --seed 0 --budget 2000
    python -m repro.conformance --engines fuzz --specs ArqData --json
    python -m repro.conformance --corpus out/corpus.jsonl
    python -m repro.conformance --replay out/corpus.jsonl
    python -m repro.conformance --triage out/bundles/fuzz_bug_crash-....jsonl

With ``REPRO_OBS_EXPORT`` set (a JSONL path, a ``host:port``, or a
comma-separated mix) the run streams live metric snapshots — from the
worker telemetry plane when ``--workers N`` shards the run, from a
periodic in-process publisher otherwise — and finishes with one
``final`` payload holding the merged registry.  ``python -m repro.obs
top <path>`` renders the stream live; ``REPRO_OBS_FLIGHTREC=<dir>``
additionally dumps a replayable flight-recorder bundle on every
undeclared failure (see ``--triage``).

Exit status 0 means every engine ran clean (or every replayed entry
still reproduces, or a triaged bundle still reproduces); 1 means
findings (or replay/triage drift).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.conformance.runner import ENGINES, replay_corpus, run_all


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.conformance",
        description=(
            "Coverage-guided fuzzing, differential testing, and "
            "state-machine conformance over every in-tree spec."
        ),
    )
    parser.add_argument("--seed", type=int, default=0, help="deterministic run seed")
    parser.add_argument(
        "--budget",
        type=int,
        default=2000,
        help="case budget per engine (default: 2000)",
    )
    parser.add_argument(
        "--engines",
        nargs="+",
        choices=ENGINES,
        default=list(ENGINES),
        help="engines to run (default: all)",
    )
    parser.add_argument(
        "--specs", nargs="+", default=None, help="restrict fuzzing to these spec names"
    )
    parser.add_argument(
        "--machines",
        nargs="+",
        default=None,
        help="restrict conformance to these machine names",
    )
    parser.add_argument(
        "--corpus",
        default=None,
        metavar="FILE",
        help="persist interesting inputs and counterexamples to this JSONL file",
    )
    parser.add_argument(
        "--replay",
        default=None,
        metavar="FILE",
        help="replay a saved corpus instead of running the engines",
    )
    parser.add_argument(
        "--triage",
        default=None,
        metavar="BUNDLE",
        help=(
            "load a flight-recorder bundle (REPRO_OBS_FLIGHTREC) and "
            "re-execute its recorded failure deterministically"
        ),
    )
    parser.add_argument(
        "--shrink-budget",
        type=int,
        default=600,
        help="predicate evaluations the shrinker may spend per failure",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "shard conformance units across this many worker processes; "
            "findings and coverage are identical to a serial run with the "
            "same seed (default: 1 = in-process)"
        ),
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    parser.add_argument(
        "--fastpath",
        choices=("off", "auto", "always", "verify"),
        default=None,
        help=(
            "compiled-codec tier policy for this run: off / auto / always, "
            "or 'verify' (= always, with every compiled result cross-checked "
            "against the interpreter); default: the process policy"
        ),
    )
    return parser


def _apply_fastpath(choice: Optional[str]) -> None:
    if choice is None:
        return
    from repro.fastpath import FastPath, set_policy

    if choice == "verify":
        set_policy(FastPath(mode="always", verify=True))
    else:
        set_policy(FastPath(mode=choice))


def _triage(path: str) -> int:
    """Replay one flight-recorder bundle; 0 when it still reproduces."""
    from repro.obs.live.flightrec import load_bundle, replay_bundle

    bundle = load_bundle(path)
    print(
        f"bundle {path}: kind={bundle.kind} subject={bundle.subject or '-'} "
        f"seed={bundle.seed} frames={len(bundle.frames)} "
        f"trace={len(bundle.trace)} spans"
    )
    if bundle.detail:
        print(f"  recorded: {bundle.detail}")
    status, detail = replay_bundle(bundle)
    print(f"  {status.upper()}: {detail}")
    return 0 if status == "reproduced" else 1


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    _apply_fastpath(args.fastpath)
    if args.triage:
        return _triage(args.triage)
    if args.replay:
        checked, drifts = replay_corpus(args.replay)
        print(f"replayed {checked} corpus entr{'y' if checked == 1 else 'ies'}")
        for drift in drifts:
            print(f"  DRIFT: {drift}")
        return 1 if drifts else 0

    # The live telemetry plane, when REPRO_OBS_EXPORT names a target.
    from repro.obs.instrument import enable, get_default
    from repro.obs.live.expose import Exporter, PeriodicPublisher

    exporter = Exporter.from_env()
    publisher = None
    if exporter is not None:
        obs = enable()  # exports need a recording registry
        if args.workers <= 1:
            # Serial runs have no worker pipes to ride: publish the
            # process registry directly on a timer.
            publisher = PeriodicPublisher(exporter, obs.registry.snapshot)
        print(f"obs export: {exporter.describe()}", file=sys.stderr)
    try:
        if args.workers > 1:
            from repro.parallel.confrun import run_all_parallel

            report = run_all_parallel(
                workers=args.workers,
                seed=args.seed,
                budget=args.budget,
                engines=args.engines,
                specs=args.specs,
                machines=args.machines,
                corpus_path=args.corpus,
                shrink_budget=args.shrink_budget,
                exporter=exporter,
            )
        else:
            report = run_all(
                seed=args.seed,
                budget=args.budget,
                engines=args.engines,
                specs=args.specs,
                machines=args.machines,
                corpus_path=args.corpus,
                shrink_budget=args.shrink_budget,
            )
            if exporter is not None:
                exporter.publish(get_default().registry.snapshot(), kind="final")
    finally:
        if publisher is not None:
            publisher.stop()
        if exporter is not None:
            exporter.close()
    print(report.to_json() if args.json else report.render())
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
