"""``python -m repro.conformance`` — the correctness gate as a command.

Examples::

    python -m repro.conformance --seed 0 --budget 2000
    python -m repro.conformance --engines fuzz --specs ArqData --json
    python -m repro.conformance --corpus out/corpus.jsonl
    python -m repro.conformance --replay out/corpus.jsonl

Exit status 0 means every engine ran clean (or every replayed entry
still reproduces); 1 means findings (or replay drift).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.conformance.runner import ENGINES, replay_corpus, run_all


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.conformance",
        description=(
            "Coverage-guided fuzzing, differential testing, and "
            "state-machine conformance over every in-tree spec."
        ),
    )
    parser.add_argument("--seed", type=int, default=0, help="deterministic run seed")
    parser.add_argument(
        "--budget",
        type=int,
        default=2000,
        help="case budget per engine (default: 2000)",
    )
    parser.add_argument(
        "--engines",
        nargs="+",
        choices=ENGINES,
        default=list(ENGINES),
        help="engines to run (default: all)",
    )
    parser.add_argument(
        "--specs", nargs="+", default=None, help="restrict fuzzing to these spec names"
    )
    parser.add_argument(
        "--machines",
        nargs="+",
        default=None,
        help="restrict conformance to these machine names",
    )
    parser.add_argument(
        "--corpus",
        default=None,
        metavar="FILE",
        help="persist interesting inputs and counterexamples to this JSONL file",
    )
    parser.add_argument(
        "--replay",
        default=None,
        metavar="FILE",
        help="replay a saved corpus instead of running the engines",
    )
    parser.add_argument(
        "--shrink-budget",
        type=int,
        default=600,
        help="predicate evaluations the shrinker may spend per failure",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        help=(
            "shard conformance units across this many worker processes; "
            "findings and coverage are identical to a serial run with the "
            "same seed (default: 1 = in-process)"
        ),
    )
    parser.add_argument(
        "--json", action="store_true", help="emit the report as JSON"
    )
    parser.add_argument(
        "--fastpath",
        choices=("off", "auto", "always", "verify"),
        default=None,
        help=(
            "compiled-codec tier policy for this run: off / auto / always, "
            "or 'verify' (= always, with every compiled result cross-checked "
            "against the interpreter); default: the process policy"
        ),
    )
    return parser


def _apply_fastpath(choice: Optional[str]) -> None:
    if choice is None:
        return
    from repro.fastpath import FastPath, set_policy

    if choice == "verify":
        set_policy(FastPath(mode="always", verify=True))
    else:
        set_policy(FastPath(mode=choice))


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    _apply_fastpath(args.fastpath)
    if args.replay:
        checked, drifts = replay_corpus(args.replay)
        print(f"replayed {checked} corpus entr{'y' if checked == 1 else 'ies'}")
        for drift in drifts:
            print(f"  DRIFT: {drift}")
        return 1 if drifts else 0
    if args.workers > 1:
        from repro.parallel.confrun import run_all_parallel

        report = run_all_parallel(
            workers=args.workers,
            seed=args.seed,
            budget=args.budget,
            engines=args.engines,
            specs=args.specs,
            machines=args.machines,
            corpus_path=args.corpus,
            shrink_budget=args.shrink_budget,
        )
    else:
        report = run_all(
            seed=args.seed,
            budget=args.budget,
            engines=args.engines,
            specs=args.specs,
            machines=args.machines,
            corpus_path=args.corpus,
            shrink_budget=args.shrink_budget,
        )
    print(report.to_json() if args.json else report.render())
    return 0 if report.ok else 1


if __name__ == "__main__":
    sys.exit(main())
