"""Coverage accounting for the conformance engines, on ``repro.obs``.

Every engine reports what it exercised — fields mutated, decoder error
paths hit, constraints violated, machine transitions fired — into one
:class:`CoverageMap`, which is a thin policy layer over the PR-1
:class:`~repro.obs.MetricsRegistry`:

* each observation is a labeled counter, so a coverage snapshot is an
  ordinary metrics snapshot (JSON-ready, dashboard-ready);
* a *first* observation of a label set is flagged as **new coverage**,
  which is what makes a fuzz input "interesting" (it joins the corpus);
* :meth:`CoverageMap.pick` schedules work toward uncovered territory:
  candidates are drawn with weight inversely proportional to how often
  their counter has already been hit.
"""

from __future__ import annotations

import random
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple, TypeVar

from repro.obs.metrics import MetricsRegistry

T = TypeVar("T")

# Counter names, fixed so dashboards and tests can rely on them.
FIELD_MUTATIONS = "conformance.field_mutations"
OUTCOMES = "conformance.outcomes"
ERROR_PATHS = "conformance.error_paths"
TRANSITIONS = "conformance.transitions_fired"
REJECTIONS = "conformance.rejections"


class CoverageMap:
    """Shared coverage state for one conformance run.

    Parameters
    ----------
    registry:
        The metrics registry to account into; a fresh private one by
        default so conformance runs never pollute the process-wide
        observability state (pass ``repro.obs.get_default().registry`` to
        merge them deliberately).
    """

    def __init__(self, registry: Optional[MetricsRegistry] = None) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self._seen: set = set()

    # -- recording -------------------------------------------------------

    def _record(self, name: str, **labels: Any) -> bool:
        """Bump a counter; True when this label set is new coverage."""
        key = (name, tuple(sorted(labels.items())))
        fresh = key not in self._seen
        self._seen.add(key)
        self.registry.counter(name, **labels).inc()
        return fresh

    def record_field_mutation(self, spec: str, field: str) -> bool:
        """A mutation targeted ``field`` of ``spec``."""
        return self._record(FIELD_MUTATIONS, spec=spec, field=field)

    def record_outcome(self, engine: str, subject: str, outcome: str) -> bool:
        """An engine classified one case (accept/reject/bug...)."""
        return self._record(OUTCOMES, engine=engine, subject=subject, outcome=outcome)

    def record_error_path(self, spec: str, path: str) -> bool:
        """A declared error path fired (DecodeError kind or constraint)."""
        return self._record(ERROR_PATHS, spec=spec, path=path)

    def record_transition(self, machine: str, transition: str) -> bool:
        """The runtime executed a machine transition."""
        return self._record(TRANSITIONS, machine=machine, transition=transition)

    def record_rejection(self, machine: str, transition: str, code: str) -> bool:
        """The runtime rejected a transition with a reason code."""
        return self._record(
            REJECTIONS, machine=machine, transition=transition, code=code
        )

    # -- scheduling -------------------------------------------------------

    def hits(self, name: str, **labels: Any) -> int:
        """How often a coverage point has been observed so far."""
        metric = self.registry.get(name, **labels)
        return 0 if metric is None else metric.value

    def pick(
        self,
        rng: random.Random,
        candidates: Sequence[T],
        key: Callable[[T], Tuple[str, Dict[str, Any]]],
    ) -> T:
        """Choose a candidate, biased toward the least-covered ones.

        ``key`` maps a candidate to ``(counter_name, labels)``; each
        candidate's weight is ``1 / (1 + hits)``, so unexercised points
        are strongly preferred but covered ones stay reachable (the
        fuzzer never starves a field entirely).
        """
        if not candidates:
            raise ValueError("no candidates to pick from")
        weights: List[float] = []
        for candidate in candidates:
            name, labels = key(candidate)
            weights.append(1.0 / (1.0 + self.hits(name, **labels)))
        total = sum(weights)
        mark = rng.random() * total
        acc = 0.0
        for candidate, weight in zip(candidates, weights):
            acc += weight
            if mark <= acc:
                return candidate
        return candidates[-1]

    # -- cross-process merge ----------------------------------------------

    def export(self) -> Dict[str, Any]:
        """This map as plain picklable data (for the worker result queue).

        Coverage counters are all labeled by subject (spec or machine
        name), so per-subject maps exported from disjoint workers merge
        into exactly the map a serial run over the same subjects builds.
        """
        return {
            "seen": sorted(
                (name, list(labels)) for name, labels in self._seen
            ),
            "metrics": self.registry.snapshot(),
        }

    def merge(self, exported: Dict[str, Any]) -> None:
        """Fold a worker's :meth:`export` into this map."""
        for name, labels in exported.get("seen", ()):
            self._seen.add((name, tuple(tuple(item) for item in labels)))
        self.registry.merge_snapshot(exported.get("metrics", {}))

    # -- reporting ---------------------------------------------------------

    def summary(self) -> Dict[str, Dict[str, int]]:
        """Covered-point counts per coverage dimension (JSON-ready)."""
        out: Dict[str, Dict[str, int]] = {}
        for name in (FIELD_MUTATIONS, OUTCOMES, ERROR_PATHS, TRANSITIONS, REJECTIONS):
            points = [k for k in self._seen if k[0] == name]
            hits = sum(
                self.hits(k[0], **dict(k[1])) for k in points
            )
            out[name] = {"points": len(points), "hits": hits}
        return out
