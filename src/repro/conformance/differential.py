"""Differential testing: the DSL codec against independent implementations.

Two oracles live in-tree and were written without reference to the codec
internals, which makes them ideal cross-checks:

* :mod:`repro.baseline.sockets_arq` — the hand-rolled C-style ARQ codec.
  It shares the DSL ARQ wire format byte for byte (the two interoperate
  in the experiments), so *every* frame must encode identically and
  *every* byte string must be accepted/rejected identically, with equal
  decoded fields on acceptance.
* the ASN.1 codecs — DER and PER are two independent encoders over the
  same abstract value domain, so ``decode(encode(v))`` must be the
  identity under both, and both must agree on the recovered value.

Any disagreement is a bug in one of the implementations — exactly the
"spec gap" failure mode systematic differential testing exists to catch.
Byte-level disagreements are shrunk before reporting.
"""

from __future__ import annotations

import random
from typing import Any, List, Optional

from repro.asn1 import (
    Asn1Error,
    Boolean,
    Choice,
    Enumerated,
    IA5String,
    Integer,
    OctetString,
    Sequence,
    SequenceOf,
    der_decode,
    der_encode,
    per_decode,
    per_encode,
)
from repro.asn1.types import Asn1Type
from repro.baseline.sockets_arq import (
    ERR_OK,
    pack_ack,
    pack_data,
    unpack_ack,
    unpack_data,
)
from repro.conformance.corpus import Corpus, CorpusEntry
from repro.conformance.coverage import CoverageMap
from repro.conformance.mutate import Finding
from repro.conformance.shrink import shrink_bytes
from repro.protocols.arq import ACK_PACKET, ARQ_PACKET

#: The ASN.1 schemas whose value domains the DER and PER codecs share.
ASN1_SCHEMAS = [
    Integer(),
    Integer(0, 255),
    Integer(-500, 500),
    Boolean(),
    OctetString(),
    IA5String(),
    Enumerated({"red": 0, "green": 1, "blue": 5}),
    Sequence([("a", Integer()), ("b", Boolean()), ("c", OctetString())]),
    SequenceOf(Integer(0, 7)),
    Choice([("x", Integer()), ("y", OctetString())]),
]


def random_asn1_value(schema: Asn1Type, rng: random.Random) -> Any:
    """Draw a random inhabitant of an ASN.1 schema's value domain."""
    if isinstance(schema, Integer):
        low = schema.low if schema.low is not None else -(1 << 32)
        high = schema.high if schema.high is not None else (1 << 32)
        return rng.randint(low, high)
    if isinstance(schema, Boolean):
        return rng.random() < 0.5
    if isinstance(schema, OctetString):
        return bytes(rng.randrange(256) for _ in range(rng.randrange(0, 16)))
    if isinstance(schema, IA5String):
        return "".join(chr(rng.randrange(32, 127)) for _ in range(rng.randrange(0, 12)))
    if isinstance(schema, Enumerated):
        return rng.choice(sorted(schema.values))
    if isinstance(schema, Sequence):
        return {
            name: random_asn1_value(sub, rng) for name, sub in schema.fields
        }
    if isinstance(schema, SequenceOf):
        return [
            random_asn1_value(schema.element, rng)
            for _ in range(rng.randrange(0, 6))
        ]
    if isinstance(schema, Choice):
        name, sub = rng.choice(list(schema.alternatives))
        return (name, random_asn1_value(sub, rng))
    raise TypeError(f"no generator for schema {schema!r}")


def _dsl_data_frame(data: bytes):
    """DSL view of an ARQ data frame: (accepted, seq, payload)."""
    verified = ARQ_PACKET.try_parse(data)
    if verified is None:
        return False, 0, b""
    return True, verified.value.seq, verified.value.payload


def _baseline_data_frame(data: bytes):
    err, seq, payload = unpack_data(data)
    return err == ERR_OK, seq, payload


def _data_frames_disagree(data: bytes) -> Optional[str]:
    """Why the two ARQ data-frame decoders disagree on ``data``, if they do."""
    dsl_ok, dsl_seq, dsl_payload = _dsl_data_frame(data)
    base_ok, base_seq, base_payload = _baseline_data_frame(data)
    if dsl_ok != base_ok:
        return (
            f"DSL {'accepts' if dsl_ok else 'rejects'} but baseline "
            f"{'accepts' if base_ok else 'rejects'}"
        )
    if dsl_ok and (dsl_seq, dsl_payload) != (base_seq, base_payload):
        return (
            f"decoded fields differ: DSL (seq={dsl_seq}, payload="
            f"{dsl_payload.hex()!r}), baseline (seq={base_seq}, "
            f"payload={base_payload.hex()!r})"
        )
    return None


def _ack_frames_disagree(data: bytes) -> Optional[str]:
    verified = ACK_PACKET.try_parse(data)
    err, seq = unpack_ack(data)
    dsl_ok = verified is not None
    base_ok = err == ERR_OK
    if dsl_ok != base_ok:
        return (
            f"DSL {'accepts' if dsl_ok else 'rejects'} but baseline "
            f"{'accepts' if base_ok else 'rejects'}"
        )
    if dsl_ok and verified.value.seq != seq:
        return f"decoded seq differs: DSL {verified.value.seq}, baseline {seq}"
    return None


class DifferentialEngine:
    """Cross-checks the DSL codec against the in-tree independent oracles."""

    def __init__(
        self,
        rng: random.Random,
        coverage: CoverageMap,
        corpus: Optional[Corpus] = None,
        seed: Optional[int] = None,
        shrink_budget: int = 600,
    ) -> None:
        self.rng = rng
        self.coverage = coverage
        self.corpus = corpus
        self.seed = seed
        self.shrink_budget = shrink_budget
        self.cases = 0

    # -- ARQ vs. the sockets-style baseline ------------------------------

    def _report(
        self, subject: str, detail: str, data: bytes, shrunk: bytes
    ) -> Finding:
        finding = Finding(
            subject=subject,
            outcome="bug_differential",
            data=data,
            shrunk=shrunk,
            detail=detail,
        )
        if self.corpus is not None:
            self.corpus.add(
                CorpusEntry(
                    engine="differential",
                    subject=subject,
                    outcome="bug_differential",
                    data=data,
                    shrunk=shrunk,
                    seed=self.seed,
                    detail=detail,
                )
            )
        return finding

    def run_arq(self, budget: int) -> List[Finding]:
        """Encode and decode agreement between DSL ARQ and the baseline."""
        rng = self.rng
        findings: List[Finding] = []
        for _ in range(budget):
            self.cases += 1
            seq = rng.randrange(256)
            payload = bytes(rng.randrange(256) for _ in range(rng.randrange(0, 32)))
            # Encode agreement: the same logical frame, byte for byte.
            dsl_wire = ARQ_PACKET.encode(
                ARQ_PACKET.make(seq=seq, length=len(payload), payload=payload)
            )
            base_wire = pack_data(seq, payload)
            if dsl_wire != base_wire:
                self.coverage.record_outcome("differential", "ArqData", "bug")
                findings.append(
                    self._report(
                        "ArqData",
                        f"encoders disagree for seq={seq}: DSL "
                        f"{dsl_wire.hex()!r}, baseline {base_wire.hex()!r}",
                        dsl_wire,
                        dsl_wire,
                    )
                )
                continue
            dsl_ack = ACK_PACKET.encode(ACK_PACKET.make(seq=seq))
            base_ack = pack_ack(seq)
            if dsl_ack != base_ack:
                self.coverage.record_outcome("differential", "ArqAck", "bug")
                findings.append(
                    self._report(
                        "ArqAck",
                        f"ack encoders disagree for seq={seq}",
                        dsl_ack,
                        dsl_ack,
                    )
                )
                continue
            # Decode agreement on a hostile derivative of the valid frame.
            for wire, checker, subject in (
                (dsl_wire, _data_frames_disagree, "ArqData"),
                (dsl_ack, _ack_frames_disagree, "ArqAck"),
            ):
                mutated = bytearray(wire)
                for _ in range(rng.randrange(1, 4)):
                    mutated[rng.randrange(len(mutated))] = rng.randrange(256)
                if rng.random() < 0.3:
                    mutated = mutated[: rng.randrange(len(mutated) + 1)]
                if rng.random() < 0.2:
                    mutated += bytes(
                        rng.randrange(256) for _ in range(rng.randrange(1, 5))
                    )
                data = bytes(mutated)
                detail = checker(data)
                outcome = "bug" if detail else "agree"
                self.coverage.record_outcome("differential", subject, outcome)
                if detail:
                    shrunk = shrink_bytes(
                        data,
                        lambda d, c=checker: c(d) is not None,
                        max_evaluations=self.shrink_budget,
                    )
                    findings.append(
                        self._report(subject, checker(shrunk) or detail, data, shrunk)
                    )
        return findings

    # -- DER vs. PER over the shared value domain --------------------------

    def run_asn1(self, budget: int) -> List[Finding]:
        """Round-trip and cross-codec agreement for every schema."""
        rng = self.rng
        findings: List[Finding] = []
        per_schema = max(1, budget // max(1, len(ASN1_SCHEMAS)))
        for schema in ASN1_SCHEMAS:
            subject = f"asn1:{schema!r}"
            for _ in range(per_schema):
                self.cases += 1
                value = random_asn1_value(schema, rng)
                try:
                    der_wire = der_encode(schema, value)
                    der_value = der_decode(schema, der_wire)
                    per_wire = per_encode(schema, value)
                    per_value = per_decode(schema, per_wire)
                except Asn1Error as exc:
                    self.coverage.record_outcome("differential", subject, "bug")
                    findings.append(
                        self._report(
                            subject,
                            f"declared-valid value {value!r} rejected: {exc}",
                            repr(value).encode(),
                            repr(value).encode(),
                        )
                    )
                    continue
                if der_value != value or per_value != value or der_value != per_value:
                    self.coverage.record_outcome("differential", subject, "bug")
                    findings.append(
                        self._report(
                            subject,
                            f"codecs disagree on {value!r}: DER recovered "
                            f"{der_value!r}, PER recovered {per_value!r}",
                            der_wire,
                            der_wire,
                        )
                    )
                else:
                    self.coverage.record_outcome("differential", subject, "agree")
        return findings

    def run(self, budget: int) -> List[Finding]:
        """Both differential legs, splitting the case budget between them."""
        half = max(1, budget // 2)
        return self.run_arq(half) + self.run_asn1(budget - half)
