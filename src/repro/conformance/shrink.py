"""Minimizers: shrink failing byte strings and event sequences.

Every engine minimizes a failure before reporting it — a counterexample
you can read beats one you must bisect by hand.  Both shrinkers are
greedy delta-debugging loops over a caller-supplied predicate
("does this smaller input still fail the same way?"), bounded by an
evaluation budget so a pathological predicate cannot hang a run.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, TypeVar

T = TypeVar("T")


class _Budget:
    """Counts predicate evaluations; returns False once exhausted."""

    def __init__(self, limit: int) -> None:
        self.limit = limit
        self.used = 0

    def spend(self) -> bool:
        if self.used >= self.limit:
            return False
        self.used += 1
        return True


def shrink_bytes(
    data: bytes,
    still_fails: Callable[[bytes], bool],
    max_evaluations: int = 2000,
) -> bytes:
    """The smallest byte string the shrinker found that still fails.

    Three passes, iterated to fixpoint: remove chunks (halves, then
    quarters, ... down to single bytes), zero bytes, clear single bits.
    The result always satisfies ``still_fails`` (the original is returned
    unchanged if nothing smaller does).
    """
    budget = _Budget(max_evaluations)
    current = data
    improved = True
    while improved:
        improved = False
        # Pass 1: cut chunks, coarse to fine.
        chunk = max(1, len(current) // 2)
        while chunk >= 1:
            start = 0
            while start < len(current):
                candidate = current[:start] + current[start + chunk :]
                if candidate != current and budget.spend() and still_fails(candidate):
                    current = candidate
                    improved = True
                else:
                    start += chunk
                if budget.used >= budget.limit:
                    return current
            chunk //= 2
        # Pass 2: zero bytes (simpler content at equal length).
        for index in range(len(current)):
            if current[index] == 0:
                continue
            candidate = current[:index] + b"\x00" + current[index + 1 :]
            if budget.spend() and still_fails(candidate):
                current = candidate
                improved = True
            if budget.used >= budget.limit:
                return current
        # Pass 3: clear single bits (highest first keeps values small).
        for index in range(len(current)):
            byte = current[index]
            for bit in range(7, -1, -1):
                mask = 1 << bit
                if not byte & mask:
                    continue
                candidate = (
                    current[:index] + bytes((byte & ~mask,)) + current[index + 1 :]
                )
                if budget.spend() and still_fails(candidate):
                    current = candidate
                    byte &= ~mask
                    improved = True
                if budget.used >= budget.limit:
                    return current
    return current


def shrink_sequence(
    items: Sequence[T],
    still_fails: Callable[[List[T]], bool],
    max_evaluations: int = 1000,
) -> List[T]:
    """The shortest subsequence found that still fails.

    Removes runs (halves down to single items), iterated to fixpoint.
    Items are opaque — event steps, mutation records, anything — and the
    returned list always satisfies ``still_fails``.
    """
    budget = _Budget(max_evaluations)
    current = list(items)
    improved = True
    while improved and len(current) > 1:
        improved = False
        chunk = max(1, len(current) // 2)
        while chunk >= 1:
            start = 0
            while start < len(current):
                candidate = current[:start] + current[start + chunk :]
                if (
                    len(candidate) != len(current)
                    and budget.spend()
                    and still_fails(candidate)
                ):
                    current = candidate
                    improved = True
                else:
                    start += chunk
                if budget.used >= budget.limit:
                    return current
            chunk //= 2
    return current
