"""The conformance runner: all engines, every subject, one report.

One :func:`run_all` call covers the tentpole's three engines — mutation
fuzzing over every packet spec, differential checks against the
independent oracles, and machine conformance against the model — under a
single deterministic seed, a shared coverage map, and one corpus.  The
CLI (:mod:`repro.conformance.__main__`) and the pytest/nightly gates are
thin wrappers over this module.
"""

from __future__ import annotations

import hashlib
import json
import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.conformance.corpus import Corpus, load_entries
from repro.conformance.coverage import CoverageMap
from repro.conformance.differential import DifferentialEngine
from repro.conformance.machineconf import MachineConformance, replay_machine_entry
from repro.conformance.mutate import Finding, MutationFuzzer, replay_entry
from repro.conformance.registry import all_machine_entries, all_spec_entries

ENGINES = ("fuzz", "differential", "machine")


def derive_rng(seed: int, *parts: str) -> random.Random:
    """A child PRNG stable across processes (unlike salted ``hash()``)."""
    digest = hashlib.sha256("|".join([str(seed), *parts]).encode()).digest()
    return random.Random(int.from_bytes(digest[:8], "big"))


@dataclass
class EngineReport:
    """What one engine did: case count and surviving findings."""

    engine: str
    cases: int
    findings: List[Finding] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.findings


@dataclass
class ConformanceReport:
    """The aggregated result of one conformance run."""

    seed: int
    budget: int
    engines: List[EngineReport]
    coverage: Dict[str, Dict[str, int]]
    corpus_path: Optional[str] = None

    @property
    def ok(self) -> bool:
        return all(engine.ok for engine in self.engines)

    @property
    def findings(self) -> List[Finding]:
        return [f for engine in self.engines for f in engine.findings]

    def to_json(self) -> str:
        return json.dumps(
            {
                "seed": self.seed,
                "budget": self.budget,
                "ok": self.ok,
                "engines": [
                    {
                        "engine": e.engine,
                        "cases": e.cases,
                        "findings": [str(f) for f in e.findings],
                    }
                    for e in self.engines
                ],
                "coverage": self.coverage,
                "corpus": self.corpus_path,
            },
            indent=2,
            sort_keys=True,
        )

    def render(self) -> str:
        """Human-readable summary for the CLI."""
        lines = [
            f"conformance run: seed={self.seed} budget={self.budget} "
            f"-> {'OK' if self.ok else 'FAIL'}"
        ]
        for engine in self.engines:
            lines.append(
                f"  {engine.engine:<12} {engine.cases:>6} cases  "
                f"{len(engine.findings)} finding(s)"
            )
            for finding in engine.findings:
                lines.append(f"    {finding}")
        for name, stats in sorted(self.coverage.items()):
            lines.append(
                f"  coverage {name}: {stats['points']} points, "
                f"{stats['hits']} hits"
            )
        if self.corpus_path:
            lines.append(f"  corpus: {self.corpus_path}")
        return "\n".join(lines)


def run_all(
    seed: int = 0,
    budget: int = 2000,
    engines: Sequence[str] = ENGINES,
    specs: Optional[Sequence[str]] = None,
    machines: Optional[Sequence[str]] = None,
    corpus_path: Optional[str] = None,
    shrink_budget: int = 600,
) -> ConformanceReport:
    """Run the selected engines over the selected subjects.

    ``budget`` is the case budget *per engine*: the fuzzer splits it
    across packet specs, the differential engine across its oracles, the
    machine engine across machine entries.  ``specs``/``machines`` filter
    subjects by name (default: everything in the registry).  The same
    ``seed`` always reproduces the same run.
    """
    coverage = CoverageMap()
    corpus = Corpus(corpus_path) if corpus_path else Corpus()
    reports: List[EngineReport] = []

    if "fuzz" in engines:
        entries = [
            e
            for e in all_spec_entries()
            if specs is None or e.name in specs
        ]
        report = EngineReport("fuzz", 0)
        per_spec = max(1, budget // max(1, len(entries)))
        for entry in entries:
            fuzzer = MutationFuzzer(
                entry,
                derive_rng(seed, "fuzz", entry.name),
                coverage,
                corpus=corpus,
                seed=seed,
                shrink_budget=shrink_budget,
            )
            report.findings.extend(fuzzer.run(per_spec))
            report.cases += fuzzer.cases
        reports.append(report)

    if "differential" in engines:
        engine = DifferentialEngine(
            derive_rng(seed, "differential"),
            coverage,
            corpus=corpus,
            seed=seed,
            shrink_budget=shrink_budget,
        )
        findings = engine.run(budget)
        reports.append(EngineReport("differential", engine.cases, findings))

    if "machine" in engines:
        entries = [
            e
            for e in all_machine_entries()
            if machines is None or e.name in machines
        ]
        report = EngineReport("machine", 0)
        per_machine = max(1, budget // max(1, len(entries)))
        for entry in entries:
            conformance = MachineConformance(
                entry,
                derive_rng(seed, "machine", entry.name),
                coverage,
                corpus=corpus,
                seed=seed,
                shrink_budget=max(100, shrink_budget // 2),
            )
            report.findings.extend(conformance.run(per_machine))
            report.cases += conformance.cases
        reports.append(report)

    saved_path = None
    if corpus_path:
        saved_path = corpus.save()
    return ConformanceReport(
        seed=seed,
        budget=budget,
        engines=reports,
        coverage=coverage.summary(),
        corpus_path=saved_path,
    )


def replay_corpus(path: str) -> Tuple[int, List[str]]:
    """Replay every entry in a corpus file.

    Returns ``(entries_checked, drift_messages)`` — an empty second
    element means every recorded behaviour still reproduces.
    """
    spec_entries = {e.name: e for e in all_spec_entries()}
    machine_entries = {e.name: e for e in all_machine_entries()}
    drifts: List[str] = []
    checked = 0
    for entry in load_entries(path):
        checked += 1
        if entry.engine == "fuzz":
            spec_entry = spec_entries.get(entry.subject)
            if spec_entry is None:
                drifts.append(f"unknown spec {entry.subject!r} in corpus")
                continue
            ok, detail = replay_entry(entry, spec_entry.spec)
        elif entry.engine == "machine":
            machine_entry = machine_entries.get(entry.subject)
            if machine_entry is None:
                drifts.append(f"unknown machine {entry.subject!r} in corpus")
                continue
            ok, detail = replay_machine_entry(entry, machine_entry)
        else:
            # Differential entries carry free-form reproducers; nothing
            # generic to recheck without the original oracle pairing.
            continue
        if not ok:
            drifts.append(f"{entry.engine}/{entry.subject}: {detail}")
    return checked, drifts
