"""repro.conformance — every in-tree spec and machine as a test oracle.

The paper argues that protocol specs written in a typed DSL make whole
failure classes unrepresentable.  This package is the empirical check on
that claim, three engines over one registry of subjects:

* :mod:`~repro.conformance.mutate` — structure-aware mutation fuzzing of
  every packet codec, classifying each outcome (declared rejection vs.
  undeclared crash vs. non-verbatim re-encode);
* :mod:`~repro.conformance.differential` — the DSL codec against the
  hand-rolled baseline ARQ codec and DER-vs-PER cross-checks;
* :mod:`~repro.conformance.machineconf` — runtime machines dual-stepped
  against the explicit-state model.

Shared infrastructure: coverage accounting on the :mod:`repro.obs`
metrics registry (which also schedules mutations toward uncovered
territory), delta-debugging shrinkers, and a replayable JSONL corpus.
Run it with ``python -m repro.conformance``.
"""

from repro.conformance.corpus import Corpus, CorpusEntry, load_entries
from repro.conformance.coverage import CoverageMap
from repro.conformance.differential import DifferentialEngine
from repro.conformance.machineconf import MachineConformance
from repro.conformance.mutate import Finding, MutationFuzzer, classify
from repro.conformance.registry import (
    MachineEntry,
    SpecEntry,
    all_machine_entries,
    all_spec_entries,
)
from repro.conformance.runner import (
    ConformanceReport,
    EngineReport,
    replay_corpus,
    run_all,
)
from repro.conformance.shrink import shrink_bytes, shrink_sequence

__all__ = [
    "ConformanceReport",
    "Corpus",
    "CorpusEntry",
    "CoverageMap",
    "DifferentialEngine",
    "EngineReport",
    "Finding",
    "MachineConformance",
    "MachineEntry",
    "MutationFuzzer",
    "SpecEntry",
    "all_machine_entries",
    "all_spec_entries",
    "classify",
    "load_entries",
    "replay_corpus",
    "run_all",
    "shrink_bytes",
    "shrink_sequence",
]
