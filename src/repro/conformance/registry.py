"""The conformance registry: every in-tree spec and machine as a test subject.

The tentpole promise is that *everything* declared in the repo is an
executable oracle.  This module enumerates:

* :func:`all_spec_entries` — every packet spec, each with a valid-packet
  generator (``testing.random_packet`` by default; specs whose semantic
  constraints make blind generation hopeless, like the ABNF-constrained
  chat frame, supply a purpose-built generator);
* :func:`all_machine_entries` — every machine spec, each with an *armer*
  that can produce payloads and execution-time inputs for any transition
  (valid most of the time, deliberately invalid sometimes, to walk the
  rejection paths too).

New protocols join the standing correctness gate by adding one entry
here — nothing else in :mod:`repro.conformance` is protocol-specific.
"""

from __future__ import annotations

import random
import string
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Tuple

from repro.core.machine import Machine
from repro.core.packet import Packet, PacketSpec
from repro.core.statemachine import MachineSpec, TransitionSpec
from repro.modelcheck.explicit import InputDomains
from repro.protocols.arq import ACK_PACKET, ARQ_PACKET, build_receiver_spec, build_sender_spec
from repro.protocols.dns import DNS_HEADER, DNS_QUESTION_FIXED
from repro.protocols.handshake import (
    HANDSHAKE_PACKET,
    MSG_ACK,
    MSG_SYN,
    MSG_SYN_ACK,
    build_initiator_spec,
    build_responder_spec,
)
from repro.protocols.headers import ICMP_ECHO, IPV4_HEADER, TCP_HEADER, UDP_HEADER
from repro.protocols.sliding import (
    KIND_CUMULATIVE,
    SLIDING_ACK,
    SLIDING_PACKET,
    build_gbn_sender_spec,
    build_window_receiver_spec,
)
from repro.protocols.textproto import CHAT_FRAME
from repro.testing import random_packet

Armer = Callable[
    [TransitionSpec, Machine, random.Random], Tuple[Any, Dict[str, int]]
]


@dataclass
class SpecEntry:
    """One packet spec plus the knowledge needed to fuzz it."""

    spec: PacketSpec
    generate: Callable[[random.Random], Packet]

    @property
    def name(self) -> str:
        return self.spec.name


@dataclass
class MachineEntry:
    """One machine spec plus the knowledge needed to drive it.

    ``graph`` marks machines whose reachable configuration space is small
    enough for a full :func:`repro.modelcheck.explore` — those get the
    precomputed-graph conformance leg in addition to on-the-fly stepping.
    """

    name: str
    build: Callable[[], MachineSpec]
    arm: Armer
    input_domains: Optional[InputDomains] = None
    graph: bool = False
    max_walk_steps: int = 40


# -- packet specs -------------------------------------------------------


def _chat_packet(rng: random.Random) -> Packet:
    """A valid chat frame: blind draws cannot satisfy the ABNF constraint."""
    room = "".join(
        rng.choice(string.ascii_letters + string.digits + "-")
        for _ in range(rng.randrange(1, 17))
    )
    kind = rng.randrange(4)
    if kind == 0:
        line = "PING"
    elif kind == 1:
        line = f"JOIN {room}"
    elif kind == 2:
        line = f"LEAVE {room}"
    else:
        text = "".join(
            rng.choice(string.ascii_letters + " !?.") for _ in range(rng.randrange(1, 40))
        )
        line = f"MSG {room} {text.strip() or 'hi'}"
    command = line.encode("ascii") + b"\r\n"
    return CHAT_FRAME.make(length=len(command), command=command)


def all_spec_entries() -> List[SpecEntry]:
    """Every in-tree packet spec, wired with a valid-packet generator."""
    default = lambda spec: (lambda rng: random_packet(spec, rng))
    entries = [
        SpecEntry(spec, default(spec))
        for spec in (
            ARQ_PACKET,
            ACK_PACKET,
            IPV4_HEADER,
            UDP_HEADER,
            TCP_HEADER,
            ICMP_ECHO,
            DNS_HEADER,
            DNS_QUESTION_FIXED,
            HANDSHAKE_PACKET,
            SLIDING_PACKET,
            SLIDING_ACK,
        )
    ]
    entries.append(SpecEntry(CHAT_FRAME, _chat_packet))
    return entries


# -- machines -----------------------------------------------------------

#: Reduced sequence width for the ARQ machines: 4 bits keeps the full
#: reachable graph at 64 configurations, so the explicit explorer covers
#: it exactly while the runtime semantics stay identical.
ARQ_CONF_BITS = 4
_NONCE_DOMAIN = (1, 2, 3)


def _arq_sender_arm(
    transition: TransitionSpec, machine: Machine, rng: random.Random
) -> Tuple[Any, Dict[str, int]]:
    if transition.requires == "bytes":
        return bytes(rng.randrange(256) for _ in range(rng.randrange(0, 8))), {}
    if transition.requires is ACK_PACKET:
        seq = machine.current.values[0]
        if rng.random() < 0.25:  # probe the guard's rejection path
            seq = rng.randrange(1 << ARQ_CONF_BITS)
        return ACK_PACKET.verify(ACK_PACKET.make(seq=seq)), {}
    return None, {}


def _arq_receiver_arm(
    transition: TransitionSpec, machine: Machine, rng: random.Random
) -> Tuple[Any, Dict[str, int]]:
    current = machine.current.values[0]
    if transition.name == "RECV":
        seq = current
    else:  # DUP_ACK wants the previous sequence number
        seq = (current - 1) % (1 << ARQ_CONF_BITS)
    if rng.random() < 0.25:
        seq = rng.randrange(1 << ARQ_CONF_BITS)
    payload = bytes(rng.randrange(256) for _ in range(rng.randrange(0, 6)))
    packet = ARQ_PACKET.make(seq=seq, length=len(payload), payload=payload)
    return ARQ_PACKET.verify(packet), {}


def _initiator_arm(
    transition: TransitionSpec, machine: Machine, rng: random.Random
) -> Tuple[Any, Dict[str, int]]:
    if transition.name == "CONNECT":
        return None, {"nonce": rng.choice(_NONCE_DOMAIN)}
    if transition.name == "SYNACK":
        nonce = (
            machine.current.values[0]
            if machine.current.values and rng.random() >= 0.25
            else rng.choice(_NONCE_DOMAIN)
        )
        packet = HANDSHAKE_PACKET.make(
            msg_type=MSG_SYN_ACK,
            initiator_nonce=nonce,
            responder_nonce=rng.choice(_NONCE_DOMAIN),
        )
        return HANDSHAKE_PACKET.verify(packet), {}
    return None, {}


def _responder_arm(
    transition: TransitionSpec, machine: Machine, rng: random.Random
) -> Tuple[Any, Dict[str, int]]:
    if transition.name == "SYN":
        packet = HANDSHAKE_PACKET.make(
            msg_type=MSG_SYN,
            initiator_nonce=rng.choice(_NONCE_DOMAIN),
            responder_nonce=0 if rng.random() >= 0.2 else rng.choice(_NONCE_DOMAIN),
        )
        return HANDSHAKE_PACKET.verify(packet), {"nonce": rng.choice(_NONCE_DOMAIN)}
    if transition.name == "ACK":
        nonce = (
            machine.current.values[0]
            if machine.current.values and rng.random() >= 0.25
            else rng.choice(_NONCE_DOMAIN)
        )
        packet = HANDSHAKE_PACKET.make(
            msg_type=MSG_ACK,
            initiator_nonce=rng.choice(_NONCE_DOMAIN),
            responder_nonce=nonce,
        )
        return HANDSHAKE_PACKET.verify(packet), {}
    return None, {}


def _gbn_sender_arm(
    transition: TransitionSpec, machine: Machine, rng: random.Random
) -> Tuple[Any, Dict[str, int]]:
    base = machine.current.values[0] if machine.current.values else 0
    nxt = machine.current.values[1] if len(machine.current.values) > 1 else base
    if transition.requires == "bytes":
        return bytes(rng.randrange(256) for _ in range(rng.randrange(0, 6))), {}
    if transition.name == "ACK":
        ack = rng.randrange(base, nxt) if nxt > base else rng.randrange(4)
        if rng.random() < 0.2:
            ack = rng.randrange(8)  # probe the window guard
        packet = SLIDING_ACK.make(kind=KIND_CUMULATIVE, seq=ack)
        return SLIDING_ACK.verify(packet), {"ack": ack}
    if transition.name == "ACK_OLD":
        ack = rng.randrange(base) if base > 0 else 0
        packet = SLIDING_ACK.make(kind=KIND_CUMULATIVE, seq=ack)
        return SLIDING_ACK.verify(packet), {"ack": ack}
    return None, {}


def _window_receiver_arm(
    transition: TransitionSpec, machine: Machine, rng: random.Random
) -> Tuple[Any, Dict[str, int]]:
    current = machine.current.values[0]
    if transition.name == "RECV":
        seq = current
    else:  # OUT_OF_ORDER: anything but the expected number
        seq = current + rng.randrange(1, 4)
    if rng.random() < 0.25:
        seq = rng.randrange(max(current + 4, 4))
    payload = bytes(rng.randrange(256) for _ in range(rng.randrange(0, 6)))
    packet = SLIDING_PACKET.make(seq=seq, length=len(payload), payload=payload)
    return SLIDING_PACKET.verify(packet), {}


def all_machine_entries() -> List[MachineEntry]:
    """Every in-tree machine spec, wired with an armer and domains."""
    return [
        MachineEntry(
            name="ArqSender",
            build=lambda: build_sender_spec(max_seq_bits=ARQ_CONF_BITS),
            arm=_arq_sender_arm,
            graph=True,
        ),
        MachineEntry(
            name="ArqReceiver",
            build=lambda: build_receiver_spec(max_seq_bits=ARQ_CONF_BITS),
            arm=_arq_receiver_arm,
            graph=True,
        ),
        MachineEntry(
            name="HandshakeInitiator",
            build=build_initiator_spec,
            arm=_initiator_arm,
            input_domains={"CONNECT": {"nonce": _NONCE_DOMAIN}},
            graph=True,
        ),
        MachineEntry(
            name="HandshakeResponder",
            build=build_responder_spec,
            arm=_responder_arm,
            input_domains={"SYN": {"nonce": _NONCE_DOMAIN}},
            graph=True,
        ),
        MachineEntry(
            name="GbnSender",
            build=lambda: build_gbn_sender_spec(window=3),
            arm=_gbn_sender_arm,
            # base/nxt are unbounded: the full graph explodes, so this
            # machine gets on-the-fly model stepping only.
            graph=False,
            max_walk_steps=30,
        ),
        MachineEntry(
            name="GbnReceiver",
            build=lambda: build_window_receiver_spec("GbnReceiver"),
            arm=_window_receiver_arm,
            graph=False,
            max_walk_steps=30,
        ),
    ]
