"""The structure-aware mutation fuzzer: valid packets, hostile derivatives.

Random bytes rarely get past the first length field; mutations of *valid*
encodings reach deep into a decoder.  The fuzzer starts every case from a
valid packet (via the registry's generator), uses the codec's field spans
to aim mutations at individual fields — bit flips, boundary stuffing,
length skews — plus framing-level mutations (truncate, extend, splice),
and classifies what the decoder does with the result:

======================  ================================================
outcome                 meaning
======================  ================================================
``accept``              decoded, verified, re-encodes bit-exactly — fine
``reject_decode``       a declared :class:`DecodeError` subclass — fine
``reject_verify``       decoded but failed verification — fine
``bug_crash``           any *undeclared* exception escaped — a bug
``bug_nonverbatim``     verified but re-encodes differently — a bug
======================  ================================================

The two ``bug_*`` outcomes are exactly the behaviours the paper says a
typed protocol DSL makes impossible; finding one means a codec invariant
broke.  Every bug is shrunk before being reported and persisted to the
corpus for replay.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.codec import DecodeError, encode_with_spans
from repro.core.packet import PacketSpec, VerificationError
from repro.conformance.corpus import Corpus, CorpusEntry
from repro.conformance.coverage import FIELD_MUTATIONS, CoverageMap
from repro.conformance.registry import SpecEntry
from repro.conformance.shrink import shrink_bytes
from repro.obs.live import flightrec
from repro.testing import GenerationError

ACCEPT = "accept"
REJECT_DECODE = "reject_decode"
REJECT_VERIFY = "reject_verify"
BUG_CRASH = "bug_crash"
BUG_NONVERBATIM = "bug_nonverbatim"

#: Framing-level mutation strategies (field-level ones are per-field).
_FRAMING_OPS = ("truncate", "extend", "drop_byte", "dup_byte", "splice")


@dataclass
class Finding:
    """One confirmed decoder bug, minimized and replayable."""

    subject: str
    outcome: str
    data: bytes
    shrunk: bytes
    detail: str

    def __str__(self) -> str:
        return (
            f"[{self.outcome}] spec {self.subject!r}: {self.detail} "
            f"(reproducer: {self.shrunk.hex() or '<empty>'}, "
            f"{len(self.shrunk)}/{len(self.data)} bytes after shrinking)"
        )


def classify(spec: PacketSpec, data: bytes) -> Tuple[str, str]:
    """Run one input through decode → verify → re-encode; label the outcome."""
    try:
        packet = spec.decode(data)
    except DecodeError as exc:
        return REJECT_DECODE, type(exc).__name__
    except Exception as exc:  # undeclared failure mode
        return BUG_CRASH, f"decode raised {exc!r}"
    try:
        spec.verify(packet)
    except VerificationError as exc:
        names = ",".join(sorted(v.constraint_name for v in exc.violations))
        return REJECT_VERIFY, names
    except Exception as exc:
        return BUG_CRASH, f"verify raised {exc!r}"
    try:
        reencoded = spec.encode(packet)
    except Exception as exc:
        return BUG_CRASH, f"re-encode raised {exc!r}"
    if reencoded != data:
        return BUG_NONVERBATIM, (
            "verified input does not re-encode bit-exactly "
            f"(got {reencoded.hex()!r})"
        )
    return ACCEPT, ""


def _set_bits(data: bytes, start: int, width: int, value: int) -> bytes:
    """Overwrite a bit range (big-endian within the range) in a copy."""
    out = bytearray(data)
    for offset in range(width):
        bit = (value >> (width - 1 - offset)) & 1
        position = start + offset
        if position >= len(out) * 8:
            break
        mask = 1 << (7 - position % 8)
        if bit:
            out[position // 8] |= mask
        else:
            out[position // 8] &= ~mask & 0xFF
    return bytes(out)


def _get_bits(data: bytes, start: int, width: int) -> int:
    value = 0
    for offset in range(width):
        position = start + offset
        if position >= len(data) * 8:
            break
        bit = (data[position // 8] >> (7 - position % 8)) & 1
        value = (value << 1) | bit
    return value


class MutationFuzzer:
    """Coverage-guided mutation fuzzing of one packet spec."""

    def __init__(
        self,
        entry: SpecEntry,
        rng: random.Random,
        coverage: CoverageMap,
        corpus: Optional[Corpus] = None,
        seed: Optional[int] = None,
        shrink_budget: int = 600,
    ) -> None:
        self.entry = entry
        self.spec = entry.spec
        self.rng = rng
        self.coverage = coverage
        self.corpus = corpus
        self.seed = seed
        self.shrink_budget = shrink_budget
        self.cases = 0
        self._pool: List[bytes] = []  # inputs that reached new coverage

    # -- input construction ----------------------------------------------

    def _fresh_base(self) -> Optional[Tuple[bytes, Dict[str, Tuple[int, int]]]]:
        """A valid encoding plus its field spans; None if generation fails.

        One ``encode_with_spans`` pass produces both — spans used to come
        from a second, redundant encode of the same packet.
        """
        try:
            packet = self.entry.generate(self.rng)
        except GenerationError:
            return None
        return encode_with_spans(self.spec, packet.values)

    def _pick_strategy(self, spans: Dict[str, Tuple[int, int]]) -> str:
        """Field names and framing ops compete on coverage, least-hit first."""
        candidates = list(spans) + list(_FRAMING_OPS)
        return self.coverage.pick(
            self.rng,
            candidates,
            key=lambda c: (
                FIELD_MUTATIONS,
                {"spec": self.spec.name, "field": c},
            ),
        )

    def _mutate(
        self, wire: bytes, spans: Dict[str, Tuple[int, int]], strategy: str
    ) -> bytes:
        rng = self.rng
        if strategy in spans:
            self.coverage.record_field_mutation(self.spec.name, strategy)
            start, end = spans[strategy]
            width = end - start
            if width == 0 or not wire:
                return wire + bytes((rng.randrange(256),))
            roll = rng.random()
            if roll < 0.4:  # flip 1-3 bits inside the field
                out = wire
                for _ in range(rng.randrange(1, 4)):
                    position = start + rng.randrange(width)
                    bit = _get_bits(out, position, 1) ^ 1
                    out = _set_bits(out, position, 1, bit)
                return out
            if roll < 0.65:  # boundary-stuff the whole field
                value = 0 if rng.random() < 0.5 else (1 << width) - 1
                return _set_bits(wire, start, width, value)
            # Skew the carried value by a small delta: the length-field
            # attack — dependent shapes downstream now disagree.
            value = _get_bits(wire, start, width)
            delta = rng.choice((-2, -1, 1, 2, 7, 64))
            return _set_bits(wire, start, width, (value + delta) % (1 << width))
        self.coverage.record_field_mutation(self.spec.name, strategy)
        if strategy == "truncate":
            if not wire:
                return wire
            return wire[: rng.randrange(len(wire))]
        if strategy == "extend":
            extra = bytes(rng.randrange(256) for _ in range(rng.randrange(1, 9)))
            return wire + extra
        if strategy == "drop_byte":
            if not wire:
                return wire
            index = rng.randrange(len(wire))
            return wire[:index] + wire[index + 1 :]
        if strategy == "dup_byte":
            if not wire:
                return wire
            index = rng.randrange(len(wire))
            return wire[: index + 1] + wire[index:]
        # splice: head of this input, tail of a pool (or reversed) input
        other = rng.choice(self._pool) if self._pool else wire[::-1]
        if not wire or not other:
            return wire + other
        return wire[: rng.randrange(1, len(wire) + 1)] + other[
            rng.randrange(len(other)) :
        ]

    # -- the loop -----------------------------------------------------------

    def run(self, budget: int) -> List[Finding]:
        """Run ``budget`` mutation cases; returns minimized bug findings."""
        findings: List[Finding] = []
        seen_bugs: set = set()
        base = self._fresh_base()
        if base is None:
            return findings
        for _ in range(budget):
            if self.rng.random() < 0.2 or base is None:
                base = self._fresh_base() or base
            wire, spans = base
            if self._pool and self.rng.random() < 0.3:
                # Mutate a previously interesting input under the same spans.
                wire = self.rng.choice(self._pool)
            strategy = self._pick_strategy(spans)
            mutated = self._mutate(wire, spans, strategy)
            self.cases += 1
            outcome, detail = classify(self.spec, mutated)
            fresh = self.coverage.record_outcome("fuzz", self.spec.name, outcome)
            if outcome in (REJECT_DECODE, REJECT_VERIFY):
                for path in detail.split(","):
                    if path and self.coverage.record_error_path(
                        self.spec.name, path
                    ):
                        fresh = True
            if fresh:
                self._pool.append(mutated)
                if self.corpus is not None:
                    self.corpus.add(
                        CorpusEntry(
                            engine="fuzz",
                            subject=self.spec.name,
                            outcome=f"interesting:{outcome}",
                            data=mutated,
                            seed=self.seed,
                            detail=detail,
                        )
                    )
            if outcome in (BUG_CRASH, BUG_NONVERBATIM):
                key = (outcome, detail.split("(")[0])
                if key in seen_bugs:
                    continue
                seen_bugs.add(key)
                shrunk = shrink_bytes(
                    mutated,
                    lambda d, o=outcome: classify(self.spec, d)[0] == o,
                    max_evaluations=self.shrink_budget,
                )
                finding = Finding(
                    subject=self.spec.name,
                    outcome=outcome,
                    data=mutated,
                    shrunk=shrunk,
                    detail=classify(self.spec, shrunk)[1] or detail,
                )
                findings.append(finding)
                # Arm REPRO_OBS_FLIGHTREC and every confirmed bug also
                # drops a replayable bundle (no-op when unarmed).
                flightrec.record_crash(
                    f"fuzz_{outcome}",
                    subject=self.spec.name,
                    detail=finding.detail,
                    seed=self.seed,
                    data=mutated,
                    shrunk=shrunk,
                    extra={"engine": "fuzz", "strategy": strategy},
                )
                if self.corpus is not None:
                    self.corpus.add(
                        CorpusEntry(
                            engine="fuzz",
                            subject=self.spec.name,
                            outcome=outcome,
                            data=mutated,
                            shrunk=shrunk,
                            seed=self.seed,
                            detail=finding.detail,
                        )
                    )
        return findings


def replay_entry(entry: CorpusEntry, spec: PacketSpec) -> Tuple[bool, str]:
    """Re-classify a corpus entry; True when the recorded outcome holds.

    ``interesting:*`` entries replay against their recorded classification;
    bug entries replay the *shrunk* reproducer.
    """
    expected = entry.outcome.split(":", 1)[-1]
    outcome, detail = classify(spec, entry.reproducer())
    if outcome == expected:
        return True, detail
    return False, (
        f"outcome drifted: recorded {expected!r}, replay produced "
        f"{outcome!r} ({detail})"
    )
