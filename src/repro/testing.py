"""Inline testing: test cases generated from the protocol definition.

The paper's abstract promises "(b) inline testing", and §2.3 argues the
DSL approach "potentially allows automatic construction of (at least
some) behavioural test cases".  This module delivers that claim:

* :func:`random_packet` — build a random *valid* packet for any spec,
  resolving dependent shapes (a random IPv4 header gets options sized by
  its randomly chosen IHL, and a correct checksum);
* :func:`spec_self_test` — an automatically constructed structural test
  suite for a spec: round-trips, verification, corruption rejection, and
  (where stageable) generated-codec agreement — no hand-written cases;
* :func:`machine_self_test` — random valid walks over a sealed machine
  spec, with trace audit: the behavioural test cases of §2.3, derived
  from the transitions themselves;
* :func:`packets` — a :mod:`hypothesis` strategy over a spec, so
  downstream users write ``@given(packets(MY_SPEC))`` property tests.

Everything here is driven by explicit ``random.Random`` instances —
reproducible by seed, like the rest of the library.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Union

from repro.core.codec import DecodeError
from repro.core.fields import (
    Bytes,
    ChecksumField,
    Flag,
    Reserved,
    Struct,
    Switch,
    UInt,
    UIntList,
)
from repro.core.machine import Machine
from repro.core.packet import Packet, PacketSpec, VerificationError
from repro.core.statemachine import MachineSpec
from repro.core.verified import Verified


class GenerationError(RuntimeError):
    """Raised when no valid packet could be generated for a spec."""


def _random_integer_value(field_obj: UInt, rng: random.Random) -> int:
    if field_obj.const is not None:
        return field_obj.const
    if field_obj.enum:
        return rng.choice(sorted(field_obj.enum))
    # Bias toward small values and boundaries: they exercise dependent
    # shapes harder than uniform noise does.
    choice = rng.random()
    if choice < 0.3:
        return rng.randrange(0, min(16, field_obj.max_value + 1))
    if choice < 0.4:
        return field_obj.max_value
    return rng.randrange(0, field_obj.max_value + 1)


def random_packet(
    spec: PacketSpec,
    rng: Union[int, random.Random, None] = None,
    max_attempts: int = 200,
    max_variable_bytes: int = 64,
) -> Packet:
    """Build a random packet that satisfies ``spec``'s shape constraints.

    Integer fields are drawn first; dependent byte/list fields are then
    sized by evaluating their shape expressions against the drawn values.
    Draws whose expressions come out negative (or that fail the spec's
    own semantic constraints beyond computed checksums) are retried.

    ``rng`` may be an ``int`` seed or a ``random.Random`` instance; the
    default is seed 0.  Generation is fully deterministic in the RNG
    state: the same seed (or an equally-advanced ``Random``) yields the
    same packet for the same spec, which is what makes fuzz findings and
    conformance runs replayable.  Pass a shared ``Random`` instance to
    draw *different* packets across successive calls.
    """
    if rng is None:
        rng = random.Random(0)
    elif isinstance(rng, int):
        rng = random.Random(rng)
    for _ in range(max_attempts):
        values: Dict[str, Any] = {}
        env: Dict[str, int] = {}
        ok = True
        for field_obj in spec.fields:
            if isinstance(field_obj, ChecksumField):
                continue  # computed by make()
            if isinstance(field_obj, Reserved):
                env[field_obj.name] = field_obj.value
                continue
            if isinstance(field_obj, UInt):
                value = _random_integer_value(field_obj, rng)
                values[field_obj.name] = value
                env[field_obj.name] = value
            elif isinstance(field_obj, Flag):
                value = rng.random() < 0.5
                values[field_obj.name] = value
                env[field_obj.name] = int(value)
            elif isinstance(field_obj, Bytes):
                if field_obj.is_greedy:
                    length = rng.randrange(0, max_variable_bytes)
                else:
                    try:
                        length = field_obj.length.evaluate(env)
                    except Exception:
                        ok = False
                        break
                    if length < 0 or length > 1 << 16:
                        ok = False
                        break
                values[field_obj.name] = bytes(
                    rng.randrange(256) for _ in range(length)
                )
            elif isinstance(field_obj, UIntList):
                try:
                    count = field_obj.count.evaluate(env)
                except Exception:
                    ok = False
                    break
                if count < 0 or count > 1 << 12:
                    ok = False
                    break
                limit = 1 << field_obj.element_bits
                values[field_obj.name] = [
                    rng.randrange(limit) for _ in range(count)
                ]
            elif isinstance(field_obj, Struct):
                values[field_obj.name] = random_packet(
                    field_obj.spec, rng, max_attempts, max_variable_bytes
                )
            elif isinstance(field_obj, Switch):
                try:
                    branch = field_obj._select(env)
                except Exception:
                    ok = False
                    break
                values[field_obj.name] = random_packet(
                    branch, rng, max_attempts, max_variable_bytes
                )
            else:  # pragma: no cover - exhaustive over field kinds
                raise GenerationError(f"cannot generate for field {field_obj!r}")
        if not ok:
            continue
        try:
            packet = spec.make(**values)
            spec.verify(packet)
        except (VerificationError, ValueError):
            continue  # a semantic constraint rejected this draw; redraw
        return packet
    raise GenerationError(
        f"could not generate a valid {spec.name!r} packet in "
        f"{max_attempts} attempts; its constraints may be unsatisfiable "
        "by independent random draws"
    )


@dataclass
class SelfTestReport:
    """Outcome of an automatically constructed test run."""

    subject: str
    cases: int
    failures: List[str] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when every generated case passed."""
        return not self.failures

    def raise_on_failure(self) -> None:
        """Raise ``AssertionError`` describing the first failures."""
        if self.failures:
            shown = "\n  ".join(self.failures[:5])
            raise AssertionError(
                f"self-test of {self.subject} failed "
                f"{len(self.failures)}/{self.cases} cases:\n  {shown}"
            )


def spec_self_test(
    spec: PacketSpec,
    cases: int = 50,
    seed: int = 0,
    include_codegen: bool = True,
) -> SelfTestReport:
    """Automatically constructed structural tests for a packet spec.

    Per generated packet: encode/decode round-trip, re-verification,
    single-bit-corruption handling (clean failure or bit-exact
    re-acceptance — never a crash), and generated-codec agreement.
    """
    rng = random.Random(seed)
    report = SelfTestReport(subject=f"spec {spec.name!r}", cases=cases)
    compiled = None
    if include_codegen:
        try:
            from repro.core.compile import compile_spec

            compiled = compile_spec(spec)
        except Exception:
            compiled = None  # not stageable; skip that leg
    for case in range(cases):
        try:
            packet = random_packet(spec, rng)
        except GenerationError as exc:
            report.failures.append(f"case {case}: generation failed: {exc}")
            continue
        wire = spec.encode(packet)
        decoded = spec.decode(wire)
        if decoded != packet:
            report.failures.append(f"case {case}: round-trip mismatch")
            continue
        try:
            spec.verify(decoded)
        except VerificationError as exc:
            report.failures.append(f"case {case}: re-verification failed: {exc}")
            continue
        if wire:
            corrupted = bytearray(wire)
            position = rng.randrange(len(wire) * 8)
            corrupted[position // 8] ^= 1 << (7 - position % 8)
            try:
                result = spec.try_parse(bytes(corrupted))
            except Exception as exc:  # declared failure modes only
                report.failures.append(
                    f"case {case}: corruption crashed the parser: {exc!r}"
                )
                continue
            if result is not None and spec.encode(result.value) != bytes(corrupted):
                report.failures.append(
                    f"case {case}: corrupted bytes accepted non-verbatim"
                )
                continue
        if compiled is not None:
            if compiled.build(packet.values) != wire:
                report.failures.append(f"case {case}: generated build disagrees")
                continue
            if compiled.parse(wire) != packet.values:
                report.failures.append(f"case {case}: generated parse disagrees")
    return report


def machine_self_test(
    spec: MachineSpec,
    payload_factory: Callable[[Any, Machine], Any],
    walks: int = 20,
    max_steps: int = 60,
    seed: int = 0,
    initial_factory: Optional[Callable[[random.Random], Any]] = None,
) -> SelfTestReport:
    """Random valid walks over a machine spec, with trace auditing.

    ``payload_factory(transition, machine)`` supplies whatever evidence a
    chosen transition requires (bytes or ``Verified`` packets).  Every
    walk checks that states remain declared, parameters remain in domain,
    and the recorded trace replays cleanly — §2.3's automatically
    constructed behavioural test cases.
    """
    from repro.analysis import TraceValidationError, validate_trace

    rng = random.Random(seed)
    report = SelfTestReport(subject=f"machine {spec.name!r}", cases=walks)
    for walk in range(walks):
        initial = None
        if initial_factory is not None:
            initial = initial_factory(rng)
        machine = Machine(spec, initial=initial)
        start = machine.current
        try:
            for _ in range(max_steps):
                available = machine.available_transitions()
                if not available:
                    if not machine.is_finished:
                        report.failures.append(
                            f"walk {walk}: stuck in non-final "
                            f"{machine.current!r}"
                        )
                    break
                transition = rng.choice(available)
                payload = payload_factory(transition, machine)
                machine.exec_trans(transition.name, payload)
                for param, value in zip(
                    machine.current.state.params, machine.current.values
                ):
                    if param.bits is not None and not 0 <= value < (1 << param.bits):
                        report.failures.append(
                            f"walk {walk}: parameter {param.name} out of "
                            f"domain: {value}"
                        )
            validate_trace(spec, start, machine.trace)
        except TraceValidationError as exc:
            report.failures.append(f"walk {walk}: trace audit failed: {exc}")
        except Exception as exc:
            report.failures.append(f"walk {walk}: unexpected {exc!r}")
    return report


def packets(spec: PacketSpec, max_cases_seed: int = 1 << 30):
    """A :mod:`hypothesis` strategy producing valid packets of ``spec``.

    Usage::

        from repro.testing import packets

        @given(packets(MY_SPEC))
        def test_something(packet):
            ...
    """
    from hypothesis import strategies as st

    return st.integers(0, max_cases_seed).map(
        lambda seed: random_packet(spec, random.Random(seed))
    )
