"""The metrics half of ``repro.obs``: counters, gauges and histograms.

Zero-dependency and deliberately small: a :class:`MetricsRegistry` maps a
``(name, labels)`` pair to exactly one metric instance, created on first
use — the Prometheus client model, shrunk to what a single-process
protocol runtime needs.  All metrics are plain Python objects with
``__slots__``; updating one is an attribute increment, so instrumented
code stays cheap even when observability is on.

Histograms use **fixed log-scale buckets**: protocol latencies span many
orders of magnitude (a dispatch is sub-microsecond, a lossy transfer is
seconds), so linear buckets waste resolution.  The default bucket ladder
covers 100 ns to ~400 s with a constant factor of 4 between bounds.

Everything is snapshot-able (:meth:`MetricsRegistry.snapshot` returns
plain dicts, JSON-ready) and resettable (:meth:`MetricsRegistry.reset`
zeroes values but keeps instances, so cached metric handles stay valid
across tests).
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

LabelItems = Tuple[Tuple[str, Any], ...]


class MergeError(ValueError):
    """A snapshot cannot be folded into this registry without corrupting it.

    Raised by :meth:`MetricsRegistry.merge_snapshot` *before* any value is
    applied: the registry is untouched when this escapes, so a malformed
    worker payload costs one merge, never the counters already aggregated.
    """


def log_buckets(start: float, factor: float, count: int) -> Tuple[float, ...]:
    """A geometric ladder of ``count`` upper bounds starting at ``start``.

    ``log_buckets(1e-6, 4, 4)`` is ``(1e-06, 4e-06, 1.6e-05, 6.4e-05)``.
    """
    if start <= 0:
        raise ValueError(f"bucket start must be positive, got {start}")
    if factor <= 1:
        raise ValueError(f"bucket factor must exceed 1, got {factor}")
    if count < 1:
        raise ValueError(f"need at least one bucket, got {count}")
    bounds = []
    bound = float(start)
    for _ in range(count):
        bounds.append(bound)
        bound *= factor
    return tuple(bounds)


#: Default histogram ladder: 1e-7 s .. ~4.3e2 s, factor 4 — wide enough
#: for both a dict lookup and a multi-second simulated transfer.
DEFAULT_TIME_BUCKETS = log_buckets(1e-7, 4.0, 17)


class Counter:
    """A monotonically increasing count (events, bytes, rejections)."""

    __slots__ = ("name", "labels", "value")

    kind = "counter"

    def __init__(self, name: str, labels: LabelItems = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        """Add ``amount`` (must be non-negative) to the counter."""
        if amount < 0:
            raise ValueError(f"counters only go up; inc({amount})")
        self.value += amount

    def _reset(self) -> None:
        self.value = 0

    def _snapshot(self) -> Dict[str, Any]:
        return {"value": self.value}

    def __repr__(self) -> str:
        return f"Counter({self.name!r}, {dict(self.labels)}, value={self.value})"


class Gauge:
    """A value that goes up and down (queue depth, pending events)."""

    __slots__ = ("name", "labels", "value")

    kind = "gauge"

    def __init__(self, name: str, labels: LabelItems = ()) -> None:
        self.name = name
        self.labels = labels
        self.value = 0.0

    def set(self, value: float) -> None:
        """Replace the gauge's value."""
        self.value = value

    def inc(self, amount: float = 1.0) -> None:
        """Add ``amount`` (may be negative)."""
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        """Subtract ``amount``."""
        self.value -= amount

    def _reset(self) -> None:
        self.value = 0.0

    def _snapshot(self) -> Dict[str, Any]:
        return {"value": self.value}

    def __repr__(self) -> str:
        return f"Gauge({self.name!r}, {dict(self.labels)}, value={self.value})"


class Histogram:
    """A distribution over fixed log-scale buckets.

    ``bounds`` are ascending *upper* bounds; an observation lands in the
    first bucket whose bound is >= the value, or the overflow bucket past
    the last bound.  ``counts`` therefore has ``len(bounds) + 1`` cells.
    """

    __slots__ = ("name", "labels", "bounds", "counts", "count", "total", "min", "max")

    kind = "histogram"

    def __init__(
        self,
        name: str,
        labels: LabelItems = (),
        bounds: Optional[Sequence[float]] = None,
    ) -> None:
        self.name = name
        self.labels = labels
        self.bounds: Tuple[float, ...] = (
            DEFAULT_TIME_BUCKETS if bounds is None else tuple(bounds)
        )
        if list(self.bounds) != sorted(self.bounds):
            raise ValueError("histogram bounds must be ascending")
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        """Record one observation."""
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Arithmetic mean of all observations (0 when empty)."""
        return self.total / self.count if self.count else 0.0

    def quantile(self, q: float) -> float:
        """Estimate the ``q``-quantile from bucket counts.

        Returns the upper bound of the bucket containing the quantile
        (clamped to the observed max for the overflow bucket); 0 when the
        histogram is empty.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        for index, bucket_count in enumerate(self.counts):
            cumulative += bucket_count
            if cumulative >= rank:
                if index < len(self.bounds):
                    return min(self.bounds[index], self.max)
                return self.max
        return self.max

    def _reset(self) -> None:
        self.counts = [0] * (len(self.bounds) + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def _snapshot(self) -> Dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "mean": self.mean,
            "p50": self.quantile(0.5),
            "p95": self.quantile(0.95),
            "bounds": list(self.bounds),
            "bucket_counts": list(self.counts),
        }

    def __repr__(self) -> str:
        return (
            f"Histogram({self.name!r}, {dict(self.labels)}, "
            f"count={self.count}, mean={self.mean:.3g})"
        )


def _label_items(labels: Dict[str, Any]) -> LabelItems:
    return tuple(sorted(labels.items()))


class MetricsRegistry:
    """Named, labeled metrics with get-or-create semantics.

    The same ``(name, labels)`` pair always returns the same instance, so
    hot code may cache the handle or re-look it up; both see one value.
    Requesting an existing name with a different metric kind raises — a
    name identifies one kind of thing.
    """

    def __init__(self) -> None:
        self._metrics: Dict[Tuple[str, LabelItems], Any] = {}
        self._handle_caches: Dict[str, Dict[Any, Any]] = {}

    def handle_cache(self, namespace: str) -> Dict[Any, Any]:
        """A per-registry dict for caching resolved metric handles.

        Hot paths that would otherwise re-resolve the same labeled metric
        on every call (dict lookup + label sorting) can stash the handles
        here, keyed however they like.  The cache lives and dies with the
        registry's instances: :meth:`reset` keeps it (instances survive),
        :meth:`clear` empties it (instances are dropped, so any cached
        handle would be stale).
        """
        cache = self._handle_caches.get(namespace)
        if cache is None:
            cache = self._handle_caches[namespace] = {}
        return cache

    def _get_or_create(self, cls: type, name: str, labels: LabelItems, **kwargs: Any):
        key = (name, labels)
        metric = self._metrics.get(key)
        if metric is None:
            metric = cls(name, labels, **kwargs)
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {name!r} is a {metric.kind}, not a {cls.kind}"
            )
        return metric

    def counter(self, name: str, **labels: Any) -> Counter:
        """The counter for ``(name, labels)``, created on first use."""
        return self._get_or_create(Counter, name, _label_items(labels))

    def gauge(self, name: str, **labels: Any) -> Gauge:
        """The gauge for ``(name, labels)``, created on first use."""
        return self._get_or_create(Gauge, name, _label_items(labels))

    def histogram(
        self, name: str, bounds: Optional[Sequence[float]] = None, **labels: Any
    ) -> Histogram:
        """The histogram for ``(name, labels)``, created on first use.

        ``bounds`` applies only at creation; later lookups reuse the
        existing ladder.
        """
        return self._get_or_create(
            Histogram, name, _label_items(labels), bounds=bounds
        )

    def get(self, name: str, **labels: Any) -> Optional[Any]:
        """The metric for ``(name, labels)``, or None (never creates)."""
        return self._metrics.get((name, _label_items(labels)))

    def value(self, name: str, **labels: Any) -> Any:
        """Counter/gauge value (0 when the metric does not exist yet)."""
        metric = self.get(name, **labels)
        return 0 if metric is None else metric.value

    def collect(self, prefix: str = "") -> Iterator[Any]:
        """Iterate metrics (optionally only those whose name starts with a prefix)."""
        for (name, _), metric in sorted(self._metrics.items()):
            if name.startswith(prefix):
                yield metric

    def snapshot(self) -> Dict[str, List[Dict[str, Any]]]:
        """All metrics as plain, JSON-ready data, grouped by name."""
        result: Dict[str, List[Dict[str, Any]]] = {}
        for (name, labels), metric in sorted(self._metrics.items()):
            result.setdefault(name, []).append(
                {"labels": dict(labels), "kind": metric.kind, **metric._snapshot()}
            )
        return result

    def _validate_merge(self, snapshot: Dict[str, List[Dict[str, Any]]]) -> None:
        """Reject a snapshot that cannot merge cleanly (registry untouched)."""
        claimed: Dict[Tuple[str, LabelItems], str] = {}
        for name, entries in snapshot.items():
            if not isinstance(entries, (list, tuple)):
                raise MergeError(
                    f"metric {name!r}: entries must be a list, got {entries!r}"
                )
            for entry in entries:
                if not isinstance(entry, dict):
                    raise MergeError(
                        f"metric {name!r}: entry must be a dict, got {entry!r}"
                    )
                labels = entry.get("labels", {})
                if not isinstance(labels, dict):
                    raise MergeError(
                        f"metric {name!r}: labels must be a dict, got {labels!r}"
                    )
                kind = entry.get("kind")
                if kind not in ("counter", "gauge", "histogram"):
                    raise MergeError(
                        f"cannot merge metric {name!r} of kind {kind!r}"
                    )
                key = (name, _label_items(labels))
                seen_kind = claimed.get(key)
                if seen_kind is not None and seen_kind != kind:
                    raise MergeError(
                        f"metric {name!r}{labels}: snapshot claims both "
                        f"{seen_kind!r} and {kind!r} for one label set"
                    )
                claimed[key] = kind
                existing = self._metrics.get(key)
                if existing is not None and existing.kind != kind:
                    raise MergeError(
                        f"metric {name!r}{labels}: snapshot says {kind!r}, "
                        f"registry holds a {existing.kind}"
                    )
                if kind == "counter":
                    value = entry.get("value", 0)
                    if not isinstance(value, (int, float)) or value < 0:
                        raise MergeError(
                            f"counter {name!r}{labels}: value must be a "
                            f"non-negative number, got {value!r}"
                        )
                elif kind == "gauge":
                    value = entry.get("value", 0.0)
                    if not isinstance(value, (int, float)):
                        raise MergeError(
                            f"gauge {name!r}{labels}: value must be a number, "
                            f"got {value!r}"
                        )
                else:
                    bounds = list(entry.get("bounds") or [])
                    if not bounds or list(bounds) != sorted(bounds):
                        raise MergeError(
                            f"histogram {name!r}{labels}: bounds must be a "
                            f"non-empty ascending ladder, got {bounds!r}"
                        )
                    if existing is not None and list(existing.bounds) != bounds:
                        raise MergeError(
                            f"histogram {name!r}: cannot merge bucket ladder "
                            f"{bounds!r} into {list(existing.bounds)!r}"
                        )
                    counts = entry.get("bucket_counts") or []
                    if len(counts) > len(bounds) + 1:
                        raise MergeError(
                            f"histogram {name!r}{labels}: {len(counts)} bucket "
                            f"counts for {len(bounds)} bounds"
                        )

    def merge_snapshot(self, snapshot: Dict[str, List[Dict[str, Any]]]) -> None:
        """Fold another registry's :meth:`snapshot` into this one.

        The cross-process aggregation primitive: worker processes ship
        snapshots (plain JSON-ready dicts) over a queue and the parent
        merges them, so a sharded run's metrics read exactly like the
        serial run's.  Counters and gauges add their values; histograms
        add bucket counts, counts and sums and widen min/max.

        The whole snapshot is validated before anything is applied:
        mismatched histogram ladders, unknown metric kinds, malformed
        values, and label sets claimed by two different kinds all raise
        :class:`MergeError` with the registry left exactly as it was.
        """
        self._validate_merge(snapshot)
        for name, entries in snapshot.items():
            for entry in entries:
                labels = entry.get("labels", {})
                kind = entry.get("kind")
                if kind == "counter":
                    value = entry.get("value", 0)
                    if value:
                        self.counter(name, **labels).inc(value)
                elif kind == "gauge":
                    value = entry.get("value", 0.0)
                    if value:
                        self.gauge(name, **labels).inc(value)
                else:
                    bounds = entry.get("bounds")
                    histogram = self.histogram(name, bounds=bounds, **labels)
                    counts = entry.get("bucket_counts") or []
                    for index, count in enumerate(counts):
                        histogram.counts[index] += count
                    histogram.count += entry.get("count", 0)
                    histogram.total += entry.get("sum", 0.0)
                    low, high = entry.get("min"), entry.get("max")
                    if low is not None and low < histogram.min:
                        histogram.min = low
                    if high is not None and high > histogram.max:
                        histogram.max = high

    def reset(self) -> None:
        """Zero every metric, keeping instances (cached handles stay valid)."""
        for metric in self._metrics.values():
            metric._reset()

    def clear(self) -> None:
        """Drop every metric instance (a fresh registry).

        Handle caches handed out by :meth:`handle_cache` are emptied too,
        so callers holding a cache dict re-resolve against the fresh
        registry instead of updating orphaned metric objects.
        """
        self._metrics.clear()
        for cache in self._handle_caches.values():
            cache.clear()

    def __len__(self) -> int:
        return len(self._metrics)


def compact_snapshot(
    snapshot: Dict[str, List[Dict[str, Any]]]
) -> Dict[str, List[Dict[str, Any]]]:
    """A summary-stat view of a snapshot: histograms lose their buckets.

    Counters and gauges pass through untouched; each histogram entry is
    reduced to ``count``/``sum``/``min``/``max``/``mean``/``p50``/``p95``
    with the raw ``bounds``/``bucket_counts`` arrays dropped.  This is
    what keeps committed artifacts like ``BENCH_obs.json`` reviewable —
    a bucket ladder is ~40 numbers per histogram, the summary is 7.

    A compacted histogram can no longer be re-merged (the bucket counts
    are gone), so this is a *terminal* export form: compact for storage
    and diffing, keep the full snapshot when further aggregation is
    needed.
    """
    out: Dict[str, List[Dict[str, Any]]] = {}
    for name, entries in snapshot.items():
        compacted = []
        for entry in entries:
            if entry.get("kind") != "histogram":
                compacted.append(dict(entry))
                continue
            compacted.append(
                {
                    "labels": entry.get("labels", {}),
                    "kind": "histogram",
                    "count": entry.get("count", 0),
                    "sum": entry.get("sum", 0.0),
                    "min": entry.get("min"),
                    "max": entry.get("max"),
                    "mean": entry.get("mean", 0.0),
                    "p50": entry.get("p50", 0.0),
                    "p95": entry.get("p95", 0.0),
                }
            )
        out[name] = compacted
    return out
