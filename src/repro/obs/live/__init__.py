"""``repro.obs.live`` — the streaming half of the observability layer.

PR 1 made the runtime observable *after the fact*: metrics and traces
accumulate in-process and materialize when somebody renders a dashboard.
This package makes them operational *while the system runs*, across
process boundaries:

* :mod:`~repro.obs.live.delta` — delta snapshots: the change in a
  registry since the last tick, in exactly the shape
  :meth:`~repro.obs.metrics.MetricsRegistry.merge_snapshot` consumes;
* :mod:`~repro.obs.live.stream` — the cross-process plane: a worker-side
  :class:`TelemetryStreamer` that ships deltas + fresh trace records
  over the ``repro.parallel`` result pipe, and a parent-side
  :class:`LiveAggregator` that folds them into one live registry;
* :mod:`~repro.obs.live.expose` — exposition: a zero-dependency
  Prometheus-text + JSONL exporter (opt-in via ``REPRO_OBS_EXPORT``)
  serving the merged registry over a localhost socket and/or an
  append-only JSONL stream;
* :mod:`~repro.obs.live.flightrec` — the flight recorder: on any
  undeclared crash (fuzzer bug bucket, fast-path demotion, parallel
  fallback) dump the trace ring, recent wire frames, a metric snapshot
  and the run seed to a replayable JSONL bundle (opt-in via
  ``REPRO_OBS_FLIGHTREC``);
* :mod:`~repro.obs.live.top` — the live TTY dashboard behind
  ``python -m repro.obs top`` (and ``... report``).

Everything here is read-only with respect to the authoritative metrics:
the live plane aggregates into its *own* registry, so a sharded
conformance run's end-of-run merge stays byte-identical to the serial
run whether or not an exporter is attached.
"""

from repro.obs.live.delta import DeltaTracker
from repro.obs.live.expose import (
    EXPORT_SCHEMA,
    Exporter,
    JsonlSink,
    MetricsServer,
    PeriodicPublisher,
    prometheus_text,
)
from repro.obs.live.flightrec import (
    BUNDLE_SCHEMA,
    FlightBundle,
    FlightRecorder,
    active_recorder,
    install_recorder,
    load_bundle,
    record_crash,
    record_frame,
    replay_bundle,
)
from repro.obs.live.stream import STREAM_SCHEMA, LiveAggregator, TelemetryStreamer

__all__ = [
    "DeltaTracker",
    "TelemetryStreamer",
    "LiveAggregator",
    "STREAM_SCHEMA",
    "Exporter",
    "JsonlSink",
    "MetricsServer",
    "PeriodicPublisher",
    "prometheus_text",
    "EXPORT_SCHEMA",
    "FlightRecorder",
    "FlightBundle",
    "BUNDLE_SCHEMA",
    "active_recorder",
    "install_recorder",
    "record_crash",
    "record_frame",
    "load_bundle",
    "replay_bundle",
]
