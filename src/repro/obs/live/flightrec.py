"""The flight recorder: crash-time state, dumped replayably.

An undeclared failure — a fuzzer ``bug_*`` classification, a compiled
codec demoted for diverging from the interpreter, a sharded batch
falling back to in-process execution — is exactly the moment the
post-mortem tools need state that no longer exists by the time a human
looks.  A :class:`FlightRecorder` keeps the cheap-to-maintain context (a
ring of recent wire frames) and, on a crash hook, dumps one JSONL
*bundle*:

* a header line — kind, subject, detail, run seed, schema;
* the offending input (and its shrunk form, when the caller has one);
* the recent wire-frame ring (netsim captures feed it);
* a full metrics snapshot of the governing instrumentation;
* the trace ring buffer, record per line.

Bundles replay: ``python -m repro.conformance --triage BUNDLE`` loads
one and re-executes it deterministically — a fuzz bundle re-classifies
the recorded bytes against its spec, a demotion bundle re-runs the
compiled-vs-interpreted comparison under ``verify`` — and reports
whether the recorded failure still reproduces.

Opt-in: the module-level hooks (:func:`record_crash`,
:func:`record_frame`) are no-ops until a recorder is installed, either
programmatically (:func:`install_recorder`) or by pointing
``REPRO_OBS_FLIGHTREC`` at a directory.  The env path matters for the
sharded plane: workers inherit it, so a crash inside a forked worker
drops its bundle in the same directory the parent's would land in.
"""

from __future__ import annotations

import json
import os
import re
import threading
import time
from collections import deque
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.obs.instrument import Instrumentation, get_default

BUNDLE_SCHEMA = "repro.obs/flightrec/v1"

_SLUG_RE = re.compile(r"[^A-Za-z0-9_.\-]+")

_lock = threading.Lock()
_recorder: Optional["FlightRecorder"] = None
_env_checked = False


class FlightRecorder:
    """Crash-context keeper and bundle writer for one directory."""

    def __init__(
        self,
        directory: str,
        frame_capacity: int = 64,
        obs: Optional[Instrumentation] = None,
    ) -> None:
        if frame_capacity < 1:
            raise ValueError(
                f"frame capacity must be positive, got {frame_capacity}"
            )
        self.directory = directory
        self.obs = obs
        self._frames: "deque[Tuple[float, str, bytes]]" = deque(
            maxlen=frame_capacity
        )
        self._counter = 0
        self._lock = threading.Lock()

    def _governing(self) -> Instrumentation:
        return self.obs if self.obs is not None else get_default()

    def record_frame(self, data: bytes, context: str = "") -> None:
        """Remember one wire frame (cheap: a deque append)."""
        self._frames.append((time.time(), context, bytes(data)))

    def dump(
        self,
        kind: str,
        subject: str = "",
        detail: str = "",
        seed: Optional[int] = None,
        data: Optional[bytes] = None,
        shrunk: Optional[bytes] = None,
        extra: Optional[Dict[str, Any]] = None,
    ) -> str:
        """Write one bundle; returns its path.

        Bundle names carry kind, subject, pid and a per-recorder counter
        so concurrent workers dumping into one directory never collide.
        """
        with self._lock:
            self._counter += 1
            count = self._counter
        os.makedirs(self.directory, exist_ok=True)
        slug = _SLUG_RE.sub("-", f"{kind}-{subject}" if subject else kind)
        path = os.path.join(
            self.directory, f"{slug}-{os.getpid()}-{count}.jsonl"
        )
        obs = self._governing()
        header = {
            "schema": BUNDLE_SCHEMA,
            "kind": kind,
            "subject": subject,
            "detail": detail,
            "seed": seed,
            "pid": os.getpid(),
            "ts": time.time(),
            "data": data.hex() if data is not None else None,
            "shrunk": shrunk.hex() if shrunk is not None else None,
            "extra": extra or {},
        }
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(json.dumps(header, sort_keys=True) + "\n")
            for ts, context, frame in list(self._frames):
                handle.write(
                    json.dumps(
                        {
                            "record": "frame",
                            "ts": ts,
                            "context": context,
                            "data": frame.hex(),
                        },
                        sort_keys=True,
                    )
                    + "\n"
                )
            handle.write(
                json.dumps(
                    {"record": "metrics", "metrics": obs.registry.snapshot()},
                    sort_keys=True,
                )
                + "\n"
            )
            for record in obs.tracer.records():
                handle.write(
                    json.dumps(
                        {"record": "trace", "span": record.to_dict()},
                        sort_keys=True,
                    )
                    + "\n"
                )
        return path


# -- process-wide hooks ------------------------------------------------------


def install_recorder(recorder: Optional[FlightRecorder]) -> Optional[FlightRecorder]:
    """Install (or with ``None``, remove) the process-wide recorder."""
    global _recorder, _env_checked
    with _lock:
        previous = _recorder
        _recorder = recorder
        _env_checked = True  # an explicit install wins over the env
    return previous


def active_recorder() -> Optional[FlightRecorder]:
    """The installed recorder, building one from the env on first call.

    ``REPRO_OBS_FLIGHTREC=<directory>`` arms the recorder for the whole
    process tree (workers inherit the variable through fork/spawn).
    """
    global _recorder, _env_checked
    if _recorder is not None or _env_checked:
        return _recorder
    with _lock:
        if not _env_checked:
            directory = os.environ.get("REPRO_OBS_FLIGHTREC", "").strip()
            if directory:
                _recorder = FlightRecorder(directory)
            _env_checked = True
    return _recorder


def reset_env_cache() -> None:
    """Forget the cached env decision (tests flip the env at runtime)."""
    global _recorder, _env_checked
    with _lock:
        _recorder = None
        _env_checked = False


def record_frame(data: bytes, context: str = "") -> None:
    """Feed one wire frame into the recorder's ring (no-op when unarmed)."""
    recorder = active_recorder()
    if recorder is not None:
        recorder.record_frame(data, context)


def record_crash(
    kind: str,
    subject: str = "",
    detail: str = "",
    seed: Optional[int] = None,
    data: Optional[bytes] = None,
    shrunk: Optional[bytes] = None,
    extra: Optional[Dict[str, Any]] = None,
) -> Optional[str]:
    """Dump a bundle for an undeclared failure (no-op when unarmed).

    Never raises: the flight recorder observes failures, it must not
    cause new ones on the crash path.
    """
    recorder = active_recorder()
    if recorder is None:
        return None
    try:
        return recorder.dump(
            kind,
            subject=subject,
            detail=detail,
            seed=seed,
            data=data,
            shrunk=shrunk,
            extra=extra,
        )
    except OSError:
        return None


# -- bundles: load and replay ------------------------------------------------


@dataclass
class FlightBundle:
    """One loaded bundle: the header plus its attached context."""

    kind: str
    subject: str
    detail: str
    seed: Optional[int]
    data: Optional[bytes]
    shrunk: Optional[bytes]
    extra: Dict[str, Any]
    frames: List[Dict[str, Any]] = field(default_factory=list)
    metrics: Dict[str, Any] = field(default_factory=dict)
    trace: List[Dict[str, Any]] = field(default_factory=list)
    path: str = ""

    def reproducer(self) -> Optional[bytes]:
        """The bytes to replay: the shrunk form when one exists."""
        return self.shrunk if self.shrunk is not None else self.data


def load_bundle(path: str) -> FlightBundle:
    """Parse a bundle file back into a :class:`FlightBundle`."""
    with open(path, "r", encoding="utf-8") as handle:
        lines = [line for line in handle.read().splitlines() if line.strip()]
    if not lines:
        raise ValueError(f"empty flight-recorder bundle: {path}")
    header = json.loads(lines[0])
    if header.get("schema") != BUNDLE_SCHEMA:
        raise ValueError(
            f"not a flight-recorder bundle (schema {header.get('schema')!r}): {path}"
        )
    bundle = FlightBundle(
        kind=header.get("kind", ""),
        subject=header.get("subject", ""),
        detail=header.get("detail", ""),
        seed=header.get("seed"),
        data=bytes.fromhex(header["data"]) if header.get("data") else None,
        shrunk=bytes.fromhex(header["shrunk"]) if header.get("shrunk") else None,
        extra=header.get("extra", {}),
        path=path,
    )
    for line in lines[1:]:
        record = json.loads(line)
        record_kind = record.get("record")
        if record_kind == "frame":
            bundle.frames.append(record)
        elif record_kind == "metrics":
            bundle.metrics = record.get("metrics", {})
        elif record_kind == "trace":
            bundle.trace.append(record.get("span", {}))
    return bundle


def replay_bundle(bundle: FlightBundle) -> Tuple[str, str]:
    """Re-execute a bundle; returns ``(status, detail)``.

    ``status`` is ``"reproduced"`` (the recorded failure recurs),
    ``"drifted"`` (it no longer does — the bug moved or was fixed), or
    ``"unreplayable"`` (the bundle is operational context with no
    deterministic re-execution, e.g. a parallel fallback).

    Imports the conformance/fastpath machinery lazily: loading a bundle
    is cheap, replaying one pulls in the full stack.
    """
    if bundle.kind.startswith("fuzz_"):
        return _replay_fuzz(bundle)
    if bundle.kind == "fastpath_demotion":
        return _replay_demotion(bundle)
    return (
        "unreplayable",
        f"bundle kind {bundle.kind!r} records operational context only",
    )


def _spec_for(subject: str) -> Optional[Any]:
    from repro.conformance.registry import all_spec_entries

    for entry in all_spec_entries():
        if entry.name == subject:
            return entry.spec
    return None


def _replay_fuzz(bundle: FlightBundle) -> Tuple[str, str]:
    from repro.conformance.mutate import classify

    spec = _spec_for(bundle.subject)
    if spec is None:
        return "unreplayable", f"spec {bundle.subject!r} is not in the registry"
    reproducer = bundle.reproducer()
    if reproducer is None:
        return "unreplayable", "bundle carries no input bytes"
    expected = bundle.kind[len("fuzz_"):]
    outcome, detail = classify(spec, reproducer)
    if outcome == expected:
        return "reproduced", detail or bundle.detail
    return (
        "drifted",
        f"recorded {expected!r}, replay produced {outcome!r} ({detail})",
    )


def _replay_demotion(bundle: FlightBundle) -> Tuple[str, str]:
    """Re-run the op under ``verify`` and see whether the spec demotes again."""
    import ast

    from repro import fastpath
    from repro.core import codec as core_codec
    from repro.fastpath import cache as fp_cache
    from repro.fastpath import policy as fp_policy

    spec = _spec_for(bundle.subject)
    if spec is None:
        return "unreplayable", f"spec {bundle.subject!r} is not in the registry"
    op = bundle.extra.get("op")
    values: Optional[Dict[str, Any]] = None
    if op == "encode":
        try:
            values = ast.literal_eval(bundle.extra.get("values", ""))
        except (ValueError, SyntaxError):
            return "unreplayable", "recorded encode values do not parse back"
    elif op != "decode" or bundle.data is None:
        return "unreplayable", f"demotion bundle has no replayable op ({op!r})"
    before = fp_cache.stats()["demotions"]
    with fastpath.use(mode="always", verify=True):
        fp_policy.invalidate()  # fresh per-spec state: demotion can recur
        try:
            if op == "decode":
                spec.decode(bundle.data)
            else:
                # encode_verbatim takes the raw value environment the
                # demoted call saw (make() would recompute checksums).
                core_codec.encode_verbatim(spec, values)
        except Exception as exc:
            # A declared error is fine — the question is whether the
            # compiled tier diverged, which the demotion counter answers.
            detail = f"replay raised {type(exc).__name__}: {exc}"
        else:
            detail = "replay completed"
    if fp_cache.stats()["demotions"] > before:
        return "reproduced", f"compiled tier demoted again ({detail})"
    return "drifted", f"no divergence on replay ({detail})"
