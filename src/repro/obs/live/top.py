"""``repro.obs top`` / ``repro.obs report``: the export stream, rendered.

``report`` renders the PR-1 text dashboard from any exported snapshot —
the last payload of a live-export JSONL stream, or a plain
``export_json`` file — so the dashboard is a shell command, not just an
importable function.

``top`` tails a live-export stream the way ``tail -f`` tails a log:
every new payload becomes a dashboard frame, with per-second counter
rates computed from the previous frame — the operational view of a
sharded conformance run in a second terminal.
"""

from __future__ import annotations

import json
import os
import sys
import time
from typing import Any, Dict, Iterator, List, Optional, TextIO, Tuple

from repro.obs.instrument import Instrumentation
from repro.obs.report import render_dashboard
from repro.obs.trace import SpanRecord


def load_export(path: str) -> List[Dict[str, Any]]:
    """All payloads in an exported file, oldest first.

    Accepts both forms the repo produces: a live-export JSONL stream
    (one payload per line) and a single ``export_json`` dict (wrapped
    into one payload).  Malformed lines — a run killed mid-write leaves
    at most one — are skipped.
    """
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    payloads: List[Dict[str, Any]] = []
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            continue
        if isinstance(record, dict):
            payloads.append(_normalize(record))
    if payloads:
        return payloads
    # Not line-delimited: maybe one indented export_json document.
    try:
        record = json.loads(text)
    except json.JSONDecodeError:
        return []
    return [_normalize(record)] if isinstance(record, dict) else []


def _normalize(record: Dict[str, Any]) -> Dict[str, Any]:
    """Wrap a bare ``export_json`` dict into live-export payload shape."""
    if "metrics" in record:
        return record
    return {"metrics": record}


def instrumentation_from(payload: Dict[str, Any]) -> Instrumentation:
    """An :class:`Instrumentation` holding one payload's metrics + trace."""
    instr = Instrumentation(enabled=True)
    instr.registry.merge_snapshot(payload.get("metrics", {}))
    for record in payload.get("trace", ()):
        try:
            instr.tracer._records.append(SpanRecord.from_dict(record))
        except (KeyError, TypeError):
            continue
    return instr


def _counter_values(payload: Dict[str, Any]) -> Dict[Tuple[str, Tuple], Any]:
    out: Dict[Tuple[str, Tuple], Any] = {}
    for name, entries in payload.get("metrics", {}).items():
        for entry in entries:
            if entry.get("kind") == "counter":
                key = (name, tuple(sorted(entry.get("labels", {}).items())))
                out[key] = entry.get("value", 0)
    return out


def render_rates(
    current: Dict[str, Any], previous: Optional[Dict[str, Any]]
) -> List[str]:
    """Counter deltas/second between two payloads, widest movers first."""
    if previous is None:
        return ["  (first frame; rates need two)"]
    dt = (current.get("ts") or 0) - (previous.get("ts") or 0)
    if dt <= 0:
        dt = 1.0
    now, then = _counter_values(current), _counter_values(previous)
    movers = []
    for key, value in now.items():
        delta = value - then.get(key, 0)
        if delta:
            movers.append((delta / dt, delta, key))
    if not movers:
        return ["  (no counter movement this frame)"]
    movers.sort(reverse=True)
    lines = []
    for rate, delta, (name, labels) in movers[:12]:
        label_text = (
            "{" + ",".join(f"{k}={v}" for k, v in labels) + "}" if labels else ""
        )
        lines.append(f"  {name}{label_text:<40.40}  +{delta:>8}  {rate:>10.1f}/s")
    return lines


def render_frame(
    payload: Dict[str, Any],
    previous: Optional[Dict[str, Any]] = None,
    title: str = "repro.obs live",
    trace_limit: int = 15,
) -> str:
    """One full ``top`` frame: header, rates, then the PR-1 dashboard."""
    lines = []
    kind = payload.get("kind", "snapshot")
    seq = payload.get("seq", "-")
    workers = payload.get("workers") or {}
    header = f"frame seq={seq} kind={kind}"
    if workers:
        per_worker = " ".join(
            f"w{index}:{state.get('seq', 0)}"
            + ("!" * state.get("restarts", 0))
            for index, state in sorted(workers.items())
        )
        header += f"  workers[{per_worker}]"
    dropped = payload.get("dropped")
    if dropped:
        header += f"  dropped={dropped}"
    lines.append(header)
    lines.append("-- rates (counters/s vs previous frame) " + "-" * 31)
    lines.extend(render_rates(payload, previous))
    instr = instrumentation_from(payload)
    lines.append(render_dashboard(instr, title=title, trace_limit=trace_limit))
    return "\n".join(lines)


def _tail_payloads(
    path: str, poll: float, stop_after: Optional[int]
) -> Iterator[Dict[str, Any]]:
    """Yield payloads as they are appended; ends at EOF when not following."""
    position = 0
    yielded = 0
    buffer = ""
    while stop_after is None or yielded < stop_after:
        try:
            size = os.path.getsize(path)
        except OSError:
            time.sleep(poll)
            continue
        if size < position:  # truncated: a new run started on this path
            position = 0
            buffer = ""
        if size > position:
            with open(path, "r", encoding="utf-8") as handle:
                handle.seek(position)
                buffer += handle.read()
                position = handle.tell()
            while "\n" in buffer:
                line, buffer = buffer.split("\n", 1)
                line = line.strip()
                if not line:
                    continue
                try:
                    record = json.loads(line)
                except json.JSONDecodeError:
                    continue
                if isinstance(record, dict):
                    yielded += 1
                    yield _normalize(record)
                    if stop_after is not None and yielded >= stop_after:
                        return
        else:
            time.sleep(poll)


def report_command(
    path: str, trace_limit: int = 30, out: Optional[TextIO] = None
) -> int:
    """``python -m repro.obs report <export>``: render the final snapshot."""
    out = out if out is not None else sys.stdout
    payloads = load_export(path)
    if not payloads:
        print(f"no payloads found in {path}", file=sys.stderr)
        return 1
    finals = [p for p in payloads if p.get("kind") == "final"]
    payload = finals[-1] if finals else payloads[-1]
    instr = instrumentation_from(payload)
    title = f"repro.obs report — {os.path.basename(path)} ({payload.get('kind', 'snapshot')})"
    print(render_dashboard(instr, title=title, trace_limit=trace_limit), file=out)
    return 0


def top_command(
    path: str,
    interval: float = 0.5,
    frames: Optional[int] = None,
    follow: bool = True,
    out: Optional[TextIO] = None,
) -> int:
    """``python -m repro.obs top <export>``: live dashboard frames.

    ``frames`` bounds how many frames are rendered (tests use 1-2);
    ``follow=False`` renders what the file already holds and exits.
    """
    out = out if out is not None else sys.stdout
    previous: Optional[Dict[str, Any]] = None
    rendered = 0
    clear = out is sys.stdout and hasattr(out, "isatty") and out.isatty()
    if not follow:
        payloads = load_export(path)
        if frames is not None:
            payloads = payloads[-frames:]
        for payload in payloads:
            print(render_frame(payload, previous, title=f"repro.obs top — {path}"), file=out)
            previous = payload
            rendered += 1
        return 0 if rendered else 1
    try:
        for payload in _tail_payloads(path, poll=max(0.05, interval / 4), stop_after=frames):
            if clear:
                out.write("\x1b[2J\x1b[H")
            print(render_frame(payload, previous, title=f"repro.obs top — {path}"), file=out)
            previous = payload
            rendered += 1
            if payload.get("kind") == "final":
                break
    except KeyboardInterrupt:
        pass
    return 0 if rendered else 1
