"""The cross-process telemetry plane: worker streamers, parent aggregator.

Telemetry rides the pipes the sharded pool already owns.  A worker's
:class:`TelemetryStreamer` is a daemon thread that, every ``interval``
seconds, computes a metrics *delta* (see ``delta.py``) plus the trace
records that appeared since the last tick and puts them on the shared
result queue as ``("obs", 0, worker_index, payload)`` — the same 4-tuple
shape as task replies, so the parent's collection loop needs exactly one
extra branch.  No new file descriptors, no sidecar socket, no second
protocol: if the pipe works for results it works for telemetry, and
both stop together when the worker dies.

The parent's :class:`LiveAggregator` folds incoming deltas into its own
private registry (never the process default — the authoritative
end-of-run merge must stay byte-identical to a serial run) and
republishes through an optional :class:`~repro.obs.live.expose.Exporter`
at a throttled cadence.  Per-worker sequence numbers make crash/respawn
visible: a respawned worker's streamer restarts at sequence 1, which the
aggregator records as a restart rather than silently absorbing.
"""

from __future__ import annotations

import os
import threading
import time
from collections import deque
from typing import Any, Callable, Dict, List, Optional

from repro.obs.instrument import Instrumentation, get_default
from repro.obs.live.delta import DeltaTracker
from repro.obs.metrics import MergeError, MetricsRegistry

STREAM_SCHEMA = "repro.obs/worker-stream/v1"

#: Default seconds between worker delta ticks (``REPRO_OBS_INTERVAL``).
DEFAULT_INTERVAL = 0.25


def stream_interval(env: Optional[Dict[str, str]] = None) -> float:
    """The telemetry tick interval, from ``REPRO_OBS_INTERVAL`` if set."""
    raw = (env if env is not None else os.environ).get("REPRO_OBS_INTERVAL", "")
    try:
        value = float(raw)
    except ValueError:
        return DEFAULT_INTERVAL
    return max(0.01, value) if value > 0 else DEFAULT_INTERVAL


class TelemetryStreamer:
    """Worker-side: periodic delta snapshots onto the result queue.

    Runs beside the worker's task loop; reads are racy by design (the
    main thread mutates the registry while this thread snapshots it), so
    any exception during collection skips the tick — the delta baseline
    only advances on success, and the next tick carries the change.
    """

    def __init__(
        self,
        worker_index: int,
        results: Any,
        obs: Optional[Instrumentation] = None,
        interval: Optional[float] = None,
    ) -> None:
        self.worker_index = worker_index
        self.results = results
        self.obs = obs if obs is not None else get_default()
        self.interval = interval if interval is not None else stream_interval()
        self._tracker = DeltaTracker(self.obs.registry)
        self._last_span_id = 0
        self._seq = 0
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name=f"repro-obs-stream-{worker_index}", daemon=True
        )

    def start(self) -> None:
        self._thread.start()

    def stop(self) -> None:
        """Stop the thread after one final flush tick."""
        self._stop.set()
        self._thread.join(timeout=2.0)

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self._tick()
        self._tick()  # final flush: ship whatever the last interval missed

    def _tick(self) -> None:
        payload = self.collect()
        if payload is None:
            return
        try:
            self.results.put(("obs", 0, self.worker_index, payload))
        except Exception:
            pass  # parent gone / queue closed: telemetry dies quietly

    def collect(self) -> Optional[Dict[str, Any]]:
        """One tick's payload, or ``None`` when nothing moved.

        Public so tests can drive ticks synchronously without a thread.
        """
        try:
            metrics = self._tracker.delta_snapshot()
            trace = self._fresh_trace()
        except Exception:
            return None  # raced a mutation mid-snapshot; next tick catches up
        if not metrics and not trace:
            return None
        self._seq += 1
        return {
            "schema": STREAM_SCHEMA,
            "worker": self.worker_index,
            "pid": os.getpid(),
            "seq": self._seq,
            "metrics": metrics,
            "trace": trace,
        }

    def _fresh_trace(self) -> List[Dict[str, Any]]:
        records = []
        for record in self.obs.tracer.records():
            if record.span_id > self._last_span_id:
                records.append(record.to_dict())
        if records:
            self._last_span_id = records[-1]["span_id"]
        return records


class LiveAggregator:
    """Parent-side: merge worker deltas, keep a trace tail, republish.

    The aggregate registry is *advisory* (a live view), so a malformed
    delta is counted and dropped instead of raised — operational
    telemetry must never take down the run it observes.
    """

    def __init__(
        self,
        exporter: Optional[Any] = None,
        trace_tail: int = 512,
        publish_interval: float = 0.5,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        self.registry = MetricsRegistry()
        self.exporter = exporter
        self.trace: "deque[Dict[str, Any]]" = deque(maxlen=trace_tail)
        self.workers: Dict[int, Dict[str, int]] = {}
        self.dropped = 0
        self._lock = threading.Lock()
        self._clock = clock
        self._publish_interval = publish_interval
        self._last_publish = float("-inf")

    def ingest(self, payload: Dict[str, Any]) -> None:
        """Fold one worker stream payload into the live view."""
        with self._lock:
            worker = payload.get("worker", -1)
            seq = payload.get("seq", 0)
            state = self.workers.setdefault(
                worker, {"seq": 0, "updates": 0, "restarts": 0, "pid": 0}
            )
            if seq <= state["seq"]:
                # A respawned worker's streamer starts over at seq 1 —
                # the crash/respawn trace the dashboard surfaces.
                state["restarts"] += 1
            state["seq"] = seq
            state["updates"] += 1
            state["pid"] = payload.get("pid", state["pid"])
            try:
                self.registry.merge_snapshot(payload.get("metrics", {}))
            except MergeError:
                self.dropped += 1
            self.trace.extend(payload.get("trace", ()))
        self._maybe_publish()

    def snapshot(self) -> Dict[str, Any]:
        """The live view as plain data (metrics + stream bookkeeping)."""
        with self._lock:
            return {
                "metrics": self.registry.snapshot(),
                "workers": {
                    str(index): dict(state)
                    for index, state in sorted(self.workers.items())
                },
                "dropped": self.dropped,
                "trace": list(self.trace),
            }

    def _maybe_publish(self) -> None:
        if self.exporter is None:
            return
        now = self._clock()
        if now - self._last_publish < self._publish_interval:
            return
        self._last_publish = now
        self.publish(kind="live")

    def publish(self, kind: str = "live") -> None:
        """Push the current live view through the exporter (if any)."""
        if self.exporter is None:
            return
        view = self.snapshot()
        trace = view.pop("trace")
        self.exporter.publish(
            view.pop("metrics"),
            kind=kind,
            workers=view["workers"],
            dropped=view["dropped"],
            trace=trace[-64:],
        )
