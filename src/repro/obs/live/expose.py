"""Exposition: the merged registry, served to the outside world.

Zero-dependency on purpose — the stack's north star is a serving plane
that operators point real collectors at, and the contract starts here:

* :func:`prometheus_text` renders any metrics snapshot in the Prometheus
  text exposition format (counters, gauges, cumulative histogram
  buckets);
* :class:`JsonlSink` appends timestamped snapshot payloads to a JSONL
  file — the stream ``python -m repro.obs top`` tails;
* :class:`MetricsServer` is a localhost socket server (a ~hundred-line
  HTTP/1.0 responder, no ``http.server`` import) answering ``GET
  /metrics`` with Prometheus text and ``GET /metrics.json`` with the raw
  snapshot;
* :class:`Exporter` bundles any number of sinks behind one
  :meth:`~Exporter.publish` call and is built from the
  ``REPRO_OBS_EXPORT`` environment variable — a comma-separated list of
  targets, each either ``host:port`` (socket server) or a file path
  (JSONL stream).  Unset/empty/``off`` means no exporter: the entire
  plane stays inert and costs nothing.

Every published payload is a *cumulative* snapshot (deltas exist only on
the worker→parent pipe, see ``stream.py``): each JSONL line stands alone,
so a tailing consumer can join at any point and a crashed run's last
line is its last known state.
"""

from __future__ import annotations

import json
import os
import re
import socket
import threading
import time
from typing import Any, Callable, Dict, List, Optional

EXPORT_SCHEMA = "repro.obs/live-export/v1"

_NAME_RE = re.compile(r"[^a-zA-Z0-9_:]")
_LABEL_RE = re.compile(r"[^a-zA-Z0-9_]")


def _metric_name(name: str) -> str:
    """A Prometheus-legal metric name (dots become underscores)."""
    sanitized = _NAME_RE.sub("_", name)
    if sanitized and sanitized[0].isdigit():
        sanitized = "_" + sanitized
    return sanitized


def _label_pairs(labels: Dict[str, Any]) -> str:
    if not labels:
        return ""
    parts = []
    for key, value in sorted(labels.items()):
        text = str(value).replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")
        parts.append(f'{_LABEL_RE.sub("_", str(key))}="{text}"')
    return "{" + ",".join(parts) + "}"


def _merge_label(labels: Dict[str, Any], extra: str) -> str:
    """Label string with one extra pre-rendered ``key="value"`` pair."""
    rendered = _label_pairs(labels)
    if not rendered:
        return "{" + extra + "}"
    return rendered[:-1] + "," + extra + "}"


def prometheus_text(snapshot: Dict[str, List[Dict[str, Any]]]) -> str:
    """A metrics snapshot in the Prometheus text exposition format.

    Histograms come out cumulative (``_bucket{le=...}`` including
    ``+Inf``) with ``_sum`` and ``_count`` series, exactly as a
    collector expects.
    """
    lines: List[str] = []
    for name in sorted(snapshot):
        entries = snapshot[name]
        if not entries:
            continue
        flat = _metric_name(name)
        kind = entries[0].get("kind", "untyped")
        prom_type = {"counter": "counter", "gauge": "gauge", "histogram": "histogram"}
        lines.append(f"# TYPE {flat} {prom_type.get(kind, 'untyped')}")
        for entry in entries:
            labels = entry.get("labels", {})
            if entry.get("kind") in ("counter", "gauge"):
                lines.append(f"{flat}{_label_pairs(labels)} {entry.get('value', 0)}")
                continue
            bounds = entry.get("bounds") or []
            counts = entry.get("bucket_counts") or []
            cumulative = 0
            for index, bound in enumerate(bounds):
                cumulative += counts[index] if index < len(counts) else 0
                le = 'le="' + repr(bound) + '"'
                lines.append(f"{flat}_bucket{_merge_label(labels, le)} {cumulative}")
            inf = 'le="+Inf"'
            lines.append(
                f"{flat}_bucket{_merge_label(labels, inf)} {entry.get('count', 0)}"
            )
            lines.append(f"{flat}_sum{_label_pairs(labels)} {entry.get('sum', 0.0)}")
            lines.append(f"{flat}_count{_label_pairs(labels)} {entry.get('count', 0)}")
    return "\n".join(lines) + ("\n" if lines else "")


class JsonlSink:
    """Appends one JSON payload per publish to a JSONL file."""

    def __init__(self, path: str) -> None:
        self.path = path
        directory = os.path.dirname(path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        # Truncate at attach time: the stream documents *this* run.
        with open(path, "w", encoding="utf-8"):
            pass

    def publish(self, payload: Dict[str, Any]) -> None:
        with open(self.path, "a", encoding="utf-8") as handle:
            handle.write(json.dumps(payload, sort_keys=True) + "\n")

    def close(self) -> None:  # file is opened per publish; nothing held
        pass

    def describe(self) -> str:
        return f"jsonl:{self.path}"


class MetricsServer:
    """A localhost socket serving the latest published snapshot.

    ``GET /metrics`` answers Prometheus text, ``GET /metrics.json`` the
    raw payload; anything else is 404.  One thread, blocking accept,
    HTTP/1.0 close-per-request — this is an exposition endpoint for a
    scraper, not a web framework.
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0) -> None:
        self._sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        self._sock.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        self._sock.bind((host, port))
        self._sock.listen(8)
        self.host, self.port = self._sock.getsockname()[:2]
        self._latest: Optional[Dict[str, Any]] = None
        self._closed = False
        self._thread = threading.Thread(
            target=self._serve_forever, name="repro-obs-expose", daemon=True
        )
        self._thread.start()

    def publish(self, payload: Dict[str, Any]) -> None:
        self._latest = payload  # atomic reference swap; readers copy it

    def _serve_forever(self) -> None:
        while not self._closed:
            try:
                conn, _ = self._sock.accept()
            except OSError:
                break
            try:
                self._answer(conn)
            except OSError:
                pass
            finally:
                try:
                    conn.close()
                except OSError:
                    pass

    def _answer(self, conn: socket.socket) -> None:
        conn.settimeout(2.0)
        try:
            request = conn.recv(4096).decode("latin-1", "replace")
        except (OSError, socket.timeout):
            return
        first = request.split("\r\n", 1)[0]
        parts = first.split()
        path = parts[1] if len(parts) >= 2 else "/"
        payload = self._latest or {"schema": EXPORT_SCHEMA, "metrics": {}}
        if path.startswith("/metrics.json"):
            body = json.dumps(payload, sort_keys=True).encode("utf-8")
            ctype = "application/json"
            status = "200 OK"
        elif path.startswith("/metrics"):
            body = prometheus_text(payload.get("metrics", {})).encode("utf-8")
            ctype = "text/plain; version=0.0.4; charset=utf-8"
            status = "200 OK"
        else:
            body = b"repro.obs.live: try /metrics or /metrics.json\n"
            ctype = "text/plain; charset=utf-8"
            status = "404 Not Found"
        head = (
            f"HTTP/1.0 {status}\r\nContent-Type: {ctype}\r\n"
            f"Content-Length: {len(body)}\r\nConnection: close\r\n\r\n"
        )
        conn.sendall(head.encode("latin-1") + body)

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        try:
            self._sock.close()
        except OSError:
            pass
        self._thread.join(timeout=1.0)

    def describe(self) -> str:
        return f"http://{self.host}:{self.port}/metrics"


_HOST_PORT_RE = re.compile(r"^(?P<host>[A-Za-z0-9_.\-]+):(?P<port>\d{1,5})$")


class Exporter:
    """Any number of sinks behind one publish call.

    Build one explicitly with sinks, or from the environment with
    :meth:`from_env` — ``None`` when ``REPRO_OBS_EXPORT`` names no
    target, which is how every call site keeps the disabled path free.
    """

    def __init__(self, sinks: List[Any]) -> None:
        self.sinks = list(sinks)
        self._seq = 0
        self._lock = threading.Lock()

    @classmethod
    def from_env(cls, env: Optional[Dict[str, str]] = None) -> Optional["Exporter"]:
        """The exporter ``REPRO_OBS_EXPORT`` asks for, or ``None``.

        The value is a comma-separated target list: ``host:port`` starts
        a :class:`MetricsServer` on that address (port ``0`` picks a free
        port), anything else is a JSONL stream path.  ``off``/``0`` and
        empty tokens are ignored.
        """
        raw = (env if env is not None else os.environ).get("REPRO_OBS_EXPORT", "")
        sinks: List[Any] = []
        for token in raw.split(","):
            token = token.strip()
            if not token or token.lower() in ("off", "0", "no", "none", "false"):
                continue
            match = _HOST_PORT_RE.match(token)
            if match:
                sinks.append(
                    MetricsServer(match.group("host"), int(match.group("port")))
                )
            else:
                sinks.append(JsonlSink(token))
        if not sinks:
            return None
        return cls(sinks)

    def publish(
        self,
        metrics: Dict[str, List[Dict[str, Any]]],
        kind: str = "snapshot",
        **extra: Any,
    ) -> Dict[str, Any]:
        """Publish one cumulative snapshot to every sink; returns the payload."""
        with self._lock:
            self._seq += 1
            payload: Dict[str, Any] = {
                "schema": EXPORT_SCHEMA,
                "seq": self._seq,
                "ts": time.time(),
                "kind": kind,
                "metrics": metrics,
            }
            payload.update(extra)
            for sink in self.sinks:
                try:
                    sink.publish(payload)
                except OSError:
                    pass  # a full disk must not take down the run
            return payload

    def close(self) -> None:
        for sink in self.sinks:
            try:
                sink.close()
            except OSError:
                pass

    def describe(self) -> str:
        return ", ".join(sink.describe() for sink in self.sinks)


class PeriodicPublisher:
    """A daemon thread publishing ``source()`` every ``interval`` seconds.

    The serial-run counterpart of the worker streamer: a single-process
    conformance run has no pipe to ride, so a publisher thread snapshots
    the process registry directly.  ``source`` returns a metrics
    snapshot; read errors (a registry mutating mid-snapshot) skip the
    tick rather than killing the thread.
    """

    def __init__(
        self,
        exporter: Exporter,
        source: Callable[[], Dict[str, List[Dict[str, Any]]]],
        interval: float = 0.5,
        **extra: Any,
    ) -> None:
        self.exporter = exporter
        self.source = source
        self.interval = max(0.05, interval)
        self.extra = extra
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run, name="repro-obs-publisher", daemon=True
        )
        self._thread.start()

    def _run(self) -> None:
        while not self._stop.wait(self.interval):
            self._tick()

    def _tick(self) -> None:
        try:
            metrics = self.source()
        except Exception:
            return
        self.exporter.publish(metrics, kind="live", **self.extra)

    def stop(self) -> None:
        """Stop the thread (no final publish; callers publish the final)."""
        self._stop.set()
        self._thread.join(timeout=2.0)
