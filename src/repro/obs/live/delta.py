"""Delta snapshots: what changed in a registry since the last tick.

A :class:`DeltaTracker` watches one :class:`~repro.obs.metrics.
MetricsRegistry` and, on each :meth:`~DeltaTracker.delta_snapshot` call,
returns only the *change* since the previous call — in exactly the shape
:meth:`~repro.obs.metrics.MetricsRegistry.merge_snapshot` consumes, so
the receiving side needs no new machinery: merging every delta in order
reconstructs the sender's registry.

This is the wire format of the worker→parent telemetry stream (see
DESIGN.md "The live telemetry plane").  Deltas instead of full snapshots
because a conformance worker's registry grows to hundreds of labeled
coverage counters: shipping the handful that moved each tick keeps the
pipe traffic proportional to activity, not to registry size.

Reset awareness: ``execute_unit`` zeroes the worker's registry at unit
start, so a counter can legitimately go *down* between ticks.  The
tracker treats any decrease as a reset and emits the post-reset value as
the delta — summed deltas then equal the total work done across units,
which is what a live aggregate view wants.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Tuple

from repro.obs.metrics import LabelItems, MetricsRegistry


def _label_key(labels: Dict[str, Any]) -> LabelItems:
    return tuple(sorted(labels.items()))


class DeltaTracker:
    """Per-registry baseline state for computing successive deltas."""

    def __init__(self, registry: MetricsRegistry) -> None:
        self.registry = registry
        self._base: Dict[Tuple[str, LabelItems], Dict[str, Any]] = {}

    def delta_snapshot(self) -> Dict[str, List[Dict[str, Any]]]:
        """The change since the previous call, as a mergeable snapshot.

        Metrics that did not move are omitted entirely; an idle tick
        returns ``{}``.  The baseline only advances when the snapshot
        read succeeds, so a failed read (e.g. the registry mutating
        under a concurrent snapshot) loses nothing — the next tick
        carries the accumulated change.
        """
        snapshot = self.registry.snapshot()
        out: Dict[str, List[Dict[str, Any]]] = {}
        seen: set = set()
        for name, entries in snapshot.items():
            for entry in entries:
                key = (name, _label_key(entry.get("labels", {})))
                seen.add(key)
                delta = self._entry_delta(entry, self._base.get(key))
                if delta is not None:
                    out.setdefault(name, []).append(delta)
                self._base[key] = entry
        # Metrics dropped from the registry (clear()) must not leave a
        # stale baseline: a recreated counter would read as a reset
        # anyway, but pruning keeps the tracker's memory bounded by the
        # live registry's size.
        for key in [k for k in self._base if k not in seen]:
            del self._base[key]
        return out

    @staticmethod
    def _entry_delta(
        entry: Dict[str, Any], base: Optional[Dict[str, Any]]
    ) -> Optional[Dict[str, Any]]:
        kind = entry.get("kind")
        labels = entry.get("labels", {})
        if kind == "counter":
            value = entry.get("value", 0)
            last = base.get("value", 0) if base else 0
            delta = value - last if value >= last else value  # reset
            if not delta:
                return None
            return {"labels": labels, "kind": "counter", "value": delta}
        if kind == "gauge":
            value = entry.get("value", 0.0)
            last = base.get("value", 0.0) if base else 0.0
            delta = value - last
            if not delta:
                return None
            return {"labels": labels, "kind": "gauge", "value": delta}
        if kind == "histogram":
            count = entry.get("count", 0)
            last_count = base.get("count", 0) if base else 0
            if count < last_count:  # reset: the whole entry is the delta
                base = None
                last_count = 0
            if count == last_count:
                return None
            counts = list(entry.get("bucket_counts") or [])
            if base is not None:
                last_counts = base.get("bucket_counts") or []
                counts = [
                    c - (last_counts[i] if i < len(last_counts) else 0)
                    for i, c in enumerate(counts)
                ]
            return {
                "labels": labels,
                "kind": "histogram",
                "bounds": list(entry.get("bounds") or []),
                "bucket_counts": counts,
                "count": count - last_count,
                "sum": entry.get("sum", 0.0)
                - (base.get("sum", 0.0) if base else 0.0),
                # min/max pass through: merge widens, so the receiver's
                # min-of-mins / max-of-maxes stays exact.
                "min": entry.get("min"),
                "max": entry.get("max"),
            }
        return None
