"""The injection point of ``repro.obs``: the :class:`Instrumentation` context.

Instrumented code (the machine runtime, the codec, the simulator...) never
talks to a registry or tracer directly; it holds an ``Instrumentation``
object — injected by the caller or defaulting to the process-wide one —
and checks its ``enabled`` flag before doing any observability work.  When
the flag is False (the default for the process-wide instance), the cost of
being instrumented is approximately **one attribute check per hot call**.

Two ways to observe:

* *inject*: build ``Instrumentation()`` and pass it to ``Machine(...,
  obs=...)``, ``Simulator(obs=...)``, ``decode_packet(..., obs=...)`` —
  isolated, the right shape for tests;
* *global*: call :func:`enable` and everything constructed afterwards
  (and everything already holding the default) reports into the shared
  default instance — the right shape for examples and benchmarks.

:func:`profiled` is the decorator form: wrap any function and, when the
governing instrumentation is enabled, each call records a latency
histogram observation, a call counter, and a trace span.
"""

from __future__ import annotations

import functools
import time
from typing import Any, Callable, Dict, List, Optional, TypeVar

from repro.obs.metrics import MetricsRegistry
from repro.obs.trace import Tracer

F = TypeVar("F", bound=Callable[..., Any])


class Instrumentation:
    """A registry + tracer pair behind one ``enabled`` flag.

    Attributes are public and stable: hot code reads ``obs.enabled`` and,
    only when True, touches ``obs.registry`` / ``obs.tracer``.
    """

    __slots__ = ("registry", "tracer", "enabled")

    def __init__(
        self,
        registry: Optional[MetricsRegistry] = None,
        tracer: Optional[Tracer] = None,
        enabled: bool = True,
    ) -> None:
        self.registry = registry if registry is not None else MetricsRegistry()
        self.tracer = tracer if tracer is not None else Tracer()
        self.enabled = enabled

    def reset(self) -> None:
        """Zero all metrics and drop all trace records."""
        self.registry.reset()
        self.tracer.reset()

    def snapshot(self) -> Dict[str, Any]:
        """Metrics + trace as plain JSON-ready data."""
        return {
            "metrics": self.registry.snapshot(),
            "trace": [record.to_dict() for record in self.tracer.records()],
        }

    def __repr__(self) -> str:
        state = "enabled" if self.enabled else "disabled"
        return (
            f"Instrumentation({state}, {len(self.registry)} metrics, "
            f"{len(self.tracer)} trace records)"
        )


class _NullInstrumentation(Instrumentation):
    """Permanently disabled; the no-op baseline for overhead measurement."""

    __slots__ = ()

    def __init__(self) -> None:
        super().__init__(enabled=False)

    def __setattr__(self, name: str, value: Any) -> None:
        if name == "enabled" and value:
            raise ValueError("NULL_OBS cannot be enabled; build an Instrumentation()")
        super().__setattr__(name, value)


#: A shared, permanently-off instrumentation.  Pass it explicitly to opt a
#: component out of the process default (and to measure baseline overhead).
NULL_OBS = _NullInstrumentation()

# The process-wide default every instrumented constructor falls back to.
# It starts disabled, so an uninstrumented program pays only the flag
# checks; enable()/disable() toggle the flag *in place* because components
# capture the object (not the flag) at construction time.
_default = Instrumentation(enabled=False)


def get_default() -> Instrumentation:
    """The process-wide default instrumentation (disabled until enabled)."""
    return _default


def set_default(obs: Instrumentation) -> Instrumentation:
    """Replace the process-wide default; returns the previous one.

    Components built before the swap keep the instance they captured.
    """
    global _default
    previous = _default
    _default = obs
    return previous


def enable() -> Instrumentation:
    """Switch the process-wide default on and return it."""
    _default.enabled = True
    return _default


def disable() -> Instrumentation:
    """Switch the process-wide default off and return it."""
    _default.enabled = False
    return _default


def profiled(
    name_or_fn: Any = None,
    *,
    obs: Optional[Instrumentation] = None,
    trace: bool = True,
) -> Any:
    """Decorator: time every call of a function into the metrics registry.

    Usable bare (``@profiled``) or configured
    (``@profiled("codec.decode", obs=my_obs)``).  Per call, when the
    governing instrumentation is enabled, records:

    * histogram ``profile.seconds{fn=<name>}`` — call latency;
    * counter ``profile.calls{fn=<name>}`` — call count;
    * a trace span named ``<name>`` (suppress with ``trace=False``).

    With ``obs=None`` the *current* process default is consulted on every
    call, so enabling observability later still takes effect.
    """

    def decorate(fn: F, metric_name: Optional[str] = None) -> F:
        label = metric_name or fn.__qualname__

        @functools.wraps(fn)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            instr = obs if obs is not None else _default
            if not instr.enabled:
                return fn(*args, **kwargs)
            if trace:
                with instr.tracer.span(label):
                    start = time.perf_counter()
                    result = fn(*args, **kwargs)
                    elapsed = time.perf_counter() - start
            else:
                start = time.perf_counter()
                result = fn(*args, **kwargs)
                elapsed = time.perf_counter() - start
            registry = instr.registry
            registry.histogram("profile.seconds", fn=label).observe(elapsed)
            registry.counter("profile.calls", fn=label).inc()
            return result

        return wrapper  # type: ignore[return-value]

    if callable(name_or_fn):
        return decorate(name_or_fn)
    if name_or_fn is None or isinstance(name_or_fn, str):
        return lambda fn: decorate(fn, name_or_fn)
    raise TypeError(f"profiled() takes a function or a name, got {name_or_fn!r}")
