"""repro.obs — unified tracing, metrics and profiling for the DSL runtime.

The paper's position is that spec-first protocol definitions make tooling
"fall out" of the DSL; this package is the measurement half of that story.
One :class:`Instrumentation` object — a :class:`MetricsRegistry` plus a
ring-buffered :class:`Tracer` — threads through the machine runtime, the
codec, the definition-time checker and the network simulator, so a single
timeline correlates *what the protocol did* (transitions, frames, timers)
with *what it cost* (wall-time histograms) and *when it happened* in both
wall and simulated virtual time.

Quick start::

    from repro import obs

    instr = obs.enable()              # switch the process default on
    ...run a simulation / machine...
    print(obs.render_dashboard(instr))
    instr.tracer.to_jsonl()           # structured export

Everything is zero-dependency, and with observability off (the default)
instrumented hot paths pay roughly one attribute check per call.
"""

from repro.obs.instrument import (
    NULL_OBS,
    Instrumentation,
    disable,
    enable,
    get_default,
    profiled,
    set_default,
)
from repro.obs.metrics import (
    DEFAULT_TIME_BUCKETS,
    Counter,
    Gauge,
    Histogram,
    MergeError,
    MetricsRegistry,
    compact_snapshot,
    log_buckets,
)
from repro.obs.report import export_json, render_dashboard
from repro.obs.trace import SpanRecord, Tracer

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MergeError",
    "MetricsRegistry",
    "DEFAULT_TIME_BUCKETS",
    "compact_snapshot",
    "log_buckets",
    "Tracer",
    "SpanRecord",
    "Instrumentation",
    "NULL_OBS",
    "get_default",
    "set_default",
    "enable",
    "disable",
    "profiled",
    "render_dashboard",
    "export_json",
]
