"""The tracing half of ``repro.obs``: ring-buffered spans and events.

A :class:`Tracer` records :class:`SpanRecord` entries into a bounded ring
buffer (old records fall off the back, so a long simulation cannot grow
memory without bound).  Every record carries **two timestamps**:

* *wall* time from a monotonic clock (``time.perf_counter``) — what the
  host actually spent;
* *virtual* time from an attached simulator clock — when it happened in
  the simulated world.

The pair is the whole point: a retransmission timer that fires 0.5
virtual seconds later costs microseconds of wall time, and profiling the
runtime requires seeing both axes against one timeline.

Spans nest: entering a span pushes it onto a stack, so records created
inside it (child spans, point events) carry its id as ``parent_id``.
Export is JSONL — one JSON object per record — and round-trips through
:meth:`Tracer.from_jsonl`.
"""

from __future__ import annotations

import json
import time
import zlib
from collections import deque
from typing import Any, Callable, Dict, Iterable, List, Optional, Tuple


def frame_digest(data: bytes) -> str:
    """A short stable digest of a frame, for correlating trace records.

    The same bytes submitted to a channel (a capture record) and consumed
    by a machine transition (an ``exec_trans`` span) share this digest, so
    the two timelines join on it.  CRC32 is plenty for correlation and an
    order of magnitude cheaper than a cryptographic hash.
    """
    return format(zlib.crc32(bytes(data)) & 0xFFFFFFFF, "08x")


class SpanRecord:
    """One span or point event on the trace timeline.

    ``kind`` is ``"span"`` (has a duration) or ``"event"`` (a point).
    ``wall_end``/``virt_end`` stay None until the span closes (and always
    for events).  ``attrs`` is a small dict of user labels.
    """

    __slots__ = (
        "name",
        "kind",
        "span_id",
        "parent_id",
        "depth",
        "wall_start",
        "wall_end",
        "virt_start",
        "virt_end",
        "attrs",
    )

    def __init__(
        self,
        name: str,
        kind: str,
        span_id: int,
        parent_id: Optional[int],
        depth: int,
        wall_start: float,
        virt_start: Optional[float],
        attrs: Dict[str, Any],
    ) -> None:
        self.name = name
        self.kind = kind
        self.span_id = span_id
        self.parent_id = parent_id
        self.depth = depth
        self.wall_start = wall_start
        self.wall_end: Optional[float] = None
        self.virt_start = virt_start
        self.virt_end: Optional[float] = None
        self.attrs = attrs

    @property
    def wall_duration(self) -> Optional[float]:
        """Wall seconds the span took (None while open / for events)."""
        if self.wall_end is None:
            return None
        return self.wall_end - self.wall_start

    @property
    def virt_duration(self) -> Optional[float]:
        """Virtual seconds the span covered (None without a virtual clock)."""
        if self.virt_end is None or self.virt_start is None:
            return None
        return self.virt_end - self.virt_start

    def to_dict(self) -> Dict[str, Any]:
        """Plain-dict form, as written to JSONL."""
        return {
            "name": self.name,
            "kind": self.kind,
            "span_id": self.span_id,
            "parent_id": self.parent_id,
            "depth": self.depth,
            "wall_start": self.wall_start,
            "wall_end": self.wall_end,
            "virt_start": self.virt_start,
            "virt_end": self.virt_end,
            "attrs": self.attrs,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "SpanRecord":
        """Inverse of :meth:`to_dict`."""
        record = cls(
            name=data["name"],
            kind=data["kind"],
            span_id=data["span_id"],
            parent_id=data["parent_id"],
            depth=data["depth"],
            wall_start=data["wall_start"],
            virt_start=data["virt_start"],
            attrs=dict(data.get("attrs") or {}),
        )
        record.wall_end = data.get("wall_end")
        record.virt_end = data.get("virt_end")
        return record

    def __repr__(self) -> str:
        duration = self.wall_duration
        timing = f"{duration * 1e6:.1f}us" if duration is not None else "open"
        return f"SpanRecord({self.name!r}, id={self.span_id}, {self.kind}, {timing})"


class _SpanHandle:
    """Context manager returned by :meth:`Tracer.span`."""

    __slots__ = ("_tracer", "record")

    def __init__(self, tracer: "Tracer", record: SpanRecord) -> None:
        self._tracer = tracer
        self.record = record

    def set_attr(self, key: str, value: Any) -> None:
        """Attach/overwrite one attribute on the live span."""
        self.record.attrs[key] = value

    def __enter__(self) -> "_SpanHandle":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is not None:
            self.record.attrs.setdefault("error", exc_type.__name__)
        self._tracer._close(self.record)


class Tracer:
    """Bounded, nesting-aware structured trace recorder.

    Parameters
    ----------
    capacity:
        Ring-buffer size; the oldest records are evicted beyond it.
    clock:
        Wall clock (monotonic seconds); injectable for tests.

    The ``virtual_clock`` attribute, when set (a no-argument callable
    returning simulated seconds), stamps every record with virtual time as
    well; :class:`~repro.netsim.simulator.Simulator` attaches itself here
    when built with an enabled instrumentation.
    """

    def __init__(
        self,
        capacity: int = 4096,
        clock: Callable[[], float] = time.perf_counter,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"tracer capacity must be positive, got {capacity}")
        self.capacity = capacity
        self.clock = clock
        self.virtual_clock: Optional[Callable[[], float]] = None
        self._records: "deque[SpanRecord]" = deque(maxlen=capacity)
        self._stack: List[SpanRecord] = []
        self._next_id = 1

    # -- recording ---------------------------------------------------------

    def _virt_now(self, override: Optional[float]) -> Optional[float]:
        if override is not None:
            return override
        if self.virtual_clock is not None:
            return self.virtual_clock()
        return None

    def _new_record(
        self, name: str, kind: str, virt: Optional[float], attrs: Dict[str, Any]
    ) -> SpanRecord:
        parent = self._stack[-1] if self._stack else None
        record = SpanRecord(
            name=name,
            kind=kind,
            span_id=self._next_id,
            parent_id=parent.span_id if parent is not None else None,
            depth=len(self._stack),
            wall_start=self.clock(),
            virt_start=self._virt_now(virt),
            attrs=attrs,
        )
        self._next_id += 1
        self._records.append(record)
        return record

    def span(self, name: str, virt: Optional[float] = None, **attrs: Any) -> _SpanHandle:
        """Open a nested span; use as a context manager.

        ``virt`` overrides the virtual start time (otherwise the attached
        virtual clock, if any, is read).
        """
        record = self._new_record(name, "span", virt, attrs)
        self._stack.append(record)
        return _SpanHandle(self, record)

    def _close(self, record: SpanRecord) -> None:
        record.wall_end = self.clock()
        record.virt_end = self._virt_now(None)
        if record.virt_end is None:
            record.virt_end = record.virt_start
        # Pop through any unclosed children (a child leaked by an early
        # return closes with its parent rather than corrupting the stack).
        while self._stack:
            top = self._stack.pop()
            if top is record:
                break
            if top.wall_end is None:
                top.wall_end = record.wall_end
                top.virt_end = record.virt_end

    def event(self, name: str, virt: Optional[float] = None, **attrs: Any) -> SpanRecord:
        """Record a point event under the current span (if any)."""
        return self._new_record(name, "event", virt, attrs)

    # -- inspection / export ----------------------------------------------

    def records(self) -> Tuple[SpanRecord, ...]:
        """The buffered records, oldest first."""
        return tuple(self._records)

    def find(self, name: str) -> List[SpanRecord]:
        """All buffered records with a given name."""
        return [r for r in self._records if r.name == name]

    def children_of(self, record: SpanRecord) -> List[SpanRecord]:
        """Buffered records whose parent is ``record``."""
        return [r for r in self._records if r.parent_id == record.span_id]

    def to_jsonl(self) -> str:
        """The buffer as JSON Lines (one record object per line)."""
        return "\n".join(json.dumps(r.to_dict(), sort_keys=True) for r in self._records)

    @staticmethod
    def from_jsonl(text: str) -> List[SpanRecord]:
        """Parse JSONL back into records (the export round-trip)."""
        records = []
        for line in text.splitlines():
            line = line.strip()
            if line:
                records.append(SpanRecord.from_dict(json.loads(line)))
        return records

    def reset(self) -> None:
        """Drop all records and any open span state."""
        self._records.clear()
        self._stack.clear()
        self.virtual_clock = None
        self._next_id = 1

    def __len__(self) -> int:
        return len(self._records)
