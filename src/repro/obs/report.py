"""Rendering for ``repro.obs``: a text dashboard and a JSON exporter.

The dashboard is deliberately terminal-shaped — the same spirit as the
capture transcripts and ASCII state diagrams elsewhere in this repo: the
DSL runtime should be inspectable from a shell, with no collector stack.

``render_dashboard`` shows counters, gauges, histograms (with a unicode
bar sketch of the bucket distribution) and a trace excerpt in which spans
indent by nesting depth and every line carries *virtual* and *wall* time.
``export_json`` emits the same data machine-readably (used by the
benchmark harness to build ``BENCH_obs.json``).
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Optional, Sequence

from repro.obs.instrument import Instrumentation
from repro.obs.metrics import Counter, Gauge, Histogram
from repro.obs.trace import SpanRecord

_BARS = " ▁▂▃▄▅▆▇█"


def _format_labels(labels: Sequence) -> str:
    items = dict(labels)
    if not items:
        return ""
    inner = ",".join(f"{key}={value}" for key, value in sorted(items.items()))
    return "{" + inner + "}"


def _format_seconds(seconds: Optional[float]) -> str:
    if seconds is None:
        return "-"
    if seconds < 1e-3:
        return f"{seconds * 1e6:.1f}µs"
    if seconds < 1.0:
        return f"{seconds * 1e3:.2f}ms"
    return f"{seconds:.3f}s"


def _sparkline(histogram: Histogram) -> str:
    peak = max(histogram.counts) or 1
    return "".join(
        _BARS[min(len(_BARS) - 1, (count * (len(_BARS) - 1) + peak - 1) // peak)]
        for count in histogram.counts
    )


def _rule(title: str, width: int = 72) -> str:
    return f"-- {title} " + "-" * max(0, width - len(title) - 4)


def render_counters(metrics: List[Counter]) -> List[str]:
    """Counter lines, widest-value aligned."""
    if not metrics:
        return ["  (none)"]
    rows = [
        (f"{metric.name}{_format_labels(metric.labels)}", str(metric.value))
        for metric in metrics
    ]
    name_width = max(len(name) for name, _ in rows)
    return [f"  {name.ljust(name_width)}  {value:>10}" for name, value in rows]


def render_histogram(metric: Histogram) -> List[str]:
    """A two-line histogram summary: stats, then the bucket sketch."""
    title = f"{metric.name}{_format_labels(metric.labels)}"
    stats = (
        f"count={metric.count}  mean={_format_seconds(metric.mean)}  "
        f"p50={_format_seconds(metric.quantile(0.5))}  "
        f"p95={_format_seconds(metric.quantile(0.95))}  "
        f"max={_format_seconds(metric.max if metric.count else None)}"
    )
    low = _format_seconds(metric.bounds[0])
    high = _format_seconds(metric.bounds[-1])
    return [
        f"  {title}",
        f"    {stats}",
        f"    [{low} {_sparkline(metric)} {high}]",
    ]


def render_trace(
    records: Sequence[SpanRecord], limit: int = 30
) -> List[str]:
    """A trace excerpt: one line per record, indented by nesting depth.

    Shows the *last* ``limit`` records (the freshest activity), each with
    virtual time, nesting, name, attributes and wall duration.
    """
    if not records:
        return ["  (empty trace)"]
    lines = []
    shown = list(records)[-limit:]
    if len(records) > len(shown):
        lines.append(f"  ... {len(records) - len(shown)} earlier records elided ...")
    for record in shown:
        virt = f"{record.virt_start:10.4f}" if record.virt_start is not None else "         -"
        indent = "  " * record.depth
        marker = "·" if record.kind == "event" else "▸"
        attrs = ""
        if record.attrs:
            attrs = " " + " ".join(
                f"{key}={value}" for key, value in sorted(record.attrs.items())
            )
        duration = (
            f"  [{_format_seconds(record.wall_duration)}]"
            if record.kind == "span"
            else ""
        )
        lines.append(f"  {virt}v  {indent}{marker} {record.name}{attrs}{duration}")
    return lines


def render_dashboard(
    obs: Instrumentation, title: str = "repro.obs dashboard", trace_limit: int = 30
) -> str:
    """The full text dashboard for one instrumentation context."""
    counters = [m for m in obs.registry.collect() if isinstance(m, Counter)]
    gauges = [m for m in obs.registry.collect() if isinstance(m, Gauge)]
    histograms = [m for m in obs.registry.collect() if isinstance(m, Histogram)]
    lines = [f"== {title} =="]
    lines.append(_rule(f"counters ({len(counters)})"))
    lines.extend(render_counters(counters))
    lines.append(_rule(f"gauges ({len(gauges)})"))
    lines.extend(render_counters(gauges))  # same shape: name -> value
    lines.append(_rule(f"histograms ({len(histograms)})"))
    if histograms:
        for metric in histograms:
            lines.extend(render_histogram(metric))
    else:
        lines.append("  (none)")
    records = obs.tracer.records()
    lines.append(_rule(f"trace (last {min(trace_limit, len(records))} of {len(records)}; v=virtual s, [..]=wall)"))
    lines.extend(render_trace(records, limit=trace_limit))
    return "\n".join(lines)


def export_json(obs: Instrumentation, path: Optional[str] = None, indent: int = 2) -> Dict[str, Any]:
    """Metrics + trace as a JSON-ready dict; optionally written to ``path``."""
    data = obs.snapshot()
    if path is not None:
        with open(path, "w", encoding="utf-8") as handle:
            json.dump(data, handle, indent=indent, sort_keys=True)
            handle.write("\n")
    return data
