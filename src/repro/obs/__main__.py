"""``python -m repro.obs`` — the operational CLI for the telemetry plane.

Two subcommands, both reading live-export streams (see
``repro.obs.live.expose``):

* ``report <export>`` renders the final dashboard from an export file —
  the post-run view;
* ``top <export>`` tails the stream and redraws the dashboard per
  payload with counter rates — the during-run view, meant for a second
  terminal beside ``python -m repro.conformance --workers N``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.obs.live.top import report_command, top_command


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs",
        description="Operational tools for the repro.obs telemetry plane.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    report = sub.add_parser(
        "report", help="render the dashboard from an export file"
    )
    report.add_argument("export", help="live-export JSONL (or export_json file)")
    report.add_argument(
        "--trace-limit",
        type=int,
        default=30,
        help="max trace spans in the dashboard (default 30)",
    )

    top = sub.add_parser(
        "top", help="tail an export stream and redraw the dashboard live"
    )
    top.add_argument("export", help="live-export JSONL stream to tail")
    top.add_argument(
        "--interval",
        type=float,
        default=0.5,
        help="poll cadence in seconds (default 0.5)",
    )
    top.add_argument(
        "--frames",
        type=int,
        default=None,
        help="stop after N frames (default: follow until a final payload)",
    )
    top.add_argument(
        "--no-follow",
        action="store_true",
        help="render what the file already holds, then exit",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "report":
        return report_command(args.export, trace_limit=args.trace_limit)
    return top_command(
        args.export,
        interval=args.interval,
        frames=args.frames,
        follow=not args.no_follow,
    )


if __name__ == "__main__":
    sys.exit(main())
