"""DER-style encoding rules: tag-length-value, definite lengths.

Each value carries a universal tag octet and a definite length (short form
under 128, long form above), so the encoding is self-describing enough to
skip unknown elements — at the price the paper's comparator discussion
implies: bulk.  Integers are minimal two's complement, per X.690.
"""

from __future__ import annotations

from typing import Any, Tuple

from repro.asn1.types import (
    Asn1Error,
    Asn1Type,
    Boolean,
    Choice,
    Enumerated,
    IA5String,
    Integer,
    OctetString,
    Sequence,
    SequenceOf,
)

TAG_BOOLEAN = 0x01
TAG_INTEGER = 0x02
TAG_OCTET_STRING = 0x04
TAG_ENUMERATED = 0x0A
TAG_IA5STRING = 0x16
TAG_SEQUENCE = 0x30  # constructed
TAG_CONTEXT_BASE = 0xA0  # constructed, context-specific (CHOICE alternatives)


def _encode_length(length: int) -> bytes:
    if length < 0x80:
        return bytes((length,))
    body = length.to_bytes((length.bit_length() + 7) // 8, "big")
    return bytes((0x80 | len(body),)) + body


def _decode_length(data: bytes, pos: int) -> Tuple[int, int]:
    if pos >= len(data):
        raise Asn1Error("truncated length")
    first = data[pos]
    pos += 1
    if first < 0x80:
        return first, pos
    count = first & 0x7F
    if count == 0 or pos + count > len(data):
        raise Asn1Error("malformed long-form length")
    return int.from_bytes(data[pos : pos + count], "big"), pos + count


def _minimal_signed(value: int) -> bytes:
    """Minimal two's-complement representation per X.690 §8.3."""
    if value == 0:
        return b"\x00"
    length = 1
    while True:
        try:
            return value.to_bytes(length, "big", signed=True)
        except OverflowError:
            length += 1


def _tlv(tag: int, body: bytes) -> bytes:
    return bytes((tag,)) + _encode_length(len(body)) + body


def der_encode(schema: Asn1Type, value: Any) -> bytes:
    """Encode ``value`` under ``schema`` with DER-style rules."""
    schema.validate(value)
    return _encode(schema, value)


def _encode(schema: Asn1Type, value: Any) -> bytes:
    if isinstance(schema, Boolean):
        return _tlv(TAG_BOOLEAN, b"\xff" if value else b"\x00")
    if isinstance(schema, Integer):
        return _tlv(TAG_INTEGER, _minimal_signed(value))
    if isinstance(schema, OctetString):
        return _tlv(TAG_OCTET_STRING, value)
    if isinstance(schema, IA5String):
        return _tlv(TAG_IA5STRING, value.encode("ascii"))
    if isinstance(schema, Enumerated):
        return _tlv(TAG_ENUMERATED, _minimal_signed(schema.values[value]))
    if isinstance(schema, Sequence):
        body = b"".join(
            _encode(field_schema, value[name]) for name, field_schema in schema.fields
        )
        return _tlv(TAG_SEQUENCE, body)
    if isinstance(schema, SequenceOf):
        body = b"".join(_encode(schema.element, element) for element in value)
        return _tlv(TAG_SEQUENCE, body)
    if isinstance(schema, Choice):
        name, inner = value
        index = schema.index_of(name)
        inner_schema = schema.alternatives[index][1]
        return _tlv(TAG_CONTEXT_BASE | index, _encode(inner_schema, inner))
    raise Asn1Error(f"cannot DER-encode schema {schema!r}")


def der_decode(schema: Asn1Type, data: bytes) -> Any:
    """Decode DER-style bytes under ``schema``; rejects trailing data."""
    value, end = _decode(schema, data, 0)
    if end != len(data):
        raise Asn1Error(f"{len(data) - end} trailing bytes after value")
    schema.validate(value)
    return value


def _expect_tag(data: bytes, pos: int, tag: int, what: str) -> Tuple[int, int]:
    if pos >= len(data):
        raise Asn1Error(f"truncated {what}: no tag")
    if data[pos] != tag:
        raise Asn1Error(
            f"expected tag 0x{tag:02X} for {what}, got 0x{data[pos]:02X}"
        )
    length, body_start = _decode_length(data, pos + 1)
    if body_start + length > len(data):
        raise Asn1Error(f"truncated {what}: body runs past end")
    return body_start, body_start + length


def _decode(schema: Asn1Type, data: bytes, pos: int) -> Tuple[Any, int]:
    if isinstance(schema, Boolean):
        start, end = _expect_tag(data, pos, TAG_BOOLEAN, "BOOLEAN")
        if end - start != 1:
            raise Asn1Error("BOOLEAN body must be one octet")
        return data[start] != 0, end
    if isinstance(schema, Integer):
        start, end = _expect_tag(data, pos, TAG_INTEGER, "INTEGER")
        if start == end:
            raise Asn1Error("INTEGER body must be non-empty")
        return int.from_bytes(data[start:end], "big", signed=True), end
    if isinstance(schema, OctetString):
        start, end = _expect_tag(data, pos, TAG_OCTET_STRING, "OCTET STRING")
        return data[start:end], end
    if isinstance(schema, IA5String):
        start, end = _expect_tag(data, pos, TAG_IA5STRING, "IA5String")
        try:
            return data[start:end].decode("ascii"), end
        except UnicodeDecodeError:
            raise Asn1Error("IA5String body contains non-ASCII bytes") from None
    if isinstance(schema, Enumerated):
        start, end = _expect_tag(data, pos, TAG_ENUMERATED, "ENUMERATED")
        number = int.from_bytes(data[start:end], "big", signed=True)
        if number not in schema.by_number:
            raise Asn1Error(f"ENUMERATED number {number} has no name")
        return schema.by_number[number], end
    if isinstance(schema, Sequence):
        start, end = _expect_tag(data, pos, TAG_SEQUENCE, "SEQUENCE")
        record = {}
        cursor = start
        for name, field_schema in schema.fields:
            record[name], cursor = _decode(field_schema, data, cursor)
        if cursor != end:
            raise Asn1Error("SEQUENCE body has trailing content")
        return record, end
    if isinstance(schema, SequenceOf):
        start, end = _expect_tag(data, pos, TAG_SEQUENCE, "SEQUENCE OF")
        elements = []
        cursor = start
        while cursor < end:
            element, cursor = _decode(schema.element, data, cursor)
            elements.append(element)
        return elements, end
    if isinstance(schema, Choice):
        if pos >= len(data):
            raise Asn1Error("truncated CHOICE")
        tag = data[pos]
        index = tag - TAG_CONTEXT_BASE
        if not 0 <= index < len(schema.alternatives):
            raise Asn1Error(f"CHOICE tag 0x{tag:02X} selects no alternative")
        start, end = _expect_tag(data, pos, tag, "CHOICE")
        name, inner_schema = schema.alternatives[index]
        inner, cursor = _decode(inner_schema, data, start)
        if cursor != end:
            raise Asn1Error("CHOICE body has trailing content")
        return (name, inner), end
    raise Asn1Error(f"cannot DER-decode schema {schema!r}")
