"""PER-style encoding rules: packed, untagged, constraint-aware.

The packed rules carry **no tags and no redundant lengths**: the decoder
must hold the same schema the encoder used.  Constrained integers occupy
exactly ``ceil(log2(range))`` bits; booleans one bit; CHOICE indices the
minimal bits for the alternative count.  Unconstrained values fall back to
length-prefixed forms.

Together with :mod:`repro.asn1.der` this realizes the paper's observation
that one abstract value yields different wire bytes under different
encoding rules — and the packed form is (often dramatically) smaller,
which experiment E9 quantifies.
"""

from __future__ import annotations

from typing import Any

from repro.asn1.types import (
    Asn1Error,
    Asn1Type,
    Boolean,
    Choice,
    Enumerated,
    IA5String,
    Integer,
    OctetString,
    Sequence,
    SequenceOf,
)
from repro.wire.bits import BitReader, BitWriter, TruncatedDataError


def _bits_for(count: int) -> int:
    """Bits needed to represent ``count`` distinct values (min 0)."""
    if count <= 1:
        return 0
    return (count - 1).bit_length()


def _write_varlen(writer: BitWriter, length: int) -> None:
    """Length determinant: one byte under 128, else 2 bytes with top bit."""
    if length < 0x80:
        writer.write_uint(length, 8)
    elif length < 0x8000:
        writer.write_uint(0x8000 | length, 16)
    else:
        raise Asn1Error(f"length {length} exceeds the 32767 determinant limit")


def _read_varlen(reader: BitReader) -> int:
    first = reader.read_uint(8)
    if first < 0x80:
        return first
    second = reader.read_uint(8)
    return ((first & 0x7F) << 8) | second


def per_encode(schema: Asn1Type, value: Any) -> bytes:
    """Encode ``value`` under ``schema`` with PER-style packed rules."""
    schema.validate(value)
    writer = BitWriter()
    _encode(schema, value, writer)
    writer.pad_to_byte()
    return writer.getvalue()


def _encode(schema: Asn1Type, value: Any, writer: BitWriter) -> None:
    if isinstance(schema, Boolean):
        writer.write_bool(value)
    elif isinstance(schema, Integer):
        _encode_integer(schema, value, writer)
    elif isinstance(schema, OctetString):
        _write_varlen(writer, len(value))
        writer.write_bytes(value)
    elif isinstance(schema, IA5String):
        encoded = value.encode("ascii")
        _write_varlen(writer, len(encoded))
        writer.write_bytes(encoded)
    elif isinstance(schema, Enumerated):
        ordered = sorted(schema.values.values())
        index = ordered.index(schema.values[value])
        bits = _bits_for(len(ordered))
        if bits:
            writer.write_uint(index, bits)
    elif isinstance(schema, Sequence):
        for name, field_schema in schema.fields:
            _encode(field_schema, value[name], writer)
    elif isinstance(schema, SequenceOf):
        _write_varlen(writer, len(value))
        for element in value:
            _encode(schema.element, element, writer)
    elif isinstance(schema, Choice):
        name, inner = value
        index = schema.index_of(name)
        bits = _bits_for(len(schema.alternatives))
        if bits:
            writer.write_uint(index, bits)
        _encode(schema.alternatives[index][1], inner, writer)
    else:
        raise Asn1Error(f"cannot PER-encode schema {schema!r}")


def _encode_integer(schema: Integer, value: int, writer: BitWriter) -> None:
    if schema.is_constrained:
        span = schema.high - schema.low + 1
        bits = _bits_for(span)
        if bits:
            writer.write_uint(value - schema.low, bits)
        return
    # Unconstrained: length-prefixed minimal two's complement.
    if value == 0:
        body = b"\x00"
    else:
        length = 1
        while True:
            try:
                body = value.to_bytes(length, "big", signed=True)
                break
            except OverflowError:
                length += 1
    _write_varlen(writer, len(body))
    writer.write_bytes(body)


def per_decode(schema: Asn1Type, data: bytes) -> Any:
    """Decode packed bytes under ``schema``.

    Trailing *bits* beyond the final byte's padding are rejected; the
    padding itself (inserted by :func:`per_encode`) is tolerated, as the
    packed rules require.
    """
    reader = BitReader(data)
    try:
        value = _decode(schema, reader)
    except TruncatedDataError as exc:
        # Surface truncation through the declared error type, not the
        # underlying bit-reader's.
        raise Asn1Error(f"truncated packed value: {exc}") from exc
    if reader.bits_remaining >= 8:
        raise Asn1Error(f"{reader.bits_remaining} trailing bits after value")
    schema.validate(value)
    return value


def _decode(schema: Asn1Type, reader: BitReader) -> Any:
    if isinstance(schema, Boolean):
        return reader.read_bool()
    if isinstance(schema, Integer):
        return _decode_integer(schema, reader)
    if isinstance(schema, OctetString):
        return reader.read_bytes(_read_varlen(reader))
    if isinstance(schema, IA5String):
        try:
            return reader.read_bytes(_read_varlen(reader)).decode("ascii")
        except UnicodeDecodeError:
            raise Asn1Error("IA5String body contains non-ASCII bytes") from None
    if isinstance(schema, Enumerated):
        ordered = sorted(schema.values.values())
        bits = _bits_for(len(ordered))
        index = reader.read_uint(bits) if bits else 0
        if index >= len(ordered):
            raise Asn1Error(f"ENUMERATED index {index} out of range")
        return schema.by_number[ordered[index]]
    if isinstance(schema, Sequence):
        return {
            name: _decode(field_schema, reader)
            for name, field_schema in schema.fields
        }
    if isinstance(schema, SequenceOf):
        count = _read_varlen(reader)
        return [_decode(schema.element, reader) for _ in range(count)]
    if isinstance(schema, Choice):
        bits = _bits_for(len(schema.alternatives))
        index = reader.read_uint(bits) if bits else 0
        if index >= len(schema.alternatives):
            raise Asn1Error(f"CHOICE index {index} out of range")
        name, inner_schema = schema.alternatives[index]
        return (name, _decode(inner_schema, reader))
    raise Asn1Error(f"cannot PER-decode schema {schema!r}")


def _decode_integer(schema: Integer, reader: BitReader) -> int:
    if schema.is_constrained:
        span = schema.high - schema.low + 1
        bits = _bits_for(span)
        offset = reader.read_uint(bits) if bits else 0
        return schema.low + offset
    length = _read_varlen(reader)
    if length == 0:
        raise Asn1Error("unconstrained INTEGER with empty body")
    return int.from_bytes(reader.read_bytes(length), "big", signed=True)
