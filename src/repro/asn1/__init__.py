"""A miniature ASN.1: abstract types plus two encoding rule sets.

Section 2.1 of the paper describes ASN.1 as the other formal comparator:
abstract data types whose on-the-wire form is determined by a separate set
of encoding rules, so "the use of different encoding rules can give
different on-the-wire packets for the same ASN.1".  This package
demonstrates exactly that property (experiment E9):

* :mod:`repro.asn1.types` — the abstract syntax (INTEGER, BOOLEAN, OCTET
  STRING, IA5String, ENUMERATED, SEQUENCE, SEQUENCE OF, CHOICE) with value
  validation;
* :mod:`repro.asn1.der` — a DER-style tag-length-value encoding;
* :mod:`repro.asn1.per` — a PER-style packed encoding (no tags, bit-level,
  constraint-aware).

The same abstract value encodes to different bytes under each rule set and
round-trips under both — and, as the paper notes, *neither* can state the
semantic constraints the DSL carries (checksums, cross-field relations).
"""

from repro.asn1.types import (
    Asn1Error,
    Boolean,
    Choice,
    Enumerated,
    IA5String,
    Integer,
    OctetString,
    Sequence,
    SequenceOf,
)
from repro.asn1.der import der_decode, der_encode
from repro.asn1.per import per_decode, per_encode

__all__ = [
    "Asn1Error",
    "Integer",
    "Boolean",
    "OctetString",
    "IA5String",
    "Enumerated",
    "Sequence",
    "SequenceOf",
    "Choice",
    "der_encode",
    "der_decode",
    "per_encode",
    "per_decode",
]
