"""Abstract syntax: the type system of the mini-ASN.1.

A schema is a tree of type objects; values are plain Python data checked
against the schema by :meth:`Asn1Type.validate`:

========== ==========================
schema      Python value
========== ==========================
Integer     int
Boolean     bool
OctetString bytes
IA5String   str (ASCII)
Enumerated  str (one of the names)
Sequence    dict (field name -> value)
SequenceOf  list
Choice      (name, value) tuple
========== ==========================
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence as Seq, Tuple


class Asn1Error(ValueError):
    """Raised for schema violations and undecodable data."""


class Asn1Type:
    """Base class for abstract types."""

    type_name = "ANY"

    def validate(self, value: Any) -> None:
        """Raise :class:`Asn1Error` unless ``value`` inhabits the type."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return self.type_name


class Integer(Asn1Type):
    """INTEGER, optionally with a (lo, hi) value constraint.

    Constraints matter to the PER-style rules, which pack constrained
    integers into the minimal number of bits — the clearest demonstration
    that encoding rules, not the abstract syntax, decide the wire bytes.
    """

    type_name = "INTEGER"

    def __init__(
        self, low: Optional[int] = None, high: Optional[int] = None
    ) -> None:
        if low is not None and high is not None and low > high:
            raise Asn1Error(f"inverted INTEGER constraint ({low}, {high})")
        self.low = low
        self.high = high

    @property
    def is_constrained(self) -> bool:
        """True when both bounds are present."""
        return self.low is not None and self.high is not None

    def validate(self, value: Any) -> None:
        if not isinstance(value, int) or isinstance(value, bool):
            raise Asn1Error(f"INTEGER requires int, got {value!r}")
        if self.low is not None and value < self.low:
            raise Asn1Error(f"INTEGER {value} below constraint {self.low}")
        if self.high is not None and value > self.high:
            raise Asn1Error(f"INTEGER {value} above constraint {self.high}")


class Boolean(Asn1Type):
    """BOOLEAN."""

    type_name = "BOOLEAN"

    def validate(self, value: Any) -> None:
        if not isinstance(value, bool):
            raise Asn1Error(f"BOOLEAN requires bool, got {value!r}")


class OctetString(Asn1Type):
    """OCTET STRING, optionally size-constrained."""

    type_name = "OCTET STRING"

    def __init__(
        self, min_size: Optional[int] = None, max_size: Optional[int] = None
    ) -> None:
        self.min_size = min_size
        self.max_size = max_size

    def validate(self, value: Any) -> None:
        if not isinstance(value, bytes):
            raise Asn1Error(f"OCTET STRING requires bytes, got {value!r}")
        if self.min_size is not None and len(value) < self.min_size:
            raise Asn1Error(
                f"OCTET STRING of {len(value)} bytes below size {self.min_size}"
            )
        if self.max_size is not None and len(value) > self.max_size:
            raise Asn1Error(
                f"OCTET STRING of {len(value)} bytes above size {self.max_size}"
            )


class IA5String(Asn1Type):
    """IA5String: ASCII text."""

    type_name = "IA5String"

    def validate(self, value: Any) -> None:
        if not isinstance(value, str):
            raise Asn1Error(f"IA5String requires str, got {value!r}")
        try:
            value.encode("ascii")
        except UnicodeEncodeError:
            raise Asn1Error(f"IA5String must be ASCII: {value!r}") from None


class Enumerated(Asn1Type):
    """ENUMERATED: named alternatives mapped to integers."""

    type_name = "ENUMERATED"

    def __init__(self, values: Dict[str, int]) -> None:
        if not values:
            raise Asn1Error("ENUMERATED requires at least one alternative")
        if len(set(values.values())) != len(values):
            raise Asn1Error("ENUMERATED values must be distinct")
        self.values = dict(values)
        self.by_number = {number: name for name, number in values.items()}

    def validate(self, value: Any) -> None:
        if value not in self.values:
            raise Asn1Error(
                f"ENUMERATED value {value!r} not in {sorted(self.values)}"
            )


class Sequence(Asn1Type):
    """SEQUENCE: an ordered record of named, typed fields."""

    type_name = "SEQUENCE"

    def __init__(self, fields: Seq[Tuple[str, Asn1Type]]) -> None:
        if not fields:
            raise Asn1Error("SEQUENCE requires at least one field")
        names = [name for name, _ in fields]
        if len(set(names)) != len(names):
            raise Asn1Error("SEQUENCE field names must be distinct")
        self.fields: List[Tuple[str, Asn1Type]] = list(fields)

    def validate(self, value: Any) -> None:
        if not isinstance(value, dict):
            raise Asn1Error(f"SEQUENCE requires dict, got {value!r}")
        expected = {name for name, _ in self.fields}
        actual = set(value)
        if expected != actual:
            raise Asn1Error(
                f"SEQUENCE fields mismatch: expected {sorted(expected)}, "
                f"got {sorted(actual)}"
            )
        for name, schema in self.fields:
            schema.validate(value[name])


class SequenceOf(Asn1Type):
    """SEQUENCE OF: a homogeneous list."""

    type_name = "SEQUENCE OF"

    def __init__(self, element: Asn1Type, max_size: Optional[int] = None) -> None:
        self.element = element
        self.max_size = max_size

    def validate(self, value: Any) -> None:
        if not isinstance(value, list):
            raise Asn1Error(f"SEQUENCE OF requires list, got {value!r}")
        if self.max_size is not None and len(value) > self.max_size:
            raise Asn1Error(
                f"SEQUENCE OF with {len(value)} elements exceeds {self.max_size}"
            )
        for element in value:
            self.element.validate(element)


class Choice(Asn1Type):
    """CHOICE: exactly one of several named alternatives."""

    type_name = "CHOICE"

    def __init__(self, alternatives: Seq[Tuple[str, Asn1Type]]) -> None:
        if not alternatives:
            raise Asn1Error("CHOICE requires at least one alternative")
        names = [name for name, _ in alternatives]
        if len(set(names)) != len(names):
            raise Asn1Error("CHOICE alternative names must be distinct")
        self.alternatives: List[Tuple[str, Asn1Type]] = list(alternatives)

    def index_of(self, name: str) -> int:
        """Position of a named alternative."""
        for index, (alt_name, _) in enumerate(self.alternatives):
            if alt_name == name:
                return index
        raise Asn1Error(f"CHOICE has no alternative {name!r}")

    def validate(self, value: Any) -> None:
        if not isinstance(value, tuple) or len(value) != 2:
            raise Asn1Error(f"CHOICE requires (name, value), got {value!r}")
        name, inner = value
        index = self.index_of(name)
        self.alternatives[index][1].validate(inner)
