"""The parent-process half of the sharded execution plane.

A :class:`ShardedPool` owns N forked workers (``repro.parallel.worker``),
one private task queue each plus one shared result queue.  Work is
sharded into contiguous chunks, shipped with spec *fingerprints* (plus
generated source exactly once per worker), and reassembled in input
order — callers cannot tell sharded results from in-process ones.

Failure policy is deliberately blunt: if any chunk of a codec batch
errors, times out, or dies with its worker, the whole batch raises
:class:`ParallelFallback` and the caller reruns it in-process, where the
canonical tiers produce the canonical exception.  Workers are respawned
(with cold codec caches) after a crash, so one bad batch never disables
the plane.  Conformance calls degrade more gently: each failed unit is
reported individually so only that unit reruns in-process.
"""

from __future__ import annotations

import multiprocessing
import queue as _queue
import time
from typing import Any, Dict, List, Optional, Sequence, Tuple

from repro.obs.instrument import get_default
from repro.parallel.worker import worker_main


class ParallelFallback(Exception):
    """The pool could not finish a task; rerun the work in-process."""


class CallError:
    """One conformance unit failed in its worker (others are fine)."""

    __slots__ = ("message",)

    def __init__(self, message: str) -> None:
        self.message = message

    def __repr__(self) -> str:
        return f"CallError({self.message!r})"


class _Worker:
    """One slot in the pool: process, task queue, warmed fingerprints."""

    __slots__ = ("index", "process", "tasks", "warmed")

    def __init__(self, index: int, ctx: Any, results: Any) -> None:
        self.index = index
        self.tasks = ctx.Queue()
        self.warmed: set = set()
        self.process = ctx.Process(
            target=worker_main,
            args=(index, self.tasks, results),
            name=f"repro-parallel-{index}",
            daemon=True,
        )
        self.process.start()


def _chunk_bounds(count: int, shards: int) -> List[Tuple[int, int]]:
    """Split ``range(count)`` into at most ``shards`` balanced slices."""
    shards = min(shards, count)
    base, extra = divmod(count, shards)
    bounds = []
    start = 0
    for index in range(shards):
        end = start + base + (1 if index < extra else 0)
        bounds.append((start, end))
        start = end
    return bounds


class ShardedPool:
    """N forked workers executing codec chunks and conformance units."""

    def __init__(self, workers: int, chunk_timeout: float = 120.0) -> None:
        if workers < 2:
            raise ValueError(f"a pool needs at least 2 workers, got {workers}")
        try:
            self._ctx = multiprocessing.get_context("fork")
        except ValueError:  # non-POSIX hosts: picklable args make spawn fine
            self._ctx = multiprocessing.get_context("spawn")
        self.chunk_timeout = chunk_timeout
        self._results = self._ctx.Queue()
        self._workers: List[_Worker] = [
            _Worker(index, self._ctx, self._results) for index in range(workers)
        ]
        self._task_counter = 0
        self._closed = False
        #: Optional callable fed every worker telemetry payload (the
        #: ``("obs", ...)`` messages streamed over the result queue by
        #: ``repro.obs.live``).  ``None`` — the default — drops them.
        self.telemetry_sink: Optional[Any] = None
        self.stats: Dict[str, int] = {
            "batches_sharded": 0,
            "chunks": 0,
            "calls": 0,
            "worker_failures": 0,
            "fallbacks": 0,
            "source_ships": 0,
            "telemetry_updates": 0,
        }

    @property
    def size(self) -> int:
        return len(self._workers)

    def alive(self) -> bool:
        return not self._closed and all(
            w.process.is_alive() for w in self._workers
        )

    # -- failure handling --------------------------------------------------

    def _record_failure(self, worker: _Worker, reason: str) -> None:
        self.stats["worker_failures"] += 1
        obs = get_default()
        if obs.enabled:
            obs.registry.counter(
                "parallel.worker_failures", reason=reason
            ).inc()

    def _respawn(self, slot: int) -> None:
        """Replace a dead worker; the replacement starts codec-cold."""
        old = self._workers[slot]
        if old.process.is_alive():
            old.process.terminate()
        old.process.join(timeout=1.0)
        # The dead worker's queue may hold pickled chunks its feeder
        # thread can no longer flush; without cancel_join_thread the
        # feeder's exit-time join would hang the whole process.
        old.tasks.cancel_join_thread()
        old.tasks.close()
        self._workers[slot] = _Worker(slot, self._ctx, self._results)

    def inject_crash(self, slot: int) -> None:
        """Fault injection for tests: queue an ``os._exit`` in one worker."""
        self._workers[slot].tasks.put(("crash",))

    # -- codec batches -----------------------------------------------------

    def run_codec(
        self,
        op: str,
        fingerprint: str,
        source: str,
        spec_name: str,
        items: Sequence[Any],
    ) -> List[Any]:
        """Shard ``items`` across the workers; results in input order.

        Raises :class:`ParallelFallback` on any chunk error, timeout, or
        worker death — the caller owns the canonical in-process rerun.
        """
        if self._closed:
            raise ParallelFallback("pool is closed")
        task_id = self._next_task_id()
        bounds = _chunk_bounds(len(items), len(self._workers))
        pending: Dict[int, int] = {}  # chunk -> worker slot
        shipped: Dict[int, Optional[str]] = {}  # chunk -> fingerprint if source sent
        for chunk, (start, end) in enumerate(bounds):
            worker = self._workers[chunk % len(self._workers)]
            ship = None if fingerprint in worker.warmed else source
            if ship is not None:
                self.stats["source_ships"] += 1
            worker.tasks.put(
                ("codec", task_id, chunk, op, fingerprint, ship, list(items[start:end]))
            )
            pending[chunk] = worker.index
            shipped[chunk] = fingerprint if ship is not None else None
        self.stats["batches_sharded"] += 1
        self.stats["chunks"] += len(bounds)
        replies = self._collect(task_id, pending, shipped, strict=True)
        out: List[Any] = []
        for chunk in range(len(bounds)):
            out.extend(replies[chunk])
        return out

    # -- conformance calls -------------------------------------------------

    def run_calls(
        self, calls: Sequence[Tuple[str, Dict[str, Any]]]
    ) -> List[Any]:
        """Run ``(target, kwargs)`` units across workers, results in order.

        A unit that fails (or dies with its worker) comes back as a
        :class:`CallError` in its slot; the caller reruns just that unit
        in-process.  Only a wedged pool raises :class:`ParallelFallback`.
        """
        if self._closed:
            raise ParallelFallback("pool is closed")
        task_id = self._next_task_id()
        pending: Dict[int, int] = {}
        for chunk, (target, kwargs) in enumerate(calls):
            worker = self._workers[chunk % len(self._workers)]
            worker.tasks.put(("call", task_id, chunk, target, kwargs))
            pending[chunk] = worker.index
        self.stats["calls"] += len(calls)
        replies = self._collect(task_id, pending, {}, strict=False)
        return [replies[chunk] for chunk in range(len(calls))]

    # -- telemetry ---------------------------------------------------------

    def _ingest_telemetry(self, payload: Any) -> None:
        sink = self.telemetry_sink
        if sink is None:
            return
        self.stats["telemetry_updates"] += 1
        try:
            sink(payload)
        except Exception:
            pass  # a live view must never take down the run it observes

    def drain_telemetry(self, timeout: float = 0.2) -> int:
        """Route queued telemetry with no task pending; returns count routed.

        ``_collect`` only reads the result queue while chunks are
        outstanding, so worker streamers' final flush ticks (sent when
        their last unit ends) would otherwise sit unread.  Callers that
        want a complete live view call this once after the last batch.
        """
        routed = 0
        deadline = time.monotonic() + timeout
        while time.monotonic() < deadline:
            try:
                message = self._results.get(timeout=0.02)
            except _queue.Empty:
                continue
            if message[0] == "obs":
                self._ingest_telemetry(message[3])
                routed += 1
            # Non-obs messages here are stale replies from aborted
            # tasks; dropping them matches _collect's policy.
        return routed

    # -- collection --------------------------------------------------------

    def _next_task_id(self) -> int:
        self._task_counter += 1
        return self._task_counter

    def _collect(
        self,
        task_id: int,
        pending: Dict[int, int],
        shipped: Dict[int, Optional[str]],
        strict: bool,
    ) -> Dict[int, Any]:
        """Drain the result queue until every pending chunk is answered.

        ``strict`` selects the failure policy: raise
        :class:`ParallelFallback` on the first error (codec batches), or
        substitute :class:`CallError` and keep going (conformance).
        """
        replies: Dict[int, Any] = {}
        deadline = time.monotonic() + self.chunk_timeout
        failure: Optional[str] = None
        while pending:
            try:
                message = self._results.get(timeout=0.05)
            except _queue.Empty:
                dead = {
                    slot
                    for slot in set(pending.values())
                    if not self._workers[slot].process.is_alive()
                }
                for slot in dead:
                    self._record_failure(self._workers[slot], "crash")
                    self._respawn(slot)
                    lost = [c for c, s in pending.items() if s == slot]
                    for chunk in lost:
                        del pending[chunk]
                        replies[chunk] = CallError(
                            f"worker {slot} died holding chunk {chunk}"
                        )
                    if strict and failure is None:
                        failure = f"worker {slot} died mid-batch"
                if time.monotonic() > deadline:
                    if strict:
                        failure = failure or "chunk timeout"
                        break
                    for chunk, slot in list(pending.items()):
                        replies[chunk] = CallError(
                            f"chunk {chunk} timed out on worker {slot}"
                        )
                    pending.clear()
                continue
            status, reply_task, chunk, payload = message
            if status == "obs":
                # Telemetry rides the result pipe: route to the live
                # aggregator (if one is attached) and keep collecting.
                self._ingest_telemetry(payload)
                continue
            if reply_task != task_id or chunk not in pending:
                continue  # stale reply from an aborted earlier task
            slot = pending.pop(chunk)
            if status == "ok":
                replies[chunk] = payload
                fingerprint = shipped.get(chunk)
                if fingerprint is not None:
                    self._workers[slot].warmed.add(fingerprint)
            else:
                replies[chunk] = CallError(str(payload))
                if strict and failure is None:
                    failure = str(payload)
        if strict and failure is None:
            failed = [c for c, r in replies.items() if isinstance(r, CallError)]
            if failed:
                failure = str(replies[failed[0]].message)
        if strict and failure is not None:
            self.stats["fallbacks"] += 1
            raise ParallelFallback(failure)
        return replies

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Stop every worker (idempotent)."""
        if self._closed:
            return
        self._closed = True
        for worker in self._workers:
            try:
                worker.tasks.put(("stop",))
            except (ValueError, OSError):
                pass
        for worker in self._workers:
            worker.process.join(timeout=1.0)
            if worker.process.is_alive():
                worker.process.terminate()
                worker.process.join(timeout=1.0)
            worker.tasks.cancel_join_thread()
            worker.tasks.close()
        self._results.cancel_join_thread()
        self._results.close()
