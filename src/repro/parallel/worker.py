"""The child-process half of the sharded execution plane.

:func:`worker_main` is the entry point each :class:`ShardedPool` worker
runs: a loop over a private task queue, answering on a shared result
queue.  Two task shapes cross the boundary:

``("codec", task_id, chunk, op, fingerprint, source, items)``
    Run the generated codec named by ``fingerprint`` over ``items``
    (value dicts for ``op="encode"``, wire buffers for ``op="decode"``).
    ``source`` is the standalone generated module source on the first
    use of a fingerprint in this worker and ``None`` afterwards — the
    parent tracks which workers are warm.  Fingerprints-not-closures is
    the design rule: generated source has no dependency on ``repro``
    objects, so nothing unpicklable (and nothing stale) ever crosses
    the process boundary.

``("call", task_id, chunk, target, kwargs)``
    Resolve ``target`` (``"package.module:function"``), call it with
    ``kwargs``, ship back the picklable result.  The parallel
    conformance runner uses this to execute whole fuzz units in
    workers.

Every reply is ``("ok", task_id, chunk, payload)`` or ``("err",
task_id, chunk, message)``.  Workers never fall back to the
interpreter: any exception is reported to the parent, which reruns the
work in-process so callers always see the canonical error from the
canonical tier.

When ``REPRO_OBS_EXPORT`` names a target, each worker also runs a
:class:`~repro.obs.live.stream.TelemetryStreamer`: a daemon thread that
puts ``("obs", 0, index, payload)`` metric-delta messages on the same
result queue, giving the parent a live aggregate view of a sharded run
(see ``repro.obs.live``).  Telemetry is advisory — the authoritative
per-unit obs snapshots still travel in task replies.
"""

from __future__ import annotations

import importlib
import os
from types import ModuleType
from typing import Any, Callable, Dict, Tuple

# fingerprint -> (build, parse); populated only from shipped source.
_codecs: Dict[str, Tuple[Callable[..., bytes], Callable[[bytes], Dict[str, Any]]]] = {}


class WorkerCrash(Exception):
    """Raised (never caught) by the fault-injection task for tests."""


def _load_codec(
    fingerprint: str, source: str
) -> Tuple[Callable[..., bytes], Callable[[bytes], Dict[str, Any]]]:
    module = ModuleType(f"repro_worker_codec_{fingerprint[:12]}")
    exec(compile(source, module.__name__, "exec"), module.__dict__)
    pair = (module.build, module.parse)
    _codecs[fingerprint] = pair
    return pair


def _run_codec(
    op: str, fingerprint: str, source: Any, items: list
) -> list:
    pair = _codecs.get(fingerprint)
    if pair is None:
        if source is None:
            raise KeyError(
                f"codec {fingerprint[:12]} not warmed in this worker "
                "and no source shipped"
            )
        pair = _load_codec(fingerprint, source)
    build, parse = pair
    if op == "encode":
        return [build(values) for values in items]
    if op == "decode":
        return [parse(data) for data in items]
    raise ValueError(f"unknown codec op {op!r}")


def _resolve(target: str) -> Callable[..., Any]:
    module_name, _, attr = target.partition(":")
    if not module_name or not attr:
        raise ValueError(f"call target must be 'module:function', got {target!r}")
    return getattr(importlib.import_module(module_name), attr)


def crash(signum: int = 0) -> None:
    """Kill this worker without cleanup — the test's stand-in for a segfault.

    ``os._exit`` skips the result queue entirely, so the parent sees a
    dead process holding an unanswered chunk, exactly like a native
    crash would look.
    """
    os._exit(17)


def _start_telemetry(index: int, results: Any) -> Any:
    """A running telemetry streamer when exports are on, else ``None``."""
    raw = os.environ.get("REPRO_OBS_EXPORT", "").strip()
    if not raw or raw.lower() in ("off", "0", "no", "none", "false"):
        return None
    from repro.obs import enable
    from repro.obs.live.stream import TelemetryStreamer

    enable()  # deltas need a recording default registry in this process
    streamer = TelemetryStreamer(index, results)
    streamer.start()
    return streamer


def worker_main(index: int, tasks: Any, results: Any) -> None:
    """Serve tasks until a ``("stop",)`` message or queue breakdown."""
    # A worker must never open its own pool: conformance units call the
    # batch APIs, and recursive forking would multiply processes without
    # bound.  Lazy import keeps worker start-up (and the fork itself)
    # free of the full repro import graph until a task needs it.
    from repro.parallel import policy as _policy

    _policy.configure(workers=0)
    streamer = _start_telemetry(index, results)
    try:
        _serve(tasks, results)
    finally:
        if streamer is not None:
            streamer.stop()


def _serve(tasks: Any, results: Any) -> None:
    while True:
        try:
            task = tasks.get()
        except (EOFError, OSError):
            break
        kind = task[0]
        if kind == "stop":
            break
        if kind == "crash":
            crash()
        task_id, chunk = task[1], task[2]
        try:
            if kind == "codec":
                _, _, _, op, fingerprint, source, items = task
                payload = _run_codec(op, fingerprint, source, items)
            elif kind == "call":
                _, _, _, target, kwargs = task
                payload = _resolve(target)(**kwargs)
            else:
                raise ValueError(f"unknown task kind {kind!r}")
        except BaseException as exc:  # report, never die on a task error
            try:
                results.put(("err", task_id, chunk, f"{type(exc).__name__}: {exc}"))
            except (EOFError, OSError):
                break
            continue
        try:
            results.put(("ok", task_id, chunk, payload))
        except (EOFError, OSError):
            break
