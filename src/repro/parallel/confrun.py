"""Parallel conformance: disjoint units across workers, one merged report.

The serial runner (:func:`repro.conformance.runner.run_all`) iterates
*units* — one fuzzer per packet spec, one differential engine, one
conformance driver per machine — against a shared coverage map and
corpus.  Those units are independent by construction: every coverage
counter is labeled by its subject, engines only *append* to the corpus,
and each unit derives its PRNG from ``derive_rng(seed, engine, name)``,
which is process-independent.  That makes the parallel decomposition
exact rather than approximate:

* each unit runs in a worker with a private coverage map and corpus;
* the parent merges unit results **in the serial unit order**, so the
  merged coverage, corpus file, findings list, and case counts are
  byte-identical to a serial run with the same seed and budget;
* a unit that fails in a worker (or dies with it) is re-run in-process,
  so worker crashes cost time, never findings.

Workers execute :func:`execute_unit` by dotted name over the
``ShardedPool`` call channel — plain picklable kwargs in, a plain
picklable result dict out; no engine objects cross the process
boundary.
"""

from __future__ import annotations

from typing import Any, Dict, List, Optional, Sequence

from repro import parallel as _parallel
from repro.conformance.corpus import Corpus
from repro.conformance.coverage import CoverageMap
from repro.conformance.runner import (
    ConformanceReport,
    EngineReport,
    derive_rng,
    run_all,
)
from repro.obs.instrument import get_default

_EXECUTE = "repro.parallel.confrun:execute_unit"


def plan_units(
    budget: int,
    engines: Sequence[str],
    specs: Optional[Sequence[str]],
    machines: Optional[Sequence[str]],
    shrink_budget: int,
) -> List[Dict[str, Any]]:
    """The serial runner's unit list, with its exact budget splits."""
    from repro.conformance.registry import all_machine_entries, all_spec_entries

    units: List[Dict[str, Any]] = []
    if "fuzz" in engines:
        entries = [
            e for e in all_spec_entries() if specs is None or e.name in specs
        ]
        per_spec = max(1, budget // max(1, len(entries)))
        for entry in entries:
            units.append(
                {
                    "kind": "fuzz",
                    "name": entry.name,
                    "budget": per_spec,
                    "shrink_budget": shrink_budget,
                }
            )
    if "differential" in engines:
        units.append(
            {
                "kind": "differential",
                "name": "differential",
                "budget": budget,
                "shrink_budget": shrink_budget,
            }
        )
    if "machine" in engines:
        entries = [
            e
            for e in all_machine_entries()
            if machines is None or e.name in machines
        ]
        per_machine = max(1, budget // max(1, len(entries)))
        for entry in entries:
            units.append(
                {
                    "kind": "machine",
                    "name": entry.name,
                    "budget": per_machine,
                    "shrink_budget": max(100, shrink_budget // 2),
                }
            )
    return units


def execute_unit(
    kind: str, name: str, seed: int, budget: int, shrink_budget: int
) -> Dict[str, Any]:
    """Run one conformance unit with private state; return picklable data.

    This is the function workers resolve by dotted name.  It is also the
    in-process fallback for units whose worker failed, so its behaviour
    must not depend on which side of the fork it runs on: private
    coverage/corpus, a PRNG derived from ``(seed, engine, name)``, and a
    per-unit obs delta (the worker's process-default registry is reset at
    unit start so snapshots never double-count earlier units).
    """
    from repro.conformance.differential import DifferentialEngine
    from repro.conformance.machineconf import MachineConformance
    from repro.conformance.mutate import MutationFuzzer
    from repro.conformance.registry import all_machine_entries, all_spec_entries

    obs = get_default()
    if obs.enabled:
        obs.registry.reset()
    coverage = CoverageMap()
    corpus = Corpus()
    if kind == "fuzz":
        entry = next(e for e in all_spec_entries() if e.name == name)
        engine: Any = MutationFuzzer(
            entry,
            derive_rng(seed, "fuzz", name),
            coverage,
            corpus=corpus,
            seed=seed,
            shrink_budget=shrink_budget,
        )
    elif kind == "differential":
        engine = DifferentialEngine(
            derive_rng(seed, "differential"),
            coverage,
            corpus=corpus,
            seed=seed,
            shrink_budget=shrink_budget,
        )
    elif kind == "machine":
        entry = next(e for e in all_machine_entries() if e.name == name)
        engine = MachineConformance(
            entry,
            derive_rng(seed, "machine", name),
            coverage,
            corpus=corpus,
            seed=seed,
            shrink_budget=shrink_budget,
        )
    else:
        raise ValueError(f"unknown conformance unit kind {kind!r}")
    findings = engine.run(budget)
    return {
        "kind": kind,
        "name": name,
        "cases": engine.cases,
        "findings": findings,
        "corpus": list(corpus.entries),
        "coverage": coverage.export(),
        "obs": obs.registry.snapshot() if obs.enabled else None,
    }


def run_all_parallel(
    workers: int,
    seed: int = 0,
    budget: int = 2000,
    engines: Sequence[str] = ("fuzz", "differential", "machine"),
    specs: Optional[Sequence[str]] = None,
    machines: Optional[Sequence[str]] = None,
    corpus_path: Optional[str] = None,
    shrink_budget: int = 600,
    exporter: Optional[Any] = None,
) -> ConformanceReport:
    """Like ``run_all`` but with units sharded over ``workers`` processes.

    Degrades to the serial runner when the pool cannot start (one core,
    ``workers < 2``) or gets wedged; individual unit failures re-run
    in-process.  The report — findings, case counts, coverage summary,
    corpus file — is byte-identical to the serial run's.

    ``exporter`` (a :class:`repro.obs.live.Exporter`) switches the live
    telemetry plane on: worker streamers' metric deltas are folded into
    a :class:`~repro.obs.live.stream.LiveAggregator` and republished as
    the run progresses, and the authoritative merged registry goes out
    as one ``final`` payload.  The live view is advisory — it never
    touches the process-default registry, so the end-of-run merge stays
    byte-identical to a serial run whether or not exports are on.
    """
    from repro.obs.live import flightrec
    from repro.obs.live.stream import LiveAggregator

    units = plan_units(budget, engines, specs, machines, shrink_budget)
    results: Optional[List[Any]] = None
    aggregator = LiveAggregator(exporter) if exporter is not None else None
    with _parallel.use(workers=workers):
        pool = _parallel.get_pool()
        if pool is not None and units:
            if aggregator is not None:
                pool.telemetry_sink = aggregator.ingest
            calls = [
                (
                    _EXECUTE,
                    {
                        "kind": unit["kind"],
                        "name": unit["name"],
                        "seed": seed,
                        "budget": unit["budget"],
                        "shrink_budget": unit["shrink_budget"],
                    },
                )
                for unit in units
            ]
            try:
                results = pool.run_calls(calls)
            except _parallel.ParallelFallback as exc:
                flightrec.record_crash(
                    "parallel_fallback",
                    subject="confrun",
                    detail=str(exc),
                    seed=seed,
                    extra={"workers": workers, "units": len(units)},
                )
                results = None
            finally:
                if aggregator is not None:
                    # Pick up the streamers' last periodic ticks before
                    # the pool (and its result queue) go away.
                    pool.drain_telemetry()
                    pool.telemetry_sink = None
    if results is None:
        report = run_all(
            seed=seed,
            budget=budget,
            engines=engines,
            specs=specs,
            machines=machines,
            corpus_path=corpus_path,
            shrink_budget=shrink_budget,
        )
        if exporter is not None:
            serial_obs = get_default()
            exporter.publish(
                serial_obs.registry.snapshot() if serial_obs.enabled else {},
                kind="final",
            )
        return report
    merged: List[Dict[str, Any]] = []
    for unit, result in zip(units, results):
        if isinstance(result, _parallel.CallError):
            # The unit died with its worker or errored remotely; the
            # in-process rerun is deterministic, so nothing is lost.
            result = execute_unit(
                kind=unit["kind"],
                name=unit["name"],
                seed=seed,
                budget=unit["budget"],
                shrink_budget=unit["shrink_budget"],
            )
        merged.append(result)

    coverage = CoverageMap()
    corpus = Corpus(corpus_path) if corpus_path else Corpus()
    obs = get_default()
    reports: List[EngineReport] = []
    for engine_name in ("fuzz", "differential", "machine"):
        if engine_name not in engines:
            continue
        report = EngineReport(engine_name, 0)
        for result in merged:
            if result["kind"] != engine_name:
                continue
            report.cases += result["cases"]
            report.findings.extend(result["findings"])
        reports.append(report)
    for result in merged:
        coverage.merge(result["coverage"])
        for entry in result["corpus"]:
            corpus.add(entry)
        if obs.enabled and result.get("obs"):
            obs.registry.merge_snapshot(result["obs"])
    saved_path = corpus.save() if corpus_path else None
    if exporter is not None:
        # One authoritative final payload: the *merged* registry (the
        # thing guaranteed byte-identical to serial), not the live view.
        view = aggregator.snapshot() if aggregator is not None else {}
        exporter.publish(
            obs.registry.snapshot()
            if obs.enabled
            else view.get("metrics", {}),
            kind="final",
            workers=view.get("workers", {}),
            dropped=view.get("dropped", 0),
            trace=view.get("trace", [])[-64:],
        )
    return ConformanceReport(
        seed=seed,
        budget=budget,
        engines=reports,
        coverage=coverage.summary(),
        corpus_path=saved_path,
    )
