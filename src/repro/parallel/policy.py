"""Process-wide policy for the sharded execution plane.

A :class:`Parallel` value decides *when* batch work leaves the process:

* ``workers`` — how many worker processes the pool may fork.  ``0``
  disables the plane entirely (every batch runs in-process, preserving
  the single-process tiers bit-for-bit); values below 2 are treated as
  0 because a one-worker pool is pure overhead.
* ``min_batch`` — batches smaller than this never leave the process.
  Sharding pays a fixed toll (pickling, queue hops, reassembly); below
  the threshold the PR-3 in-process batch tier always wins, so the
  threshold is what keeps small-batch numbers from regressing.
* ``chunk_timeout`` — seconds the parent waits on a shard before
  declaring the pool wedged and falling back in-process.

The environment variable ``REPRO_PARALLEL`` picks the starting worker
count: ``off`` (the single-process behaviour), ``auto`` (one worker per
CPU, off on single-core boxes), or an integer.  ``REPRO_PARALLEL_MIN_BATCH``
overrides the batch threshold.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Iterator


@dataclass(frozen=True)
class Parallel:
    """When and how batch work is sharded across worker processes."""

    workers: int = 0  # 0 = off; otherwise the pool size (>= 2)
    min_batch: int = 1024  # smallest batch worth shipping out of process
    chunk_timeout: float = 120.0  # seconds before a wedged shard aborts

    def __post_init__(self) -> None:
        if self.workers < 0:
            raise ValueError(f"worker count cannot be negative, got {self.workers}")
        if self.min_batch < 1:
            raise ValueError(f"min_batch must be at least 1, got {self.min_batch}")
        if self.chunk_timeout <= 0:
            raise ValueError(
                f"chunk_timeout must be positive, got {self.chunk_timeout}"
            )


def resolve_workers(raw: str) -> int:
    """Map a ``REPRO_PARALLEL``-style token to a concrete worker count.

    ``off``/``0``/empty → 0; ``auto`` → ``os.cpu_count()`` (0 when the
    box has fewer than two cores — sharding cannot win there); an
    integer → itself (values below 2 collapse to 0).
    """
    token = raw.strip().lower()
    if token in ("", "off", "no", "none", "0", "1"):
        return 0
    if token == "auto":
        cpus = os.cpu_count() or 1
        return cpus if cpus >= 2 else 0
    try:
        count = int(token)
    except ValueError:
        return 0
    return count if count >= 2 else 0


def _from_env() -> Parallel:
    workers = resolve_workers(os.environ.get("REPRO_PARALLEL", "auto"))
    policy = Parallel(workers=workers)
    raw_batch = os.environ.get("REPRO_PARALLEL_MIN_BATCH", "").strip()
    if raw_batch:
        try:
            policy = replace(policy, min_batch=max(1, int(raw_batch)))
        except ValueError:
            pass
    return policy


_policy: Parallel = _from_env()


def get_policy() -> Parallel:
    """The current process-wide policy."""
    return _policy


def set_policy(policy: Parallel) -> Parallel:
    """Install ``policy`` process-wide."""
    if not isinstance(policy, Parallel):
        raise TypeError(f"expected a Parallel policy, got {policy!r}")
    global _policy
    _policy = policy
    return policy


def configure(**changes: object) -> Parallel:
    """Install a copy of the current policy with ``changes`` applied.

    ``workers`` accepts the env-var tokens too (``"auto"``/``"off"``).
    """
    raw = changes.get("workers")
    if isinstance(raw, str):
        changes = dict(changes, workers=resolve_workers(raw))
    return set_policy(replace(_policy, **changes))


@contextmanager
def use(**changes: object) -> Iterator[Parallel]:
    """Temporarily apply policy ``changes`` (restores the old policy)."""
    previous = _policy
    try:
        yield configure(**changes)
    finally:
        set_policy(previous)
