"""``repro.parallel`` — the sharded multi-process execution plane.

The single-process tier ladder (interpreted → compiled → batch, PR 3)
ends at one core.  This package adds the fourth rung: a
:class:`~repro.parallel.pool.ShardedPool` of forked workers that the
batch codec APIs and the conformance runner dispatch into transparently
when the process-wide :class:`~repro.parallel.policy.Parallel` policy
allows it (``REPRO_PARALLEL`` env: ``off`` / ``auto`` / N).

Design rule: **fingerprints, not closures, cross the process
boundary.**  Workers receive a spec's structural fingerprint plus (once
per worker) the generated standalone codec source — never pickled
closures or spec objects — so the plane stays correct under
``fork``/``spawn`` alike and a worker's cache can be warmed, audited,
and discarded by content hash.  See DESIGN.md.
"""

from __future__ import annotations

import atexit
from typing import Optional

from repro.parallel.policy import (
    Parallel,
    configure,
    get_policy,
    resolve_workers,
    set_policy,
    use,
)
from repro.parallel.pool import CallError, ParallelFallback, ShardedPool

__all__ = [
    "Parallel",
    "ParallelFallback",
    "CallError",
    "ShardedPool",
    "configure",
    "get_policy",
    "get_pool",
    "maybe_pool",
    "resolve_workers",
    "set_policy",
    "shutdown",
    "stats",
    "use",
]

_pool: Optional[ShardedPool] = None


def get_pool() -> Optional[ShardedPool]:
    """The process-wide pool sized by the current policy (or None if off).

    Rebuilt lazily whenever the policy's worker count changes, so tests
    and CLIs can flip ``configure(workers=...)`` and get a matching pool
    on the next batch.
    """
    global _pool
    policy = get_policy()
    if policy.workers < 2:
        if _pool is not None:
            _pool.close()
            _pool = None
        return None
    # Dead workers are the pool's own problem (it respawns them during
    # collection); only a size change warrants a rebuild here, so crash
    # bookkeeping in ``pool.stats`` survives across batches.
    if _pool is not None and _pool.size != policy.workers:
        _pool.close()
        _pool = None
    if _pool is None:
        _pool = ShardedPool(policy.workers, chunk_timeout=policy.chunk_timeout)
    return _pool


def maybe_pool(batch_size: int) -> Optional[ShardedPool]:
    """The pool iff policy says this batch is worth sharding, else None."""
    policy = get_policy()
    if policy.workers < 2 or batch_size < policy.min_batch:
        return None
    return get_pool()


def stats() -> dict:
    """Pool counters (zeros when no pool has been started)."""
    base = {
        "workers": 0,
        "batches_sharded": 0,
        "chunks": 0,
        "calls": 0,
        "worker_failures": 0,
        "fallbacks": 0,
        "source_ships": 0,
    }
    if _pool is not None:
        base.update(_pool.stats)
        base["workers"] = _pool.size
    return base


def shutdown() -> None:
    """Stop the process-wide pool (restarted lazily on next use)."""
    global _pool
    if _pool is not None:
        _pool.close()
        _pool = None


atexit.register(shutdown)
