"""Process-wide policy for the compiled codec tier.

A :class:`FastPath` value decides *when* a spec graduates from the
interpreted codec to its compiled closures:

* ``mode="auto"`` (default) — compile a spec after ``threshold``
  interpreted calls, so one-shot scripts never pay codegen latency while
  steady-state traffic always ends up on the fast tier;
* ``mode="always"`` — compile on first use;
* ``mode="off"`` — interpret everything (the compiled tier is inert).

``verify=True`` keeps the interpreter in the loop as an oracle: every
compiled result is cross-checked byte-for-byte and any divergence demotes
the spec back to the interpreter (see ``repro.fastpath.cache``).

The policy is process-wide and cheap to read; changing it bumps a
*generation* counter that invalidates every per-spec cached decision, so
``use(mode="off")`` in a test really does turn the tier off for specs
that were already compiled.

The environment variable ``REPRO_FASTPATH`` picks the starting policy:
``off``, ``auto``, ``always`` or ``verify`` (= ``always`` + oracle).
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Iterator, Tuple

_MODES = ("off", "auto", "always")


@dataclass(frozen=True)
class FastPath:
    """When and how the compiled codec tier engages."""

    mode: str = "auto"
    threshold: int = 64  # interpreted calls before "auto" compiles a spec
    verify: bool = False  # cross-check every compiled result vs the interpreter

    def __post_init__(self) -> None:
        if self.mode not in _MODES:
            raise ValueError(
                f"fastpath mode must be one of {_MODES}, got {self.mode!r}"
            )
        if self.threshold < 1:
            raise ValueError(
                f"fastpath threshold must be at least 1, got {self.threshold}"
            )


def _from_env() -> FastPath:
    raw = os.environ.get("REPRO_FASTPATH", "").strip().lower()
    if raw == "off":
        return FastPath(mode="off")
    if raw == "always":
        return FastPath(mode="always")
    if raw == "verify":
        return FastPath(mode="always", verify=True)
    return FastPath()


# The policy and its generation, bundled so hot paths read one global.
_state: Tuple[FastPath, int] = (_from_env(), 0)


def state() -> Tuple[FastPath, int]:
    """The current ``(policy, generation)`` pair (one global read)."""
    return _state


def get_policy() -> FastPath:
    """The current process-wide policy."""
    return _state[0]


def generation() -> int:
    """Bumped on every policy change; stale per-spec state checks this."""
    return _state[1]


def set_policy(policy: FastPath) -> FastPath:
    """Install ``policy`` process-wide, invalidating per-spec decisions."""
    if not isinstance(policy, FastPath):
        raise TypeError(f"expected a FastPath policy, got {policy!r}")
    global _state
    _state = (policy, _state[1] + 1)
    return policy


def configure(**changes: object) -> FastPath:
    """Install a copy of the current policy with ``changes`` applied."""
    return set_policy(replace(_state[0], **changes))


def invalidate() -> None:
    """Bump the generation without changing the policy.

    Used by ``cache.reset()`` so specs holding a cached compile decision
    re-evaluate against the emptied codec cache.
    """
    global _state
    _state = (_state[0], _state[1] + 1)


@contextmanager
def use(**changes: object) -> Iterator[FastPath]:
    """Temporarily apply policy ``changes`` (restores the old policy)."""
    previous = _state[0]
    try:
        yield configure(**changes)
    finally:
        set_policy(previous)
