"""The spec-compilation cache and per-spec tier state.

This is the machinery behind the transparent fast path: the first module
consulted by every ``encode_verbatim``/``decode_packet`` call.  Each
:class:`~repro.core.packet.PacketSpec` carries a small :class:`SpecState`
(stored as an attribute, rebuilt whenever the process-wide policy
changes) that tracks where the spec sits in the tier ladder:

``counting``
    Interpreted; under ``mode="auto"`` each call increments a counter
    until the policy threshold triggers compilation.
``compiled``
    ``state.codec`` holds the :class:`~repro.core.compile.CompiledCodec`
    closures; the codec layer dispatches to them.
``interpreted``
    Terminal for this policy generation: the generator refused the spec
    (``CodegenError``), or a divergence demoted it (see
    :func:`demote`).  Changing the policy or calling :func:`reset`
    re-evaluates.

Compiled codecs are shared process-wide, keyed by the spec's *structural
fingerprint* (``repro.fastpath.fingerprint``): a thousand spec objects
with the same shape compile exactly once.
"""

from __future__ import annotations

import threading
from typing import Any, Dict, Optional

from repro.fastpath import policy as _policy
from repro.fastpath.fingerprint import fingerprint_of

_STATE_ATTR = "_repro_fastpath_state"

COUNTING = "counting"
COMPILED = "compiled"
INTERPRETED = "interpreted"

_LOCK = threading.Lock()
_CODECS: Dict[str, Any] = {}  # fingerprint -> CompiledCodec
_FAILURES: Dict[str, str] = {}  # fingerprint -> CodegenError message
_STATS = {"compiles": 0, "shared": 0, "failures": 0, "demotions": 0}


class SpecState:
    """Per-spec, per-policy-generation fast-path bookkeeping."""

    __slots__ = (
        "generation",
        "status",
        "calls",
        "codec",
        "verify",
        "fingerprint",
        "reason",
        "spec_name",
    )

    def __init__(self, generation: int, verify: bool, spec_name: str) -> None:
        self.generation = generation
        self.status = COUNTING
        self.calls = 0
        self.codec = None
        self.verify = verify
        self.fingerprint: Optional[str] = None
        self.reason: Optional[str] = None
        self.spec_name = spec_name


def active_state(spec: Any, force: bool = False) -> Optional[SpecState]:
    """The spec's state iff the compiled tier should handle this call.

    Returns ``None`` when the interpreter should run instead — the tier
    is off, the spec is still warming up under ``auto``, the generator
    refused it, or it was demoted.  ``force=True`` (the batch APIs)
    compiles immediately regardless of warm-up, but never resurrects a
    refused or demoted spec.
    """
    policy, generation = _policy.state()
    if policy.mode == "off" and not force:
        return None
    state = getattr(spec, _STATE_ATTR, None)
    if state is None or state.generation != generation:
        state = SpecState(generation, policy.verify, getattr(spec, "name", "?"))
        try:
            setattr(spec, _STATE_ATTR, state)
        except AttributeError:  # exotic spec objects; just interpret
            return None
    status = state.status
    if status == COMPILED:
        return state
    if status == INTERPRETED:
        return None
    if not (force or policy.mode == "always"):
        state.calls += 1
        if state.calls < policy.threshold:
            return None
    _promote(spec, state)
    return state if state.status == COMPILED else None


def state_of(spec: Any) -> Optional[SpecState]:
    """The spec's current state without advancing warm-up counters."""
    state = getattr(spec, _STATE_ATTR, None)
    if state is None or state.generation != _policy.generation():
        return None
    return state


def _promote(spec: Any, state: SpecState) -> None:
    """Move a counting spec to ``compiled`` (or ``interpreted`` on refusal)."""
    fingerprint = state.fingerprint or fingerprint_of(spec)
    state.fingerprint = fingerprint
    with _LOCK:
        codec = _CODECS.get(fingerprint)
        if codec is None and fingerprint not in _FAILURES:
            # Lazy import: keeps this module import-light so core.codec
            # can import the fastpath package without a cycle.
            from repro.core.compile import CodegenError, compile_spec

            try:
                codec = compile_spec(spec)
            except CodegenError as exc:
                _FAILURES[fingerprint] = str(exc)
                _STATS["failures"] += 1
            else:
                _CODECS[fingerprint] = codec
                _STATS["compiles"] += 1
        elif codec is not None:
            _STATS["shared"] += 1
    if codec is None:
        state.status = INTERPRETED
        state.reason = f"codegen: {_FAILURES[fingerprint]}"
    else:
        state.codec = codec
        state.status = COMPILED


def demote(state: SpecState, reason: str) -> None:
    """Send a spec back to the interpreter for this policy generation.

    Called by the codec layer when a compiled closure diverges from the
    interpreter (error where the interpreter succeeds, or a byte-level
    mismatch under ``verify``).  The compiled closures stay referenced
    for post-mortem inspection but are no longer dispatched to.
    """
    state.status = INTERPRETED
    state.reason = reason
    with _LOCK:
        _STATS["demotions"] += 1


def stats() -> Dict[str, int]:
    """Cache counters: compiles, fingerprint shares, refusals, demotions."""
    with _LOCK:
        snapshot = dict(_STATS)
        snapshot["cached_codecs"] = len(_CODECS)
        snapshot["failed_fingerprints"] = len(_FAILURES)
    return snapshot


def reset() -> None:
    """Drop every compiled codec and invalidate per-spec state."""
    with _LOCK:
        _CODECS.clear()
        _FAILURES.clear()
        for key in _STATS:
            _STATS[key] = 0
    _policy.invalidate()
