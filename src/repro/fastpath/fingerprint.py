"""Structural fingerprints: the compiled-codec cache key.

Two specs that are structurally identical — same field kinds, names,
widths, byte orders, symbolic shapes, checksum algorithms and exportable
constraints — generate byte-identical codecs, so they share one compiled
entry no matter how many spec *objects* exist.  The spec's display name
is deliberately excluded: it only decorates generated function names and
docstrings, never behaviour.

Field *names* are included because they key the value environments the
generated functions read and the spans they report; renaming a field is a
structural change.
"""

from __future__ import annotations

import hashlib
from typing import Any, Iterator

_SEP = "\x1f"  # cannot appear in identifiers, keeps tokens unambiguous


def _expr_token(expr: Any) -> str:
    from repro.core.compile import CodegenError, _expr_code

    try:
        return _expr_code(expr)
    except CodegenError:
        return repr(expr)


def _predicate_token(predicate: Any) -> str:
    from repro.core.compile import CodegenError, _predicate_code

    try:
        return _predicate_code(predicate)
    except CodegenError:
        return repr(predicate)


def _tokens(spec: Any) -> Iterator[str]:
    # Imported lazily: fastpath modules stay import-light so core.codec
    # can import this package without a cycle through repro.core.
    from repro.core.fields import (
        Bytes,
        ChecksumField,
        Flag,
        Reserved,
        UInt,
        UIntList,
    )

    for field in spec.fields:
        # The *exact* class (module-qualified) leads every token: a
        # subclassed field (overridden encode/decode) must never share a
        # fingerprint — and hence a compiled codec, or a cached refusal —
        # with the plain field of the same shape.
        cls = type(field)
        kind = f"{cls.__module__}.{cls.__qualname__}"
        if isinstance(field, UInt):
            yield (
                f"{kind}:{field.name}:{field.bits}:{field.byteorder.value}"
                f":{field.const}:{sorted(field.enum) if field.enum else None}"
            )
        elif isinstance(field, Flag):
            yield f"{kind}:{field.name}"
        elif isinstance(field, Reserved):
            yield f"{kind}:{field.name}:{field.bits}:{field.value}"
        elif isinstance(field, Bytes):
            length = None if field.length is None else _expr_token(field.length)
            yield f"{kind}:{field.name}:{length}"
        elif isinstance(field, UIntList):
            yield (
                f"{kind}:{field.name}:{field.element_bits}"
                f":{_expr_token(field.count)}"
            )
        elif isinstance(field, ChecksumField):
            over = "*" if field.covers_whole_packet else ",".join(field.over)
            yield (
                f"{kind}:{field.name}:{field.algorithm.name}"
                f":{field.bits}:{over}"
            )
        else:
            # Unsupported kinds (Struct, Switch, future fields) still get
            # a stable token; compilation will refuse them downstream.
            yield f"{kind}:{field.name}:{field!r}"
    for constraint in spec.constraints:
        if constraint.is_symbolic:
            yield f"constraint:{constraint.name}:{_predicate_token(constraint.predicate)}"
        else:
            yield f"constraint:{constraint.name}:opaque"


def fingerprint_of(spec: Any) -> str:
    """A sha256 hex digest of the spec's structure (name excluded)."""
    blob = _SEP.join(_tokens(spec)).encode("utf-8", "backslashreplace")
    return hashlib.sha256(blob).hexdigest()
