"""repro.fastpath — the transparent compiled codec tier.

The paper's §5 position is that implementations *generated from* the DSL
spec are correct by construction; ``core.compile`` builds those
generated codecs, and this package makes the runtime actually use them.
Every ``encode_verbatim``/``decode_packet``/``compute_checksums`` call
consults a process-wide :class:`FastPath` policy: specs warm up
interpreted, compile once (shared by structural fingerprint), and run at
generated-code speed — with the interpreter retained as the semantic
oracle.  A compiled closure that errors where the interpreter succeeds,
or (under ``verify=True``) produces different bytes, *demotes* its spec
back to the interpreter and counts a ``fastpath.divergences`` metric.

Layout
------
``policy``
    The :class:`FastPath` dataclass and the process-wide current policy
    (``REPRO_FASTPATH`` env var, ``configure``/``use`` helpers).
``fingerprint``
    Structural spec fingerprints — the compiled-cache key.
``cache``
    Per-spec tier state, the fingerprint-keyed codec cache, demotion.
``batch``
    ``encode_many``/``decode_many`` — per-call overhead amortized over a
    batch (imported lazily: it pulls in the full ``repro.core``).
"""

from __future__ import annotations

from typing import Any

from repro.fastpath.cache import (
    SpecState,
    active_state,
    demote,
    reset,
    state_of,
    stats,
)
from repro.fastpath.policy import (
    FastPath,
    configure,
    get_policy,
    set_policy,
    use,
)

__all__ = [
    "FastPath",
    "get_policy",
    "set_policy",
    "configure",
    "use",
    "SpecState",
    "active_state",
    "state_of",
    "demote",
    "stats",
    "reset",
    "encode_many",
    "decode_many",
]


def __getattr__(name: str) -> Any:
    # ``batch`` imports repro.core; defer it so importing this package
    # stays cheap and cycle-free from within core.codec.  import_module
    # (not ``from ... import``) — the latter re-enters this __getattr__
    # while the submodule is still absent and recurses.
    if name in ("encode_many", "decode_many", "batch"):
        import importlib

        batch = importlib.import_module("repro.fastpath.batch")
        return batch if name == "batch" else getattr(batch, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
