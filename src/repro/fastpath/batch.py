"""Batch encode/decode: amortize per-call overhead over many packets.

``encode_verbatim``/``decode_packet`` pay a fixed toll per call — policy
lookup, obs snapshot, timer reads.  At header-sized packets that toll is
a meaningful fraction of the work.  :func:`encode_many` and
:func:`decode_many` pay it once per *batch*: the compiled tier is forced
up front (``active_state(force=True)``), closures and the output list's
``append`` are bound to locals, and observability records a single batch
histogram plus aggregate packet/byte counters instead of per-packet
samples.

Large batches go one rung further: when the ``repro.parallel`` policy is
on (``REPRO_PARALLEL``) and the batch clears its ``min_batch`` bar, the
compiled codec is dispatched across the sharded worker pool — chunked,
order-preserving, fingerprint-keyed — and any pool-side problem falls
back to the in-process loop below, which owns the canonical error
semantics.  Small batches never leave the process, so the single-core
numbers of the batch tier are preserved exactly; ``REPRO_PARALLEL=off``
makes this module behave bit-for-bit as it did before the pool existed.

Semantics are identical to calling the single-packet functions in a
loop: each item still gets the full fallback/verify treatment, and specs
the generator refuses simply run interpreted.  Errors propagate as-is,
so a bad item aborts the batch exactly where a loop over
``encode_verbatim`` would.
"""

from __future__ import annotations

import time
from typing import Any, Dict, Iterable, List, Mapping, Optional

from repro import parallel as _parallel
from repro.core import codec as _codec
from repro.fastpath.cache import COMPILED, active_state
from repro.obs.instrument import Instrumentation, get_default


def _as_values(item: Any) -> Mapping[str, Any]:
    """Accept a plain mapping or anything packet-like carrying ``_values``."""
    if isinstance(item, Mapping):
        return item
    values = getattr(item, "_values", None)
    if isinstance(values, dict):
        return values
    raise TypeError(
        f"expected a field-value mapping or a Packet, got {item!r}"
    )


def _record_batch(
    obs: Instrumentation,
    op: str,
    spec_name: str,
    packets: int,
    size: int,
    elapsed: float,
) -> None:
    registry = obs.registry
    cache = registry.handle_cache("codec.batch")
    key = (op, spec_name)
    handles = cache.get(key)
    if handles is None:
        handles = (
            registry.histogram(f"codec.{op}_batch_seconds", spec=spec_name),
            registry.counter("codec.batches", op=op, spec=spec_name),
            registry.counter(f"codec.{op}d_packets", spec=spec_name),
            registry.counter(f"codec.{op}d_bytes", spec=spec_name),
        )
        cache[key] = handles
    histogram, batches, packet_counter, byte_counter = handles
    histogram.observe(elapsed)
    batches.inc()
    packet_counter.inc(packets)
    byte_counter.inc(size)


def _shardable(state: Any) -> bool:
    """Only compiled, non-verify specs may leave the process.

    ``verify`` needs the interpreter beside every compiled call, and a
    demoted/interpreted spec has no standalone source to ship — both run
    the in-process loop, which handles them canonically.
    """
    return state is not None and state.status == COMPILED and not state.verify


def _pool_run(
    pool: Any, op: str, state: Any, spec_name: str, items: List[Any]
) -> Optional[List[Any]]:
    """One sharded attempt; None means 'rerun in-process' (canonical)."""
    try:
        return pool.run_codec(
            op, state.fingerprint, state.codec.source, spec_name, items
        )
    except _parallel.ParallelFallback as exc:
        from repro.obs.live.flightrec import record_crash

        # The in-process rerun makes fallbacks invisible to callers;
        # the flight recorder (when armed) keeps them diagnosable.
        record_crash(
            "parallel_fallback",
            subject=spec_name,
            detail=str(exc),
            extra={"op": op, "items": len(items)},
        )
        return None


def encode_many(
    spec: Any,
    packets: Iterable[Any],
    obs: Optional[Instrumentation] = None,
) -> List[bytes]:
    """Encode an iterable of packets/value-mappings under one spec.

    Returns encodings in input order.  Byte totals and packet counts land
    in the same ``codec.encoded_*`` counters the single-packet path uses,
    so dashboards aggregate across call styles.
    """
    if obs is None:
        obs = get_default()
    enabled = obs.enabled
    start = time.perf_counter() if enabled else 0.0
    state = active_state(spec, force=True)
    out: Optional[List[bytes]] = None
    if _shardable(state) and _parallel.get_policy().workers >= 2:
        if not isinstance(packets, list):
            packets = list(packets)
        pool = _parallel.maybe_pool(len(packets))
        if pool is not None:
            values = [
                item if type(item) is dict else _as_values(item)
                for item in packets
            ]
            out = _pool_run(pool, "encode", state, spec.name, values)
    if out is None:
        out = []
        append = out.append
        fast = _codec._fast_encode
        interp = _codec._encode_fields
        for item in packets:
            # Exact-type check first: ``isinstance(x, Mapping)`` is an ABC
            # walk costing as much as a small spec's entire compiled build.
            values = item if type(item) is dict else _as_values(item)
            # Re-check per item: a divergence can demote the spec mid-batch.
            if state is not None and state.status == COMPILED:
                append(fast(spec, state, values, obs))
            else:
                append(interp(spec, values)[0])
    if enabled:
        elapsed = time.perf_counter() - start
        _record_batch(
            obs, "encode", spec.name, len(out), sum(map(len, out)), elapsed
        )
    return out


def decode_many(
    spec: Any,
    blobs: Iterable[bytes],
    obs: Optional[Instrumentation] = None,
) -> List[Dict[str, Any]]:
    """Decode an iterable of wire buffers under one spec.

    Returns value dicts in input order.  A :class:`~repro.core.codec.DecodeError`
    aborts the batch at the offending buffer, exactly as a loop over
    ``decode_packet`` would.
    """
    if obs is None:
        obs = get_default()
    enabled = obs.enabled
    start = time.perf_counter() if enabled else 0.0
    state = active_state(spec, force=True)
    out: Optional[List[Dict[str, Any]]] = None
    total = 0
    if _shardable(state) and _parallel.get_policy().workers >= 2:
        if not isinstance(blobs, list):
            blobs = list(blobs)
        pool = _parallel.maybe_pool(len(blobs))
        if pool is not None:
            out = _pool_run(pool, "decode", state, spec.name, blobs)
            if out is not None:
                total = sum(map(len, blobs))
    if out is None:
        out = []
        total = 0
        append = out.append
        fast = _codec._fast_decode
        interp = _codec._decode_fields
        for data in blobs:
            total += len(data)
            if state is not None and state.status == COMPILED:
                append(fast(spec, state, data, obs))
            else:
                append(interp(spec, data))
    if enabled:
        elapsed = time.perf_counter() - start
        _record_batch(obs, "decode", spec.name, len(out), total, elapsed)
    return out
