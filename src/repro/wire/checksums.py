"""Checksum and integrity algorithms used by packet specifications.

Every algorithm maps ``bytes -> int`` and declares its output width so the
packet DSL can tie a checksum field's bit width to the algorithm computing
it (the dependent-typing move of the paper's ``check : Byte -> List Byte ->
Byte`` function).

All implementations are pure Python, deterministic, and independently
tested against published test vectors where they exist.
"""

from __future__ import annotations

from typing import Callable, Dict, NamedTuple


def xor8(data: bytes) -> int:
    """8-bit XOR (longitudinal redundancy) checksum.

    This is the simple ``check`` function of the paper's ARQ example: a
    one-byte digest of the sequence number and payload.
    """
    value = 0
    for byte in data:
        value ^= byte
    return value


def internet_checksum(data: bytes) -> int:
    """RFC 1071 Internet checksum (ones' complement of ones'-complement sum).

    Used by IPv4, ICMP, UDP and TCP.  Odd-length input is virtually padded
    with a zero byte, per the RFC.
    """
    if len(data) % 2:
        data = data + b"\x00"
    total = 0
    for i in range(0, len(data), 2):
        total += (data[i] << 8) | data[i + 1]
    while total >> 16:
        total = (total & 0xFFFF) + (total >> 16)
    return ~total & 0xFFFF


def fletcher16(data: bytes) -> int:
    """Fletcher-16 checksum (RFC 1146 style), returned as ``(c1 << 8) | c0``."""
    c0 = 0
    c1 = 0
    for byte in data:
        c0 = (c0 + byte) % 255
        c1 = (c1 + c0) % 255
    return (c1 << 8) | c0


def adler32(data: bytes) -> int:
    """Adler-32 checksum (RFC 1950), as used by zlib."""
    modulus = 65521
    a = 1
    b = 0
    for byte in data:
        a = (a + byte) % modulus
        b = (b + a) % modulus
    return (b << 16) | a


_CRC16_POLY = 0x1021  # CCITT polynomial x^16 + x^12 + x^5 + 1


def _build_crc16_table() -> tuple:
    table = []
    for byte in range(256):
        crc = byte << 8
        for _ in range(8):
            if crc & 0x8000:
                crc = ((crc << 1) ^ _CRC16_POLY) & 0xFFFF
            else:
                crc = (crc << 1) & 0xFFFF
        table.append(crc)
    return tuple(table)


_CRC16_TABLE = _build_crc16_table()


def crc16_ccitt(data: bytes, initial: int = 0xFFFF) -> int:
    """CRC-16/CCITT-FALSE (poly 0x1021, init 0xFFFF, no reflection)."""
    crc = initial
    for byte in data:
        crc = ((crc << 8) & 0xFFFF) ^ _CRC16_TABLE[((crc >> 8) ^ byte) & 0xFF]
    return crc


_CRC32_POLY = 0xEDB88320  # reflected IEEE 802.3 polynomial


def _build_crc32_table() -> tuple:
    table = []
    for byte in range(256):
        crc = byte
        for _ in range(8):
            if crc & 1:
                crc = (crc >> 1) ^ _CRC32_POLY
            else:
                crc >>= 1
        table.append(crc)
    return tuple(table)


_CRC32_TABLE = _build_crc32_table()


def crc32(data: bytes) -> int:
    """CRC-32 (IEEE 802.3, as used by Ethernet, gzip and PNG)."""
    crc = 0xFFFFFFFF
    for byte in data:
        crc = (crc >> 8) ^ _CRC32_TABLE[(crc ^ byte) & 0xFF]
    return crc ^ 0xFFFFFFFF


class ChecksumAlgorithm(NamedTuple):
    """A named checksum algorithm with a declared output width.

    The packet DSL consults ``bits`` to validate that a checksum field is
    wide enough to hold the algorithm's output — a shape mismatch is a
    definition-time error, not a runtime surprise.
    """

    name: str
    bits: int
    compute: Callable[[bytes], int]


CHECKSUM_ALGORITHMS: Dict[str, ChecksumAlgorithm] = {
    "xor8": ChecksumAlgorithm("xor8", 8, xor8),
    "internet": ChecksumAlgorithm("internet", 16, internet_checksum),
    "fletcher16": ChecksumAlgorithm("fletcher16", 16, fletcher16),
    "crc16-ccitt": ChecksumAlgorithm("crc16-ccitt", 16, crc16_ccitt),
    "crc32": ChecksumAlgorithm("crc32", 32, crc32),
    "adler32": ChecksumAlgorithm("adler32", 32, adler32),
}
"""Registry keyed by algorithm name; extend via :func:`register_algorithm`."""


def register_algorithm(name: str, bits: int, compute: Callable[[bytes], int]) -> ChecksumAlgorithm:
    """Register a custom checksum algorithm for use in packet specs.

    Raises ``ValueError`` if the name is already taken, so a spec can never
    silently change meaning because two modules fought over a name.
    """
    if name in CHECKSUM_ALGORITHMS:
        raise ValueError(f"checksum algorithm {name!r} is already registered")
    algorithm = ChecksumAlgorithm(name, bits, compute)
    CHECKSUM_ALGORITHMS[name] = algorithm
    return algorithm
