"""Bit-granular readers and writers over byte buffers.

Network protocol headers routinely pack several fields into a single byte
(IPv4's ``Version`` and ``IHL`` share one octet, ``Flags`` takes three bits
of a 16-bit word).  :class:`BitWriter` and :class:`BitReader` provide exact,
symmetric access at bit granularity, using the RFC bit-numbering convention:
the first bit written or read is the most significant bit of the first byte.
"""

from __future__ import annotations

import enum


class ByteOrder(enum.Enum):
    """Byte order for multi-byte integer fields.

    ``BIG`` is network byte order and the default everywhere; ``LITTLE`` is
    provided for protocols (and file formats) that deviate from it.
    """

    BIG = "big"
    LITTLE = "little"


class TruncatedDataError(ValueError):
    """Raised when a read runs past the end of the underlying buffer."""

    def __init__(self, requested_bits: int, available_bits: int) -> None:
        self.requested_bits = requested_bits
        self.available_bits = available_bits
        super().__init__(
            f"requested {requested_bits} bits but only "
            f"{available_bits} bits remain"
        )


class MisalignedReadError(ValueError):
    """Raised when a byte-granular operation happens off a byte boundary."""


class BitWriter:
    """Accumulates an on-the-wire byte string, bit by bit.

    Bits are written most-significant-first within each byte, matching the
    numbering used in RFC "ASCII picture" header diagrams.

    Multi-bit writes use bulk shift/mask arithmetic over the affected byte
    range rather than a per-bit loop; the writer is append-only, so bits
    past the cursor are always zero and a single OR suffices.

    Example
    -------
    >>> w = BitWriter()
    >>> w.write_uint(4, 4)    # IPv4 Version
    >>> w.write_uint(5, 4)    # IHL
    >>> w.getvalue()
    b'E'
    """

    def __init__(self) -> None:
        self._buffer = bytearray()
        self._bit_length = 0  # total bits written

    @property
    def bit_length(self) -> int:
        """Total number of bits written so far."""
        return self._bit_length

    @property
    def is_byte_aligned(self) -> bool:
        """True when the next write starts on a byte boundary."""
        return self._bit_length % 8 == 0

    def write_uint(
        self,
        value: int,
        bits: int,
        byteorder: ByteOrder = ByteOrder.BIG,
    ) -> None:
        """Write ``value`` as an unsigned integer occupying ``bits`` bits.

        Little-endian order is only meaningful (and only permitted) for
        byte-aligned fields whose width is a whole number of bytes.
        """
        if bits <= 0:
            raise ValueError(f"bit width must be positive, got {bits}")
        if value < 0:
            raise ValueError(f"cannot encode negative value {value}")
        if value >= (1 << bits):
            raise ValueError(f"value {value} does not fit in {bits} bits")
        if byteorder is ByteOrder.LITTLE:
            if bits % 8 != 0:
                raise ValueError(
                    "little-endian fields must span whole bytes, "
                    f"got {bits} bits"
                )
            self.write_bytes(value.to_bytes(bits // 8, "little"))
            return
        start = self._bit_length
        end = start + bits
        if start & 7 == 0 and bits & 7 == 0:
            self._buffer += value.to_bytes(bits >> 3, "big")
            self._bit_length = end
            return
        buffer = self._buffer
        byte_end = (end + 7) >> 3
        if len(buffer) < byte_end:
            buffer.extend(b"\x00" * (byte_end - len(buffer)))
        first = start >> 3
        shift = (byte_end << 3) - end
        span = int.from_bytes(buffer[first:byte_end], "big") | (value << shift)
        buffer[first:byte_end] = span.to_bytes(byte_end - first, "big")
        self._bit_length = end

    def write_bytes(self, data: bytes) -> None:
        """Write raw bytes; fast path when byte-aligned."""
        if self._bit_length % 8 == 0:
            self._buffer += data
            self._bit_length += len(data) * 8
            return
        if data:
            self.write_uint(int.from_bytes(data, "big"), len(data) * 8)

    def write_bool(self, flag: bool) -> None:
        """Write a single flag bit."""
        self.write_uint(1 if flag else 0, 1)

    def pad_to_byte(self) -> None:
        """Write zero bits until the next byte boundary.

        The trailing partial byte already exists zero-filled, so padding
        is just advancing the cursor.
        """
        remainder = self._bit_length % 8
        if remainder:
            self._bit_length += 8 - remainder

    def getvalue(self) -> bytes:
        """Return the bytes written so far.

        A trailing partial byte is zero-padded on the right, as it would be
        on the wire.
        """
        return bytes(self._buffer)


class BitReader:
    """Reads bit fields back out of an on-the-wire byte string.

    The reader is a cursor over ``data``; reads consume bits in the same
    order :class:`BitWriter` produced them.

    Example
    -------
    >>> r = BitReader(b'E')
    >>> r.read_uint(4), r.read_uint(4)
    (4, 5)
    """

    def __init__(self, data: bytes) -> None:
        self._data = data
        self._bit_cursor = 0

    @property
    def bits_remaining(self) -> int:
        """Bits not yet consumed."""
        return len(self._data) * 8 - self._bit_cursor

    @property
    def bits_consumed(self) -> int:
        """Bits consumed so far."""
        return self._bit_cursor

    @property
    def is_byte_aligned(self) -> bool:
        """True when the cursor sits on a byte boundary."""
        return self._bit_cursor % 8 == 0

    @property
    def at_end(self) -> bool:
        """True when every bit has been consumed."""
        return self._bit_cursor == len(self._data) * 8

    def read_uint(
        self,
        bits: int,
        byteorder: ByteOrder = ByteOrder.BIG,
    ) -> int:
        """Read ``bits`` bits as an unsigned integer.

        The read is one bulk ``int.from_bytes`` over the touched byte range
        plus a shift and mask, regardless of alignment.
        """
        if bits <= 0:
            raise ValueError(f"bit width must be positive, got {bits}")
        if bits > self.bits_remaining:
            raise TruncatedDataError(bits, self.bits_remaining)
        if byteorder is ByteOrder.LITTLE:
            if bits % 8 != 0:
                raise ValueError(
                    "little-endian fields must span whole bytes, "
                    f"got {bits} bits"
                )
            return int.from_bytes(self.read_bytes(bits // 8), "little")
        cursor = self._bit_cursor
        end = cursor + bits
        byte_end = (end + 7) >> 3
        chunk = int.from_bytes(self._data[cursor >> 3 : byte_end], "big")
        self._bit_cursor = end
        return (chunk >> ((byte_end << 3) - end)) & ((1 << bits) - 1)

    def read_bytes(self, count: int) -> bytes:
        """Read ``count`` raw bytes; fast path when byte-aligned."""
        if count < 0:
            raise ValueError(f"byte count must be non-negative, got {count}")
        if count * 8 > self.bits_remaining:
            raise TruncatedDataError(count * 8, self.bits_remaining)
        if self._bit_cursor % 8 == 0:
            start = self._bit_cursor // 8
            self._bit_cursor += count * 8
            return self._data[start : start + count]
        return bytes(self.read_uint(8) for _ in range(count))

    def read_bool(self) -> bool:
        """Read a single flag bit."""
        if self.bits_remaining < 1:
            raise TruncatedDataError(1, 0)
        return bool(self._read_bit())

    def read_remaining(self) -> bytes:
        """Consume and return every remaining whole byte.

        Raises :class:`MisalignedReadError` off a byte boundary, because
        "the rest of the packet" is only well defined byte-aligned.
        """
        if self._bit_cursor % 8 != 0:
            raise MisalignedReadError(
                "read_remaining requires byte alignment, cursor is at bit "
                f"{self._bit_cursor}"
            )
        return self.read_bytes(self.bits_remaining // 8)

    def skip_to_byte(self) -> None:
        """Discard bits up to the next byte boundary."""
        remainder = self._bit_cursor % 8
        if remainder:
            self._bit_cursor += 8 - remainder

    def _read_bit(self) -> int:
        byte = self._data[self._bit_cursor // 8]
        bit = (byte >> (7 - self._bit_cursor % 8)) & 1
        self._bit_cursor += 1
        return bit
