"""Bit-level wire I/O and checksum algorithms.

This package is the lowest substrate of the library: everything that touches
"on-the-wire" bytes goes through :class:`BitReader` / :class:`BitWriter`, and
every integrity algorithm used by packet specifications lives in
:mod:`repro.wire.checksums`.

The bit order follows RFC 791 conventions (and the paper's Figure 1): bit 0
of a byte is its most significant bit, and multi-byte integers are
transmitted in network byte order (big-endian) unless a field explicitly
opts into little-endian encoding.
"""

from repro.wire.bits import BitReader, BitWriter, ByteOrder, TruncatedDataError
from repro.wire.checksums import (
    CHECKSUM_ALGORITHMS,
    adler32,
    crc16_ccitt,
    crc32,
    fletcher16,
    internet_checksum,
    xor8,
)

__all__ = [
    "BitReader",
    "BitWriter",
    "ByteOrder",
    "TruncatedDataError",
    "CHECKSUM_ALGORITHMS",
    "adler32",
    "crc16_ccitt",
    "crc32",
    "fletcher16",
    "internet_checksum",
    "xor8",
]
